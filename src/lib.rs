//! **catalyzer-suite** — the façade crate of the Catalyzer reproduction.
//!
//! This workspace reproduces *"Catalyzer: Sub-millisecond Startup for
//! Serverless Computing with Initialization-less Booting"* (Du et al.,
//! ASPLOS 2020) as a pure-Rust, virtual-time simulation whose mechanisms do
//! real work. See `README.md` for the tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured numbers.
//!
//! The façade re-exports every member crate so examples and downstream
//! experiments need a single dependency:
//!
//! ```
//! use catalyzer_suite::prelude::*;
//!
//! let model = CostModel::experimental_machine();
//! let mut system = Catalyzer::new();
//! let profile = AppProfile::python_hello();
//! system.ensure_template(&profile, &model)?;
//! let mut ctx = BootCtx::fresh(&model);
//! let mut boot = system.boot(BootMode::Fork, &profile, &mut ctx)?;
//! boot.program.invoke_handler(ctx.clock(), ctx.model())?;
//! println!("fork boot + handler: {}", ctx.now());
//! println!("{}", boot.trace); // the nested span tree of the boot
//! # Ok::<(), catalyzer_suite::SuiteError>(())
//! ```

#![forbid(unsafe_code)]

use std::error::Error;
use std::fmt;

pub use catalyzer;
pub use faultsim;
pub use guest_kernel;
pub use imagefmt;
pub use memsim;
pub use platform;
pub use runtimes;
pub use sandbox;
pub use simtime;
pub use workloads;

/// The one error type experiments and examples need: every layer's failure
/// converts into it, so `main() -> Result<(), SuiteError>` works with `?`
/// across the whole workspace.
#[derive(Debug)]
#[non_exhaustive]
pub enum SuiteError {
    /// A sandbox/boot-engine operation failed.
    Sandbox(sandbox::SandboxError),
    /// A handler execution failed.
    Runtime(runtimes::RuntimeError),
    /// A platform (gateway/pool) operation failed.
    Platform(platform::PlatformError),
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Sandbox(e) => write!(f, "sandbox: {e}"),
            SuiteError::Runtime(e) => write!(f, "runtime: {e}"),
            SuiteError::Platform(e) => write!(f, "platform: {e}"),
        }
    }
}

impl Error for SuiteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SuiteError::Sandbox(e) => Some(e),
            SuiteError::Runtime(e) => Some(e),
            SuiteError::Platform(e) => Some(e),
        }
    }
}

impl From<sandbox::SandboxError> for SuiteError {
    fn from(e: sandbox::SandboxError) -> Self {
        SuiteError::Sandbox(e)
    }
}

impl From<runtimes::RuntimeError> for SuiteError {
    fn from(e: runtimes::RuntimeError) -> Self {
        SuiteError::Runtime(e)
    }
}

impl From<platform::PlatformError> for SuiteError {
    fn from(e: platform::PlatformError) -> Self {
        SuiteError::Platform(e)
    }
}

/// The names most experiments need.
pub mod prelude {
    pub use crate::SuiteError;
    pub use catalyzer::{BootMode, Catalyzer, CatalyzerConfig, CatalyzerEngine, Template};
    pub use platform::{Gateway, Invocation, InvocationReport};
    pub use runtimes::{AppProfile, RuntimeKind, WrappedProgram};
    pub use sandbox::{
        BootCtx, BootEngine, BootOutcome, DockerEngine, FirecrackerEngine, GvisorEngine,
        GvisorRestoreEngine, HyperContainerEngine, SPAN_BOOT, SPAN_EXEC,
    };
    pub use simtime::{
        CostModel, LatencyHistogram, MachineKind, MetricsRegistry, SimClock, SimNanos, Span, Tracer,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_error_wraps_every_layer() {
        let s: SuiteError = sandbox::SandboxError::Config { detail: "x".into() }.into();
        assert!(s.to_string().starts_with("sandbox:"));
        assert!(Error::source(&s).is_some());
        let p: SuiteError = platform::PlatformError::UnknownFunction { name: "f".into() }.into();
        assert!(p.to_string().contains("'f'"));
        assert!(Error::source(&p).is_some());
    }
}
