//! **catalyzer-suite** — the façade crate of the Catalyzer reproduction.
//!
//! This workspace reproduces *"Catalyzer: Sub-millisecond Startup for
//! Serverless Computing with Initialization-less Booting"* (Du et al.,
//! ASPLOS 2020) as a pure-Rust, virtual-time simulation whose mechanisms do
//! real work. See `README.md` for the tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured numbers.
//!
//! The façade re-exports every member crate so examples and downstream
//! experiments need a single dependency:
//!
//! ```
//! use catalyzer_suite::prelude::*;
//!
//! let model = CostModel::experimental_machine();
//! let mut system = Catalyzer::new();
//! let profile = AppProfile::python_hello();
//! system.ensure_template(&profile, &model)?;
//! let clock = SimClock::new();
//! let mut boot = system.boot(BootMode::Fork, &profile, &clock, &model)?;
//! boot.program.invoke_handler(&clock, &model)?;
//! println!("fork boot + handler: {}", clock.now());
//! # Ok::<(), sandbox::SandboxError>(())
//! ```

#![forbid(unsafe_code)]

pub use catalyzer;
pub use guest_kernel;
pub use imagefmt;
pub use memsim;
pub use platform;
pub use runtimes;
pub use sandbox;
pub use simtime;
pub use workloads;

/// The names most experiments need.
pub mod prelude {
    pub use catalyzer::{BootMode, Catalyzer, CatalyzerConfig, CatalyzerEngine, Template};
    pub use platform::{Gateway, InvocationReport};
    pub use runtimes::{AppProfile, RuntimeKind, WrappedProgram};
    pub use sandbox::{
        BootEngine, BootOutcome, DockerEngine, FirecrackerEngine, GvisorEngine,
        GvisorRestoreEngine, HyperContainerEngine,
    };
    pub use simtime::{CostModel, MachineKind, SimClock, SimNanos};
}
