//! Integration: the executable workload logic runs correctly inside
//! Catalyzer-booted sandboxes — latency comes from the boot engine, results
//! come from real computation.

use catalyzer_suite::prelude::*;
use catalyzer_suite::workloads::image::Image;
use catalyzer_suite::workloads::pillow::ImageOp;
use catalyzer_suite::workloads::specjbb::BackendAgent;
use catalyzer_suite::workloads::{deathstar, ecommerce};

fn model() -> CostModel {
    CostModel::experimental_machine()
}

#[test]
fn specjbb_mix_runs_in_a_forked_sandbox() {
    let model = model();
    let profile = AppProfile::java_specjbb();
    let mut cat = Catalyzer::new();
    cat.ensure_template(&profile, &model).unwrap();

    let mut ctx = BootCtx::fresh(&model);
    let mut boot = cat.boot(BootMode::Fork, &profile, &mut ctx).unwrap();
    let boot_latency = ctx.now();
    boot.program.invoke_handler(ctx.clock(), &model).unwrap();

    // The handler's business logic: the SPECjbb transaction mix.
    let mut agent = BackendAgent::new(60, 42);
    let report = agent.run_mix(1_000);
    assert!(report.new_orders > 300, "{report:?}");
    assert!(report.payments_cents > 0);

    // Same results no matter how the sandbox booted.
    let mut again = BackendAgent::new(60, 42);
    assert_eq!(again.run_mix(1_000), report);
    assert!(boot_latency < SimNanos::from_millis(2));
}

#[test]
fn pillow_ops_preserve_content_invariants_across_boot_paths() {
    let model = model();
    let input = Image::synthetic(64, 48, 99);
    // Run the image op after booting through two different paths; the
    // *computation* must be identical (boot path cannot affect results).
    let mut outputs = Vec::new();
    for mode in [BootMode::Cold, BootMode::Fork] {
        let profile = ImageOp::Transpose.profile();
        let mut cat = Catalyzer::new();
        cat.ensure_template(&profile, &model).unwrap();
        let mut boot = cat
            .boot(mode, &profile, &mut BootCtx::fresh(&model))
            .unwrap();
        boot.program
            .invoke_handler(&SimClock::new(), &model)
            .unwrap();
        outputs.push(ImageOp::Transpose.apply(&input));
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0].width(), 48);
}

#[test]
fn deathstar_compose_flow_served_by_gateway() {
    let model = model();
    let mut gw = platform::Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model);
    for s in catalyzer_suite::workloads::deathstar::Service::ALL {
        gw.register(s.profile());
    }
    // Serve a compose-post request end-to-end, then run its real logic.
    let report = gw.invoke("deathstar-ComposePost").unwrap();
    assert!(report.boot < SimNanos::from_millis(1));
    let post = deathstar::compose_post(9, "hello @world", &["pic.jpg"], 5_000);
    assert_eq!(post.mentions, vec!["world"]);
    assert_eq!(post.media.len(), 1);
}

#[test]
fn ecommerce_invariants_hold_under_load() {
    let mut store = ecommerce::Store::with_catalogue(50);
    let mut revenue = 0u64;
    for i in 0..200u32 {
        if let Ok(order) = store.purchase(i % 11, i % 50, 1 + i % 3) {
            revenue += order.total_cents;
        }
    }
    let report = store.sales_report();
    let reported: u64 = report.values().map(|(cents, _)| *cents).sum();
    assert_eq!(reported, revenue, "the report must account every cent");
    let units: u64 = report.values().map(|(_, n)| *n).sum();
    assert_eq!(
        units,
        store
            .orders()
            .iter()
            .map(|o| u64::from(o.quantity))
            .sum::<u64>()
    );
}
