//! Integration: deterministic fault injection end to end.
//!
//! Three claims the faultsim subsystem stands on:
//!
//! 1. **Zero cost when inactive** — booting with a zero-rate plan attached
//!    is byte-identical (latency and serialized span tree) to booting with
//!    no injector at all, for every engine.
//! 2. **No panic, no silent success** — under any seeded plan, every
//!    request either succeeds (counted degraded iff faults fired during
//!    it) or surfaces a typed [`SandboxError::Fault`]; nothing else.
//! 3. **Same seed, same history** — identical plans replay byte-identical
//!    fault logs, reports, and span trees.

use std::cell::RefCell;
use std::rc::Rc;

use catalyzer_suite::faultsim::{FaultInjector, FaultPlan, InjectionPoint, PointPlan};
use catalyzer_suite::platform::{PlatformError, ResiliencePolicy};
use catalyzer_suite::prelude::*;
use catalyzer_suite::sandbox::SandboxError;
use proptest::prelude::*;

fn model() -> CostModel {
    CostModel::experimental_machine()
}

fn zero_injector() -> Rc<RefCell<FaultInjector>> {
    Rc::new(RefCell::new(FaultInjector::new(FaultPlan::zero(9))))
}

/// Boots the same engine type twice — bare, and carrying a zero-rate
/// injector — and requires identical latency and serialized span tree.
fn assert_zero_plan_invisible<E: BootEngine>(mut bare: E, mut armed: E) {
    let model = model();
    let profile = AppProfile::c_hello();

    let mut ctx = BootCtx::fresh(&model);
    let baseline = bare.boot(&profile, &mut ctx).unwrap();

    let mut ctx = BootCtx::fresh(&model).with_injector(zero_injector());
    let carried = armed.boot(&profile, &mut ctx).unwrap();

    assert_eq!(
        baseline.boot_latency, carried.boot_latency,
        "{}",
        baseline.system
    );
    assert_eq!(
        serde_json::to_string(&baseline.trace).unwrap(),
        serde_json::to_string(&carried.trace).unwrap(),
        "{}: span trees diverge under a zero plan",
        baseline.system
    );
}

#[test]
fn zero_plan_is_invisible_to_every_engine() {
    assert_zero_plan_invisible(DockerEngine::new(), DockerEngine::new());
    assert_zero_plan_invisible(GvisorEngine::new(), GvisorEngine::new());
    assert_zero_plan_invisible(FirecrackerEngine::new(), FirecrackerEngine::new());
    assert_zero_plan_invisible(HyperContainerEngine::new(), HyperContainerEngine::new());
    assert_zero_plan_invisible(GvisorRestoreEngine::new(), GvisorRestoreEngine::new());
    for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
        assert_zero_plan_invisible(
            CatalyzerEngine::standalone(mode),
            CatalyzerEngine::standalone(mode),
        );
    }
}

/// Builds a plan from proptest-drawn knobs: which points fire (bitmask),
/// how often, and how poisonous the prepared-state points are.
fn drawn_plan(seed: u64, mask: u32, rate_pct: u32, poison_pct: u32) -> FaultPlan {
    let mut plan = FaultPlan::zero(seed).with_poison_ratio(f64::from(poison_pct) / 100.0);
    for (i, point) in InjectionPoint::ALL.iter().enumerate() {
        if mask & (1 << i) != 0 {
            plan = plan.with_point(*point, PointPlan::at_rate(f64::from(rate_pct) / 100.0));
        }
    }
    plan
}

fn faulted_gateway(plan: FaultPlan, policy: ResiliencePolicy) -> Gateway<CatalyzerEngine> {
    let mut gateway = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model())
        .with_policy(policy)
        .with_faults(plan);
    gateway.register(AppProfile::c_hello());
    gateway
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the plan, a request ends in exactly one of two ways: a
    /// success counted degraded iff faults fired while serving it, or a
    /// typed injected-fault error. No panic, no silent success, no
    /// stringly-typed failure.
    #[test]
    fn every_fault_is_recovered_or_typed(
        seed in any::<u64>(),
        mask in 1u32..64,
        rate_pct in 1u32..101,
        poison_pct in 0u32..101,
        requests in 3u32..7,
    ) {
        let plan = drawn_plan(seed, mask, rate_pct, poison_pct);
        let mut gateway = faulted_gateway(plan, ResiliencePolicy::full());
        for _ in 0..requests {
            let fired_before = gateway.injector().unwrap().borrow().total_fired();
            let degraded_before = gateway.metrics().counter("invoke.degraded");
            match gateway.invoke("C-hello") {
                Ok(report) => {
                    let fired = gateway.injector().unwrap().borrow().total_fired() - fired_before;
                    let degraded = gateway.metrics().counter("invoke.degraded") - degraded_before;
                    prop_assert_eq!(
                        degraded,
                        u64::from(fired > 0),
                        "a success that absorbed faults must be counted degraded"
                    );
                    prop_assert!(report.total() > SimNanos::ZERO);
                }
                Err(PlatformError::Sandbox(SandboxError::Fault(fault))) => {
                    // Typed surface: the failing point is in the fault.
                    prop_assert!(InjectionPoint::ALL.contains(&fault.point));
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!("untyped failure: {other}")));
                }
            }
        }
    }

    /// Two gateways over the same plan replay byte-identical histories:
    /// the injector's fault log, every report, and every span tree.
    #[test]
    fn same_seed_same_fault_and_span_history(
        seed in any::<u64>(),
        mask in 1u32..64,
        rate_pct in 1u32..101,
        requests in 2u32..5,
    ) {
        let plan = drawn_plan(seed, mask, rate_pct, 50);
        let run = |plan: FaultPlan| {
            let mut gateway = faulted_gateway(plan, ResiliencePolicy::full());
            let mut history = Vec::new();
            for _ in 0..requests {
                match gateway.invoke_detailed("C-hello") {
                    Ok(invocation) => history.push(format!(
                        "ok boot={} exec={} trace={}",
                        invocation.report.boot,
                        invocation.report.exec,
                        serde_json::to_string(&invocation.trace).unwrap()
                    )),
                    Err(e) => history.push(format!("err {e}")),
                }
            }
            let log = serde_json::to_string(
                &gateway.injector().unwrap().borrow().log().to_vec()
            ).unwrap();
            (history, log)
        };
        let (history_a, log_a) = run(plan.clone());
        let (history_b, log_b) = run(plan);
        prop_assert_eq!(history_a, history_b);
        prop_assert_eq!(log_a, log_b);
    }
}

/// Collects every span named `name`, depth-first.
fn spans_named<'a>(span: &'a Span, name: &str, out: &mut Vec<&'a Span>) {
    if span.name == name {
        out.push(span);
    }
    for child in &span.children {
        spans_named(child, name, out);
    }
}

/// Point-scoped quarantine: a zygote poison absorbed on the warm fallback
/// rung drains the pooled zygotes only — it must not re-charge the template
/// rebuild the fork rung's own quarantine already paid for.
#[test]
fn fallback_rung_poison_does_not_recharge_the_template_rebuild() {
    // Both prepared-state points poison deterministically; a zero retry
    // budget walks the ladder with one quarantine per poisoned rung:
    // sfork (template rebuild, charged) → warm (zygote drain, free) →
    // cold (no prepared state, clean).
    let plan = FaultPlan::zero(0xD0B1)
        .with_poison_ratio(1.0)
        .with_point(InjectionPoint::SforkMerge, PointPlan::at_rate(1.0))
        .with_point(InjectionPoint::ZygoteSpecialize, PointPlan::at_rate(1.0));
    let mut gateway = faulted_gateway(
        plan,
        ResiliencePolicy {
            max_retries: 0,
            backoff_base: SimNanos::ZERO,
            ..ResiliencePolicy::full()
        },
    );

    let invocation = gateway.invoke_detailed("C-hello").unwrap();
    assert_eq!(gateway.metrics().counter("quarantine.count"), 2);
    assert_eq!(gateway.metrics().counter("fallback.warm"), 1);
    assert_eq!(gateway.metrics().counter("fallback.cold"), 1);

    let mut quarantines = Vec::new();
    spans_named(&invocation.trace, "quarantine", &mut quarantines);
    assert_eq!(quarantines.len(), 2, "one quarantine per poisoned rung");
    assert!(
        quarantines[0].duration() > SimNanos::ZERO,
        "the sfork-merge poison pays the template rebuild inline"
    );
    assert_eq!(
        quarantines[1].duration(),
        SimNanos::ZERO,
        "the warm rung's zygote poison must not re-charge a template rebuild"
    );
}

/// The fixed-seed smoke the acceptance criteria name: a nonzero plan under
/// the full ladder keeps availability at 100% while the degraded counters
/// and recovery histogram are nonzero and exactly reproducible.
#[test]
fn fixed_seed_full_ladder_keeps_availability() {
    let run = || {
        let plan = FaultPlan::uniform(0xFA17, 0.2);
        let mut gateway = faulted_gateway(
            plan,
            ResiliencePolicy {
                max_retries: 6,
                ..ResiliencePolicy::full()
            },
        );
        for _ in 0..32 {
            gateway
                .invoke("C-hello")
                .expect("the ladder answers everything");
        }
        let metrics = gateway.metrics();
        (
            metrics.counter("invoke.degraded"),
            metrics.counter("invoke.retries"),
            metrics
                .histogram("invoke.recovery")
                .map(|h| (h.count(), h.p99()))
                .unwrap_or((0, None)),
        )
    };
    let (degraded, retries, (recoveries, recovery_p99)) = run();
    assert!(degraded > 0, "a 20% fault rate must degrade some requests");
    assert!(retries > 0);
    assert_eq!(recoveries, degraded, "every degraded success pays recovery");
    assert!(recovery_p99.unwrap() > SimNanos::ZERO);
    assert_eq!(run(), (degraded, retries, (recoveries, recovery_p99)));
}
