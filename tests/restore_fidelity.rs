//! Integration: every restore path reproduces the checkpointed state
//! faithfully — kernel object graphs, heap contents, I/O connections —
//! across the classic format, the flat func-image, and full engine boots.

use std::sync::Arc;

use catalyzer_suite::imagefmt::{classic, flat};
use catalyzer_suite::memsim::MappedImage;
use catalyzer_suite::prelude::*;
use catalyzer_suite::runtimes::heap_page_byte;
use catalyzer_suite::simtime::SimClock;

fn model() -> CostModel {
    CostModel::experimental_machine()
}

#[test]
fn classic_and_flat_restore_identical_graphs_from_a_real_program() {
    let model = model();
    let profile = AppProfile::python_hello();
    let offline = SimClock::new();
    let mut program = WrappedProgram::start(&profile, &offline, &model).unwrap();
    program.run_to_entry_point(&offline, &model).unwrap();
    let src = program.checkpoint_source(&offline, &model).unwrap();

    let classic_img = classic::write(&src, &offline, &model);
    let classic_back = classic::read(&classic_img, &offline, &model).unwrap();

    let flat_img = MappedImage::new("fidelity", flat::write(&src, &offline, &model));
    let parsed = flat::FlatImage::parse(&flat_img, &offline, &model).unwrap();
    let flat_back = parsed.restore_metadata(&offline, &model).unwrap();

    assert_eq!(classic_back.objects, src.objects);
    assert_eq!(flat_back, src.objects);
    assert_eq!(classic_back.io_conns, src.io_conns);
    assert_eq!(
        parsed.read_io_manifest(&offline, &model).unwrap(),
        src.io_conns
    );
    assert_eq!(classic_back.app_pages.len(), src.app_pages.len());
    assert_eq!(parsed.app_page_count() as usize, src.app_pages.len());
}

#[test]
fn every_boot_path_serves_the_same_initialized_heap() {
    let model = model();
    let profile = AppProfile::c_nginx();
    let heap = profile.heap_range();
    let probes: Vec<_> = [heap.start, heap.start + heap.len() / 2, heap.end - 1].to_vec();

    let check = |mut outcome: BootOutcome, label: &str| {
        let clock = SimClock::new();
        for &vpn in &probes {
            let mut buf = [0u8; 4];
            outcome
                .program
                .space
                .read(vpn, 0, &mut buf, &clock, &model)
                .unwrap_or_else(|e| panic!("{label}: read {vpn:#x}: {e}"));
            let expect = heap_page_byte(vpn);
            assert_eq!(buf, [expect; 4], "{label}: heap mismatch at {vpn:#x}");
        }
    };

    let mut gvisor = GvisorEngine::new();
    check(
        gvisor.boot(&profile, &mut BootCtx::fresh(&model)).unwrap(),
        "gVisor",
    );
    let mut restore = GvisorRestoreEngine::new();
    check(
        restore.boot(&profile, &mut BootCtx::fresh(&model)).unwrap(),
        "gVisor-restore",
    );

    let mut cat = Catalyzer::new();
    cat.ensure_template(&profile, &model).unwrap();
    for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
        let outcome = cat
            .boot(mode, &profile, &mut BootCtx::fresh(&model))
            .unwrap();
        check(outcome, mode.label());
    }
}

#[test]
fn catalyzer_restored_kernel_matches_checkpointed_graph() {
    let model = model();
    let profile = AppProfile::ruby_hello();

    // Reference: a directly initialized program.
    let offline = SimClock::new();
    let mut reference = WrappedProgram::start(&profile, &offline, &model).unwrap();
    reference.run_to_entry_point(&offline, &model).unwrap();

    let mut cat = Catalyzer::new();
    let restored = cat
        .boot(BootMode::Cold, &profile, &mut BootCtx::fresh(&model))
        .unwrap();

    let a = &reference.kernel;
    let b = &restored.program.kernel;
    assert_eq!(a.object_count(), b.object_count());
    assert_eq!(a.io_object_count(), b.io_object_count());
    assert_eq!(a.tasks.tasks().len(), b.tasks.tasks().len());
    assert_eq!(a.tasks.thread_count(), b.tasks.thread_count());
    assert_eq!(a.timers.len(), b.timers.len());
    assert_eq!(a.net.len(), b.net.len());
    assert_eq!(a.vfs.open_fds(), b.vfs.open_fds());
    b.validate()
        .expect("restored kernel must be self-consistent");
}

#[test]
fn lazy_io_reconnects_exactly_what_the_handler_uses() {
    let model = model();
    let profile = AppProfile::python_hello();
    let mut cat = Catalyzer::new();
    let mut outcome = cat
        .boot(BootMode::Cold, &profile, &mut BootCtx::fresh(&model))
        .unwrap();

    let before = outcome.program.kernel.vfs.reconnects();
    let clock = SimClock::new();
    outcome.program.invoke_handler(&clock, &model).unwrap();
    let after = outcome.program.kernel.vfs.reconnects();
    // The handler re-opens its binary and log through fresh fds; on-demand
    // reconnection only fires for checkpointed descriptors it actually uses.
    let open_fds = outcome.program.kernel.vfs.open_fds() as u64;
    assert!(after >= before, "reconnect counter went backwards");
    assert!(
        after - before <= open_fds,
        "reconnected more than exists: {} of {}",
        after - before,
        open_fds
    );
}

#[test]
fn corrupted_func_image_never_boots() {
    let model = model();
    let profile = AppProfile::c_hello();
    // Compile a valid image, then corrupt the metadata and re-parse.
    let offline = SimClock::new();
    let mut program = WrappedProgram::start(&profile, &offline, &model).unwrap();
    program.run_to_entry_point(&offline, &model).unwrap();
    let src = program.checkpoint_source(&offline, &model).unwrap();
    let mut bytes = flat::write(&src, &offline, &model).to_vec();
    bytes[4096 + 64] ^= 0x40; // inside the metadata sections
    let mapped = MappedImage::new("corrupt", catalyzer_suite::imagefmt::Bytes::from(bytes));
    match flat::FlatImage::parse(&mapped, &offline, &model) {
        Err(_) => {}
        Ok(parsed) => {
            assert!(parsed.restore_metadata(&offline, &model).is_err());
        }
    }
}

#[test]
fn sfork_children_share_fs_server_but_not_writes() {
    let model = model();
    let profile = AppProfile::c_hello();
    let mut cat = Catalyzer::new();
    cat.ensure_template(&profile, &model).unwrap();

    let clock = SimClock::new();
    let mut a = cat
        .boot(BootMode::Fork, &profile, &mut BootCtx::new(&clock, &model))
        .unwrap();
    let b = cat
        .boot(BootMode::Fork, &profile, &mut BootCtx::new(&clock, &model))
        .unwrap();
    assert!(Arc::ptr_eq(
        a.program.kernel.vfs.server(),
        b.program.kernel.vfs.server()
    ));

    // Divergent overlay writes stay private.
    let fd_a = a
        .program
        .kernel
        .vfs
        .create("/tmp/who", &clock, &model)
        .unwrap();
    a.program
        .kernel
        .vfs
        .write(fd_a, b"sandbox-a", &clock, &model)
        .unwrap();
    assert!(
        b.program.kernel.vfs.stat("/tmp/who").is_err(),
        "overlay leaked across sfork"
    );
}
