//! Integration: every boot engine boots every class of application, serves a
//! request, and the paper's latency ordering holds across systems.

use catalyzer_suite::prelude::*;

fn model() -> CostModel {
    CostModel::experimental_machine()
}

fn boot_and_serve(engine: &mut dyn BootEngine, profile: &AppProfile) -> (SimNanos, SimNanos) {
    let model = model();
    let mut ctx = BootCtx::fresh(&model);
    let mut outcome = engine.boot(profile, &mut ctx).expect("boot");
    let boot = ctx.now();
    let exec = outcome
        .program
        .invoke_handler(ctx.clock(), &model)
        .expect("handler");
    assert!(
        exec.pages_touched > 0,
        "{}: handler touched nothing",
        outcome.system
    );
    (boot, ctx.now() - boot)
}

#[test]
fn every_engine_boots_every_runtime_class() {
    let apps = [
        AppProfile::c_hello(),
        AppProfile::python_hello(),
        AppProfile::java_hello(),
    ];
    let shared = std::rc::Rc::new(std::cell::RefCell::new(Catalyzer::new()));
    let mut engines: Vec<Box<dyn BootEngine>> = vec![
        Box::new(DockerEngine::new()),
        Box::new(HyperContainerEngine::new()),
        Box::new(FirecrackerEngine::new()),
        Box::new(GvisorEngine::new()),
        Box::new(GvisorRestoreEngine::new()),
        Box::new(CatalyzerEngine::new(shared.clone(), BootMode::Cold)),
        Box::new(CatalyzerEngine::new(shared.clone(), BootMode::Warm)),
        Box::new(CatalyzerEngine::new(shared, BootMode::Fork)),
    ];
    for engine in &mut engines {
        for app in &apps {
            let (boot, exec) = boot_and_serve(engine.as_mut(), app);
            assert!(boot > SimNanos::ZERO);
            assert!(exec > SimNanos::ZERO);
        }
    }
}

#[test]
fn latency_ordering_matches_the_paper() {
    // Fig. 11's vertical ordering for any one app:
    // sfork < zygote < restore < gVisor-restore < gVisor < Hyper.
    let profile = AppProfile::python_django();
    let model = model();

    let mut cat = Catalyzer::new();
    cat.ensure_template(&profile, &model).unwrap();
    let latency = |mode: BootMode, cat: &mut Catalyzer| {
        let mut ctx = BootCtx::fresh(&model);
        cat.boot(mode, &profile, &mut ctx).unwrap();
        ctx.now()
    };
    let cold = latency(BootMode::Cold, &mut cat);
    let warm = latency(BootMode::Warm, &mut cat);
    let fork = latency(BootMode::Fork, &mut cat);

    let (gv_restore, _) = {
        let mut ctx = BootCtx::fresh(&model);
        let mut e = GvisorRestoreEngine::new();
        let o = e.boot(&profile, &mut ctx).unwrap();
        (ctx.now(), o)
    };
    let (gvisor, _) = {
        let mut ctx = BootCtx::fresh(&model);
        let mut e = GvisorEngine::new();
        let o = e.boot(&profile, &mut ctx).unwrap();
        (ctx.now(), o)
    };
    let (hyper, _) = {
        let mut ctx = BootCtx::fresh(&model);
        let mut e = HyperContainerEngine::new();
        let o = e.boot(&profile, &mut ctx).unwrap();
        (ctx.now(), o)
    };

    assert!(fork < warm, "fork {fork} !< warm {warm}");
    assert!(warm < cold, "warm {warm} !< cold {cold}");
    assert!(
        cold < gv_restore,
        "cold {cold} !< gvisor-restore {gv_restore}"
    );
    assert!(
        gv_restore < gvisor,
        "gvisor-restore {gv_restore} !< gvisor {gvisor}"
    );
    assert!(gvisor < hyper, "gvisor {gvisor} !< hyper {hyper}");
    // Headline: orders of magnitude between fork boot and gVisor.
    assert!(gvisor.as_nanos() / fork.as_nanos() > 100);
}

#[test]
fn sfork_is_sub_millisecond_for_c_and_under_2ms_for_specjbb() {
    let model = model();
    let mut cat = Catalyzer::new();
    for (profile, limit_ms) in [
        (AppProfile::c_hello(), 1.0),
        (AppProfile::java_specjbb(), 2.0),
    ] {
        cat.ensure_template(&profile, &model).unwrap();
        let mut ctx = BootCtx::fresh(&model);
        cat.boot(BootMode::Fork, &profile, &mut ctx).unwrap();
        let ms = ctx.now().as_millis_f64();
        assert!(ms < limit_ms, "{}: {ms} ms", profile.name);
    }
}

#[test]
fn repeated_boots_are_deterministic() {
    let model = model();
    let profile = AppProfile::c_nginx();
    let mut cat = Catalyzer::new();
    cat.ensure_template(&profile, &model).unwrap();
    let mut first = None;
    for _ in 0..5 {
        let mut ctx = BootCtx::fresh(&model);
        cat.boot(BootMode::Fork, &profile, &mut ctx).unwrap();
        match first {
            None => first = Some(ctx.now()),
            Some(expect) => assert_eq!(ctx.now(), expect, "fork boot latency drifted"),
        }
    }
}

#[test]
fn warm_boot_follows_cold_boot_within_the_papers_gap() {
    let model = model();
    for profile in [AppProfile::c_hello(), AppProfile::java_hello()] {
        let mut cat = Catalyzer::new();
        let cold = {
            let mut ctx = BootCtx::fresh(&model);
            cat.boot(BootMode::Cold, &profile, &mut ctx).unwrap();
            ctx.now()
        };
        let warm = {
            let mut ctx = BootCtx::fresh(&model);
            cat.boot(BootMode::Warm, &profile, &mut ctx).unwrap();
            ctx.now()
        };
        let gap = (cold - warm).as_millis_f64();
        // §6.2: "Catalyzer-restore usually needs extra 30ms over
        // Catalyzer-Zygote" — accept a 15–45 ms band.
        assert!(
            (15.0..45.0).contains(&gap),
            "{}: gap {gap} ms",
            profile.name
        );
    }
}
