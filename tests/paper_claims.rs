//! Integration: the paper's headline quantitative claims hold in the
//! reproduction (shape and factor, not exact testbed numbers).

use catalyzer_suite::platform::Gateway;
use catalyzer_suite::prelude::*;
use catalyzer_suite::simtime::stats::Cdf;
use catalyzer_suite::workloads::{catalogue, deathstar::Service, ecommerce::EcommerceOp};

fn model() -> CostModel {
    CostModel::experimental_machine()
}

/// Abstract: "reduces startup latency by orders of magnitude, achieves <1ms
/// latency in the best case".
#[test]
fn headline_sub_millisecond_best_case() {
    let model = model();
    let profile = AppProfile::c_hello();
    let mut cat = Catalyzer::new();
    cat.ensure_template(&profile, &model).unwrap();
    let mut ctx = BootCtx::fresh(&model);
    cat.boot(BootMode::Fork, &profile, &mut ctx).unwrap();
    assert!(ctx.now() < SimNanos::from_millis(1), "{}", ctx.now());

    let gv = {
        let mut gctx = BootCtx::fresh(&model);
        GvisorEngine::new().boot(&profile, &mut gctx).unwrap();
        gctx.now()
    };
    let speedup = gv.as_nanos() as f64 / ctx.now().as_nanos() as f64;
    assert!(speedup > 100.0, "only {speedup}x over gVisor");
}

/// Abstract: "<2ms to boot Java SPECjbb, 1000x speedup over baseline gVisor"
/// — our gVisor baseline boots SPECjbb in ~2 s, so 1000x means ~2 ms.
#[test]
fn specjbb_three_orders_of_magnitude() {
    let model = model();
    let profile = AppProfile::java_specjbb();
    let gv = {
        let mut ctx = BootCtx::fresh(&model);
        GvisorEngine::new().boot(&profile, &mut ctx).unwrap();
        ctx.now()
    };
    let mut cat = Catalyzer::new();
    cat.ensure_template(&profile, &model).unwrap();
    let fork = {
        let mut ctx = BootCtx::fresh(&model);
        cat.boot(BootMode::Fork, &profile, &mut ctx).unwrap();
        ctx.now()
    };
    let speedup = gv.as_nanos() as f64 / fork.as_nanos() as f64;
    assert!(speedup > 900.0, "only {speedup}x");
    assert!(fork < SimNanos::from_millis(2));
}

/// Fig. 1: under gVisor, 12 of 14 functions spend <30 % of latency executing
/// and none exceeds ~65 %; under Catalyzer the ratios flip.
#[test]
fn fig1_execution_ratio_distribution() {
    let model = model();
    let fns = catalogue::fig1_functions();
    assert_eq!(fns.len(), 14);

    let mut gv = Gateway::new(GvisorEngine::new(), model.clone());
    let mut cat = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model.clone());
    for p in &fns {
        gv.register(p.clone());
        cat.register(p.clone());
    }
    let mut gv_ratios = Vec::new();
    let mut cat_ratios = Vec::new();
    for p in &fns {
        gv_ratios.push(gv.invoke(&p.name).unwrap().execution_ratio());
        cat_ratios.push(cat.invoke(&p.name).unwrap().execution_ratio());
    }
    let gv_cdf = Cdf::from_samples(gv_ratios.clone());
    let under_30 = gv_ratios.iter().filter(|&&r| r < 0.30).count();
    assert!(
        under_30 >= 11,
        "only {under_30}/14 gVisor functions under 30%"
    );
    assert!(
        gv_cdf.max().unwrap() < 0.70,
        "max gVisor ratio {}",
        gv_cdf.max().unwrap()
    );
    let cat_over_70 = cat_ratios.iter().filter(|&&r| r > 0.70).count();
    assert!(
        cat_over_70 >= 10,
        "only {cat_over_70}/14 Catalyzer functions over 70%"
    );
}

/// Fig. 13a: fork boot reduces DeathStar end-to-end latency 35–67x.
#[test]
fn deathstar_end_to_end_speedup_band() {
    let model = model();
    let mut gv = Gateway::new(GvisorEngine::new(), model.clone());
    let mut fork = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model.clone());
    for s in Service::ALL {
        gv.register(s.profile());
        fork.register(s.profile());
    }
    for s in Service::ALL {
        let name = s.profile().name;
        let a = gv.invoke(&name).unwrap().total();
        let b = fork.invoke(&name).unwrap().total();
        let speedup = a.as_nanos() as f64 / b.as_nanos() as f64;
        assert!(
            (25.0..160.0).contains(&speedup),
            "{name}: e2e speedup {speedup}x outside the paper's band"
        );
    }
}

/// Fig. 13c: boot is 34–88 % of e2e under gVisor, <5 % under Catalyzer.
#[test]
fn ecommerce_boot_share() {
    let model = CostModel::server_machine();
    let mut gv = Gateway::new(GvisorEngine::new(), model.clone());
    let mut fork = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model.clone());
    for op in EcommerceOp::ALL {
        gv.register(op.profile());
        fork.register(op.profile());
    }
    for op in EcommerceOp::ALL {
        let name = op.profile().name;
        let g = gv.invoke(&name).unwrap();
        let share = g.boot.as_nanos() as f64 / g.total().as_nanos() as f64;
        assert!(
            (0.30..0.92).contains(&share),
            "{name}: gVisor boot share {share}"
        );
        let c = fork.invoke(&name).unwrap();
        let share = c.boot.as_nanos() as f64 / c.total().as_nanos() as f64;
        assert!(share < 0.05, "{name}: Catalyzer boot share {share}");
    }
}

/// §6.2 zygote warm-boot anchors: C 5 / Java 14 / Python 9 / Ruby 12 /
/// Node 9 ms, within ±40 %.
#[test]
fn zygote_warm_boot_anchors() {
    let model = model();
    for (profile, expect) in [
        (AppProfile::c_hello(), 5.0),
        (AppProfile::java_hello(), 14.0),
        (AppProfile::python_hello(), 9.0),
        (AppProfile::ruby_hello(), 12.0),
        (AppProfile::node_hello(), 9.0),
    ] {
        let mut engine = CatalyzerEngine::standalone(BootMode::Warm);
        let mut ctx = BootCtx::fresh(&model);
        engine.boot(&profile, &mut ctx).unwrap();
        let ms = ctx.now().as_millis_f64();
        assert!(
            (expect * 0.6..expect * 1.4).contains(&ms),
            "{}: {ms} ms (paper {expect} ms)",
            profile.name
        );
    }
}

/// Fig. 15: with hundreds of running instances, Catalyzer still boots in
/// <10 ms while gVisor-restore sits an order of magnitude above.
#[test]
fn scalability_under_concurrency() {
    let model = model();
    let profile = Service::Text.profile();
    let points = [0u32, 60, 120];

    let mut cat = CatalyzerEngine::standalone(BootMode::Fork);
    let cat_pts =
        catalyzer_suite::platform::scaling::sweep(&mut cat, &profile, &points, &model, 5).unwrap();
    for p in &cat_pts {
        assert!(
            p.startup < SimNanos::from_millis(10),
            "{}@{}",
            p.startup,
            p.running
        );
    }

    let mut rst = GvisorRestoreEngine::new();
    let rst_pts =
        catalyzer_suite::platform::scaling::sweep(&mut rst, &profile, &points, &model, 5).unwrap();
    for (c, r) in cat_pts.iter().zip(&rst_pts) {
        assert!(r.startup.as_nanos() > c.startup.as_nanos() * 10);
    }
}
