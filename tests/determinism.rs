//! Integration: the whole simulation is deterministic — identical runs
//! produce identical virtual-time results, which is what makes the figure
//! regeneration trustworthy and diffable.

use catalyzer_suite::prelude::*;
use catalyzer_suite::workloads::generator::{trace, Popularity};

fn model() -> CostModel {
    CostModel::experimental_machine()
}

fn full_boot_fingerprint() -> Vec<(String, u64)> {
    let model = model();
    let mut out = Vec::new();
    for profile in [AppProfile::c_hello(), AppProfile::python_hello()] {
        let mut cat = Catalyzer::new();
        cat.ensure_template(&profile, &model).unwrap();
        for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
            let clock = SimClock::new();
            let mut boot = cat.boot(mode, &profile, &clock, &model).unwrap();
            boot.program.invoke_handler(&clock, &model).unwrap();
            out.push((
                format!("{}/{}", profile.name, mode.label()),
                clock.now().as_nanos(),
            ));
        }
    }
    out
}

#[test]
fn end_to_end_pipeline_is_bit_for_bit_repeatable() {
    assert_eq!(full_boot_fingerprint(), full_boot_fingerprint());
}

#[test]
fn baseline_engines_are_repeatable_too() {
    let model = model();
    let run = || {
        let mut out = Vec::new();
        let mut gv = GvisorEngine::new();
        let mut rs = GvisorRestoreEngine::new();
        for profile in [AppProfile::c_nginx(), AppProfile::ruby_hello()] {
            for engine in [&mut gv as &mut dyn BootEngine, &mut rs] {
                let clock = SimClock::new();
                engine.boot(&profile, &clock, &model).unwrap();
                out.push(clock.now().as_nanos());
            }
        }
        out
    };
    assert_eq!(run(), run());
}

#[test]
fn traces_and_jitter_are_seed_stable() {
    let a = trace(8, 256, 100.0, Popularity::Zipf { exponent: 1.0 }, 1234);
    let b = trace(8, 256, 100.0, Popularity::Zipf { exponent: 1.0 }, 1234);
    assert_eq!(a, b);

    use catalyzer_suite::simtime::jitter::Jitter;
    let mut j1 = Jitter::seeded(77);
    let mut j2 = Jitter::seeded(77);
    for _ in 0..128 {
        assert_eq!(
            j1.lognormal_factor(0.2).to_bits(),
            j2.lognormal_factor(0.2).to_bits()
        );
    }
}

#[test]
fn offline_work_is_deterministic_as_well() {
    let model = model();
    let offline = |_: u32| {
        let mut cat = Catalyzer::new();
        cat.prewarm_image(&AppProfile::node_hello(), &model)
            .unwrap();
        cat.offline_time().as_nanos()
    };
    assert_eq!(offline(0), offline(1));
}
