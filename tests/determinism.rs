//! Integration: the whole simulation is deterministic — identical runs
//! produce identical virtual-time results, which is what makes the figure
//! regeneration trustworthy and diffable.

use catalyzer_suite::prelude::*;
use catalyzer_suite::workloads::generator::{trace, Popularity};

fn model() -> CostModel {
    CostModel::experimental_machine()
}

fn full_boot_fingerprint() -> Vec<(String, u64)> {
    let model = model();
    let mut out = Vec::new();
    for profile in [AppProfile::c_hello(), AppProfile::python_hello()] {
        let mut cat = Catalyzer::new();
        cat.ensure_template(&profile, &model).unwrap();
        for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
            let mut ctx = BootCtx::fresh(&model);
            let mut boot = cat.boot(mode, &profile, &mut ctx).unwrap();
            boot.program.invoke_handler(ctx.clock(), &model).unwrap();
            out.push((
                format!("{}/{}", profile.name, mode.label()),
                ctx.now().as_nanos(),
            ));
        }
    }
    out
}

#[test]
fn end_to_end_pipeline_is_bit_for_bit_repeatable() {
    assert_eq!(full_boot_fingerprint(), full_boot_fingerprint());
}

#[test]
fn baseline_engines_are_repeatable_too() {
    let model = model();
    let run = || {
        let mut out = Vec::new();
        let mut gv = GvisorEngine::new();
        let mut rs = GvisorRestoreEngine::new();
        for profile in [AppProfile::c_nginx(), AppProfile::ruby_hello()] {
            for engine in [&mut gv as &mut dyn BootEngine, &mut rs] {
                let mut ctx = BootCtx::fresh(&model);
                engine.boot(&profile, &mut ctx).unwrap();
                out.push(ctx.now().as_nanos());
            }
        }
        out
    };
    assert_eq!(run(), run());
}

#[test]
fn traces_and_jitter_are_seed_stable() {
    let a = trace(8, 256, 100.0, Popularity::Zipf { exponent: 1.0 }, 1234);
    let b = trace(8, 256, 100.0, Popularity::Zipf { exponent: 1.0 }, 1234);
    assert_eq!(a, b);

    use catalyzer_suite::simtime::jitter::Jitter;
    let mut j1 = Jitter::seeded(77);
    let mut j2 = Jitter::seeded(77);
    for _ in 0..128 {
        assert_eq!(
            j1.lognormal_factor(0.2).to_bits(),
            j2.lognormal_factor(0.2).to_bits()
        );
    }
}

/// One full run of every Fig. 11 engine over one profile, returning the
/// serialized span tree of each boot. Identical inputs must yield
/// byte-identical traces — the observability layer runs on virtual time
/// only, so two runs can differ in nothing.
fn serialized_traces() -> Vec<String> {
    let model = model();
    let profile = AppProfile::python_hello();
    let mut traces = Vec::new();

    let mut baselines: Vec<Box<dyn BootEngine>> = vec![
        Box::new(GvisorEngine::new()),
        Box::new(GvisorRestoreEngine::new()),
        Box::new(FirecrackerEngine::new()),
    ];
    for engine in &mut baselines {
        let mut ctx = BootCtx::fresh(&model);
        let outcome = engine.boot(&profile, &mut ctx).unwrap();
        traces.push(serde_json::to_string(&outcome.trace).unwrap());
    }

    let mut cat = Catalyzer::new();
    cat.ensure_template(&profile, &model).unwrap();
    for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
        let mut ctx = BootCtx::fresh(&model);
        let outcome = cat.boot(mode, &profile, &mut ctx).unwrap();
        traces.push(serde_json::to_string(&outcome.trace).unwrap());
    }
    traces
}

#[test]
fn span_trees_are_byte_identical_across_runs() {
    let first = serialized_traces();
    let second = serialized_traces();
    assert_eq!(first, second, "serialized span trees drifted between runs");
    for text in &first {
        let span: Span = serde_json::from_str(text).unwrap();
        span.validate_nesting().unwrap();
        assert_eq!(span.name, SPAN_BOOT);
    }
}

#[test]
fn offline_work_is_deterministic_as_well() {
    let model = model();
    let offline = |_: u32| {
        let mut cat = Catalyzer::new();
        cat.prewarm_image(&AppProfile::node_hello(), &model)
            .unwrap();
        cat.offline_time().as_nanos()
    };
    assert_eq!(offline(0), offline(1));
}
