//! Integration: the whole simulation is deterministic — identical runs
//! produce identical virtual-time results, which is what makes the figure
//! regeneration trustworthy and diffable.

use catalyzer_suite::prelude::*;
use catalyzer_suite::workloads::generator::{trace, Popularity};

fn model() -> CostModel {
    CostModel::experimental_machine()
}

fn full_boot_fingerprint() -> Vec<(String, u64)> {
    let model = model();
    let mut out = Vec::new();
    for profile in [AppProfile::c_hello(), AppProfile::python_hello()] {
        let mut cat = Catalyzer::new();
        cat.ensure_template(&profile, &model).unwrap();
        for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
            let mut ctx = BootCtx::fresh(&model);
            let mut boot = cat.boot(mode, &profile, &mut ctx).unwrap();
            boot.program.invoke_handler(ctx.clock(), &model).unwrap();
            out.push((
                format!("{}/{}", profile.name, mode.label()),
                ctx.now().as_nanos(),
            ));
        }
    }
    out
}

#[test]
fn end_to_end_pipeline_is_bit_for_bit_repeatable() {
    assert_eq!(full_boot_fingerprint(), full_boot_fingerprint());
}

#[test]
fn baseline_engines_are_repeatable_too() {
    let model = model();
    let run = || {
        let mut out = Vec::new();
        let mut gv = GvisorEngine::new();
        let mut rs = GvisorRestoreEngine::new();
        for profile in [AppProfile::c_nginx(), AppProfile::ruby_hello()] {
            for engine in [&mut gv as &mut dyn BootEngine, &mut rs] {
                let mut ctx = BootCtx::fresh(&model);
                engine.boot(&profile, &mut ctx).unwrap();
                out.push(ctx.now().as_nanos());
            }
        }
        out
    };
    assert_eq!(run(), run());
}

#[test]
fn traces_and_jitter_are_seed_stable() {
    let a = trace(8, 256, 100.0, Popularity::Zipf { exponent: 1.0 }, 1234);
    let b = trace(8, 256, 100.0, Popularity::Zipf { exponent: 1.0 }, 1234);
    assert_eq!(a, b);

    use catalyzer_suite::simtime::jitter::Jitter;
    let mut j1 = Jitter::seeded(77);
    let mut j2 = Jitter::seeded(77);
    for _ in 0..128 {
        assert_eq!(
            j1.lognormal_factor(0.2).to_bits(),
            j2.lognormal_factor(0.2).to_bits()
        );
    }
}

/// One full run of every Fig. 11 engine over one profile, returning the
/// serialized span tree of each boot. Identical inputs must yield
/// byte-identical traces — the observability layer runs on virtual time
/// only, so two runs can differ in nothing.
fn serialized_traces() -> Vec<String> {
    let model = model();
    let profile = AppProfile::python_hello();
    let mut traces = Vec::new();

    let mut baselines: Vec<Box<dyn BootEngine>> = vec![
        Box::new(GvisorEngine::new()),
        Box::new(GvisorRestoreEngine::new()),
        Box::new(FirecrackerEngine::new()),
    ];
    for engine in &mut baselines {
        let mut ctx = BootCtx::fresh(&model);
        let outcome = engine.boot(&profile, &mut ctx).unwrap();
        traces.push(serde_json::to_string(&outcome.trace).unwrap());
    }

    let mut cat = Catalyzer::new();
    cat.ensure_template(&profile, &model).unwrap();
    for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
        let mut ctx = BootCtx::fresh(&model);
        let outcome = cat.boot(mode, &profile, &mut ctx).unwrap();
        traces.push(serde_json::to_string(&outcome.trace).unwrap());
    }
    traces
}

#[test]
fn span_trees_are_byte_identical_across_runs() {
    let first = serialized_traces();
    let second = serialized_traces();
    assert_eq!(first, second, "serialized span trees drifted between runs");
    for text in &first {
        let span: Span = serde_json::from_str(text).unwrap();
        span.validate_nesting().unwrap();
        assert_eq!(span.name, SPAN_BOOT);
    }
}

/// The fleet simulation owns all of its state: no globals, no wall clock,
/// no ambient entropy — that is what the catalint hermeticity certificate
/// pins statically. This is the dynamic counterpart: the same chaos run
/// executed on several OS threads, spawned in different orders across
/// rounds, must serialize to byte-identical `ChaosOutcome` JSON. Any
/// drift means hidden shared state the static passes missed.
#[test]
fn chaos_outcome_is_identical_across_thread_orderings() {
    use catalyzer_suite::faultsim::NodePlan;
    use catalyzer_suite::platform::cluster::{ChaosPolicy, ClusterConfig, ClusterSim};
    use catalyzer_suite::platform::simulate::TraceRequest;

    let digest = || {
        let plan = NodePlan::quiet(3).with_crash(0, SimNanos::from_millis(2));
        let trace: Vec<TraceRequest> = (0..200u64)
            .map(|i| TraceRequest {
                arrival: SimNanos::from_micros(i * 20),
                function: 0,
            })
            .collect();
        let outcome = ClusterSim::new(vec![AppProfile::c_hello()], ClusterConfig::new(3, 1))
            .with_model(model())
            .with_node_capacity(50)
            .with_chaos(plan, ChaosPolicy::full())
            .run_chaos(&trace)
            .unwrap();
        serde_json::to_string(&outcome).unwrap()
    };

    let round = |order: &[usize]| -> Vec<String> {
        let mut tagged: Vec<(usize, String)> = std::thread::scope(|s| {
            let handles: Vec<_> = order
                .iter()
                .map(|&id| s.spawn(move || (id, digest())))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("chaos worker panicked"))
                .collect()
        });
        tagged.sort_by_key(|(id, _)| *id);
        tagged.into_iter().map(|(_, d)| d).collect()
    };

    let forward = round(&[0, 1, 2, 3]);
    let reversed = round(&[3, 2, 1, 0]);
    assert_eq!(
        forward, reversed,
        "spawn order leaked into the chaos outcome"
    );
    assert!(
        forward.windows(2).all(|w| w[0] == w[1]),
        "two workers in the same round disagreed"
    );
}

#[test]
fn offline_work_is_deterministic_as_well() {
    let model = model();
    let offline = |_: u32| {
        let mut cat = Catalyzer::new();
        cat.prewarm_image(&AppProfile::node_hello(), &model)
            .unwrap();
        cat.offline_time().as_nanos()
    };
    assert_eq!(offline(0), offline(1));
}
