//! Integration: the cluster subsystem end to end.
//!
//! Three claims the `platform::cluster` layer stands on:
//!
//! 1. **Single-node transparency** — a one-node cluster is the plain
//!    `Gateway<CatalyzerEngine>` with a scheduler in front: same span
//!    trees, same latency split, same gateway metrics, byte for byte.
//! 2. **Same seed, same history** — identical configurations replay
//!    byte-identical routing histories, metrics, and (open-loop) route
//!    hashes and fault counters, whatever the shape, policy, or plan.
//! 3. **Remote sfork degrades, never panics** — a faulted template
//!    transfer walks down the ladder (remote → warm → cold) or surfaces a
//!    typed error; open-loop, every request is completed or shed, none
//!    are lost.

use catalyzer_suite::faultsim::{FaultPlan, InjectionPoint, NodePlan, PointPlan};
use catalyzer_suite::platform::cluster::{
    ChaosPolicy, Cluster, ClusterConfig, ClusterSim, RoutingPolicy,
};
use catalyzer_suite::platform::simulate::TraceRequest;
use catalyzer_suite::platform::{AdmissionPolicy, PlatformError, ResiliencePolicy};
use catalyzer_suite::prelude::*;
use catalyzer_suite::sandbox::SandboxError;
use proptest::prelude::*;

fn model() -> CostModel {
    CostModel::experimental_machine()
}

/// The request sequence the parity tests replay: both C profiles,
/// interleaved, with the first function pre-warmed.
const PARITY_CALLS: usize = 24;

fn parity_functions() -> Vec<&'static str> {
    (0..PARITY_CALLS)
        .map(|i| if i % 2 == 0 { "C-hello" } else { "C-Nginx" })
        .collect()
}

#[test]
fn single_node_cluster_is_byte_identical_to_the_plain_gateway() {
    let functions = parity_functions();

    let mut gateway = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model());
    gateway.register(AppProfile::c_hello());
    gateway.register(AppProfile::c_nginx());
    gateway.warm("C-hello").unwrap();
    let mut plain = Vec::new();
    for function in &functions {
        let invocation = gateway.invoke_detailed(function).unwrap();
        plain.push((invocation.trace, invocation.report, invocation.queued));
    }

    let mut cluster = Cluster::new(ClusterConfig::new(1, 1), &model()).unwrap();
    cluster.register(AppProfile::c_hello());
    cluster.register(AppProfile::c_nginx());
    cluster.warm("C-hello").unwrap();
    let mut clustered = Vec::new();
    for function in &functions {
        let (node, invocation) = cluster.call(function, None).unwrap();
        assert_eq!(node, 0, "a single-node cluster has one place to route");
        clustered.push((invocation.trace, invocation.report, invocation.queued));
    }

    // Span trees carry every charge on the boot path; the reports carry
    // the latency split. Identical trees and metrics mean the cluster
    // layer added nothing — not a span, not a nanosecond, not a counter.
    assert_eq!(plain, clustered);
    assert_eq!(
        gateway.metrics(),
        cluster.nodes()[0].gateway().metrics(),
        "node-0 gateway metrics must match the plain gateway's"
    );
    assert_eq!(cluster.metrics().counter("cluster.remote"), 0);
    assert_eq!(cluster.metrics().counter("cluster.cold"), 0);
}

/// One closed-loop run, serialized: the routing history plus the scheduler
/// and node-0 gateway metrics.
fn closed_loop_digest(
    nodes: usize,
    budget: usize,
    remote: bool,
    limit: usize,
    picks: &[usize],
) -> (String, String, String) {
    let mut config = ClusterConfig::new(nodes, budget);
    if !remote {
        config.routing = RoutingPolicy::LocalCold;
    }
    let mut cluster = Cluster::new(config, &model())
        .unwrap()
        .with_admission(AdmissionPolicy::standard(limit, SimNanos::from_secs(5)));
    cluster.register(AppProfile::c_hello());
    cluster.register(AppProfile::c_nginx());
    let names = ["C-hello", "C-Nginx"];
    for (i, &pick) in picks.iter().enumerate() {
        // Same-instant bursts (index-paced arrivals) so admission can shed
        // and the scheduler can re-route; errors are part of the history.
        let _ = cluster.call(
            names[pick % names.len()],
            Some(SimNanos::from_nanos(i as u64)),
        );
    }
    let history: Vec<String> = cluster
        .history()
        .iter()
        .map(|record| serde_json::to_string(record).unwrap())
        .collect();
    (
        history.join("\n"),
        serde_json::to_string(cluster.metrics()).unwrap(),
        serde_json::to_string(cluster.nodes()[0].gateway().metrics()).unwrap(),
    )
}

/// A one-function flash crowd: `n` same-window arrivals.
fn burst_trace(n: u64) -> Vec<TraceRequest> {
    (0..n)
        .map(|i| TraceRequest {
            arrival: SimNanos::from_nanos(i),
            function: 0,
        })
        .collect()
}

/// One open-loop run under a transfer-seam plan, serialized whole (route
/// hash, rung counts, fault counters, latency digests, metrics).
fn open_loop_digest(nodes: usize, capacity: usize, burst: u64, plan: Option<FaultPlan>) -> String {
    let mut sim = ClusterSim::new(vec![AppProfile::c_hello()], ClusterConfig::new(nodes, 1))
        .with_node_capacity(capacity);
    if let Some(plan) = plan {
        sim = sim.with_faults(plan);
    }
    let outcome = sim.run_cluster(&burst_trace(burst)).unwrap();
    serde_json::to_string(&outcome).unwrap()
}

fn transfer_plan(seed: u64, rate_pct: u32, poison_pct: u32) -> FaultPlan {
    FaultPlan::zero(seed)
        .with_point(
            InjectionPoint::TemplateTransfer,
            PointPlan::at_rate(f64::from(rate_pct) / 100.0),
        )
        .with_poison_ratio(f64::from(poison_pct) / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same configuration, same request sequence → byte-identical routing
    /// history and metrics, across cluster shapes and both policies.
    #[test]
    fn same_seed_routing_and_placement_are_byte_identical(
        nodes in 1usize..5,
        budget in 1usize..3,
        remote in any::<bool>(),
        limit in 1usize..4,
        picks in proptest::collection::vec(0usize..2, 4..16),
    ) {
        let budget = budget.min(nodes);
        let a = closed_loop_digest(nodes, budget, remote, limit, &picks);
        let b = closed_loop_digest(nodes, budget, remote, limit, &picks);
        prop_assert_eq!(a, b);
    }

    /// Same seed, same plan → the open-loop engine replays a byte-identical
    /// outcome: route hash, rung counts, and fault history included.
    #[test]
    fn same_seed_fleet_runs_replay_routing_and_fault_history(
        seed in any::<u64>(),
        nodes in 2usize..5,
        rate_pct in 0u32..101,
        poison_pct in 0u32..101,
        burst in 40u64..120,
    ) {
        let plan = transfer_plan(seed, rate_pct, poison_pct);
        let a = open_loop_digest(nodes, 20, burst, Some(plan.clone()));
        let b = open_loop_digest(nodes, 20, burst, Some(plan));
        prop_assert_eq!(a, b);
    }

    /// Whatever the transfer-seam plan, the closed loop never panics: every
    /// re-routed request either completes (the ladder degraded remote →
    /// warm → cold underneath it) or surfaces a typed shed/fault error.
    #[test]
    fn remote_sfork_failures_degrade_down_the_ladder(
        seed in any::<u64>(),
        rate_pct in 50u32..101,
        poison_pct in 0u32..101,
    ) {
        let plan = transfer_plan(seed, rate_pct, poison_pct);
        let mut cluster = Cluster::new(ClusterConfig::new(2, 1), &model())
            .unwrap()
            .with_policy(ResiliencePolicy::full())
            .with_faults(plan)
            .with_admission(AdmissionPolicy::standard(1, SimNanos::from_secs(5)));
        cluster.register(AppProfile::c_hello());
        for i in 0..6u64 {
            // Same-instant arrivals saturate the holder's single admission
            // slot, pushing overflow onto the remote-sfork rung where the
            // transfer seam is armed.
            match cluster.call("C-hello", Some(SimNanos::from_nanos(i))) {
                Ok((node, invocation)) => {
                    prop_assert!(node < 2);
                    prop_assert!(invocation.report.total() > SimNanos::ZERO);
                }
                Err(err) if err.is_shed() => {}
                Err(PlatformError::Sandbox(SandboxError::Fault(fault))) => {
                    prop_assert!(InjectionPoint::ALL.contains(&fault.point));
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!("untyped failure: {other}")));
                }
            }
        }
    }

    /// Closed loop under a node partition: while the island is cut off the
    /// scheduler never routes at it, and after the heal it is routed again
    /// — whatever the cluster shape or partition window.
    #[test]
    fn partitioned_node_is_never_routed_until_heal(
        nodes in 2usize..5,
        cut_us in 10u64..200,
        width_us in 50u64..400,
        calls in 8usize..24,
    ) {
        let cut = SimNanos::from_micros(cut_us);
        let heal = SimNanos::from_micros(cut_us + width_us);
        let plan = NodePlan::quiet(9).with_partition([0], cut, heal);
        let mut cluster = Cluster::new(ClusterConfig::new(nodes, nodes), &model())
            .unwrap()
            .with_chaos(plan, ChaosPolicy::full())
            .unwrap();
        cluster.register(AppProfile::c_hello());

        // Paced arrivals spanning 0..2×heal: before the cut, inside the
        // window, and (the back half) past the heal.
        let step_ns = heal.as_nanos() * 2 / calls as u64;
        let mut routed_after_heal = false;
        for i in 0..calls {
            let now = SimNanos::from_nanos(step_ns * i as u64);
            let (node, _) = cluster.call("C-hello", Some(now)).unwrap();
            prop_assert!(
                !(now >= cut && now < heal) || node != 0,
                "routed at the islanded node at {now:?} (cut {cut:?}..{heal:?})"
            );
            if now >= heal && node == 0 {
                routed_after_heal = true;
            }
        }
        prop_assert!(
            routed_after_heal,
            "node 0 was never routed again after the heal"
        );
    }

    /// Open loop, same story at fleet scale: under any transfer-seam plan
    /// every request is completed or shed — degradation re-routes work, it
    /// never loses it.
    #[test]
    fn open_loop_transfer_faults_never_lose_requests(
        seed in any::<u64>(),
        nodes in 2usize..5,
        rate_pct in 0u32..101,
        poison_pct in 0u32..101,
        burst in 40u64..120,
    ) {
        let plan = transfer_plan(seed, rate_pct, poison_pct);
        let sim = ClusterSim::new(
            vec![AppProfile::c_hello()],
            ClusterConfig::new(nodes, 1),
        )
        .with_node_capacity(20)
        .with_faults(plan);
        let outcome = sim.run_cluster(&burst_trace(burst)).unwrap();
        prop_assert_eq!(outcome.completed + outcome.shed, outcome.requests);
        prop_assert_eq!(
            outcome.reuses + outcome.local + outcome.remote + outcome.cold,
            outcome.completed
        );
        prop_assert!(outcome.requests == burst);
    }
}
