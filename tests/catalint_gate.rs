//! Tier-1 gate: the workspace carries zero lint debt.
//!
//! This is `cargo run -p catalint` wired into the ordinary test suite, so
//! plain `cargo test` refuses new debt across all thirteen passes — from
//! determinism and panic-safety through the v4 hermeticity certificate
//! (clock-discipline taint, event-protocol conformance, generational-arena
//! access) — even when nobody invokes the binary. There is no tolerated
//! baseline: the gate is zero findings, full stop. A genuinely intended
//! exception gets a `catalint: allow(<pass>)` comment at the site — visible
//! in the diff it excuses — not a bucket in `catalint.toml`.

#[test]
fn workspace_carries_zero_lint_debt() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = catalint::check_workspace(root).expect("catalint scans the workspace");
    if outcome.violations.is_empty() {
        return;
    }
    let mut report = String::new();
    for v in &outcome.violations {
        report.push_str(&format!("    {v}\n"));
    }
    panic!(
        "catalint found {} violation(s) — the workspace is kept at zero \
         lint debt; fix them or suppress at the site with a justified \
         `catalint: allow(<pass>)` comment (see DESIGN.md §12):\n{report}",
        outcome.violations.len()
    );
}

/// The CLI's exit-code contract, which CI and scripts branch on: 0 for a
/// clean scan, 1 when findings exceed the baseline, 2 for a usage or I/O
/// error. Conflating 1 and 2 would let a typo'd flag read as "findings"
/// (or worse, a missing root read as "clean"), so each code is pinned
/// against the real binary.
#[test]
fn cli_exit_codes_are_split_by_cause() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let run = |extra: &[&str]| {
        let out = std::process::Command::new(env!("CARGO"))
            .args(["run", "-q", "-p", "catalint", "--"])
            .args(extra)
            .current_dir(root)
            .output()
            .expect("run catalint via cargo");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };

    // 0: the checked-in tree is clean.
    let (code, err) = run(&["--root", root.to_str().expect("utf-8 root")]);
    assert_eq!(code, Some(0), "clean tree must exit 0, stderr:\n{err}");

    // 1: findings. Plant a panicking parse module in a scratch workspace.
    let scratch = std::env::temp_dir().join(format!("catalint-gate-{}", std::process::id()));
    let parse_dir = scratch.join("crates/imagefmt/src");
    std::fs::create_dir_all(&parse_dir).expect("mkdir");
    std::fs::write(scratch.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::write(
        parse_dir.join("flat.rs"),
        "pub fn parse(b: &[u8]) -> u8 { *b.first().unwrap() }\n",
    )
    .expect("write fixture");
    let (code, err) = run(&["--root", scratch.to_str().expect("utf-8 scratch")]);
    assert_eq!(code, Some(1), "findings must exit 1, stderr:\n{err}");
    std::fs::remove_dir_all(&scratch).ok();

    // 2: usage error (unknown flag) and I/O error (unreadable root).
    let (code, err) = run(&["--bogus-flag"]);
    assert_eq!(code, Some(2), "usage error must exit 2, stderr:\n{err}");
    let (code, err) = run(&["--root", "/nonexistent/catalint-gate-root"]);
    assert_eq!(code, Some(2), "I/O error must exit 2, stderr:\n{err}");
}

/// The baseline file must stay empty: an `[[allow]]` bucket that sneaks in
/// would silently re-open the debt budget the zero-findings gate closed.
#[test]
fn baseline_file_has_no_allow_buckets() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("catalint.toml"))
        .expect("catalint.toml exists at the workspace root");
    let has_bucket = text
        .lines()
        .map(str::trim_start)
        .filter(|l| !l.starts_with('#'))
        .any(|l| l.contains("[[allow]]"));
    assert!(
        !has_bucket,
        "catalint.toml grew an [[allow]] bucket — the workspace is kept at \
         zero lint debt; fix the finding instead of baselining it"
    );
}
