//! Tier-1 gate: the workspace carries zero lint debt.
//!
//! This is `cargo run -p catalint` wired into the ordinary test suite, so
//! plain `cargo test` refuses new determinism, panic-safety, hot-path-copy,
//! borrow-discipline, name-registry, hash-order, or error-hygiene debt even
//! when nobody invokes the binary. There is no tolerated baseline: the gate
//! is zero findings, full stop. A genuinely intended exception gets a
//! `catalint: allow(<pass>)` comment at the site — visible in the diff it
//! excuses — not a bucket in `catalint.toml`.

#[test]
fn workspace_carries_zero_lint_debt() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = catalint::check_workspace(root).expect("catalint scans the workspace");
    if outcome.violations.is_empty() {
        return;
    }
    let mut report = String::new();
    for v in &outcome.violations {
        report.push_str(&format!("    {v}\n"));
    }
    panic!(
        "catalint found {} violation(s) — the workspace is kept at zero \
         lint debt; fix them or suppress at the site with a justified \
         `catalint: allow(<pass>)` comment (see DESIGN.md §12):\n{report}",
        outcome.violations.len()
    );
}

/// The baseline file must stay empty: an `[[allow]]` bucket that sneaks in
/// would silently re-open the debt budget the zero-findings gate closed.
#[test]
fn baseline_file_has_no_allow_buckets() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("catalint.toml"))
        .expect("catalint.toml exists at the workspace root");
    let has_bucket = text
        .lines()
        .map(str::trim_start)
        .filter(|l| !l.starts_with('#'))
        .any(|l| l.contains("[[allow]]"));
    assert!(
        !has_bucket,
        "catalint.toml grew an [[allow]] bucket — the workspace is kept at \
         zero lint debt; fix the finding instead of baselining it"
    );
}
