//! Tier-1 gate: the workspace invariant checker must pass.
//!
//! This is `cargo run -p catalint` wired into the ordinary test suite, so
//! plain `cargo test` refuses new determinism, panic-safety, hot-path-copy,
//! or error-hygiene debt even when nobody invokes the binary. The tolerated
//! pre-existing debt lives in `catalint.toml` at the workspace root.

#[test]
fn workspace_invariants_hold() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = catalint::check_workspace(root).expect("catalint scans the workspace");
    if outcome.diff.is_clean() {
        return;
    }
    let mut report = String::new();
    for ex in &outcome.diff.exceeded {
        report.push_str(&format!(
            "[{}] {} fn {}: {} found, {} baselined\n",
            ex.entry.pass, ex.entry.file, ex.entry.function, ex.entry.count, ex.allowed
        ));
        for site in &ex.sites {
            report.push_str(&format!("    {site}\n"));
        }
    }
    panic!(
        "catalint found violations above the baseline — fix them or amend \
         catalint.toml in the same change (see DESIGN.md):\n{report}"
    );
}
