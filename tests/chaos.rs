//! Integration: node-level chaos and the failover policy end to end.
//!
//! Four claims the chaos layer stands on:
//!
//! 1. **Conservation** — whatever the node-fault schedule or policy,
//!    every request is completed, shed, or failed typed; none are lost.
//! 2. **Same seed, same history** — identical plans replay byte-identical
//!    outcomes, chaos logs included.
//! 3. **The survivability floor** — one crashed node out of N costs the
//!    full-failover policy at most its share: availability ≥ (N−1)/N.
//! 4. **Joined waiters are rescued** — a request that *joined* an
//!    in-flight transfer (not just the one that started it) gets the same
//!    timeout/re-route path when the source dies; only the no-failover
//!    baseline hangs them.

use catalyzer_suite::faultsim::NodePlan;
use catalyzer_suite::platform::cluster::{ChaosPolicy, ClusterConfig, ClusterSim};
use catalyzer_suite::platform::simulate::TraceRequest;
use catalyzer_suite::prelude::*;
use proptest::prelude::*;

fn model() -> CostModel {
    CostModel::experimental_machine()
}

/// Paced single-function arrivals: `n` requests `gap_us` apart.
fn paced_trace(n: u64, gap_us: u64) -> Vec<TraceRequest> {
    (0..n)
        .map(|i| TraceRequest {
            arrival: SimNanos::from_micros(i * gap_us),
            function: 0,
        })
        .collect()
}

/// One chaos run, serialized whole (outcome, counters, chaos log).
fn chaos_digest(
    nodes: usize,
    budget: usize,
    capacity: usize,
    plan: &NodePlan,
    policy: ChaosPolicy,
    trace: &[TraceRequest],
) -> String {
    let outcome = ClusterSim::new(
        vec![AppProfile::c_hello()],
        ClusterConfig::new(nodes, budget),
    )
    .with_model(model())
    .with_node_capacity(capacity)
    .with_chaos(plan.clone(), policy)
    .run_chaos(trace)
    .unwrap();
    serde_json::to_string(&outcome).unwrap()
}

#[test]
fn single_crash_holds_the_availability_floor() {
    // One node of N dies mid-run. The full policy's worst case is the
    // dead node's own share of the work: in-flight requests killed by the
    // crash. Everything else re-routes, so availability ≥ (N−1)/N.
    for nodes in [2usize, 4, 8] {
        let plan = NodePlan::quiet(1).with_crash(0, SimNanos::from_millis(5));
        let trace = paced_trace(400, 50);
        let outcome = ClusterSim::new(
            vec![AppProfile::c_hello()],
            ClusterConfig::new(nodes, 2.min(nodes)),
        )
        .with_model(model())
        .with_node_capacity(400)
        .with_chaos(plan, ChaosPolicy::full())
        .run_chaos(&trace)
        .unwrap();
        let floor = (nodes as f64 - 1.0) / nodes as f64;
        assert!(
            outcome.availability >= floor,
            "{nodes} nodes: availability {} under {floor}",
            outcome.availability
        );
        assert_eq!(outcome.crashes, 1);
        assert_eq!(outcome.hung, 0, "full failover must not strand waiters");
        assert_eq!(
            outcome.cluster.completed + outcome.cluster.shed + outcome.failed,
            outcome.cluster.requests
        );
    }
}

#[test]
fn joined_waiters_ride_the_same_timeout_as_the_initiator() {
    // Three nodes, one template holder. A same-instant burst saturates
    // the holder, so overflow starts one transfer and the rest *join* it
    // as waiters. The source then crashes mid-wire. Full failover must
    // re-route every waiter — the joiners exactly like the initiator —
    // while the baseline leaves them all hanging on the orphaned wire.
    let plan = NodePlan::quiet(3).with_crash(0, SimNanos::from_micros(20));
    let trace: Vec<TraceRequest> = (0..120u64)
        .map(|i| TraceRequest {
            arrival: SimNanos::from_nanos(i),
            function: 0,
        })
        .collect();
    let run = |policy: ChaosPolicy| {
        ClusterSim::new(vec![AppProfile::c_hello()], ClusterConfig::new(3, 1))
            .with_model(model())
            .with_node_capacity(40)
            .with_chaos(plan.clone(), policy)
            .run_chaos(&trace)
            .unwrap()
    };

    let full = run(ChaosPolicy::full());
    assert!(full.aborted_transfers > 0, "the crash must orphan a wire");
    assert!(
        full.failovers > 1,
        "joined waiters must fail over alongside the initiator (got {})",
        full.failovers
    );
    assert_eq!(full.hung, 0);

    let baseline = run(ChaosPolicy::none());
    assert!(
        baseline.hung > 1,
        "the baseline must strand the joined waiters too (got {})",
        baseline.hung
    );
    assert_eq!(baseline.failovers, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the sampled fault schedule — crashes, partitions, gray
    /// windows, under either policy — every request is completed, shed,
    /// or failed typed; the books always balance.
    #[test]
    fn chaos_conserves_requests_under_any_schedule(
        seed in any::<u64>(),
        nodes in 2usize..6,
        faults in 1usize..6,
        failover in any::<bool>(),
        burst in 60u64..200,
    ) {
        let plan = NodePlan::storm(
            seed,
            nodes as u32,
            faults,
            SimNanos::from_micros(10),
            SimNanos::from_millis(8),
        );
        let policy = if failover { ChaosPolicy::full() } else { ChaosPolicy::none() };
        let outcome = ClusterSim::new(
            vec![AppProfile::c_hello()],
            ClusterConfig::new(nodes, 1),
        )
        .with_model(model())
        .with_node_capacity(30)
        .with_chaos(plan, policy)
        .run_chaos(&paced_trace(burst, 40))
        .unwrap();
        prop_assert_eq!(
            outcome.cluster.completed + outcome.cluster.shed + outcome.failed,
            outcome.cluster.requests
        );
        prop_assert!(outcome.hung <= outcome.failed);
        let availability = outcome.cluster.completed as f64 / outcome.cluster.requests as f64;
        prop_assert!((outcome.availability - availability).abs() < 1e-9);
    }

    /// Same plan, same policy → byte-identical outcome, chaos log and
    /// hedge/failover counters included.
    #[test]
    fn same_seed_chaos_runs_replay_byte_identical_histories(
        seed in any::<u64>(),
        nodes in 2usize..5,
        faults in 1usize..5,
        failover in any::<bool>(),
        burst in 40u64..120,
    ) {
        let plan = NodePlan::storm(
            seed,
            nodes as u32,
            faults,
            SimNanos::from_micros(10),
            SimNanos::from_millis(6),
        );
        let policy = if failover { ChaosPolicy::full() } else { ChaosPolicy::none() };
        let trace = paced_trace(burst, 50);
        let a = chaos_digest(nodes, 1, 25, &plan, policy, &trace);
        let b = chaos_digest(nodes, 1, 25, &plan, policy, &trace);
        prop_assert_eq!(a, b);
    }
}
