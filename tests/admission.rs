//! Integration: admission control end to end over the gateway.
//!
//! The claims the admission subsystem stands on:
//!
//! 1. **Invisible at zero load** — an admission-controlled gateway serving
//!    sparse traffic produces the same latency reports as a bare one, sheds
//!    nothing, and never moves a breaker.
//! 2. **Every rejection is typed** — overload, deadline, and open-breaker
//!    sheds each surface as their own [`PlatformError`] variant; nothing
//!    panics, nothing is silently dropped.
//! 3. **The span tree carries the queue** — admitted requests have the
//!    stable `[admission, boot, exec]` shape under the invoke root, with
//!    the admission span exactly the queue wait.
//! 4. **Same seed, same history** — identical plans and arrival traces
//!    replay byte-identical admission logs, breaker transitions, and span
//!    trees.

use catalyzer_suite::faultsim::{FaultPlan, InjectionPoint, PointPlan};
use catalyzer_suite::platform::admission::SPAN_ADMISSION;
use catalyzer_suite::platform::{AdmissionPolicy, BreakerState, PlatformError, ResiliencePolicy};
use catalyzer_suite::prelude::*;

fn model() -> CostModel {
    CostModel::experimental_machine()
}

fn ms(v: u64) -> SimNanos {
    SimNanos::from_millis(v)
}

fn fork_gateway(admission: AdmissionPolicy) -> Gateway<CatalyzerEngine> {
    let mut gw = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model());
    gw.register(AppProfile::c_hello());
    gw.with_admission(admission)
}

#[test]
fn zero_load_admission_is_invisible() {
    let mut gated = fork_gateway(AdmissionPolicy::standard(4, ms(100)));
    let mut bare = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model());
    bare.register(AppProfile::c_hello());

    for i in 0..8u64 {
        let inv = gated.invoke_at("C-hello", ms(10 * i)).unwrap();
        assert_eq!(inv.queued, SimNanos::ZERO, "nothing queues at zero load");
        let plain = bare.invoke("C-hello").unwrap();
        assert_eq!(inv.report, plain, "admission added no latency");
    }
    assert_eq!(gated.metrics().counter("admit.count"), 8);
    assert_eq!(gated.metrics().counter("admit.queued"), 0);
    assert_eq!(gated.metrics().counter("shed.overload"), 0);
    assert_eq!(gated.metrics().counter("shed.deadline"), 0);
    assert_eq!(gated.metrics().counter("shed.breaker"), 0);
    let ctrl = gated.admission().unwrap();
    assert_eq!(ctrl.breaker_state("C-hello"), Some(BreakerState::Closed));
    assert!(ctrl.transitions("C-hello").is_empty());
    assert_eq!(ctrl.log().len(), 8);
}

#[test]
fn queued_requests_carry_the_admission_span() {
    // Limit 1: the second request (arriving mid-service of the first)
    // queues until the first completes.
    let mut gw = fork_gateway(AdmissionPolicy::standard(1, SimNanos::from_secs(10)));
    let first = gw.invoke_at("C-hello", SimNanos::ZERO).unwrap();
    assert_eq!(first.queued, SimNanos::ZERO);

    let second = gw.invoke_at("C-hello", SimNanos::from_micros(100)).unwrap();
    assert!(second.queued > SimNanos::ZERO, "second request must queue");
    // It starts exactly when the first finishes.
    assert_eq!(
        SimNanos::from_micros(100) + second.queued,
        first.end_to_end()
    );

    // Stable span shape: [admission, boot, exec] under the invoke root,
    // with the admission span equal to the queue wait.
    assert_eq!(second.trace.name, "invoke:C-hello");
    assert_eq!(second.trace.children.len(), 3);
    assert_eq!(second.trace.children[0].name, SPAN_ADMISSION);
    assert_eq!(second.trace.children[1].name, SPAN_BOOT);
    assert_eq!(second.trace.children[2].name, SPAN_EXEC);
    assert_eq!(second.trace.children[0].duration(), second.queued);
    second.trace.validate_nesting().unwrap();
    // The report's boot leg excludes the wait; end-to-end includes it.
    assert_eq!(second.report.boot, second.trace.children[1].duration());
    assert_eq!(second.end_to_end(), second.trace.duration());
    assert_eq!(gw.metrics().counter("admit.queued"), 1);
}

#[test]
fn overload_and_deadline_sheds_are_typed() {
    // Deadline far away: a same-instant burst overflows the bounded queue
    // (limit 1 + 2 waiters) and sheds `Overload`.
    let mut gw = fork_gateway(AdmissionPolicy::standard(1, SimNanos::from_secs(10)));
    let mut overloads = 0;
    for i in 0..8u64 {
        match gw.invoke_at("C-hello", SimNanos::from_micros(i * 10)) {
            Ok(_) => {}
            Err(PlatformError::Overload {
                function,
                in_flight,
                limit,
            }) => {
                assert_eq!(function, "C-hello");
                assert!(in_flight > limit);
                overloads += 1;
            }
            Err(other) => panic!("only Overload expected here, got {other:?}"),
        }
    }
    assert!(overloads > 0, "the bounded queue must overflow");
    assert_eq!(gw.metrics().counter("shed.overload"), overloads);

    // Tight deadline: the queue slot frees too late, so the request is
    // shed `DeadlineExceeded` at admission instead of running doomed.
    let mut gw = fork_gateway(AdmissionPolicy::standard(1, SimNanos::from_micros(500)));
    gw.invoke_at("C-hello", SimNanos::ZERO).unwrap();
    match gw.invoke_at("C-hello", SimNanos::from_micros(100)) {
        Err(PlatformError::DeadlineExceeded {
            function,
            deadline,
            would_start,
        }) => {
            assert_eq!(function, "C-hello");
            assert!(would_start > deadline);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(gw.metrics().counter("shed.deadline"), 1);
}

#[test]
fn poison_trips_the_breaker_and_probes_close_it() {
    // Every sfork attempt inside the first 3 ms poisons the template; the
    // gateway's inline quarantine recovers each request, but two poisoned
    // completions in a row trip the breaker.
    let plan = FaultPlan::zero(0xB0A7)
        .with_poison_ratio(1.0)
        .with_point(
            InjectionPoint::SforkMerge,
            PointPlan {
                rate: 1.0,
                stall_ratio: 0.0,
                max_burst: 1,
            },
        )
        .with_window(SimNanos::ZERO, ms(3));
    let mut gw = fork_gateway(AdmissionPolicy::standard(4, SimNanos::from_secs(10)))
        .with_policy(ResiliencePolicy::full())
        .with_faults(plan);

    gw.invoke_at("C-hello", ms(0)).unwrap();
    gw.invoke_at("C-hello", ms(1)).unwrap();
    assert_eq!(
        gw.admission().unwrap().breaker_state("C-hello"),
        Some(BreakerState::Open),
        "two poisoned completions trip the breaker"
    );

    // While open: typed fast-fail carrying the cooldown end.
    let until = match gw.invoke_at("C-hello", ms(2)) {
        Err(PlatformError::CircuitOpen { function, until }) => {
            assert_eq!(function, "C-hello");
            until
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    };
    assert_eq!(gw.metrics().counter("shed.breaker"), 1);

    // At the cooldown's end (past the fault window) probes are admitted
    // and two clean completions close the breaker.
    gw.invoke_at("C-hello", until).unwrap();
    assert_eq!(
        gw.admission().unwrap().breaker_state("C-hello"),
        Some(BreakerState::HalfOpen)
    );
    gw.invoke_at("C-hello", until + ms(1)).unwrap();
    assert_eq!(
        gw.admission().unwrap().breaker_state("C-hello"),
        Some(BreakerState::Closed)
    );

    let kinds: Vec<(BreakerState, BreakerState)> = gw
        .admission()
        .unwrap()
        .transitions("C-hello")
        .iter()
        .map(|t| (t.from, t.to))
        .collect();
    assert_eq!(
        kinds,
        vec![
            (BreakerState::Closed, BreakerState::Open),
            (BreakerState::Open, BreakerState::HalfOpen),
            (BreakerState::HalfOpen, BreakerState::Closed),
        ]
    );
    assert_eq!(gw.metrics().counter("breaker.open"), 1);
    assert_eq!(gw.metrics().counter("breaker.half-open"), 1);
    assert_eq!(gw.metrics().counter("breaker.closed"), 1);
}

/// Drives one seeded storm through an admission-controlled gateway and
/// serializes everything observable: per-request outcome (span tree or
/// typed shed), the admission log, and the breaker transition history.
fn storm_history(seed: u64) -> String {
    let plan = FaultPlan::uniform(seed, 0.8).with_window(ms(1), ms(6));
    let mut gw = fork_gateway(AdmissionPolicy::standard(2, ms(20)))
        .with_policy(ResiliencePolicy {
            max_retries: 6,
            ..ResiliencePolicy::full()
        })
        .with_faults(plan);

    let mut history = String::new();
    for i in 0..16u64 {
        match gw.invoke_at("C-hello", SimNanos::from_micros(i * 500)) {
            Ok(inv) => {
                history.push_str(&serde_json::to_string(&inv.trace).unwrap());
            }
            Err(shed) => {
                assert!(
                    matches!(
                        shed,
                        PlatformError::Overload { .. }
                            | PlatformError::DeadlineExceeded { .. }
                            | PlatformError::CircuitOpen { .. }
                    ),
                    "recovery must absorb faults; only typed sheds may surface: {shed:?}"
                );
                history.push_str(&format!("{shed:?}"));
            }
        }
        history.push('\n');
    }
    let ctrl = gw.admission().unwrap();
    history.push_str(&serde_json::to_string(&ctrl.log().to_vec()).unwrap());
    history.push_str(&format!("{:?}", ctrl.all_transitions()));
    history
}

#[test]
fn same_seed_replays_identical_admission_and_span_history() {
    assert_eq!(
        storm_history(0x5EED),
        storm_history(0x5EED),
        "same seed must replay byte-identical admit/shed/breaker history"
    );
}
