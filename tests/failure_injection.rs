//! Integration: failure paths surface as errors instead of wrong results —
//! resource exhaustion, missing prerequisites, policy violations, and
//! corrupted state.

use catalyzer_suite::guest_kernel::vfs::MAX_FDS;
use catalyzer_suite::guest_kernel::KernelError;
use catalyzer_suite::memsim::MemError;
use catalyzer_suite::prelude::*;
use catalyzer_suite::runtimes::RuntimeError;
use catalyzer_suite::sandbox::SandboxError;
use catalyzer_suite::simtime::SimClock;

fn model() -> CostModel {
    CostModel::experimental_machine()
}

/// A profile whose kernel graph would need more descriptors than the guest
/// fd table allows.
fn fd_hungry_profile() -> AppProfile {
    let mut p = AppProfile::c_hello();
    p.name = "fd-hungry".into();
    // GraphSpec::sized opens ~1.2% of the object count as files; 120k
    // objects ⇒ ~1 440 opens > MAX_FDS.
    p.kernel_objects = 120_000;
    p
}

#[test]
fn fd_exhaustion_fails_the_boot_cleanly() {
    assert_eq!(MAX_FDS, 1024);
    let model = model();
    let mut engine = GvisorEngine::new();
    let err = engine
        .boot(&fd_hungry_profile(), &mut BootCtx::fresh(&model))
        .expect_err("boot must fail when the fd table runs out");
    // Typed, not textual: the exhaustion surfaces as a kernel error whether
    // the boot path hit the fd table directly or through the runtime layer.
    match err {
        SandboxError::Kernel(KernelError::ResourceExhausted { what })
        | SandboxError::Runtime(RuntimeError::Kernel(KernelError::ResourceExhausted { what })) => {
            assert_eq!(what, "guest fds");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn catalyzer_cannot_compile_an_image_for_a_broken_function() {
    let model = model();
    let mut cat = Catalyzer::new();
    assert!(cat.prewarm_image(&fd_hungry_profile(), &model).is_err());
    // The failure is not sticky for other functions.
    cat.prewarm_image(&AppProfile::c_hello(), &model).unwrap();
}

#[test]
fn fork_boot_without_template_is_a_config_error() {
    let model = model();
    let mut cat = Catalyzer::new();
    match cat.boot(
        BootMode::Fork,
        &AppProfile::c_hello(),
        &mut BootCtx::fresh(&model),
    ) {
        Err(SandboxError::Config { detail }) => {
            assert!(detail.contains("template"), "{detail}");
        }
        other => panic!("expected Config error, got {other:?}"),
    }
}

#[test]
fn language_template_boot_without_generation_is_a_config_error() {
    let model = model();
    let mut cat = Catalyzer::new();
    assert!(matches!(
        cat.language_template_boot(&AppProfile::java_hello(), &mut BootCtx::fresh(&model)),
        Err(SandboxError::Config { .. })
    ));
}

#[test]
fn template_sandboxes_reject_denied_syscalls_but_children_do_not() {
    use catalyzer_suite::guest_kernel::{KernelError, SyscallInvocation};
    let model = model();
    let clock = SimClock::new();
    let mut template = Template::generate(&AppProfile::c_hello(), &model).unwrap();

    // Template mode: ptrace denied.
    assert!(matches!(
        template
            .program_mut()
            .kernel
            .syscall(SyscallInvocation::Ptrace, &clock, &model),
        Err(KernelError::DeniedSyscall { .. })
    ));

    // Children leave template mode: getpid etc. work, and the namespace
    // keeps its value identical to the template's.
    let mut boot = template
        .fork_boot(&CatalyzerConfig::full(), &mut BootCtx::new(&clock, &model))
        .unwrap();
    assert!(!boot.program.kernel.is_template());
    assert_eq!(boot.program.kernel.tasks.getpid(), 1);
    boot.program
        .kernel
        .syscall(SyscallInvocation::Getpid, &clock, &model)
        .unwrap();
}

#[test]
fn unknown_function_and_unknown_image_errors() {
    let model = model();
    let cat = Catalyzer::new();
    assert!(cat.warm_memory_costs("never-compiled", &model).is_err());

    let mut gw = platform::Gateway::new(GvisorEngine::new(), model);
    assert!(matches!(
        gw.invoke("missing"),
        Err(platform::PlatformError::UnknownFunction { .. })
    ));
}

#[test]
fn plain_shared_mapping_blocks_sfork_until_cow_flagged() {
    use catalyzer_suite::memsim::{Perms, ShareMode, VpnRange};
    let model = model();
    let mut template = Template::generate(&AppProfile::c_hello(), &model).unwrap();
    // Smuggle a plain MAP_SHARED region into the template.
    template
        .program_mut()
        .space
        .map_anonymous(
            VpnRange::new(0xF000, 0xF004),
            Perms::RW,
            ShareMode::Shared,
            "shm-no-cow",
        )
        .unwrap();
    let clock = SimClock::new();
    let err = template
        .fork_boot(&CatalyzerConfig::full(), &mut BootCtx::new(&clock, &model))
        .expect_err("plain MAP_SHARED must block sfork");
    match err {
        SandboxError::Mem(MemError::SharedMappingRequiresCow { vma })
        | SandboxError::Runtime(RuntimeError::Mem(MemError::SharedMappingRequiresCow { vma })) => {
            assert_eq!(vma, "shm-no-cow");
        }
        other => panic!("expected SharedMappingRequiresCow, got {other:?}"),
    }
}
