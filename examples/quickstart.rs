//! Quickstart: boot one serverless function on every sandbox design and
//! compare startup latencies, ending with Catalyzer's three boot kinds and
//! the span trace of the fastest one.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use catalyzer_suite::prelude::*;

fn main() -> Result<(), SuiteError> {
    let model = CostModel::experimental_machine();
    let profile = AppProfile::python_hello();
    println!("function: {} ({} runtime)", profile.name, profile.runtime);
    println!("machine:  {}\n", model.machine.label());

    // --- the baselines, coldest first -----------------------------------
    let mut baselines: Vec<Box<dyn BootEngine>> = vec![
        Box::new(HyperContainerEngine::new()),
        Box::new(FirecrackerEngine::new()),
        Box::new(DockerEngine::new()),
        Box::new(GvisorEngine::new()),
        Box::new(GvisorRestoreEngine::new()),
    ];
    println!(
        "{:<20} {:>12} {:>12} {:>14}",
        "system", "startup", "sandbox", "app/restore"
    );
    for engine in &mut baselines {
        let mut ctx = BootCtx::fresh(&model);
        let outcome = engine.boot(&profile, &mut ctx)?;
        println!(
            "{:<20} {:>12} {:>12} {:>14}",
            outcome.system,
            ctx.now(),
            outcome.sandbox_time(),
            outcome.app_time()
        );
    }

    // --- Catalyzer: cold, warm, fork -------------------------------------
    let mut system = Catalyzer::new();
    system.ensure_template(&profile, &model)?;
    let mut fork_trace = None;
    for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
        let mut ctx = BootCtx::fresh(&model);
        let mut outcome = system.boot(mode, &profile, &mut ctx)?;
        let boot = outcome.boot_latency;
        let exec = outcome.program.invoke_handler(ctx.clock(), ctx.model())?;
        println!(
            "{:<20} {:>12} {:>12} {:>14}   (handler ran {} touching {} pages)",
            outcome.system,
            boot,
            outcome.sandbox_time(),
            outcome.app_time(),
            exec.exec_time,
            exec.pages_touched,
        );
        if mode == BootMode::Fork {
            fork_trace = Some(outcome.trace);
        }
    }

    if let Some(trace) = fork_trace {
        println!("\nfork-boot span tree (virtual time):\n{trace}");
    }
    println!(
        "offline work Catalyzer did once (image compilation + zygotes): {}",
        system.offline_time()
    );
    Ok(())
}
