//! Quickstart: boot one serverless function on every sandbox design and
//! compare startup latencies, ending with Catalyzer's three boot kinds.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use catalyzer_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::experimental_machine();
    let profile = AppProfile::python_hello();
    println!("function: {} ({} runtime)", profile.name, profile.runtime);
    println!("machine:  {}\n", model.machine.label());

    // --- the baselines, coldest first -----------------------------------
    let mut baselines: Vec<Box<dyn BootEngine>> = vec![
        Box::new(HyperContainerEngine::new()),
        Box::new(FirecrackerEngine::new()),
        Box::new(DockerEngine::new()),
        Box::new(GvisorEngine::new()),
        Box::new(GvisorRestoreEngine::new()),
    ];
    println!(
        "{:<20} {:>12} {:>12} {:>14}",
        "system", "startup", "sandbox", "app/restore"
    );
    for engine in &mut baselines {
        let clock = SimClock::new();
        let outcome = engine.boot(&profile, &clock, &model)?;
        println!(
            "{:<20} {:>12} {:>12} {:>14}",
            outcome.system,
            clock.now(),
            outcome.sandbox_time(),
            outcome.app_time()
        );
    }

    // --- Catalyzer: cold, warm, fork -------------------------------------
    let mut system = Catalyzer::new();
    system.ensure_template(&profile, &model)?;
    for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
        let clock = SimClock::new();
        let mut outcome = system.boot(mode, &profile, &clock, &model)?;
        let boot = clock.now();
        let exec = outcome.program.invoke_handler(&clock, &model)?;
        println!(
            "{:<20} {:>12} {:>12} {:>14}   (handler ran {} touching {} pages)",
            outcome.system,
            boot,
            outcome.sandbox_time(),
            outcome.app_time(),
            exec.exec_time,
            exec.pages_touched,
        );
    }

    println!(
        "\noffline work Catalyzer did once (image compilation + zygotes): {}",
        system.offline_time()
    );
    Ok(())
}
