//! An image-processing pipeline (the paper's Pillow workload, Fig. 13b):
//! each stage is a serverless function that fork-boots from its template,
//! runs a *real* pixel kernel over the image, and hands the result to the
//! next stage.
//!
//! ```text
//! cargo run --example image_pipeline
//! ```

use catalyzer_suite::prelude::*;
use catalyzer_suite::workloads::image::Image;
use catalyzer_suite::workloads::pillow::ImageOp;

fn main() -> Result<(), SuiteError> {
    let model = CostModel::experimental_machine();
    let mut system = Catalyzer::new();

    // Offline: a template sandbox per stage.
    for op in ImageOp::ALL {
        system.ensure_template(&op.profile(), &model)?;
    }

    let mut img = Image::synthetic(256, 192, 2020);
    println!(
        "input image: {}x{} (mean luma {:.1})\n",
        img.width(),
        img.height(),
        img.mean_luma()
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "stage", "boot", "handler", "end-to-end", "out dims"
    );

    let mut pipeline_total = SimNanos::ZERO;
    for op in ImageOp::ALL {
        let profile = op.profile();
        let mut ctx = BootCtx::fresh(&model);
        let mut outcome = system.boot(BootMode::Fork, &profile, &mut ctx)?;
        let boot = outcome.boot_latency;
        let exec = outcome.program.invoke_handler(ctx.clock(), ctx.model())?;
        // The handler's real work: transform the image.
        img = op.apply(&img);
        pipeline_total += ctx.now();
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>7}x{}",
            op.label(),
            boot,
            exec.exec_time,
            ctx.now(),
            img.width(),
            img.height()
        );
    }

    println!(
        "\npipeline of 5 function invocations: {} total (mean luma now {:.1})",
        pipeline_total,
        img.mean_luma()
    );

    // The same pipeline on gVisor pays full application init per stage.
    let mut gvisor = GvisorEngine::new();
    let mut gv_total = SimNanos::ZERO;
    for op in ImageOp::ALL {
        let mut ctx = BootCtx::fresh(&model);
        let mut outcome = gvisor.boot(&op.profile(), &mut ctx)?;
        outcome.program.invoke_handler(ctx.clock(), ctx.model())?;
        gv_total += ctx.now();
    }
    println!(
        "same pipeline on gVisor: {} ({}x slower end to end)",
        gv_total,
        gv_total.as_nanos() / pipeline_total.as_nanos().max(1)
    );
    Ok(())
}
