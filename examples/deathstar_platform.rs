//! A serverless platform serving the DeathStar social network (Fig. 13a):
//! a gateway dispatches a generated request trace to five microservice
//! functions; the handlers produce real posts and timelines.
//!
//! ```text
//! cargo run --example deathstar_platform
//! ```

use catalyzer_suite::prelude::*;
use catalyzer_suite::workloads::deathstar::{self, Service};
use catalyzer_suite::workloads::generator::{trace, Popularity};

fn serve_trace<E: BootEngine>(label: &str, engine: E, model: &CostModel) -> Result<(), SuiteError> {
    let mut gateway = Gateway::new(engine, model.clone());
    let services: Vec<_> = Service::ALL.iter().map(|s| s.profile()).collect();
    for s in &services {
        gateway.register(s.clone());
        // Offline preparation: templates/images are built before traffic.
        gateway.warm(&s.name)?;
    }

    let requests = trace(
        services.len(),
        40,
        200.0,
        Popularity::Zipf { exponent: 1.1 },
        7,
    );
    let mut worst = SimNanos::ZERO;
    for req in &requests {
        let report = gateway.invoke(&services[req.function].name)?;
        worst = worst.max(report.total());
    }
    // The gateway's own metrics carry the per-function latency histograms.
    let boot_p99 = services
        .iter()
        .filter_map(|s| gateway.metrics().histogram(&format!("boot.{}", s.name)))
        .filter_map(|h| h.p99())
        .max()
        .unwrap_or(SimNanos::ZERO);
    let exec_p99 = services
        .iter()
        .filter_map(|s| gateway.metrics().histogram(&format!("exec.{}", s.name)))
        .filter_map(|h| h.p99())
        .max()
        .unwrap_or(SimNanos::ZERO);
    println!(
        "{:<18} requests {:>3}  boot p99 {:>10}  exec p99 {:>10}  worst request {:>10}",
        label,
        gateway.metrics().counter("invoke.count"),
        boot_p99,
        exec_p99,
        worst
    );
    Ok(())
}

fn main() -> Result<(), SuiteError> {
    let model = CostModel::experimental_machine();

    // The application logic itself is real: compose a post, read a timeline.
    let post = deathstar::compose_post(
        42,
        "shipping the serverless port @ops https://deathstar.example",
        &["launch.png"],
        1_700_000_000_000,
    );
    let timeline = deathstar::timeline_service(std::slice::from_ref(&post), 42, 10);
    println!(
        "composed post {} with {} mention(s), {} url(s), {} media; timeline {:?}\n",
        post.id,
        post.mentions.len(),
        post.urls.len(),
        post.media.len(),
        timeline
    );

    println!("serving 40 requests (zipf-skewed) over 5 microservices:");
    serve_trace("gVisor", GvisorEngine::new(), &model)?;
    serve_trace("gVisor-restore", GvisorRestoreEngine::new(), &model)?;
    serve_trace(
        "Catalyzer-sfork",
        CatalyzerEngine::standalone(BootMode::Fork),
        &model,
    )?;
    println!("\nthe microservice handlers cost ~1–2.5 ms; only fork boot makes startup invisible");
    Ok(())
}
