//! An autoscaling storm (the paper's §6.6 scenario): a traffic spike forces
//! the platform to boot many instances of one function back-to-back while
//! earlier instances keep running. Compares tail startup latency and
//! per-sandbox memory between gVisor-restore and Catalyzer fork boot.
//!
//! ```text
//! cargo run --example autoscale_storm
//! ```

use catalyzer_suite::memsim::accounting;
use catalyzer_suite::prelude::*;
use catalyzer_suite::simtime::stats::summarize;
use catalyzer_suite::workloads::deathstar::Service;

const STORM: usize = 200;

fn storm<E: BootEngine>(label: &str, mut engine: E, model: &CostModel) -> Result<(), SuiteError> {
    let profile = Service::Text.profile();
    let mut running = Vec::with_capacity(STORM);
    let mut latencies = Vec::with_capacity(STORM);
    for _ in 0..STORM {
        let mut ctx = BootCtx::fresh(model);
        let mut outcome = engine.boot(&profile, &mut ctx)?;
        latencies.push(outcome.boot_latency); // startup latency the user waits for
        outcome.program.invoke_handler(ctx.clock(), ctx.model())?;
        running.push(outcome); // instances stay alive through the storm
    }

    let stats = summarize(&latencies).expect("non-empty");
    let spaces: Vec<_> = running.iter().map(|o| &o.program.space).collect();
    let usage = accounting::average(&accounting::usage(&spaces));
    println!(
        "{:<18} p50 {:>10}  p99 {:>10}  max {:>10}  avg RSS {:>7.2} MB  avg PSS {:>7.2} MB",
        label,
        stats.p50,
        stats.p99,
        stats.max,
        usage.rss_mib(),
        usage.pss_mib()
    );
    Ok(())
}

fn main() -> Result<(), SuiteError> {
    let model = CostModel::experimental_machine();
    println!(
        "storm: boot {STORM} instances of {} back-to-back, keep them running\n",
        Service::Text.profile().name
    );
    storm("gVisor-restore", GvisorRestoreEngine::new(), &model)?;
    storm(
        "Catalyzer-sfork",
        CatalyzerEngine::standalone(BootMode::Fork),
        &model,
    )?;
    println!(
        "\nfork boot keeps every one of the {STORM} boots at ~sub-ms (sustainable hot boot, §6.9),\n\
         and CoW sharing keeps the proportional memory of each instance a fraction of its RSS."
    );
    Ok(())
}
