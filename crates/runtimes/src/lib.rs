//! Simulated language runtimes and the application catalogue.
//!
//! The paper's Insight I is that most serverless startup latency is
//! *application initialization* — JVM start, class loading, interpreter
//! setup — not sandbox creation (§2.2, Fig. 4). This crate models the five
//! evaluated language runtimes (C, Java, Python, Ruby, Node.js) as programs
//! that, when initialized, create **real state** against the substrates:
//!
//! - they allocate and fill guest heap pages in a [`memsim::AddressSpace`]
//!   (deterministic per-page patterns, so restores are verifiable);
//! - they populate the [`guest_kernel::GuestKernel`] object graph to the
//!   paper-calibrated size (37 838 objects for SPECjbb);
//! - they open files and sockets through the live VFS/net subsystems;
//! - they charge the calibrated runtime-start and unit-load costs.
//!
//! Execution (the handler) then *touches a small fraction* of that state —
//! the paper's Insight II — driving demand paging and CoW on whatever boot
//! path produced the sandbox.
//!
//! # Example
//!
//! ```
//! use runtimes::{AppProfile, WrappedProgram};
//! use simtime::{CostModel, SimClock};
//!
//! let profile = AppProfile::c_hello();
//! let model = CostModel::experimental_machine();
//! let clock = SimClock::new();
//! let mut program = WrappedProgram::start(&profile, &clock, &model)?;
//! program.run_to_entry_point(&clock, &model)?;     // application init
//! let report = program.invoke_handler(&clock, &model)?; // handler run
//! assert!(report.exec_time > simtime::SimNanos::ZERO);
//! # Ok::<(), runtimes::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
mod kind;
mod profile;
mod program;

pub use error::RuntimeError;
pub use kind::RuntimeKind;
pub use profile::AppProfile;
pub use program::{heap_page_byte, ExecReport, InitReport, WrappedProgram, HEAP_BASE};
