use std::fmt;
use std::sync::Arc;

use guest_kernel::gofer::FsServer;
use guest_kernel::GuestKernel;
use memsim::{AddressSpace, Perms, ShareMode, Vpn, VpnRange, PAGE_SIZE};
use simtime::{CostModel, SimClock, SimNanos};

use crate::{AppProfile, RuntimeError};

/// Guest page number where application heaps start.
pub const HEAP_BASE: Vpn = 0x1_0000;

/// Deterministic fill byte for heap page `vpn` — lets any restore path prove
/// it reproduced the initialized memory image byte-for-byte.
pub fn heap_page_byte(vpn: Vpn) -> u8 {
    ((vpn.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as u8 | 1
}

/// Result of running initialization to the func-entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitReport {
    /// Virtual time the initialization took.
    pub init_time: SimNanos,
    /// Kernel objects at the entry point.
    pub kernel_objects: u64,
    /// Heap pages initialized.
    pub heap_pages: u64,
}

/// Result of one handler invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecReport {
    /// Virtual time the handler took (compute + faults + syscalls).
    pub exec_time: SimNanos,
    /// Initialized heap pages the handler touched.
    pub pages_touched: u64,
    /// Pages the handler wrote (CoW work on restored sandboxes).
    pub pages_written: u64,
    /// Fresh pages allocated.
    pub pages_allocated: u64,
    /// Syscalls issued.
    pub syscalls: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Created,
    AtEntryPoint,
}

/// A *wrapped program*: the language runtime plus the user handler, bound to
/// a guest kernel and an address space (paper §2.1).
///
/// Life cycle: [`WrappedProgram::start`] (sandbox hands control to the
/// wrapper) → [`WrappedProgram::run_to_entry_point`] (runtime + app
/// initialization; where func-images are captured) →
/// [`WrappedProgram::invoke_handler`] (serve one request; repeatable).
#[derive(Debug)]
pub struct WrappedProgram {
    profile: AppProfile,
    /// The guest kernel this program runs on.
    pub kernel: GuestKernel,
    /// The sandbox's guest-physical address space.
    pub space: AddressSpace,
    phase: Phase,
    exec_base: Vpn,
    invocations: u64,
}

impl WrappedProgram {
    /// Starts the wrapper on a fresh kernel over the profile's own FS server.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn start(
        profile: &AppProfile,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<WrappedProgram, RuntimeError> {
        let fs = profile.build_fs_server();
        Self::start_with(profile, fs, clock, model)
    }

    /// Starts the wrapper over an existing (shared, per-function) FS server.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn start_with(
        profile: &AppProfile,
        fs: Arc<FsServer>,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<WrappedProgram, RuntimeError> {
        let kernel = GuestKernel::boot(profile.name.clone(), fs, clock, model);
        let space = AddressSpace::new(profile.name.clone());
        Ok(WrappedProgram {
            profile: profile.clone(),
            kernel,
            space,
            phase: Phase::Created,
            exec_base: HEAP_BASE + profile.init_heap_pages + 0x1000,
            invocations: 0,
        })
    }

    /// Re-assembles a program around restored kernel/memory state, already
    /// positioned at the func-entry point (used by every restore/fork boot
    /// path).
    pub fn from_restored(
        profile: &AppProfile,
        kernel: GuestKernel,
        space: AddressSpace,
    ) -> WrappedProgram {
        WrappedProgram {
            exec_base: HEAP_BASE + profile.init_heap_pages + 0x1000,
            profile: profile.clone(),
            kernel,
            space,
            phase: Phase::AtEntryPoint,
            invocations: 0,
        }
    }

    /// The profile this program runs.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// True if initialization has completed.
    pub fn at_entry_point(&self) -> bool {
        self.phase == Phase::AtEntryPoint
    }

    /// Handler invocations served.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Runs runtime + application initialization up to the **func-entry
    /// point** — the moment Catalyzer's `Gen-Func-Image` syscall captures a
    /// checkpoint (§5). This is the latency C/R removes from the critical
    /// path.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Phase`] if already initialized; substrate errors.
    pub fn run_to_entry_point(
        &mut self,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<InitReport, RuntimeError> {
        if self.phase != Phase::Created {
            return Err(RuntimeError::Phase {
                detail: "run_to_entry_point called twice",
            });
        }
        let start = clock.now();

        // 1. VM / interpreter start.
        clock.charge(self.profile.runtime_start);

        // 2. Load classes/modules: open a share of them as real rootfs
        //    files (fd-table state scales with the runtime, like the I/O
        //    manifests in the paper's Table 3), then charge the per-unit
        //    parse cost.
        let open_count = ((self.profile.load_units / 4).clamp(8, 120)) as usize;
        let paths: Vec<String> = self
            .kernel
            .vfs
            .server()
            .paths()
            .filter(|p| p.starts_with("/lib"))
            .take(open_count)
            .map(str::to_string)
            .collect();
        for path in &paths {
            let fd = self.kernel.vfs.open(path, false, clock, model)?;
            self.kernel.vfs.read(fd, 64, clock, model)?;
        }
        clock.charge(
            self.profile
                .unit_cost
                .saturating_mul(u64::from(self.profile.load_units)),
        );

        // 3. Allocate and fill the heap (real pages, deterministic pattern).
        let heap = self.profile.heap_range();
        self.space
            .map_anonymous(heap, Perms::RW, ShareMode::Private, "app-heap")?;
        for vpn in heap.iter() {
            let b = heap_page_byte(vpn);
            self.space.write(vpn, 0, &[b, b, b, b], clock, model)?;
        }

        // 4. Leave behind the kernel object graph the paper counts.
        self.profile
            .graph_spec()
            .populate(&mut self.kernel, clock, model)?;

        // 5. Fine-grained entry point: hoisted fraction of handler prep runs
        //    before the checkpoint (§6.7).
        clock.charge(self.profile.exec_time.scale(self.profile.entry_point_shift));

        self.phase = Phase::AtEntryPoint;
        Ok(InitReport {
            init_time: clock.since(start),
            kernel_objects: self.kernel.object_count(),
            heap_pages: heap.len(),
        })
    }

    /// Serves one request: touches the initialized state (driving demand
    /// paging / CoW on restored sandboxes), performs I/O (driving on-demand
    /// reconnection), and charges the handler's compute time.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Phase`] before initialization; substrate errors.
    pub fn invoke_handler(
        &mut self,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<ExecReport, RuntimeError> {
        if self.phase != Phase::AtEntryPoint {
            return Err(RuntimeError::Phase {
                detail: "invoke_handler before run_to_entry_point",
            });
        }
        let start = clock.now();
        let syscalls_before = self.kernel.stats().syscalls;

        // Touch a deterministic, strided subset of the initialized heap.
        let heap = self.profile.heap_range();
        let touch = ((heap.len() as f64 * self.profile.exec_touch_fraction) as u64).min(heap.len());
        let stride = if touch == 0 {
            1
        } else {
            (heap.len() / touch.max(1)).max(1)
        };
        let mut touched = 0u64;
        let mut written = 0u64;
        let mut buf = [0u8; 4];
        let mut vpn = heap.start;
        while vpn < heap.end && touched < touch {
            self.space.read(vpn, 0, &mut buf, clock, model)?;
            debug_assert_eq!(
                buf[0],
                heap_page_byte(vpn),
                "restored heap corrupt at {vpn:#x}"
            );
            touched += 1;
            if (written as f64) < touched as f64 * self.profile.exec_write_fraction {
                self.space.write(vpn, 8, &buf, clock, model)?;
                written += 1;
            }
            vpn += stride;
        }

        // Allocate request-scoped pages.
        let alloc = VpnRange::with_len(
            self.exec_base + self.invocations * (self.profile.exec_alloc_pages + 1),
            self.profile.exec_alloc_pages,
        );
        if self.profile.exec_alloc_pages > 0 {
            self.space
                .map_anonymous(alloc, Perms::RW, ShareMode::Private, "req-scratch")?;
            self.space.touch_range(alloc, true, clock, model)?;
        }

        // Request I/O: read the handler binary, append to the log, ping a
        // socket if the app has one (all may trigger on-demand reconnection).
        // Everything goes through the guest kernel's syscall dispatcher, so
        // the Table-1 policy gate and interposition costs apply.
        use guest_kernel::{SyscallInvocation, SyscallRet};
        if self.profile.exec_io {
            let fd = match self.kernel.syscall(
                SyscallInvocation::Openat {
                    path: "/app/handler.bin",
                    writable: false,
                },
                clock,
                model,
            )? {
                SyscallRet::Fd(fd) => fd,
                other => unreachable!("openat returned {other:?}"),
            };
            self.kernel
                .syscall(SyscallInvocation::Read { fd, len: 32 }, clock, model)?;
            self.kernel
                .syscall(SyscallInvocation::Close { fd }, clock, model)?;
            let log = match self.kernel.syscall(
                SyscallInvocation::Openat {
                    path: "/var/log/function.log",
                    writable: true,
                },
                clock,
                model,
            )? {
                SyscallRet::Fd(fd) => fd,
                other => unreachable!("openat returned {other:?}"),
            };
            self.kernel.syscall(
                SyscallInvocation::Write {
                    fd: log,
                    data: b"request served\n",
                },
                clock,
                model,
            )?;
            self.kernel
                .syscall(SyscallInvocation::Close { fd: log }, clock, model)?;
            let first_sock = self.kernel.net.iter().next().map(|s| s.id);
            if let Some(sock) = first_sock {
                self.kernel.syscall(
                    SyscallInvocation::Sendmsg { sock, bytes: 256 },
                    clock,
                    model,
                )?;
            }
        }

        // Handler compute (minus any hoisted fraction).
        clock.charge(
            self.profile
                .exec_time
                .scale(1.0 - self.profile.entry_point_shift),
        );

        self.invocations += 1;
        Ok(ExecReport {
            exec_time: clock.since(start),
            pages_touched: touched,
            pages_written: written,
            pages_allocated: self.profile.exec_alloc_pages,
            syscalls: self.kernel.stats().syscalls - syscalls_before,
        })
    }

    /// Captures the full checkpoint source at the func-entry point: kernel
    /// object records, the I/O manifest, and every initialized memory page.
    /// Offline — charges `offline_clock`, never the boot critical path.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Phase`] if not at the entry point.
    pub fn checkpoint_source(
        &self,
        offline_clock: &SimClock,
        model: &CostModel,
    ) -> Result<imagefmt::CheckpointSource, RuntimeError> {
        if self.phase != Phase::AtEntryPoint {
            return Err(RuntimeError::Phase {
                detail: "checkpoint before entry point",
            });
        }
        let pages = self.space.snapshot_private_pages();
        offline_clock.charge(model.memcpy((pages.len() * PAGE_SIZE) as u64));
        Ok(imagefmt::CheckpointSource {
            objects: self.kernel.checkpoint_objects(),
            app_pages: pages
                .into_iter()
                .map(|(vpn, data)| imagefmt::PagePayload { vpn, data })
                .collect(),
            io_conns: self.kernel.io_manifest(),
        })
    }
}

impl fmt::Display for WrappedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] phase={:?} invocations={}",
            self.profile.name, self.profile.runtime, self.phase, self.invocations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimClock, CostModel) {
        (SimClock::new(), CostModel::experimental_machine())
    }

    #[test]
    fn init_reaches_calibrated_latency() {
        let (clock, model) = setup();
        let profile = AppProfile::c_hello();
        let mut p = WrappedProgram::start(&profile, &clock, &model).unwrap();
        let report = p.run_to_entry_point(&clock, &model).unwrap();
        assert!(p.at_entry_point());
        // C-hello app init ≈ 120 ms (gVisor total 142 ms minus ~22 ms sandbox).
        let ms = report.init_time.as_millis_f64();
        assert!((100.0..140.0).contains(&ms), "init {ms} ms");
        assert!(report.kernel_objects >= 500);
        assert_eq!(report.heap_pages, 64);
    }

    #[test]
    fn specjbb_init_near_two_seconds() {
        let (clock, model) = setup();
        let mut p = WrappedProgram::start(&AppProfile::java_specjbb(), &clock, &model).unwrap();
        let report = p.run_to_entry_point(&clock, &model).unwrap();
        let ms = report.init_time.as_millis_f64();
        assert!((1_900.0..2_100.0).contains(&ms), "init {ms} ms");
        // Object graph within 10% of the paper's 37 838.
        assert!(
            (34_000..42_000).contains(&report.kernel_objects),
            "{}",
            report.kernel_objects
        );
    }

    #[test]
    fn double_init_rejected() {
        let (clock, model) = setup();
        let mut p = WrappedProgram::start(&AppProfile::c_hello(), &clock, &model).unwrap();
        p.run_to_entry_point(&clock, &model).unwrap();
        assert!(matches!(
            p.run_to_entry_point(&clock, &model).unwrap_err(),
            RuntimeError::Phase { .. }
        ));
    }

    #[test]
    fn handler_before_init_rejected() {
        let (clock, model) = setup();
        let mut p = WrappedProgram::start(&AppProfile::c_hello(), &clock, &model).unwrap();
        assert!(matches!(
            p.invoke_handler(&clock, &model).unwrap_err(),
            RuntimeError::Phase { .. }
        ));
    }

    #[test]
    fn handler_touches_small_fraction() {
        let (clock, model) = setup();
        let profile = AppProfile::python_django();
        let mut p = WrappedProgram::start(&profile, &clock, &model).unwrap();
        p.run_to_entry_point(&clock, &model).unwrap();
        let report = p.invoke_handler(&clock, &model).unwrap();
        // Insight II: execution touches a small fraction of init state.
        assert!(report.pages_touched * 4 < profile.init_heap_pages);
        assert!(report.pages_written <= report.pages_touched);
        assert!(report.syscalls > 0);
    }

    #[test]
    fn handler_is_repeatable() {
        let (clock, model) = setup();
        let mut p = WrappedProgram::start(&AppProfile::c_hello(), &clock, &model).unwrap();
        p.run_to_entry_point(&clock, &model).unwrap();
        p.invoke_handler(&clock, &model).unwrap();
        p.invoke_handler(&clock, &model).unwrap();
        assert_eq!(p.invocations(), 2);
    }

    #[test]
    fn entry_point_shift_moves_latency_from_exec_to_init() {
        let model = CostModel::experimental_machine();
        let base = AppProfile::java_specjbb();
        let shifted = base.clone().with_entry_point_shift(2.0 / 3.0);

        let run = |profile: &AppProfile| {
            let clock = SimClock::new();
            let mut p = WrappedProgram::start(profile, &clock, &model).unwrap();
            let init = p.run_to_entry_point(&clock, &model).unwrap();
            let exec = p.invoke_handler(&clock, &model).unwrap();
            (init.init_time, exec.exec_time)
        };
        let (init_a, exec_a) = run(&base);
        let (init_b, exec_b) = run(&shifted);
        assert!(init_b > init_a);
        // Fig. 16a: ~3× execution-latency reduction.
        let ratio = exec_a.as_nanos() as f64 / exec_b.as_nanos() as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn checkpoint_source_captures_everything() {
        let (clock, model) = setup();
        let mut p = WrappedProgram::start(&AppProfile::c_hello(), &clock, &model).unwrap();
        assert!(
            p.checkpoint_source(&clock, &model).is_err(),
            "must be at entry point"
        );
        p.run_to_entry_point(&clock, &model).unwrap();
        let src = p.checkpoint_source(&SimClock::new(), &model).unwrap();
        assert_eq!(src.objects.len() as u64, p.kernel.object_count());
        assert!(src.app_pages.len() as u64 >= 64, "heap captured");
        assert!(!src.io_conns.is_empty());
        // Pages carry the deterministic pattern.
        for page in src.app_pages.iter().take(8) {
            if page.vpn >= HEAP_BASE && page.vpn < HEAP_BASE + 64 {
                assert_eq!(page.data[0], heap_page_byte(page.vpn));
            }
        }
    }
}
