use std::fmt;

use serde::{Deserialize, Serialize};

/// The five language runtimes the paper evaluates (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeKind {
    /// Natively compiled C/C++ programs.
    C,
    /// The JVM.
    Java,
    /// CPython.
    Python,
    /// CRuby (MRI).
    Ruby,
    /// Node.js (V8).
    Node,
}

impl RuntimeKind {
    /// All runtimes, in the paper's presentation order.
    pub const ALL: [RuntimeKind; 5] = [
        RuntimeKind::C,
        RuntimeKind::Java,
        RuntimeKind::Python,
        RuntimeKind::Ruby,
        RuntimeKind::Node,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::C => "C",
            RuntimeKind::Java => "Java",
            RuntimeKind::Python => "Python",
            RuntimeKind::Ruby => "Ruby",
            RuntimeKind::Node => "Node.js",
        }
    }

    /// What the runtime calls its loadable unit ("class", "module", ...).
    pub fn unit_name(self) -> &'static str {
        match self {
            RuntimeKind::C => "shared object",
            RuntimeKind::Java => "class",
            RuntimeKind::Python => "module",
            RuntimeKind::Ruby => "gem",
            RuntimeKind::Node => "package",
        }
    }

    /// True for runtimes that need a VM/interpreter before any app code runs
    /// (the paper: "high-level languages usually need to initialize a
    /// language runtime (e.g., JVM) before loading application codes").
    pub fn needs_vm(self) -> bool {
        !matches!(self, RuntimeKind::C)
    }
}

impl fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_units() {
        assert_eq!(RuntimeKind::Java.label(), "Java");
        assert_eq!(RuntimeKind::Java.unit_name(), "class");
        assert_eq!(RuntimeKind::Node.to_string(), "Node.js");
        assert!(RuntimeKind::Python.needs_vm());
        assert!(!RuntimeKind::C.needs_vm());
        assert_eq!(RuntimeKind::ALL.len(), 5);
    }
}
