use std::sync::Arc;

use guest_kernel::gofer::FsServer;
use guest_kernel::GraphSpec;
use memsim::VpnRange;
use serde::{Deserialize, Serialize};
use simtime::SimNanos;

use crate::{RuntimeKind, HEAP_BASE};

/// A calibrated application profile: everything the simulation needs to know
/// about one of the paper's evaluated programs (§6.1–§6.2).
///
/// The headline numbers are calibrated so that `sandbox init + app init`
/// reproduces the paper's gVisor startup latencies (Fig. 6, Fig. 11,
/// Table 2) — see `DESIGN.md` §6 for the sources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Display name matching the paper's figures ("Java-SPECjbb", ...).
    pub name: String,
    /// Language runtime.
    pub runtime: RuntimeKind,
    /// VM/interpreter start cost (e.g. JVM start: 1.85 s for SPECjbb, Fig. 2).
    pub runtime_start: SimNanos,
    /// Loadable units (classes/modules/gems) pulled in during init.
    pub load_units: u32,
    /// Per-unit load cost (parse + verify + JIT warm).
    pub unit_cost: SimNanos,
    /// Guest heap pages allocated and written during initialization.
    pub init_heap_pages: u64,
    /// Guest-kernel object-graph size at the func-entry point
    /// (37 838 for SPECjbb, §2.2).
    pub kernel_objects: u64,
    /// Handler compute time per request.
    pub exec_time: SimNanos,
    /// Fraction of the init heap the handler touches (Insight II: small).
    pub exec_touch_fraction: f64,
    /// Fraction of touched pages the handler writes (drives CoW).
    pub exec_write_fraction: f64,
    /// Fresh pages the handler allocates per request.
    pub exec_alloc_pages: u64,
    /// Rootfs shape: number of library files the FS server holds.
    pub rootfs_files: u32,
    /// Rootfs shape: bytes per library file.
    pub rootfs_file_size: u32,
    /// OCI configuration size, KiB (parse cost scales with it).
    pub config_kib: u32,
    /// Fraction of `exec_time` hoisted before the func-entry point by the
    /// fine-grained entry-point optimization (§6.7, Fig. 16a). 0 = default
    /// entry point at handler invocation.
    pub entry_point_shift: f64,
    /// Whether the handler performs request I/O (reads its binary, writes
    /// the log, pings a socket). Pure-compute microbenchmarks disable it.
    pub exec_io: bool,
}

impl AppProfile {
    #[allow(clippy::too_many_arguments)] // internal calibration constructor
    fn base(
        name: &str,
        runtime: RuntimeKind,
        runtime_start_ms: f64,
        load_units: u32,
        unit_cost_us: f64,
        init_heap_pages: u64,
        kernel_objects: u64,
        exec_ms: f64,
    ) -> AppProfile {
        AppProfile {
            name: name.to_string(),
            runtime,
            runtime_start: SimNanos::from_millis_f64(runtime_start_ms),
            load_units,
            unit_cost: SimNanos::from_micros_f64(unit_cost_us),
            init_heap_pages,
            kernel_objects,
            exec_time: SimNanos::from_millis_f64(exec_ms),
            exec_touch_fraction: 0.08,
            exec_write_fraction: 0.25,
            exec_alloc_pages: 32,
            rootfs_files: 48,
            rootfs_file_size: 16 << 10,
            config_kib: 4,
            entry_point_shift: 0.0,
            exec_io: true,
        }
    }

    /// C "helloworld" — the minimal application (sub-ms sfork target).
    pub fn c_hello() -> AppProfile {
        let mut p = Self::base("C-hello", RuntimeKind::C, 22.0, 24, 4_000.0, 64, 6_000, 0.2);
        p.exec_touch_fraction = 0.5;
        p.exec_alloc_pages = 4;
        p.rootfs_files = 24;
        p
    }

    /// Nginx web server (the paper's real C application, v1.11.3).
    pub fn c_nginx() -> AppProfile {
        let mut p = Self::base(
            "C-Nginx",
            RuntimeKind::C,
            24.0,
            30,
            4_000.0,
            512,
            7_000,
            1.2,
        );
        p.rootfs_files = 40;
        p
    }

    /// Java "helloworld" (Table 2's lightweight Java function).
    pub fn java_hello() -> AppProfile {
        let mut p = Self::base(
            "Java-hello",
            RuntimeKind::Java,
            505.0,
            420,
            280.0,
            12_800,
            29_500,
            0.5,
        );
        p.rootfs_files = 64;
        p.rootfs_file_size = 32 << 10;
        p
    }

    /// SPECjbb 2015 backend (the paper's heavyweight Java case: 1.85 s JVM
    /// start, 200 MB app memory, 37 838 kernel objects).
    pub fn java_specjbb() -> AppProfile {
        let mut p = Self::base(
            "Java-SPECjbb",
            RuntimeKind::Java,
            1_796.0,
            460,
            280.0,
            51_200,
            37_838,
            2_643.8,
        );
        p.exec_touch_fraction = 0.30;
        p.exec_alloc_pages = 512;
        p.rootfs_files = 96;
        p.rootfs_file_size = 32 << 10;
        p.config_kib = 8;
        p
    }

    /// Python "helloworld".
    pub fn python_hello() -> AppProfile {
        Self::base(
            "Python-hello",
            RuntimeKind::Python,
            84.0,
            40,
            800.0,
            1_536,
            16_500,
            0.3,
        )
    }

    /// Django web framework (the paper's real Python application).
    pub fn python_django() -> AppProfile {
        let mut p = Self::base(
            "Python-Django",
            RuntimeKind::Python,
            84.0,
            310,
            800.0,
            10_240,
            15_000,
            25.0,
        );
        p.rootfs_files = 80;
        p
    }

    /// Ruby "helloworld".
    pub fn ruby_hello() -> AppProfile {
        Self::base(
            "Ruby-hello",
            RuntimeKind::Ruby,
            94.0,
            30,
            1_000.0,
            1_024,
            24_000,
            0.3,
        )
    }

    /// Sinatra web library (the paper's real Ruby application).
    pub fn ruby_sinatra() -> AppProfile {
        Self::base(
            "Ruby-Sinatra",
            RuntimeKind::Ruby,
            94.0,
            230,
            1_000.0,
            6_144,
            12_000,
            18.0,
        )
    }

    /// Node.js "helloworld".
    pub fn node_hello() -> AppProfile {
        Self::base(
            "Node.js-hello",
            RuntimeKind::Node,
            108.0,
            40,
            900.0,
            2_048,
            16_500,
            0.3,
        )
    }

    /// Node.js web server (the paper's real Node application).
    pub fn node_web() -> AppProfile {
        Self::base(
            "Node.js-Web",
            RuntimeKind::Node,
            108.0,
            260,
            900.0,
            6_144,
            9_000,
            8.0,
        )
    }

    /// The ten micro/real applications of Figure 11, in figure order.
    pub fn catalogue() -> Vec<AppProfile> {
        vec![
            Self::c_hello(),
            Self::c_nginx(),
            Self::java_hello(),
            Self::java_specjbb(),
            Self::python_hello(),
            Self::python_django(),
            Self::ruby_hello(),
            Self::ruby_sinatra(),
            Self::node_hello(),
            Self::node_web(),
        ]
    }

    /// Total application-initialization latency (runtime start + unit loads),
    /// excluding the real page faults and syscalls charged during init.
    pub fn app_init_estimate(&self) -> SimNanos {
        self.runtime_start + self.unit_cost.saturating_mul(u64::from(self.load_units))
    }

    /// The guest heap range this application initializes.
    pub fn heap_range(&self) -> VpnRange {
        VpnRange::with_len(HEAP_BASE, self.init_heap_pages)
    }

    /// Kernel-graph spec matching this application.
    pub fn graph_spec(&self) -> GraphSpec {
        GraphSpec::sized(self.kernel_objects)
    }

    /// Builds the per-function FS server with this app's rootfs shape.
    pub fn build_fs_server(&self) -> Arc<FsServer> {
        Arc::new(
            FsServer::builder(self.name.clone())
                .file(
                    "/app/handler.bin",
                    format!("handler:{}", self.name).into_bytes(),
                )
                .file(
                    "/app/config.json",
                    vec![b'{'; (self.config_kib as usize) << 10],
                )
                .synthetic_tree(
                    "/lib",
                    self.rootfs_files as usize,
                    self.rootfs_file_size as usize,
                )
                .persistent("/var/log/function.log")
                .build(),
        )
    }

    /// The function-specific subset of `load_units`: what a *language
    /// runtime template* (paper §4.3) must still load after `sfork`, because
    /// the template only pre-initialized the language environment. Roughly a
    /// quarter of the units belong to the app rather than the runtime.
    pub fn app_only_units(&self) -> u32 {
        (self.load_units / 4).max(1)
    }

    /// Applies the fine-grained func-entry-point optimization (§6.7): hoists
    /// `fraction` of the handler's work before the checkpoint.
    pub fn with_entry_point_shift(mut self, fraction: f64) -> AppProfile {
        self.entry_point_shift = fraction.clamp(0.0, 1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_ten_apps_in_figure_order() {
        let apps = AppProfile::catalogue();
        assert_eq!(apps.len(), 10);
        assert_eq!(apps[0].name, "C-hello");
        assert_eq!(apps[3].name, "Java-SPECjbb");
        assert_eq!(apps[9].name, "Node.js-Web");
    }

    #[test]
    fn specjbb_matches_paper_calibration() {
        let p = AppProfile::java_specjbb();
        assert_eq!(p.kernel_objects, 37_838);
        assert_eq!(p.init_heap_pages * 4096, 200 << 20); // 200 MB
                                                         // JVM start + class load ≈ 1.98 s (Fig. 2's 1 850 ms JVM start plus
                                                         // class loading; heap-touch faults add the remainder in simulation).
        let est = p.app_init_estimate().as_millis_f64();
        assert!((1_900.0..2_000.0).contains(&est), "est {est}");
        assert_eq!(p.exec_time, SimNanos::from_micros(2_643_800));
    }

    #[test]
    fn hello_apps_are_light() {
        for p in [
            AppProfile::c_hello(),
            AppProfile::python_hello(),
            AppProfile::ruby_hello(),
        ] {
            // Light in memory and handler work; the kernel-object counts are
            // calibrated against the paper's §6.2 warm-boot latencies.
            assert!(p.init_heap_pages <= 2_048, "{}", p.name);
            assert!(p.exec_time < SimNanos::from_millis(1), "{}", p.name);
            assert!(
                p.kernel_objects < AppProfile::java_specjbb().kernel_objects,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn vm_languages_start_slower_than_c() {
        // The VM/interpreter start itself dominates for high-level languages
        // (paper §2.2); C pays only loader work.
        let c = AppProfile::c_hello().runtime_start;
        for p in [
            AppProfile::java_hello(),
            AppProfile::python_hello(),
            AppProfile::node_hello(),
        ] {
            assert!(p.runtime_start > c, "{} VM start not slower than C", p.name);
            assert!(p.runtime.needs_vm());
        }
    }

    #[test]
    fn fs_server_shape() {
        let p = AppProfile::c_hello();
        let fs = p.build_fs_server();
        assert!(fs.exists("/app/handler.bin"));
        assert!(fs.exists("/lib/lib0000.so"));
        assert!(fs.exists("/var/log/function.log"));
        assert_eq!(fs.file_count(), 24 + 3);
    }

    #[test]
    fn entry_point_shift_clamps() {
        let p = AppProfile::c_hello().with_entry_point_shift(2.0);
        assert_eq!(p.entry_point_shift, 1.0);
        let p = AppProfile::c_hello().with_entry_point_shift(-1.0);
        assert_eq!(p.entry_point_shift, 0.0);
    }

    #[test]
    fn heap_range_is_page_count() {
        let p = AppProfile::c_nginx();
        assert_eq!(p.heap_range().len(), 512);
        assert_eq!(p.heap_range().start, HEAP_BASE);
    }
}
