use std::error::Error;
use std::fmt;

/// Errors from wrapped-program initialization or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A guest-kernel operation failed.
    Kernel(guest_kernel::KernelError),
    /// A memory operation failed.
    Mem(memsim::MemError),
    /// The program is not in the right phase for the requested step.
    Phase {
        /// What was attempted.
        detail: &'static str,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Kernel(e) => write!(f, "kernel: {e}"),
            RuntimeError::Mem(e) => write!(f, "memory: {e}"),
            RuntimeError::Phase { detail } => write!(f, "wrong phase: {detail}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Kernel(e) => Some(e),
            RuntimeError::Mem(e) => Some(e),
            RuntimeError::Phase { .. } => None,
        }
    }
}

impl From<guest_kernel::KernelError> for RuntimeError {
    fn from(e: guest_kernel::KernelError) -> Self {
        RuntimeError::Kernel(e)
    }
}

impl From<memsim::MemError> for RuntimeError {
    fn from(e: memsim::MemError) -> Self {
        RuntimeError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let k: RuntimeError = guest_kernel::KernelError::BadFd { fd: 3 }.into();
        assert!(k.to_string().contains("kernel"));
        let m: RuntimeError = memsim::MemError::Unmapped { vpn: 5 }.into();
        assert!(m.to_string().contains("memory"));
        assert!(RuntimeError::Phase { detail: "x" }
            .to_string()
            .contains("phase"));
        assert!(Error::source(&k).is_some());
    }
}
