//! Smoke tests over the figure regenerators: the cheap experiments compute
//! rows whose shape matches the paper's claims, so `repro` output can be
//! trusted without eyeballing.

use bench::figures::{generality, hostopts, scale, startup};
use simtime::{CostModel, SimNanos};

fn model() -> CostModel {
    CostModel::experimental_machine()
}

#[test]
fn fig07_taxonomy_orders_cold_warm_fork() {
    let rows = startup::fig07(&model()).unwrap();
    assert_eq!(rows[0].0, "cold boot");
    assert!(rows[0].1 > rows[1].1, "cold !> warm");
    assert!(rows[1].1 > rows[2].1, "warm !> fork");
    assert!(
        rows[2].1 < SimNanos::from_millis(1),
        "fork boot {}",
        rows[2].1
    );
}

#[test]
fn fig16b_series_matches_paper_shape() {
    let rows = hostopts::fig16b(&model());
    assert_eq!(rows.len(), 6);
    // Baseline grows monotonically; total ≈ 1.6 ms; cache flat <50 µs.
    let total: SimNanos = rows.iter().map(|(_, b, _)| *b).sum();
    assert!((1.0..2.2).contains(&total.as_millis_f64()), "{total}");
    assert!(rows.windows(2).all(|w| w[1].1 > w[0].1));
    assert!(rows.iter().all(|(_, _, c)| *c < SimNanos::from_micros(50)));
}

#[test]
fn fig16c_pml_ratio_near_10x() {
    let rows = hostopts::fig16c(&model());
    let (_, pml, nopml) = rows.last().unwrap();
    let ratio = pml.as_nanos() as f64 / nopml.as_nanos() as f64;
    assert!((8.0..13.0).contains(&ratio), "ratio {ratio}");
    assert!(*pml > SimNanos::from_millis(5));
}

#[test]
fn fig16d_has_exactly_the_expected_bursts() {
    let rows = hostopts::fig16d(&model());
    let eager_bursts = rows
        .iter()
        .filter(|(_, e, _)| *e > SimNanos::from_millis(1))
        .count();
    let lazy_bursts = rows
        .iter()
        .filter(|(_, _, l)| *l > SimNanos::from_millis(1))
        .count();
    // Table starts at 64 fds; 40 warm-up + 40 measured dups cross one
    // doubling point (64) within the measured window.
    assert_eq!(eager_bursts, 1, "{rows:?}");
    assert_eq!(lazy_bursts, 0);
}

#[test]
fn sensitivity_conclusions_are_robust() {
    let rows = generality::sensitivity().unwrap();
    assert!(rows.len() >= 5);
    for r in &rows {
        assert!(
            r.speedup() > 50.0,
            "{}: speedup {}",
            r.scenario,
            r.speedup()
        );
        assert!(r.fork < r.warm, "{}: fork !< warm", r.scenario);
        assert!(r.warm < r.gvisor, "{}: warm !< gvisor", r.scenario);
    }
}

#[test]
fn generality_firecracker_snapshot_wins_big() {
    let rows = generality::generality(&model()).unwrap();
    let stock = rows.iter().find(|r| r.system.contains("stock")).unwrap();
    let snap = rows.iter().find(|r| r.system.contains("snapshot")).unwrap();
    assert!(stock.startup.as_nanos() > snap.startup.as_nanos() * 10);
}

#[test]
fn tail_latency_fork_beats_cache_p99_by_100x() {
    let (cached, forked) = scale::tail_latency(&model()).unwrap();
    assert!(cached.startup.p99.as_nanos() > forked.startup.p99.as_nanos() * 100);
}
