//! Criterion benchmarks for the discrete-event simulation core.
//!
//! Measures *simulated requests per wall-clock second* — the engine's own
//! throughput, not the virtual latencies it reports. Two regimes:
//!
//! - `closed_loop`: the full-fidelity path (`Simulation::run`) serving
//!   every request through real instance pools;
//! - `fleet`: the open-loop event engine (`Simulation::run_fleet`) on
//!   calibrated costs — the path that carries the 10^5–10^6-instance
//!   density grid, expected one to two orders of magnitude faster per
//!   request.
//!
//! `cargo bench -p bench --bench simbench -- --test` runs one iteration of
//! each as a smoke check (wired into `tools/check.sh`).

use bench::fleetbench;
use catalyzer::{BootMode, CatalyzerEngine};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use platform::simulate::TraceRequest;
use platform::Simulation;
use runtimes::AppProfile;
use simtime::{CostModel, SimNanos};
use std::hint::black_box;
use workloads::catalogue;
use workloads::generator::{open_loop, Arrivals, Popularity, TraceSpec};

const CLOSED_REQUESTS: u64 = 400;
const FLEET_REQUESTS: usize = 20_000;

fn closed_trace() -> Vec<TraceRequest> {
    (0..CLOSED_REQUESTS)
        .map(|i| TraceRequest {
            arrival: SimNanos::from_micros(500).saturating_mul(i),
            function: usize::try_from(i % 2).unwrap_or(0),
        })
        .collect()
}

fn fleet_trace() -> Vec<TraceRequest> {
    let spec = TraceSpec {
        functions: fleetbench::FUNCTIONS,
        count: FLEET_REQUESTS,
        arrivals: Arrivals::Poisson { rate_hz: 5_000.0 },
        popularity: Popularity::Zipf { exponent: 1.0 },
        seed: 0x51B3,
    };
    open_loop(&spec)
        .into_iter()
        .map(|r| TraceRequest {
            arrival: r.arrival,
            function: r.function,
        })
        .collect()
}

/// Closed-loop engine throughput: requests through real instance pools.
fn closed_loop(c: &mut Criterion) {
    let model = CostModel::experimental_machine();
    let trace = closed_trace();
    let mut group = c.benchmark_group("simbench");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CLOSED_REQUESTS));
    group.bench_function("closed_loop_400req_2fn", |b| {
        b.iter(|| {
            let report = Simulation::new(vec![AppProfile::c_hello(), AppProfile::c_nginx()])
                .with_engine(|_| CatalyzerEngine::standalone(BootMode::Fork))
                .with_model(model.clone())
                .run(&trace)
                .unwrap();
            black_box(report.completed)
        })
    });
}

/// Fleet engine throughput: the same simulated platform dynamics on the
/// arena + calibrated-cost path, at 50x the trace length.
fn fleet(c: &mut Criterion) {
    let model = CostModel::experimental_machine();
    let trace = fleet_trace();
    let mut group = c.benchmark_group("simbench");
    // Each iteration re-calibrates the 10k-function catalogue (~2 s);
    // three samples keep the smoke gate in tools/check.sh quick.
    group.sample_size(3);
    group.throughput(Throughput::Elements(
        u64::try_from(FLEET_REQUESTS).unwrap_or(u64::MAX),
    ));
    group.bench_function("fleet_20kreq_10kfn", |b| {
        b.iter(|| {
            let outcome = Simulation::new(catalogue::synthetic(fleetbench::FUNCTIONS, 0x51B3))
                .with_model(model.clone())
                .run_fleet(&trace)
                .unwrap();
            black_box(outcome.completed)
        })
    });
}

criterion_group!(benches, closed_loop, fleet);
criterion_main!(benches);
