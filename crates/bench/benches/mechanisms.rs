//! Criterion micro-benchmarks of the core mechanisms: the real Rust-level
//! cost of the data paths whose *simulated* cost the figures report.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use imagefmt::{classic, flat, CheckpointSource, IoConn, ObjKind, ObjRecord, PagePayload};
use memsim::{AddressSpace, EptLayer, MappedImage, Perms, ShareMode, VpnRange, PAGE_SIZE};
use simtime::{CostModel, SimClock};
use std::hint::black_box;
use std::sync::Arc;

fn sample_source(objects: u64, pages: u64) -> CheckpointSource {
    CheckpointSource {
        objects: (0..objects)
            .map(|i| {
                ObjRecord::new(
                    i + 1,
                    ObjKind::ALL[(i % 14) as usize],
                    i as u32,
                    (0..(i % 3)).map(|k| (i + k) % objects + 1).collect(),
                    vec![(i % 251) as u8; 24],
                )
            })
            .collect(),
        app_pages: (0..pages)
            .map(|i| PagePayload {
                vpn: 0x1_0000 + i,
                data: Bytes::from(vec![(i % 255) as u8; PAGE_SIZE]),
            })
            .collect(),
        io_conns: vec![IoConn::file("/lib/x.so", true); 8],
    }
}

fn lz_codec(c: &mut Criterion) {
    let data: Vec<u8> = (0..1 << 20)
        .map(|i: u32| {
            if i.is_multiple_of(7) {
                (i / 7) as u8
            } else {
                0xAB
            }
        })
        .collect();
    let packed = bytes::Bytes::from(imagefmt::lz::compress(&data));
    let mut group = c.benchmark_group("lz");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("compress_1MiB", |b| {
        b.iter(|| black_box(imagefmt::lz::compress(&data)))
    });
    group.bench_function("decompress_1MiB", |b| {
        b.iter(|| black_box(imagefmt::lz::decompress(&packed).unwrap()))
    });
    group.finish();
}

fn classic_format(c: &mut Criterion) {
    let model = CostModel::experimental_machine();
    let src = sample_source(5_000, 16);
    let image = classic::write(&src, &SimClock::new(), &model);
    let mut group = c.benchmark_group("classic");
    group.bench_function("write_5k_objects", |b| {
        b.iter(|| black_box(classic::write(&src, &SimClock::new(), &model)))
    });
    group.bench_function("read_5k_objects", |b| {
        b.iter(|| black_box(classic::read(&image, &SimClock::new(), &model).unwrap()))
    });
    group.finish();
}

fn flat_format(c: &mut Criterion) {
    let model = CostModel::experimental_machine();
    let src = sample_source(5_000, 16);
    let bytes = flat::write(&src, &SimClock::new(), &model);
    let mapped = MappedImage::new("bench.func", bytes);
    let parsed = flat::FlatImage::parse(&mapped, &SimClock::new(), &model).unwrap();
    let mut group = c.benchmark_group("flat");
    group.bench_function("write_5k_objects", |b| {
        b.iter(|| black_box(flat::write(&src, &SimClock::new(), &model)))
    });
    group.bench_function("restore_metadata_5k_objects", |b| {
        // Stage 1 (map) + stage 2 (parallel relation-table fixup), real
        // crossbeam threads each iteration.
        b.iter(|| black_box(parsed.restore_metadata(&SimClock::new(), &model).unwrap()))
    });
    group.finish();
}

fn ept_paths(c: &mut Criterion) {
    let model = CostModel::experimental_machine();
    let pages = 1_024u64;
    let image = MappedImage::new(
        "mem.img",
        Bytes::from(vec![7u8; (pages as usize) * PAGE_SIZE]),
    );
    let mut group = c.benchmark_group("ept");
    group.throughput(Throughput::Bytes(pages * PAGE_SIZE as u64));
    group.bench_function("cow_fault_storm_1024_pages", |b| {
        let clock = SimClock::new();
        let base = EptLayer::lazy_from_image(&image, 0, &clock, &model);
        b.iter(|| {
            let mut space = AddressSpace::new("bench");
            space
                .attach_base(
                    Arc::clone(&base),
                    VpnRange::new(0, pages),
                    "img",
                    &clock,
                    &model,
                )
                .unwrap();
            space
                .touch_range(VpnRange::new(0, pages), true, &clock, &model)
                .unwrap();
            black_box(space.stats().cow_faults)
        })
    });
    group.bench_function("sfork_clone_1024_pages", |b| {
        let clock = SimClock::new();
        let mut template = AddressSpace::new("tmpl");
        template
            .map_anonymous(
                VpnRange::new(0, pages),
                Perms::RW,
                ShareMode::Private,
                "heap",
            )
            .unwrap();
        template
            .touch_range(VpnRange::new(0, pages), true, &clock, &model)
            .unwrap();
        b.iter(|| black_box(template.sfork_clone("child").unwrap()))
    });
    group.finish();
}

fn kernel_graph(c: &mut Criterion) {
    let model = CostModel::experimental_machine();
    let clock = SimClock::new();
    let fs = Arc::new(
        guest_kernel::gofer::FsServer::builder("bench")
            .synthetic_tree("/lib", 32, 256)
            .build(),
    );
    let mut kernel = guest_kernel::GuestKernel::boot("bench", Arc::clone(&fs), &clock, &model);
    guest_kernel::GraphSpec::sized(5_000)
        .populate(&mut kernel, &clock, &model)
        .unwrap();
    let records = kernel.checkpoint_objects();
    let mut group = c.benchmark_group("kernel");
    group.bench_function("checkpoint_5k_objects", |b| {
        b.iter(|| black_box(kernel.checkpoint_objects()))
    });
    group.bench_function("restore_5k_objects", |b| {
        b.iter(|| {
            black_box(
                guest_kernel::GuestKernel::restore_from_records(
                    "r",
                    &records,
                    Arc::clone(&fs),
                    false,
                    &SimClock::new(),
                    &model,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn crc(c: &mut Criterion) {
    let data = vec![0x5Au8; 1 << 20];
    let mut group = c.benchmark_group("crc32");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB", |b| b.iter(|| black_box(imagefmt::crc32(&data))));
    group.finish();
}

criterion_group!(
    mechanisms,
    lz_codec,
    classic_format,
    flat_format,
    ept_paths,
    kernel_graph,
    crc
);
criterion_main!(mechanisms);
