//! Criterion benchmark of catalint itself: full-workspace scan
//! throughput, cold vs. warm vs. parallel.
//!
//! The checker runs inside the tier-1 test suite and `tools/check.sh`,
//! so its wall-clock cost is paid on every push. Three cases over the
//! real workspace source (bytes/sec throughput so the numbers survive
//! the repo growing):
//!
//! - **cold** — a fresh [`AnalysisCache`] per iteration: every file is
//!   lexed and segmented from scratch. This is what one-shot
//!   `cargo run -p catalint` pays.
//! - **warm** — a cache pre-warmed with the same content: every file
//!   hash-hits and the scan rebuilds only the call graph, dataflow
//!   summaries, and passes. This is the rescans-after-one-edit regime
//!   the cache exists for; it must be measurably faster than cold.
//! - **parallel** — a fresh cache per iteration with `--jobs 4`: the
//!   lex/segment work fans out over the worker pool while the passes
//!   stay serial. Speedup over cold bounds what parallelism buys a
//!   one-shot scan; findings are byte-identical by construction.

use std::hint::black_box;
use std::path::Path;

use catalint::cache::AnalysisCache;
use catalint::config::Config;
use catalint::{
    analyze_with_cache, analyze_with_cache_jobs, collect_workspace, find_workspace_root,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn analyzer_scan(c: &mut Criterion) {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("bench runs inside the workspace");
    let files = collect_workspace(&root).expect("workspace sources readable");
    let cfg = Config::workspace_default();
    let bytes: u64 = files.iter().map(|f| f.content.len() as u64).sum();

    let mut group = c.benchmark_group("analyzer");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes));

    group.bench_function("scan-cold", |b| {
        b.iter(|| {
            let mut cache = AnalysisCache::new();
            black_box(analyze_with_cache(black_box(&files), &cfg, &mut cache))
        })
    });

    group.bench_function("scan-warm", |b| {
        let mut cache = AnalysisCache::new();
        // Prime the cache outside the measured region.
        let _ = analyze_with_cache(&files, &cfg, &mut cache);
        b.iter(|| black_box(analyze_with_cache(black_box(&files), &cfg, &mut cache)))
    });

    group.bench_function("scan-parallel", |b| {
        b.iter(|| {
            let mut cache = AnalysisCache::new();
            black_box(analyze_with_cache_jobs(
                black_box(&files),
                &cfg,
                &mut cache,
                4,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, analyzer_scan);
criterion_main!(benches);
