//! Criterion benchmarks, one group per paper figure/table.
//!
//! These measure the *real wall-clock* cost of regenerating each experiment
//! (the simulation machinery does real work: serialization, pointer fixup,
//! CoW copies), while the figures themselves report deterministic virtual
//! time. Run `cargo run -p bench --bin repro -- all` for the tables.

use catalyzer::{BootMode, Catalyzer, CatalyzerConfig, CatalyzerEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use runtimes::AppProfile;
use sandbox::{BootCtx, BootEngine};
use simtime::CostModel;
use std::hint::black_box;

fn model() -> CostModel {
    CostModel::experimental_machine()
}

/// Fig. 1 / Fig. 13a: an end-to-end fork-boot invocation of a DeathStar
/// microservice.
fn fig01_fig13_e2e(c: &mut Criterion) {
    let model = model();
    let profile = workloads::deathstar::Service::Text.profile();
    let mut engine = CatalyzerEngine::standalone(BootMode::Fork);
    // Warm the template outside the measurement.
    engine.boot(&profile, &mut BootCtx::fresh(&model)).unwrap();
    c.bench_function("fig01_13/e2e_fork_boot_deathstar_text", |b| {
        b.iter(|| {
            let mut ctx = BootCtx::fresh(&model);
            let mut outcome = engine.boot(&profile, &mut ctx).unwrap();
            outcome.program.invoke_handler(ctx.clock(), &model).unwrap();
            black_box(ctx.now())
        })
    });
}

/// Fig. 2 / Fig. 6: gVisor and gVisor-restore boots.
fn fig02_06_gvisor_paths(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("fig02_06");
    group.sample_size(10);
    let profile = AppProfile::python_hello();
    group.bench_function("gvisor_boot_python_hello", |b| {
        let mut engine = sandbox::GvisorEngine::new();
        b.iter(|| {
            black_box(
                engine
                    .boot(&profile, &mut BootCtx::fresh(&model))
                    .unwrap()
                    .boot_latency,
            )
        })
    });
    group.bench_function("gvisor_restore_boot_python_hello", |b| {
        let mut engine = sandbox::GvisorRestoreEngine::new();
        engine.boot(&profile, &mut BootCtx::fresh(&model)).unwrap(); // compile image
        b.iter(|| {
            black_box(
                engine
                    .boot(&profile, &mut BootCtx::fresh(&model))
                    .unwrap()
                    .boot_latency,
            )
        })
    });
    group.finish();
}

/// Fig. 4: the four baseline sandboxes booting Python-hello.
fn fig04_baselines(c: &mut Criterion) {
    let model = model();
    let profile = AppProfile::python_hello();
    let mut group = c.benchmark_group("fig04");
    group.sample_size(10);
    group.bench_function("docker", |b| {
        let mut e = sandbox::DockerEngine::new();
        b.iter(|| {
            black_box(
                e.boot(&profile, &mut BootCtx::fresh(&model))
                    .unwrap()
                    .boot_latency,
            )
        })
    });
    group.bench_function("firecracker", |b| {
        let mut e = sandbox::FirecrackerEngine::new();
        b.iter(|| {
            black_box(
                e.boot(&profile, &mut BootCtx::fresh(&model))
                    .unwrap()
                    .boot_latency,
            )
        })
    });
    group.bench_function("hyper", |b| {
        let mut e = sandbox::HyperContainerEngine::new();
        b.iter(|| {
            black_box(
                e.boot(&profile, &mut BootCtx::fresh(&model))
                    .unwrap()
                    .boot_latency,
            )
        })
    });
    group.finish();
}

/// Fig. 7 / Fig. 11: Catalyzer's three boot kinds.
fn fig07_11_catalyzer_modes(c: &mut Criterion) {
    let model = model();
    let profile = AppProfile::c_hello();
    let mut group = c.benchmark_group("fig07_11");
    group.sample_size(10);
    group.bench_function("cold_boot_c_hello", |b| {
        let mut system = Catalyzer::new();
        system.prewarm_image(&profile, &model).unwrap();
        b.iter(|| {
            let mut ctx = BootCtx::fresh(&model);
            system.boot(BootMode::Cold, &profile, &mut ctx).unwrap();
            black_box(ctx.now())
        })
    });
    group.bench_function("warm_boot_c_hello", |b| {
        let mut system = Catalyzer::new();
        system
            .boot(BootMode::Cold, &profile, &mut BootCtx::fresh(&model))
            .unwrap();
        b.iter(|| {
            let mut ctx = BootCtx::fresh(&model);
            system.boot(BootMode::Warm, &profile, &mut ctx).unwrap();
            black_box(ctx.now())
        })
    });
    group.bench_function("fork_boot_c_hello", |b| {
        let mut system = Catalyzer::new();
        system.ensure_template(&profile, &model).unwrap();
        b.iter(|| {
            let mut ctx = BootCtx::fresh(&model);
            system.boot(BootMode::Fork, &profile, &mut ctx).unwrap();
            black_box(ctx.now())
        })
    });
    group.finish();
}

/// Fig. 12: the ablation ladder on Python Django.
fn fig12_ablation(c: &mut Criterion) {
    let model = model();
    let profile = AppProfile::python_django();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for (label, config) in [
        ("overlay_only", CatalyzerConfig::overlay_only()),
        (
            "overlay_separated",
            CatalyzerConfig::overlay_and_separated(),
        ),
        (
            "overlay_separated_lazy",
            CatalyzerConfig::overlay_separated_lazy(),
        ),
    ] {
        group.bench_function(label, |b| {
            let mut system = Catalyzer::with_config(config);
            system.prewarm_image(&profile, &model).unwrap();
            b.iter(|| {
                let mut ctx = BootCtx::fresh(&model);
                system.boot(BootMode::Cold, &profile, &mut ctx).unwrap();
                black_box(ctx.now())
            })
        });
    }
    group.finish();
}

/// Fig. 14: memory accounting across concurrent sandboxes.
fn fig14_memory(c: &mut Criterion) {
    let model = model();
    let profile = workloads::deathstar::Service::ComposePost.profile();
    c.bench_function("fig14/usage_4_forked_sandboxes", |b| {
        let mut engine = CatalyzerEngine::standalone(BootMode::Fork);
        engine.boot(&profile, &mut BootCtx::fresh(&model)).unwrap();
        b.iter(|| {
            black_box(platform::memory::concurrent_usage(&mut engine, &profile, 4, &model).unwrap())
        })
    });
}

/// Fig. 15: one fork boot under background-instance contention.
fn fig15_scaling(c: &mut Criterion) {
    let model = model();
    let profile = workloads::deathstar::Service::Text.profile();
    c.bench_function("fig15/fork_boot_with_32_running", |b| {
        let mut engine = CatalyzerEngine::standalone(BootMode::Fork);
        b.iter(|| {
            black_box(platform::scaling::sweep(&mut engine, &profile, &[32], &model, 7).unwrap())
        })
    });
}

/// Fig. 16: host-level primitives.
fn fig16_host(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("fig16");
    group.bench_function("kvcalloc_series", |b| {
        b.iter(|| black_box(bench::figures::hostopts::fig16b(&model)))
    });
    group.bench_function("set_memory_region_series", |b| {
        b.iter(|| black_box(bench::figures::hostopts::fig16c(&model)))
    });
    group.bench_function("dup_series", |b| {
        b.iter(|| black_box(bench::figures::hostopts::fig16d(&model)))
    });
    group.finish();
}

/// Table 2: Java language-template cold boot.
fn table2_language_template(c: &mut Criterion) {
    let model = model();
    let profile = AppProfile::java_hello();
    c.bench_function("table2/java_template_cold_boot", |b| {
        let mut system = Catalyzer::new();
        system
            .ensure_language_template(runtimes::RuntimeKind::Java, &model)
            .unwrap();
        b.iter(|| {
            let mut ctx = BootCtx::fresh(&model);
            system.language_template_boot(&profile, &mut ctx).unwrap();
            black_box(ctx.now())
        })
    });
}

/// Table 3: warm-boot memory-cost extraction.
fn table3_costs(c: &mut Criterion) {
    let model = model();
    let profile = AppProfile::c_nginx();
    c.bench_function("table3/warm_memory_costs", |b| {
        let mut system = Catalyzer::new();
        system.prewarm_image(&profile, &model).unwrap();
        b.iter(|| black_box(system.warm_memory_costs(&profile.name, &model).unwrap()))
    });
}

criterion_group!(
    figures,
    fig01_fig13_e2e,
    fig02_06_gvisor_paths,
    fig04_baselines,
    fig07_11_catalyzer_modes,
    fig12_ablation,
    fig14_memory,
    fig15_scaling,
    fig16_host,
    table2_language_template,
    table3_costs,
);
criterion_main!(figures);
