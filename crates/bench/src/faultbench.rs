//! Deterministic JSON export of the fault-injection sweep (`repro faults`).
//!
//! `generate` drives a [`Gateway`] over the Catalyzer fork-boot ladder
//! through a fault-rate × resilience-policy grid plus one fault *storm*
//! (every consultation inside a virtual-time window faults), and records
//! what each policy salvages: availability, degraded-success counts,
//! latency quantiles, per-point fault counts, fallback distribution, and
//! recovery latency. Everything runs on virtual time from one seeded
//! [`FaultPlan`], so two runs produce byte-identical output —
//! `tools/check.sh` relies on this to validate `BENCH_pr3.json` the same
//! way it gates `BENCH_pr2.json`.

use catalyzer::{BootMode, CatalyzerEngine};
use faultsim::{FaultPlan, InjectionPoint};
use platform::{Gateway, ResiliencePolicy};
use runtimes::AppProfile;
use serde::{Deserialize, Serialize};
use simtime::names;
use simtime::{CostModel, LatencyHistogram, SimNanos};

/// Schema tag so downstream tooling can reject stale files.
pub const SCHEMA: &str = "catalyzer-bench/pr3-v1";

/// Seed every cell's [`FaultPlan`] is built from.
pub const SEED: u64 = 0xFA17;

/// Invocations per grid cell — enough that every nonzero rate fires.
pub const REQUESTS_PER_CELL: u64 = 64;

/// Fault rates swept (probability per injection-point consultation).
pub const RATES: &[f64] = &[0.0, 0.05, 0.2];

/// How often one injection point fired in a cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointCount {
    /// Injection point label (`image-mmap`, `sfork-merge`, ...).
    pub point: String,
    /// Faults fired there over the whole cell.
    pub fired: u64,
}

/// How often one fallback rung absorbed a request in a cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RungCount {
    /// Ladder rung (`warm`, `cold`).
    pub rung: String,
    /// Times the ladder fell back to this rung.
    pub count: u64,
}

/// One (fault rate, policy) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultCell {
    /// Fault rate per injection-point consultation.
    pub rate: f64,
    /// Policy label ([`ResiliencePolicy::label`]).
    pub policy: String,
    /// Requests driven through the gateway.
    pub requests: u64,
    /// Requests answered (clean or degraded).
    pub ok: u64,
    /// Successes that absorbed at least one fault.
    pub degraded: u64,
    /// Requests that surfaced an error.
    pub failed: u64,
    /// `ok / requests`.
    pub availability: f64,
    /// Median end-to-end latency over answered requests.
    pub p50: SimNanos,
    /// 99th-percentile end-to-end latency over answered requests.
    pub p99: SimNanos,
    /// 99th-percentile recovery latency (failed attempts + backoff +
    /// quarantine before the winning attempt) over degraded successes.
    pub recovery_p99: SimNanos,
    /// Retries performed across the cell.
    pub retries: u64,
    /// Quarantine-and-rebuild cycles across the cell.
    pub quarantines: u64,
    /// Faults fired per injection point, in pipeline order (all six points,
    /// zeros included, so rows line up across cells).
    pub faults: Vec<PointCount>,
    /// Fallback distribution over the boot ladder.
    pub fallbacks: Vec<RungCount>,
}

/// The fault-storm experiment: every consultation inside the window faults,
/// and recovery (backoff + retry + fallback) carries the request past the
/// storm's end on the virtual clock.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StormCell {
    /// Fault rate inside the window.
    pub rate: f64,
    /// Storm start on each request's boot timeline.
    pub window_start: SimNanos,
    /// Storm end (half-open).
    pub window_end: SimNanos,
    /// Requests driven through the storm.
    pub requests: u64,
    /// Requests answered.
    pub ok: u64,
    /// Successes that absorbed at least one fault.
    pub degraded: u64,
    /// Requests that surfaced an error.
    pub failed: u64,
    /// `ok / requests`.
    pub availability: f64,
    /// 99th-percentile end-to-end latency under the storm.
    pub p99: SimNanos,
    /// 99th-percentile end-to-end latency of the same gateway with no
    /// faults armed — the recovery overhead is the gap to [`StormCell::p99`].
    pub p99_quiet: SimNanos,
}

/// The whole `BENCH_pr3.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultBenchExport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Machine model the latencies were simulated on.
    pub machine: String,
    /// Function every cell invokes.
    pub function: String,
    /// Seed every cell's plan uses.
    pub seed: u64,
    /// Invocations per cell.
    pub requests_per_cell: u64,
    /// Fault rates swept.
    pub rates: Vec<f64>,
    /// Policies swept, in sweep order.
    pub policies: Vec<String>,
    /// The rate × policy grid, rates outer, policies inner.
    pub cells: Vec<FaultCell>,
    /// The fault-storm experiment.
    pub storm: StormCell,
}

/// Retry budget per ladder rung for the sweep's recovering policies. The
/// default (2) is tuned for sporadic faults; at the sweep's top rate a
/// burst can eat a whole rung, so the bench provisions deeper.
pub const SWEEP_RETRIES: u32 = 6;

/// The policy lineup every export must cover.
fn policy_lineup() -> Vec<ResiliencePolicy> {
    vec![
        ResiliencePolicy::none(),
        ResiliencePolicy {
            max_retries: SWEEP_RETRIES,
            ..ResiliencePolicy::retry_only()
        },
        ResiliencePolicy {
            max_retries: SWEEP_RETRIES,
            ..ResiliencePolicy::full()
        },
    ]
}

fn fresh_gateway(model: &CostModel) -> Gateway<CatalyzerEngine> {
    let mut gateway = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model.clone());
    gateway.register(AppProfile::c_hello());
    gateway
}

/// Drives `requests` invocations and summarizes what the gateway absorbed.
fn drive(
    mut gateway: Gateway<CatalyzerEngine>,
    requests: u64,
) -> (u64, u64, u64, LatencyHistogram, Gateway<CatalyzerEngine>) {
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut totals = LatencyHistogram::new();
    for _ in 0..requests {
        match gateway.invoke("C-hello") {
            Ok(report) => {
                ok += 1;
                totals.record(report.total());
            }
            Err(_) => failed += 1,
        }
    }
    let degraded = gateway.metrics().counter(names::INVOKE_DEGRADED);
    (ok, failed, degraded, totals, gateway)
}

fn run_cell(rate: f64, policy: ResiliencePolicy, model: &CostModel) -> FaultCell {
    let gateway = fresh_gateway(model)
        .with_policy(policy)
        .with_faults(FaultPlan::uniform(SEED, rate));
    let (ok, failed, degraded, totals, gateway) = drive(gateway, REQUESTS_PER_CELL);
    let metrics = gateway.metrics();
    // The six boot-pipeline points the single-node gateway consults. The
    // cluster-only `TemplateTransfer` seam never fires on this path and is
    // deliberately excluded so the export's rows (and bytes) are stable.
    const BOOT_POINTS: [InjectionPoint; 6] = [
        InjectionPoint::ImageMmap,
        InjectionPoint::ArenaMap,
        InjectionPoint::Relink,
        InjectionPoint::IoReconnect,
        InjectionPoint::ZygoteSpecialize,
        InjectionPoint::SforkMerge,
    ];
    let faults = BOOT_POINTS
        .iter()
        .map(|point| PointCount {
            point: point.label().to_string(),
            fired: gateway
                .injector()
                .map_or(0, |i| i.borrow().fired_at(*point)),
        })
        .collect();
    let fallbacks = ["warm", "cold"]
        .iter()
        .map(|rung| RungCount {
            rung: (*rung).to_string(),
            count: metrics.counter(&names::fallback_rung(rung)),
        })
        .collect();
    FaultCell {
        rate,
        policy: policy.label().to_string(),
        requests: REQUESTS_PER_CELL,
        ok,
        degraded,
        failed,
        availability: ok as f64 / REQUESTS_PER_CELL as f64,
        p50: totals.p50().unwrap_or(SimNanos::ZERO),
        p99: totals.p99().unwrap_or(SimNanos::ZERO),
        recovery_p99: metrics
            .histogram(names::INVOKE_RECOVERY)
            .and_then(LatencyHistogram::p99)
            .unwrap_or(SimNanos::ZERO),
        retries: metrics.counter(names::INVOKE_RETRIES),
        quarantines: metrics.counter(names::QUARANTINE_COUNT),
        faults,
        fallbacks,
    }
}

fn run_storm(model: &CostModel) -> StormCell {
    let window = (SimNanos::ZERO, SimNanos::from_millis(2));
    // Rate 1.0 with pure transients: every consultation inside the window
    // faults, and only the virtual clock advancing past `window.1` (via
    // detection latency + backoff + the fallback ladder) ends the storm.
    let plan = FaultPlan::uniform(SEED, 1.0)
        .with_poison_ratio(0.0)
        .with_window(window.0, window.1);
    let gateway = fresh_gateway(model)
        .with_policy(ResiliencePolicy::full())
        .with_faults(plan);
    let (ok, failed, degraded, totals, _) = drive(gateway, REQUESTS_PER_CELL);
    let (quiet_ok, _, _, quiet_totals, _) = drive(fresh_gateway(model), REQUESTS_PER_CELL);
    debug_assert_eq!(quiet_ok, REQUESTS_PER_CELL);
    StormCell {
        rate: 1.0,
        window_start: window.0,
        window_end: window.1,
        requests: REQUESTS_PER_CELL,
        ok,
        degraded,
        failed,
        availability: ok as f64 / REQUESTS_PER_CELL as f64,
        p99: totals.p99().unwrap_or(SimNanos::ZERO),
        p99_quiet: quiet_totals.p99().unwrap_or(SimNanos::ZERO),
    }
}

/// Runs the full sweep: [`RATES`] × the policy lineup plus the storm.
pub fn generate(model: &CostModel) -> FaultBenchExport {
    let policies = policy_lineup();
    let mut cells = Vec::new();
    for &rate in RATES {
        for &policy in &policies {
            cells.push(run_cell(rate, policy, model));
        }
    }
    FaultBenchExport {
        schema: SCHEMA.to_string(),
        machine: model.machine.label().to_string(),
        function: AppProfile::c_hello().name,
        seed: SEED,
        requests_per_cell: REQUESTS_PER_CELL,
        rates: RATES.to_vec(),
        policies: policies.iter().map(|p| p.label().to_string()).collect(),
        cells,
        storm: run_storm(model),
    }
}

/// Serializes an export to its canonical JSON form.
///
/// # Errors
///
/// Serialization errors (none in practice: the types are closed).
pub fn to_json(export: &FaultBenchExport) -> Result<String, serde_json::Error> {
    serde_json::to_string(export)
}

/// Parses a previously exported document.
///
/// # Errors
///
/// Malformed JSON or schema drift.
pub fn from_json(text: &str) -> Result<FaultBenchExport, serde_json::Error> {
    serde_json::from_str(text)
}

/// Validates an export's internal consistency: schema tag, full grid
/// coverage, count arithmetic, and the resilience claims the sweep exists
/// to demonstrate — zero-rate and retry+fallback rows keep availability at
/// 1.0, the no-recovery baseline actually loses requests, and degraded
/// successes pay a nonzero, accounted recovery latency.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate(export: &FaultBenchExport) -> Result<(), String> {
    if export.schema != SCHEMA {
        return Err(format!(
            "schema mismatch: {} (expected {SCHEMA})",
            export.schema
        ));
    }
    if export.cells.len() != export.rates.len() * export.policies.len() {
        return Err(format!(
            "grid incomplete: {} cells for {} rates x {} policies",
            export.cells.len(),
            export.rates.len(),
            export.policies.len()
        ));
    }
    for cell in &export.cells {
        let tag = format!("cell rate={} policy={}", cell.rate, cell.policy);
        if !export.policies.contains(&cell.policy) {
            return Err(format!("{tag}: unknown policy"));
        }
        if cell.requests == 0 {
            return Err(format!("{tag}: empty cell"));
        }
        if cell.ok + cell.failed != cell.requests {
            return Err(format!("{tag}: ok + failed != requests"));
        }
        if cell.degraded > cell.ok {
            return Err(format!("{tag}: more degraded than ok"));
        }
        let availability = cell.ok as f64 / cell.requests as f64;
        if (cell.availability - availability).abs() > 1e-12 {
            return Err(format!("{tag}: availability != ok/requests"));
        }
        let fired: u64 = cell.faults.iter().map(|p| p.fired).sum();
        if cell.rate == 0.0 {
            // A zero plan must be invisible: nothing fires, nothing degrades.
            if cell.availability != 1.0 || cell.degraded != 0 || fired != 0 {
                return Err(format!("{tag}: zero-rate cell saw faults"));
            }
        } else {
            if fired == 0 {
                return Err(format!("{tag}: nonzero rate never fired"));
            }
            match cell.policy.as_str() {
                // The sweep's headline: the full ladder answers everything...
                "retry+fallback" => {
                    if cell.availability != 1.0 {
                        return Err(format!("{tag}: ladder dropped requests"));
                    }
                    if cell.degraded == 0 {
                        return Err(format!("{tag}: faults fired but nothing degraded"));
                    }
                    if cell.recovery_p99.is_zero() {
                        return Err(format!("{tag}: degraded success with free recovery"));
                    }
                }
                // ...while no recovery at all visibly loses requests.
                "none" if cell.failed == 0 => {
                    return Err(format!("{tag}: no-recovery baseline never failed"));
                }
                _ => {}
            }
        }
    }
    let storm = &export.storm;
    if storm.ok + storm.failed != storm.requests {
        return Err("storm: ok + failed != requests".to_string());
    }
    if storm.availability != 1.0 {
        return Err("storm: recovery must ride out the storm window".to_string());
    }
    if storm.degraded != storm.requests {
        return Err("storm: every request must hit the storm".to_string());
    }
    if storm.p99 <= storm.p99_quiet {
        return Err("storm: recovery cost must show in the p99".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_valid_and_deterministic() {
        let model = CostModel::experimental_machine();
        let a = generate(&model);
        validate(&a).unwrap();
        let b = generate(&model);
        assert_eq!(to_json(&a).unwrap(), to_json(&b).unwrap());
    }

    #[test]
    fn export_roundtrips_through_json() {
        let model = CostModel::experimental_machine();
        let export = generate(&model);
        let text = to_json(&export).unwrap();
        let back = from_json(&text).unwrap();
        validate(&back).unwrap();
        assert_eq!(to_json(&back).unwrap(), text);
    }

    #[test]
    fn validate_rejects_a_dropped_request_under_the_full_ladder() {
        let model = CostModel::experimental_machine();
        let mut export = generate(&model);
        let cell = export
            .cells
            .iter_mut()
            .find(|c| c.rate > 0.0 && c.policy == "retry+fallback")
            .expect("sweep covers the full ladder");
        cell.ok -= 1;
        cell.failed += 1;
        cell.availability = cell.ok as f64 / cell.requests as f64;
        let err = validate(&export).unwrap_err();
        assert!(err.contains("ladder dropped"), "{err}");
    }
}
