//! Deterministic JSON export of the chaos/survivability grid (`repro chaos`).
//!
//! `generate` drives the chaos-aware open-loop cluster engine
//! ([`platform::cluster::ClusterSim::with_chaos`]) through a fault-class ×
//! cluster-size × failover-policy grid on one shared flash-crowd trace —
//! the pr8 shape (Zipf Poisson baseline plus a sub-boot-width viral burst)
//! scaled to a 1 000-function catalogue. Every cell injects one node-level
//! fault from [`faultsim::NodePlan`] just before the burst:
//!
//! - **crash** — the viral function's first template holder dies, dropping
//!   its in-flight work and replicas;
//! - **gray** — the same holder goes fail-slow (every boot, exec, and
//!   transfer wire stretched [`GRAY_SLOWDOWN`]×) without ever failing a
//!   liveness check;
//! - **partition** — the holder is islanded across the burst and heals
//!   after it.
//!
//! Each fault runs under both [`platform::cluster::ChaosPolicy`] settings:
//! `full-failover` (health-aware routing, re-replication, hedged
//! transfers, waiter timeouts) and the `no-failover` static-placement
//! baseline. The survivability gate the validator pins: full-failover
//! holds availability ≥ (N−1)/N with a sub-millisecond startup p99 while
//! the baseline fails typed at corpses, routes into the gray node's
//! stretched tail, or hangs waiters on orphaned transfers.
//!
//! The **storm** probe is the kill-the-busiest-holder composition: the
//! viral function's primary holder goes gray right before the burst —
//! slow enough that hedged transfers fire and win — then crashes
//! mid-burst, aborting the still-pending wires. Full-failover re-routes
//! every orphan; the baseline strands them (`hung > 0`).
//!
//! Everything runs on virtual time from seeded traces and plans, so two
//! runs produce byte-identical output — `tools/check.sh` validates
//! `BENCH_pr9.json` the same way it gates the pr2–pr4, pr7, and pr8
//! exports.

use faultsim::NodePlan;
use platform::cluster::{ChaosOutcome, ChaosPolicy, ClusterConfig, ClusterSim, RoutingPolicy};
use platform::simulate::TraceRequest;
use platform::PlatformError;
use runtimes::AppProfile;
use serde::{Deserialize, Serialize};
use simtime::{CostModel, SimNanos};
use workloads::catalogue;
use workloads::generator::{open_loop, Arrivals, Popularity, TraceSpec};

use crate::fleetbench::QuantRow;

/// Schema tag so downstream tooling can reject stale files.
pub const SCHEMA: &str = "catalyzer-bench/pr9-v1";

/// Seed for the catalogue, the baseline trace, and the fault plans.
pub const SEED: u64 = 0x0C10_0901;

/// Functions in the shared catalogue (cycling the fourteen paper shapes).
pub const FUNCTIONS: usize = 1_000;

/// Zipf exponent of baseline function popularity.
pub const ZIPF_EXPONENT: f64 = 1.0;

/// Keep-alive every cell runs with.
pub const KEEP_ALIVE: SimNanos = SimNanos::from_millis(200);

/// Warm instances retained per (node, function).
pub const MAX_IDLE: usize = 4;

/// Concurrent-instance cap per node.
pub const NODE_CAPACITY: usize = 2_000;

/// Poisson baseline rate under the burst.
pub const BASE_RATE_HZ: f64 = 2_000.0;

/// Baseline requests around the burst (~2 s of traffic).
pub const TAIL: usize = 4_000;

/// Instant the viral burst lands.
pub const BURST_AT: SimNanos = SimNanos::from_secs(1);

/// Window the burst's arrivals spread over — shorter than one fork boot.
pub const BURST_WIDTH: SimNanos = SimNanos::from_micros(500);

/// Burst size: arrivals for the viral function — larger than both
/// template holders' *combined* capacity, so the overflow must pick a
/// rung (remote sfork, shed) under every policy, and a crash mid-burst
/// always finds transfer wires in flight to orphan.
pub const BURST: usize = 4_500;

/// The function that goes viral (the Zipf head). With
/// [`PLACEMENT_BUDGET`] = 2 its template holders are nodes 0 and 1 —
/// every grid fault targets holder 0.
pub const VIRAL_FUNCTION: usize = 0;

/// Template replicas placed per function in every cell.
pub const PLACEMENT_BUDGET: usize = 2;

/// The cluster-size axis of the grid.
pub const NODE_AXIS: [usize; 3] = [2, 4, 8];

/// Instant the grid fault lands — 100 ms before the burst, so the
/// scheduler meets the burst already degraded.
pub const FAULT_AT: SimNanos = SimNanos::from_millis(900);

/// When the partition cell's island rejoins (after the burst has passed).
pub const PARTITION_HEAL: SimNanos = SimNanos::from_millis(1_050);

/// Gray cells stretch every latency on the sick node by this factor.
pub const GRAY_SLOWDOWN: f64 = 200.0;

/// End of the gray window (past the end of the trace: sick all run).
pub const GRAY_UNTIL: SimNanos = SimNanos::from_secs(3);

/// Storm: the busiest holder goes gray this long before the burst…
pub const STORM_GRAY_AT: SimNanos = SimNanos::from_millis(990);

/// …and crashes this far into the burst: after the first hedges have
/// fired (hedge delay 300 µs) but mid-wire for the gray-stretched
/// transfers still pending, which the crash orphans.
pub const STORM_CRASH_AT: SimNanos = SimNanos::from_nanos(1_000_000_000 + 700_000);

/// One grid cell: a node fault × cluster size × failover policy on the
/// shared flash-crowd trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Fault-class label (`crash` / `gray` / `partition` / `storm`).
    pub fault: String,
    /// Nodes in the cluster.
    pub nodes: u64,
    /// Template replicas placed per function.
    pub placement_budget: u64,
    /// Failover-policy label (`full-failover` / `no-failover`).
    pub policy: String,
    /// Requests in the trace.
    pub requests: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests shed with every routable node at capacity.
    pub shed: u64,
    /// Requests the fault (or the policy) lost outright: killed in flight,
    /// routed at an unreachable node, or hung on an orphaned transfer.
    pub failed: u64,
    /// Of `failed`: waiters still stranded on orphaned transfers at the
    /// end of the run.
    pub hung: u64,
    /// `completed / requests` — the survivability gate's headline number.
    pub availability: f64,
    /// Requests served by a warm instance.
    pub reuses: u64,
    /// Requests served by a local sfork on a template holder.
    pub local: u64,
    /// Requests served by a remote sfork.
    pub remote: u64,
    /// Requests served by a cold boot.
    pub cold: u64,
    /// Template transfers started.
    pub transfers: u64,
    /// Scheduled node crashes that fired.
    pub crashes: u64,
    /// Heartbeat rounds the health tracker ran.
    pub heartbeats: u64,
    /// Heartbeat transitions into `Suspect` — gray nodes caught slow-ack.
    pub suspected: u64,
    /// Waiters re-routed off an aborted transfer by the failover policy.
    pub failovers: u64,
    /// Template replicas rebuilt on new holders after a crash.
    pub rereplications: u64,
    /// Hedged (second-source) transfers fired.
    pub hedges: u64,
    /// Hedges that beat their primary.
    pub hedge_wins: u64,
    /// In-flight transfers aborted by a source-node crash.
    pub aborted_transfers: u64,
    /// Requests that failed typed at an unreachable node.
    pub unreachable: u64,
    /// Chaos observations logged (crash/heal/suspect/failover/…).
    pub chaos_events: u64,
    /// Events the queue processed.
    pub events: u64,
    /// Virtual time of the last event.
    pub horizon: SimNanos,
    /// Startup distribution across every served request.
    pub startup: QuantRow,
    /// End-to-end (startup + execution) distribution.
    pub end_to_end: QuantRow,
    /// Startup distribution of the remote-sfork rung alone.
    pub remote_startup: QuantRow,
    /// FNV-1a digest of every routing decision in order.
    pub route_hash: u64,
}

/// The whole `BENCH_pr9.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosBenchExport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Machine model the latencies were simulated on.
    pub machine: String,
    /// Catalogue/trace/plan seed.
    pub seed: u64,
    /// Functions in the catalogue.
    pub functions: u64,
    /// Zipf exponent of baseline popularity.
    pub zipf_exponent: f64,
    /// Keep-alive every cell runs with.
    pub keep_alive: SimNanos,
    /// Concurrent-instance cap per node.
    pub node_capacity: u64,
    /// Poisson baseline rate.
    pub base_rate_hz: f64,
    /// Viral burst size.
    pub burst: u64,
    /// Burst window width.
    pub burst_width: SimNanos,
    /// Instant the grid fault lands.
    pub fault_at: SimNanos,
    /// When the partition cells heal.
    pub partition_heal: SimNanos,
    /// Gray-cell latency stretch factor.
    pub gray_slowdown: f64,
    /// Heartbeat spacing of the health tracker.
    pub heartbeat_interval: SimNanos,
    /// Ack latency above which a node is suspected fail-slow.
    pub suspicion_threshold: SimNanos,
    /// Hedge delay before a second transfer source fires.
    pub hedge_delay: SimNanos,
    /// How long an orphaned transfer waiter waits before re-routing.
    pub transfer_timeout: SimNanos,
    /// The grid, in axis order (fault class, then nodes, then policy).
    pub cells: Vec<ChaosCell>,
    /// The gray-then-crash busiest-holder storm under full failover.
    pub storm_full: ChaosCell,
    /// The same storm under the no-failover baseline.
    pub storm_none: ChaosCell,
}

/// The grid catalogue: [`FUNCTIONS`] functions cycling the fourteen paper
/// profiles, each with its own name (its own placement and warm set).
fn chaos_catalogue() -> Vec<AppProfile> {
    let bases = catalogue::fig1_functions();
    (0..FUNCTIONS)
        .map(|i| {
            let mut p = bases[i % bases.len()].clone();
            p.name = format!("{}-{i:04}", p.name);
            p
        })
        .collect()
}

/// The shared flash-crowd trace: a Zipf Poisson baseline with [`BURST`]
/// extra arrivals for [`VIRAL_FUNCTION`] spread evenly over
/// [`BURST_WIDTH`] at [`BURST_AT`].
fn flash_crowd_trace() -> Vec<TraceRequest> {
    let spec = TraceSpec {
        functions: FUNCTIONS,
        count: TAIL,
        arrivals: Arrivals::Poisson {
            rate_hz: BASE_RATE_HZ,
        },
        popularity: Popularity::Zipf {
            exponent: ZIPF_EXPONENT,
        },
        seed: SEED,
    };
    let mut trace: Vec<TraceRequest> = open_loop(&spec)
        .into_iter()
        .map(|r| TraceRequest {
            arrival: r.arrival,
            function: r.function,
        })
        .collect();
    let step = BURST_WIDTH.as_nanos().max(1) / BURST as u64;
    for i in 0..BURST {
        trace.push(TraceRequest {
            arrival: BURST_AT.saturating_add(SimNanos::from_nanos(step.saturating_mul(i as u64))),
            function: VIRAL_FUNCTION,
        });
    }
    trace.sort_by_key(|r| r.arrival);
    trace
}

/// The grid's three fault classes, all aimed at the viral function's
/// first template holder (node 0).
fn grid_plans() -> Vec<(&'static str, NodePlan)> {
    vec![
        ("crash", NodePlan::quiet(SEED).with_crash(0, FAULT_AT)),
        (
            "gray",
            NodePlan::quiet(SEED).with_gray(0, FAULT_AT, GRAY_UNTIL, GRAY_SLOWDOWN),
        ),
        (
            "partition",
            NodePlan::quiet(SEED).with_partition([0], FAULT_AT, PARTITION_HEAL),
        ),
    ]
}

/// The storm plan: the busiest holder goes gray just before the burst
/// (hedges fire around its stretched wires), then crashes mid-burst
/// (the pending wires abort).
fn storm_plan() -> NodePlan {
    NodePlan::quiet(SEED)
        .with_gray(0, STORM_GRAY_AT, GRAY_UNTIL, GRAY_SLOWDOWN)
        .with_crash(0, STORM_CRASH_AT)
}

fn cell_row(
    fault: &str,
    nodes: usize,
    policy: ChaosPolicy,
    requests: usize,
    outcome: &ChaosOutcome,
) -> ChaosCell {
    ChaosCell {
        fault: fault.to_string(),
        nodes: u64::try_from(nodes).unwrap_or(u64::MAX),
        placement_budget: u64::try_from(PLACEMENT_BUDGET).unwrap_or(u64::MAX),
        policy: policy.label().to_string(),
        requests: u64::try_from(requests).unwrap_or(u64::MAX),
        completed: outcome.cluster.completed,
        shed: outcome.cluster.shed,
        failed: outcome.failed,
        hung: outcome.hung,
        availability: outcome.availability,
        reuses: outcome.cluster.reuses,
        local: outcome.cluster.local,
        remote: outcome.cluster.remote,
        cold: outcome.cluster.cold,
        transfers: outcome.cluster.transfers,
        crashes: outcome.crashes,
        heartbeats: outcome.heartbeats,
        suspected: outcome.suspected,
        failovers: outcome.failovers,
        rereplications: outcome.rereplications,
        hedges: outcome.hedges,
        hedge_wins: outcome.hedge_wins,
        aborted_transfers: outcome.aborted_transfers,
        unreachable: outcome.unreachable,
        chaos_events: u64::try_from(outcome.chaos_log.len()).unwrap_or(u64::MAX),
        events: outcome.cluster.events,
        horizon: outcome.cluster.horizon,
        startup: outcome.cluster.startup.into(),
        end_to_end: outcome.cluster.end_to_end.into(),
        remote_startup: outcome.cluster.remote_startup.into(),
        route_hash: outcome.cluster.route_hash,
    }
}

fn run_cell(
    model: &CostModel,
    cat: &[AppProfile],
    trace: &[TraceRequest],
    fault: &str,
    nodes: usize,
    plan: &NodePlan,
    policy: ChaosPolicy,
) -> Result<ChaosCell, PlatformError> {
    let mut config = ClusterConfig::new(nodes, PLACEMENT_BUDGET);
    config.routing = RoutingPolicy::RemoteFork;
    let outcome = ClusterSim::new(cat.to_vec(), config)
        .with_model(model.clone())
        .with_keep_alive(KEEP_ALIVE)
        .with_max_idle(MAX_IDLE)
        .with_node_capacity(NODE_CAPACITY)
        .with_chaos(plan.clone(), policy)
        .run_chaos(trace)?;
    Ok(cell_row(fault, nodes, policy, trace.len(), &outcome))
}

/// Runs the fault × nodes × policy grid plus the two storm probes.
///
/// # Errors
///
/// Propagates [`PlatformError`] from the engine (none in practice: the
/// generated traces and plans are valid by construction).
pub fn generate(model: &CostModel) -> Result<ChaosBenchExport, PlatformError> {
    let cat = chaos_catalogue();
    let trace = flash_crowd_trace();
    let knobs = ChaosPolicy::full();

    let mut cells = Vec::new();
    for (fault, plan) in grid_plans() {
        for nodes in NODE_AXIS {
            for policy in [ChaosPolicy::full(), ChaosPolicy::none()] {
                cells.push(run_cell(model, &cat, &trace, fault, nodes, &plan, policy)?);
            }
        }
    }
    let storm = storm_plan();
    let storm_full = run_cell(model, &cat, &trace, "storm", 4, &storm, ChaosPolicy::full())?;
    let storm_none = run_cell(model, &cat, &trace, "storm", 4, &storm, ChaosPolicy::none())?;

    Ok(ChaosBenchExport {
        schema: SCHEMA.to_string(),
        machine: model.machine.label().to_string(),
        seed: SEED,
        functions: u64::try_from(FUNCTIONS).unwrap_or(u64::MAX),
        zipf_exponent: ZIPF_EXPONENT,
        keep_alive: KEEP_ALIVE,
        node_capacity: u64::try_from(NODE_CAPACITY).unwrap_or(u64::MAX),
        base_rate_hz: BASE_RATE_HZ,
        burst: u64::try_from(BURST).unwrap_or(u64::MAX),
        burst_width: BURST_WIDTH,
        fault_at: FAULT_AT,
        partition_heal: PARTITION_HEAL,
        gray_slowdown: GRAY_SLOWDOWN,
        heartbeat_interval: knobs.heartbeat_interval,
        suspicion_threshold: knobs.suspicion_threshold,
        hedge_delay: knobs.hedge_delay,
        transfer_timeout: knobs.transfer_timeout,
        cells,
        storm_full,
        storm_none,
    })
}

/// Serializes an export to its canonical JSON form.
///
/// # Errors
///
/// Serialization errors (none in practice: the types are closed).
pub fn to_json(export: &ChaosBenchExport) -> Result<String, serde_json::Error> {
    serde_json::to_string(export)
}

/// Parses a previously exported document.
///
/// # Errors
///
/// Malformed JSON or schema drift.
pub fn from_json(text: &str) -> Result<ChaosBenchExport, serde_json::Error> {
    serde_json::from_str(text)
}

fn check_conservation(tag: &str, cell: &ChaosCell) -> Result<(), String> {
    if cell.requests == 0 {
        return Err(format!("{tag}: empty cell"));
    }
    if cell.completed + cell.shed + cell.failed != cell.requests {
        return Err(format!("{tag}: completed + shed + failed != requests"));
    }
    if cell.hung > cell.failed {
        return Err(format!("{tag}: hung waiters exceed failures"));
    }
    // Rung counters count routings: a waiter re-routed off an aborted
    // transfer is counted on both its rungs, so the sum bounds completions
    // from below.
    if cell.reuses + cell.local + cell.remote + cell.cold < cell.completed {
        return Err(format!("{tag}: rung counts do not cover completions"));
    }
    let availability = cell.completed as f64 / cell.requests as f64;
    if (cell.availability - availability).abs() > 1e-9 {
        return Err(format!("{tag}: availability != completed / requests"));
    }
    // Startup samples are recorded at dispatch; a request killed in flight
    // by a crash leaves a sample without completing, so the sample count
    // brackets completions from above (and total requests from below).
    if cell.startup.count < cell.completed || cell.startup.count > cell.requests {
        return Err(format!(
            "{tag}: startup samples outside [completed, requests]"
        ));
    }
    if cell.end_to_end.count != cell.startup.count {
        return Err(format!("{tag}: end-to-end samples != startup samples"));
    }
    if cell.policy == ChaosPolicy::none().label()
        && (cell.failovers != 0 || cell.rereplications != 0 || cell.hedges != 0)
    {
        return Err(format!("{tag}: the no-failover baseline failed over"));
    }
    Ok(())
}

/// Looks up one grid cell by its three axes.
fn pick<'a>(
    export: &'a ChaosBenchExport,
    fault: &str,
    nodes: usize,
    policy: ChaosPolicy,
) -> Result<&'a ChaosCell, String> {
    export
        .cells
        .iter()
        .find(|c| c.fault == fault && c.nodes == nodes as u64 && c.policy == policy.label())
        .ok_or_else(|| {
            format!(
                "missing {fault} cell for {nodes} nodes / {}",
                policy.label()
            )
        })
}

/// Validates an export's internal consistency and the survivability gate
/// the grid exists to demonstrate: under every fault class the
/// full-failover policy holds availability ≥ (N−1)/N with a
/// sub-millisecond startup p99, never routes at an unreachable node, and
/// never strands a waiter; the no-failover baseline fails typed at
/// corpses and islands, pays the gray node's stretched tail, and hangs
/// orphaned transfer waiters in the storm.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate(export: &ChaosBenchExport) -> Result<(), String> {
    if export.schema != SCHEMA {
        return Err(format!(
            "schema mismatch: {} (expected {SCHEMA})",
            export.schema
        ));
    }
    let expected = 3 * NODE_AXIS.len() * 2;
    if export.cells.len() != expected {
        return Err(format!(
            "grid incomplete: {} cells (expected {expected})",
            export.cells.len()
        ));
    }

    for cell in &export.cells {
        let tag = format!("cell {}/{}n/{}", cell.fault, cell.nodes, cell.policy);
        check_conservation(&tag, cell)?;
        if cell.fault == "crash" && cell.crashes != 1 {
            return Err(format!("{tag}: scheduled crash never fired"));
        }
        if cell.fault != "crash" && cell.crashes != 0 {
            return Err(format!("{tag}: unscheduled crash fired"));
        }
        if cell.heartbeats == 0 {
            return Err(format!("{tag}: the health tracker never ran"));
        }
    }

    for &nodes in &NODE_AXIS {
        let floor = (nodes as f64 - 1.0) / nodes as f64;
        for fault in ["crash", "gray", "partition"] {
            let full = pick(export, fault, nodes, ChaosPolicy::full())?;
            let base = pick(export, fault, nodes, ChaosPolicy::none())?;
            let tag = format!("{fault}/{nodes}n");

            // The survivability gate: full failover rides out one sick
            // node out of N at sub-millisecond startup.
            if full.availability < floor {
                return Err(format!(
                    "{tag}: full-failover availability {:.4} under the ({}−1)/{} floor {floor:.4}",
                    full.availability, nodes, nodes
                ));
            }
            // Quantiles resolve to bucket upper bounds, so "sub-ms" means
            // the 1 ms bucket: every sample at or under one millisecond.
            if full.startup.p99 > SimNanos::from_millis(1) {
                return Err(format!(
                    "{tag}: full-failover startup p99 {:?} is not sub-millisecond",
                    full.startup.p99
                ));
            }
            if full.hung != 0 {
                return Err(format!(
                    "{tag}: full failover stranded {} waiters",
                    full.hung
                ));
            }
            if full.unreachable != 0 {
                return Err(format!(
                    "{tag}: health-aware routing sent {} requests at unreachable nodes",
                    full.unreachable
                ));
            }

            // The baseline must be measurably worse in the fault class's
            // own signature way.
            match fault {
                "crash" | "partition" => {
                    if base.unreachable == 0 {
                        return Err(format!(
                            "{tag}: the static-placement baseline never hit the dead node"
                        ));
                    }
                    if base.availability >= full.availability {
                        return Err(format!(
                            "{tag}: baseline availability {:.4} not under full-failover's {:.4}",
                            base.availability, full.availability
                        ));
                    }
                }
                _ => {
                    // Gray: the node stays reachable, so the baseline keeps
                    // routing into its stretched latencies — the tail, not
                    // availability, is what suffers.
                    if base.startup.p99 <= full.startup.p99 {
                        return Err(format!(
                            "{tag}: baseline startup p99 {:?} not over full-failover's {:?}",
                            base.startup.p99, full.startup.p99
                        ));
                    }
                    if full.suspected == 0 {
                        return Err(format!(
                            "{tag}: the slow-ack check never suspected the gray node"
                        ));
                    }
                    // With a spare node, overflow transfers pick the
                    // idle-looking gray holder as source — and the hedge
                    // must beat its stretched wire.
                    if nodes > PLACEMENT_BUDGET && (full.hedges == 0 || full.hedge_wins == 0) {
                        return Err(format!(
                            "{tag}: no hedge fired (or won) around the gray transfer source"
                        ));
                    }
                }
            }
        }

        // Crash: the dead holder's replicas are rebuilt — when a
        // non-holder node exists to rebuild on. And with a spare node,
        // every full-failover cell's overflow rides the remote rung.
        if nodes > PLACEMENT_BUDGET {
            let full = pick(export, "crash", nodes, ChaosPolicy::full())?;
            if full.rereplications == 0 {
                return Err(format!(
                    "crash/{nodes}n: no template re-replication after the holder died"
                ));
            }
            for fault in ["crash", "gray", "partition"] {
                let full = pick(export, fault, nodes, ChaosPolicy::full())?;
                if full.remote == 0 || full.transfers == 0 {
                    return Err(format!(
                        "{fault}/{nodes}n: full failover never used the remote-sfork rung"
                    ));
                }
            }
        }
    }

    // The storm: gray forces hedges, the crash aborts pending wires, and
    // only the failover policy gets every waiter home.
    for (tag, cell) in [
        ("storm/full", &export.storm_full),
        ("storm/none", &export.storm_none),
    ] {
        check_conservation(tag, cell)?;
        if cell.crashes != 1 {
            return Err(format!("{tag}: the storm crash never fired"));
        }
    }
    let full = &export.storm_full;
    if full.hedges == 0 || full.hedge_wins == 0 {
        return Err("storm/full: hedged transfers never fired or never won".into());
    }
    if full.aborted_transfers == 0 || full.failovers == 0 {
        return Err("storm/full: the crash aborted no wires or re-routed no waiters".into());
    }
    if full.hung != 0 {
        return Err(format!("storm/full: {} waiters stranded", full.hung));
    }
    if full.availability < 0.75 {
        return Err(format!(
            "storm/full: availability {:.4} under the (4−1)/4 floor",
            full.availability
        ));
    }
    if full.rereplications == 0 {
        return Err("storm/full: the dead holder's replicas were never rebuilt".into());
    }
    // Failover re-arrivals carry the 1 ms waiter timeout as queueing lag,
    // so the storm tail sits one bucket over the grid's — but bounded.
    if full.startup.p99 > SimNanos::from_millis(2) {
        return Err(format!(
            "storm/full: startup p99 {:?} over the 2 ms failover bound",
            full.startup.p99
        ));
    }
    if export.storm_none.hung == 0 {
        return Err("storm/none: the baseline never hung a waiter — the storm missed".into());
    }
    if export.storm_none.availability >= full.availability {
        return Err(format!(
            "storm/none: baseline availability {:.4} not under full-failover's {:.4}",
            export.storm_none.availability, full.availability
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_crash_cell_is_deterministic_and_conserves_requests() {
        let model = CostModel::experimental_machine();
        let cat = vec![AppProfile::c_hello()];
        let trace: Vec<TraceRequest> = (0..300u64)
            .map(|i| TraceRequest {
                arrival: SimNanos::from_micros(i * 20),
                function: 0,
            })
            .collect();
        let plan = NodePlan::quiet(7).with_crash(0, SimNanos::from_millis(3));
        let run =
            || run_cell(&model, &cat, &trace, "crash", 4, &plan, ChaosPolicy::full()).unwrap();
        let a = run();
        let b = run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        check_conservation("test", &a).unwrap();
        assert_eq!(a.crashes, 1);
    }

    #[test]
    fn validate_rejects_schema_drift() {
        let model = CostModel::experimental_machine();
        let cat = vec![AppProfile::c_hello()];
        let trace: Vec<TraceRequest> = (0..100u64)
            .map(|i| TraceRequest {
                arrival: SimNanos::from_micros(i * 20),
                function: 0,
            })
            .collect();
        let plan = NodePlan::quiet(7);
        let cell = run_cell(&model, &cat, &trace, "crash", 2, &plan, ChaosPolicy::full()).unwrap();
        let export = ChaosBenchExport {
            schema: "catalyzer-bench/pr0-v0".to_string(),
            machine: "test".to_string(),
            seed: SEED,
            functions: 1,
            zipf_exponent: ZIPF_EXPONENT,
            keep_alive: KEEP_ALIVE,
            node_capacity: NODE_CAPACITY as u64,
            base_rate_hz: BASE_RATE_HZ,
            burst: BURST as u64,
            burst_width: BURST_WIDTH,
            fault_at: FAULT_AT,
            partition_heal: PARTITION_HEAL,
            gray_slowdown: GRAY_SLOWDOWN,
            heartbeat_interval: SimNanos::ZERO,
            suspicion_threshold: SimNanos::ZERO,
            hedge_delay: SimNanos::ZERO,
            transfer_timeout: SimNanos::ZERO,
            cells: vec![cell.clone()],
            storm_full: cell.clone(),
            storm_none: cell,
        };
        let err = validate(&export).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }
}
