//! Figure/table regenerators. See `DESIGN.md` §5 for the experiment index.

pub mod ablation;
pub mod csv;
pub mod endtoend;
pub mod generality;
pub mod hostopts;
pub mod pipeline;
pub mod platformsim;
pub mod scale;
pub mod startup;

use catalyzer::{BootMode, Catalyzer, CatalyzerEngine};
use runtimes::AppProfile;
use sandbox::{BootCtx, BootEngine, BootOutcome, SandboxError};
use simtime::{CostModel, SimNanos};
use std::cell::RefCell;
use std::rc::Rc;

/// The systems compared in Fig. 11 (and reused by several experiments).
pub enum System {
    /// HyperContainer baseline.
    Hyper(sandbox::HyperContainerEngine),
    /// FireCracker baseline.
    Firecracker(sandbox::FirecrackerEngine),
    /// gVisor baseline.
    Gvisor(sandbox::GvisorEngine),
    /// Docker baseline.
    Docker(sandbox::DockerEngine),
    /// gVisor-restore strawman.
    GvisorRestore(sandbox::GvisorRestoreEngine),
    /// A Catalyzer boot mode.
    Catalyzer(CatalyzerEngine),
}

impl System {
    /// The full Fig. 11 lineup, sharing one Catalyzer instance across its
    /// three modes (as one deployment would).
    pub fn fig11_lineup() -> Vec<System> {
        let shared = Rc::new(RefCell::new(Catalyzer::new()));
        vec![
            System::Hyper(sandbox::HyperContainerEngine::new()),
            System::Firecracker(sandbox::FirecrackerEngine::new()),
            System::Gvisor(sandbox::GvisorEngine::new()),
            System::Docker(sandbox::DockerEngine::new()),
            System::GvisorRestore(sandbox::GvisorRestoreEngine::new()),
            System::Catalyzer(CatalyzerEngine::new(Rc::clone(&shared), BootMode::Cold)),
            System::Catalyzer(CatalyzerEngine::new(Rc::clone(&shared), BootMode::Warm)),
            System::Catalyzer(CatalyzerEngine::new(shared, BootMode::Fork)),
        ]
    }

    /// Engine name.
    pub fn name(&mut self) -> &'static str {
        self.as_engine().name()
    }

    /// View as the common trait object.
    pub fn as_engine(&mut self) -> &mut dyn BootEngine {
        match self {
            System::Hyper(e) => e,
            System::Firecracker(e) => e,
            System::Gvisor(e) => e,
            System::Docker(e) => e,
            System::GvisorRestore(e) => e,
            System::Catalyzer(e) => e,
        }
    }
}

/// Boots once and returns `(startup latency, outcome)`.
///
/// # Errors
///
/// Engine errors.
pub fn boot_once(
    engine: &mut dyn BootEngine,
    profile: &AppProfile,
    model: &CostModel,
) -> Result<(SimNanos, BootOutcome), SandboxError> {
    let mut ctx = BootCtx::fresh(model);
    let outcome = engine.boot(profile, &mut ctx)?;
    Ok((ctx.now(), outcome))
}

/// Prints a rule line for tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}
