//! §5 "Generality": on-demand restore applied to FireCracker, and a
//! cost-model sensitivity study showing the paper's conclusions are robust
//! to the calibration constants.

use catalyzer::{BootMode, Catalyzer, FirecrackerSnapshotEngine};
use runtimes::AppProfile;
use sandbox::{BootCtx, BootEngine, FirecrackerEngine, GvisorEngine, SandboxError};
use simtime::{CostModel, SimNanos};

use super::rule;
use crate::ms;

/// One generality row.
#[derive(Debug, Clone)]
pub struct GeneralityRow {
    /// System.
    pub system: &'static str,
    /// Application.
    pub app: String,
    /// Startup latency.
    pub startup: SimNanos,
}

/// §5: stock FireCracker vs FireCracker with Catalyzer-style snapshot
/// restore, next to the gVisor-based implementation.
///
/// # Errors
///
/// Engine errors.
pub fn generality(model: &CostModel) -> Result<Vec<GeneralityRow>, SandboxError> {
    let apps = [AppProfile::python_hello(), AppProfile::node_hello()];
    let mut rows = Vec::new();
    for app in &apps {
        let mut stock = FirecrackerEngine::new();
        let mut ctx = BootCtx::fresh(model);
        stock.boot(app, &mut ctx)?;
        rows.push(GeneralityRow {
            system: "FireCracker (stock)",
            app: app.name.clone(),
            startup: ctx.now(),
        });

        let mut snap = FirecrackerSnapshotEngine::new();
        snap.boot(app, &mut BootCtx::fresh(model))?; // cold: builds the base
        let mut ctx = BootCtx::fresh(model);
        snap.boot(app, &mut ctx)?;
        rows.push(GeneralityRow {
            system: "FireCracker-snapshot",
            app: app.name.clone(),
            startup: ctx.now(),
        });

        let mut cat = Catalyzer::new();
        cat.boot(BootMode::Cold, app, &mut BootCtx::fresh(model))?;
        let mut ctx = BootCtx::fresh(model);
        cat.boot(BootMode::Warm, app, &mut ctx)?;
        rows.push(GeneralityRow {
            system: "Catalyzer/gVisor (warm)",
            app: app.name.clone(),
            startup: ctx.now(),
        });
    }
    Ok(rows)
}

/// Prints the generality comparison.
pub fn render_generality(rows: &[GeneralityRow]) {
    println!("\n§5 generality — on-demand restore ported to FireCracker (ms)");
    rule(64);
    println!("{:<24} {:<16} {:>10}", "system", "app", "startup");
    for r in rows {
        println!("{:<24} {:<16} {:>10}", r.system, r.app, ms(r.startup));
    }
}

/// One sensitivity scenario: a perturbed cost model and the headline factor
/// (gVisor startup ÷ Catalyzer-fork startup) measured under it.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// gVisor startup under the perturbed model.
    pub gvisor: SimNanos,
    /// Catalyzer fork-boot startup under the perturbed model.
    pub fork: SimNanos,
    /// Catalyzer warm-boot startup under the perturbed model.
    pub warm: SimNanos,
}

impl SensitivityRow {
    /// Headline factor: gVisor over fork boot.
    pub fn speedup(&self) -> f64 {
        self.gvisor.as_nanos() as f64 / self.fork.as_nanos().max(1) as f64
    }
}

/// Sensitivity study: perturb the calibration constants that carry the most
/// modelling risk and re-measure the headline comparison on Python-hello.
/// The paper's conclusion survives every scenario.
///
/// # Errors
///
/// Engine errors.
pub fn sensitivity() -> Result<Vec<SensitivityRow>, SandboxError> {
    let mut scenarios: Vec<(&'static str, CostModel)> = Vec::new();
    scenarios.push(("calibrated", CostModel::experimental_machine()));

    let mut slow_disk = CostModel::experimental_machine();
    slow_disk.mem.disk_read_per_byte_ns *= 4.0;
    slow_disk.mem.disk_seek = slow_disk.mem.disk_seek.saturating_mul(4);
    scenarios.push(("disk 4x slower", slow_disk));

    let mut fast_disk = CostModel::experimental_machine();
    fast_disk.mem.disk_read_per_byte_ns /= 4.0;
    scenarios.push(("disk 4x faster", fast_disk));

    let mut single_worker = CostModel::experimental_machine();
    single_worker.parallel_workers = 1;
    scenarios.push(("1 fixup worker", single_worker));

    let mut no_fixed = CostModel::experimental_machine();
    no_fixed.obj.classic_restore_fixed = SimNanos::ZERO;
    scenarios.push(("no classic fixed cost", no_fixed));

    let mut pricey_faults = CostModel::experimental_machine();
    pricey_faults.mem.page_fault = pricey_faults.mem.page_fault.saturating_mul(4);
    pricey_faults.kvm.ept_violation = pricey_faults.kvm.ept_violation.saturating_mul(4);
    scenarios.push(("faults 4x pricier", pricey_faults));

    let profile = AppProfile::python_hello();
    let mut rows = Vec::new();
    for (label, model) in scenarios {
        let gvisor = {
            let mut ctx = BootCtx::fresh(&model);
            GvisorEngine::new().boot(&profile, &mut ctx)?;
            ctx.now()
        };
        let mut cat = Catalyzer::new();
        cat.ensure_template(&profile, &model)?;
        let fork = {
            let mut ctx = BootCtx::fresh(&model);
            cat.boot(BootMode::Fork, &profile, &mut ctx)?;
            ctx.now()
        };
        let warm = {
            let mut ctx = BootCtx::fresh(&model);
            cat.boot(BootMode::Warm, &profile, &mut ctx)?;
            ctx.now()
        };
        rows.push(SensitivityRow {
            scenario: label,
            gvisor,
            fork,
            warm,
        });
    }
    Ok(rows)
}

/// Prints the sensitivity study.
pub fn render_sensitivity(rows: &[SensitivityRow]) {
    println!("\nsensitivity — headline comparison under perturbed cost models (Python-hello)");
    rule(78);
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}",
        "scenario", "gVisor", "warm", "fork", "speedup"
    );
    for r in rows {
        println!(
            "{:<24} {:>10} {:>10} {:>10} {:>9.0}x",
            r.scenario,
            ms(r.gvisor),
            ms(r.warm),
            ms(r.fork),
            r.speedup()
        );
    }
}
