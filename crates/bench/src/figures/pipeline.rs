//! Pipeline and taxonomy experiments: Fig. 2, Fig. 3, Fig. 10, Table 1.

use catalyzer::{techniques, BootMode};
use guest_kernel::syscalls::{SyscallClass, SyscallName};
use runtimes::AppProfile;
use sandbox::{taxonomy, SandboxError};
use simtime::{Breakdown, CostModel};

use super::{boot_once, rule};
use crate::ms;

/// Fig. 2: the boot and restore pipelines of gVisor for Java SPECjbb, phase
/// by phase.
///
/// # Errors
///
/// Engine errors.
pub fn fig02(model: &CostModel) -> Result<(Breakdown, Breakdown), SandboxError> {
    let profile = AppProfile::java_specjbb();
    let (_, boot) = boot_once(&mut sandbox::GvisorEngine::new(), &profile, model)?;
    let (_, restore) = boot_once(&mut sandbox::GvisorRestoreEngine::new(), &profile, model)?;
    Ok((boot.breakdown, restore.breakdown))
}

/// Prints Fig. 2.
pub fn render_fig02(boot: &Breakdown, restore: &Breakdown) {
    println!("\nFigure 2 — gVisor boot pipeline for Java SPECjbb");
    rule(64);
    println!("Boot path (paper: parse 1.369 / spawn 0.319 / init 0.757 / task image 19.889 / JVM 1850 ms):");
    for (phase, cost) in boot.iter() {
        println!("  {:<32} {:>10} ms", phase, ms(cost));
    }
    println!("  {:<32} {:>10} ms", "TOTAL", ms(boot.total()));
    println!(
        "Restore path (paper: recover kernel 56.7 / load memory 128.8 / reconnect I/O 79.2 ms):"
    );
    for (phase, cost) in restore.iter() {
        println!("  {:<32} {:>10} ms", phase, ms(cost));
    }
    println!("  {:<32} {:>10} ms", "TOTAL", ms(restore.total()));
}

/// Prints Fig. 3 (the design space is static data from `sandbox::taxonomy`).
pub fn render_fig03() {
    println!("\nFigure 3 — serverless sandbox design space");
    rule(64);
    println!(
        "{:<24} {:<10} {:<10} {:<12}",
        "system", "isolation", "startup", "implemented"
    );
    for p in taxonomy::design_space() {
        println!(
            "{:<24} {:<10} {:<10} {}",
            p.system,
            format!("{:?}", p.isolation),
            format!("{:?}", p.startup),
            if p.implemented {
                "yes"
            } else {
                "(placed only)"
            }
        );
    }
}

/// Prints Fig. 10 (techniques per boot kind).
pub fn render_fig10() {
    println!("\nFigure 10 — techniques/optimizations per boot kind");
    rule(64);
    for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
        let (offline, online) = techniques::techniques_for(mode);
        println!("{}:", mode.label());
        println!("  offline: {:?}", offline);
        println!("  online:  {:?}", online);
    }
}

/// Prints Table 1 (syscall classification for sfork).
pub fn render_table1() {
    println!("\nTable 1 — syscall classification used in Catalyzer for sfork");
    rule(72);
    println!(
        "{:<20} {:<12} {:<14}",
        "syscall", "category", "classification"
    );
    for s in SyscallName::ALL {
        let class = match s.classify() {
            SyscallClass::Allowed => "allowed".to_string(),
            SyscallClass::Handled(h) => format!("handled ({h:?})"),
            SyscallClass::Denied => "DENIED".to_string(),
        };
        println!(
            "{:<20} {:<12} {}",
            s.as_str(),
            format!("{:?}", s.category()),
            class
        );
    }
}
