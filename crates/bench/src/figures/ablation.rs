//! Ablation and cost accounting: Fig. 12 and Table 3.

use catalyzer::{BootMode, Catalyzer, CatalyzerConfig};
use runtimes::AppProfile;
use sandbox::{BootCtx, SandboxError};
use simtime::{CostModel, SimNanos};

use super::rule;
use crate::ms;

/// One Fig. 12 bar: a configuration's cold-boot latency with the
/// kernel / memory / I/O split.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub config: &'static str,
    /// Application.
    pub app: String,
    /// Guest-kernel recovery time.
    pub kernel: SimNanos,
    /// Application-memory time.
    pub memory: SimNanos,
    /// I/O reconnection time.
    pub io: SimNanos,
    /// Total startup.
    pub total: SimNanos,
}

/// Fig. 12: the technique ladder over the gVisor-restore baseline, for
/// Python Django and Java SPECjbb.
///
/// # Errors
///
/// Engine errors.
pub fn fig12(model: &CostModel) -> Result<Vec<AblationRow>, SandboxError> {
    let apps = [AppProfile::python_django(), AppProfile::java_specjbb()];
    let ladder: [(&'static str, Option<CatalyzerConfig>); 4] = [
        ("baseline (gVisor-restore)", None),
        ("+OverlayMem", Some(CatalyzerConfig::overlay_only())),
        (
            "+SeparatedLoad",
            Some(CatalyzerConfig::overlay_and_separated()),
        ),
        (
            "+LazyReconnection",
            Some(CatalyzerConfig::overlay_separated_lazy()),
        ),
    ];
    let mut rows = Vec::new();
    for app in &apps {
        for (label, config) in &ladder {
            let mut ctx = BootCtx::fresh(model);
            let outcome = match config {
                None => {
                    let mut engine = sandbox::GvisorRestoreEngine::new();
                    sandbox::BootEngine::boot(&mut engine, app, &mut ctx)?
                }
                Some(cfg) => {
                    let mut system = Catalyzer::with_config(*cfg);
                    system.boot(BootMode::Cold, app, &mut ctx)?
                }
            };
            let (kernel, memory, io) = outcome.restore_split();
            rows.push(AblationRow {
                config: label,
                app: app.name.clone(),
                kernel,
                memory,
                io,
                total: ctx.now(),
            });
        }
    }
    Ok(rows)
}

/// Prints Fig. 12.
pub fn render_fig12(rows: &[AblationRow]) {
    println!("\nFigure 12 — breakdown of Catalyzer cold-boot techniques (ms)");
    println!("(paper: overlay saves ~261 ms on SPECjbb; separated load ~7x kernel; lazy I/O ~18x)");
    rule(92);
    println!(
        "{:<28} {:<16} {:>10} {:>10} {:>10} {:>10}",
        "configuration", "app", "kernel", "memory", "io", "total"
    );
    for r in rows {
        println!(
            "{:<28} {:<16} {:>10} {:>10} {:>10} {:>10}",
            r.config,
            r.app,
            ms(r.kernel),
            ms(r.memory),
            ms(r.io),
            ms(r.total)
        );
    }
}

/// One Table 3 row: per-function warm-boot memory costs.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application name.
    pub app: String,
    /// Metadata-object bytes.
    pub metadata: u64,
    /// I/O cache bytes.
    pub io_cache: u64,
}

/// Table 3: metadata and I/O-cache sizes for the five real applications.
///
/// # Errors
///
/// Engine errors.
pub fn table3(model: &CostModel) -> Result<Vec<Table3Row>, SandboxError> {
    let apps = [
        AppProfile::c_nginx(),
        AppProfile::java_specjbb(),
        AppProfile::python_django(),
        AppProfile::ruby_sinatra(),
        AppProfile::node_web(),
    ];
    let mut system = Catalyzer::new();
    let mut rows = Vec::new();
    for app in &apps {
        system.prewarm_image(app, model)?;
        let (metadata, io_cache) = system.warm_memory_costs(&app.name, model)?;
        rows.push(Table3Row {
            app: app.name.clone(),
            metadata,
            io_cache,
        });
    }
    Ok(rows)
}

/// Prints Table 3.
pub fn render_table3(rows: &[Table3Row]) {
    println!("\nTable 3 — warm-boot memory costs per function");
    println!("(paper: metadata 165.5 KB – 680.6 KB; I/O cache 370 B – 2.4 KB)");
    rule(56);
    println!(
        "{:<18} {:>14} {:>12}",
        "application", "metadata", "io cache"
    );
    for r in rows {
        println!(
            "{:<18} {:>12.1}KB {:>11}B",
            r.app,
            r.metadata as f64 / 1024.0,
            r.io_cache
        );
    }
}
