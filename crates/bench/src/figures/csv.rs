//! Machine-readable CSV export for the numeric experiments, so plots can be
//! drawn from `repro csv <experiment>` without scraping tables.

use simtime::SimNanos;

use super::ablation::AblationRow;
use super::endtoend::E2eRow;
use super::scale::{MemoryRow, ScaleSeries};
use super::startup::StartupRow;

fn f(d: SimNanos) -> String {
    format!("{:.6}", d.as_millis_f64())
}

/// Fig. 6 / Fig. 11 startup rows.
pub fn startup_rows(rows: &[StartupRow]) -> String {
    let mut out = String::from("system,app,startup_ms,sandbox_ms,app_ms\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            r.system,
            r.app,
            f(r.startup),
            f(r.sandbox),
            f(r.app_part)
        ));
    }
    out
}

/// Fig. 12 ablation rows.
pub fn ablation_rows(rows: &[AblationRow]) -> String {
    let mut out = String::from("configuration,app,kernel_ms,memory_ms,io_ms,total_ms\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.config,
            r.app,
            f(r.kernel),
            f(r.memory),
            f(r.io),
            f(r.total)
        ));
    }
    out
}

/// Fig. 13 end-to-end rows.
pub fn e2e_rows(rows: &[E2eRow]) -> String {
    let mut out = String::from("system,function,boot_ms,exec_ms,total_ms\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            r.system,
            r.function,
            f(r.boot),
            f(r.exec),
            f(r.total())
        ));
    }
    out
}

/// Fig. 14 memory rows.
pub fn memory_rows(rows: &[MemoryRow]) -> String {
    let mut out = String::from("system,concurrency,rss_mib,pss_mib\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.4},{:.4}\n",
            r.system,
            r.n,
            r.usage.rss_mib(),
            r.usage.pss_mib()
        ));
    }
    out
}

/// Fig. 15 scalability series.
pub fn scale_series(series: &[ScaleSeries]) -> String {
    let mut out = String::from("system,running_instances,startup_ms\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!("{},{},{}\n", s.system, p.running, f(p.startup)));
        }
    }
    out
}

/// Fig. 16 b–d numbered series (`(index, series_a, series_b)`).
pub fn indexed_pair(header: &str, rows: &[(u32, SimNanos, SimNanos)]) -> String {
    let mut out = format!("{header}\n");
    for (i, a, b) in rows {
        out.push_str(&format!("{},{},{}\n", i, f(*a), f(*b)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shapes_are_parseable() {
        let rows = vec![StartupRow {
            system: "gVisor",
            app: "C-hello".into(),
            startup: SimNanos::from_millis_f64(1.5),
            sandbox: SimNanos::from_millis(1),
            app_part: SimNanos::from_micros(500),
        }];
        let csv = startup_rows(&rows);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap().split(',').count(), 5);
        let data: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(data[0], "gVisor");
        assert_eq!(data[2], "1.500000");
        assert!(lines.next().is_none());
    }

    #[test]
    fn indexed_pair_format() {
        let rows = vec![(1, SimNanos::from_micros(85), SimNanos::from_micros(38))];
        let csv = indexed_pair("invocation,baseline_ms,cached_ms", &rows);
        assert!(csv.starts_with("invocation,baseline_ms,cached_ms\n1,0.085"));
    }
}
