//! Concurrency experiments: Fig. 14 (memory) and Fig. 15 (scalability),
//! plus the §6.9 sustainable-hot-boot tail study.

use catalyzer::{BootMode, CatalyzerEngine};
use memsim::accounting::MemoryUsage;
use platform::policy::{simulate_trace, BootPolicy, TraceOutcome};
use platform::{memory, scaling};
use runtimes::AppProfile;
use sandbox::{GvisorEngine, GvisorRestoreEngine, SandboxError};
use simtime::CostModel;
use workloads::deathstar::Service;

use super::rule;
use crate::ms;

/// One Fig. 14 point: average memory usage per sandbox at a concurrency.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// System name.
    pub system: &'static str,
    /// Concurrent sandboxes.
    pub n: u32,
    /// Average usage.
    pub usage: MemoryUsage,
}

/// Fig. 14: RSS/PSS of DeathStar `composePost` under 1–16 concurrent
/// sandboxes, gVisor vs Catalyzer (sfork).
///
/// # Errors
///
/// Platform errors.
pub fn fig14(model: &CostModel) -> Result<Vec<MemoryRow>, platform::PlatformError> {
    let profile = Service::ComposePost.profile();
    let mut rows = Vec::new();
    for n in [1u32, 2, 4, 8, 16] {
        let mut gv = GvisorEngine::new();
        rows.push(MemoryRow {
            system: "gVisor",
            n,
            usage: memory::concurrent_usage(&mut gv, &profile, n, model)?,
        });
        let mut cat = CatalyzerEngine::standalone(BootMode::Fork);
        rows.push(MemoryRow {
            system: "Catalyzer",
            n,
            usage: memory::concurrent_usage(&mut cat, &profile, n, model)?,
        });
    }
    Ok(rows)
}

/// Prints Fig. 14.
pub fn render_fig14(rows: &[MemoryRow]) {
    println!("\nFigure 14 — memory usage per sandbox, DeathStar composePost (MB)");
    rule(56);
    println!("{:<12} {:>4} {:>12} {:>12}", "system", "n", "RSS", "PSS");
    for r in rows {
        println!(
            "{:<12} {:>4} {:>11.2}M {:>11.2}M",
            r.system,
            r.n,
            r.usage.rss_mib(),
            r.usage.pss_mib()
        );
    }
}

/// One Fig. 15 series.
#[derive(Debug, Clone)]
pub struct ScaleSeries {
    /// Series label.
    pub system: String,
    /// `(running instances, startup latency)` points.
    pub points: Vec<scaling::ScalePoint>,
}

/// Fig. 15: startup latency with 0–1000 running instances of the DeathStar
/// text function: gVisor-restore vs Catalyzer (experimental machine) vs
/// Catalyzer on the server machine ("Catalyzer-Indus").
///
/// `max_running` lets callers shrink the sweep (benches use 100; the repro
/// binary uses 1000 like the paper).
///
/// # Errors
///
/// Engine errors.
pub fn fig15(max_running: u32) -> Result<Vec<ScaleSeries>, SandboxError> {
    let profile = Service::Text.profile();
    let steps: Vec<u32> = (0..=max_running)
        .step_by((max_running / 10).max(1) as usize)
        .collect();
    let exp = CostModel::experimental_machine();
    let srv = CostModel::server_machine();

    let mut out = Vec::new();
    let mut restore = GvisorRestoreEngine::new();
    out.push(ScaleSeries {
        system: "gVisor-restore".into(),
        points: scaling::sweep(&mut restore, &profile, &steps, &exp, 11)?,
    });
    let mut cat = CatalyzerEngine::standalone(BootMode::Fork);
    out.push(ScaleSeries {
        system: "Catalyzer".into(),
        points: scaling::sweep(&mut cat, &profile, &steps, &exp, 12)?,
    });
    let mut cat_srv = CatalyzerEngine::standalone(BootMode::Fork);
    out.push(ScaleSeries {
        system: "Catalyzer-Indus".into(),
        points: scaling::sweep(&mut cat_srv, &profile, &steps, &srv, 13)?,
    });
    Ok(out)
}

/// Prints Fig. 15.
pub fn render_fig15(series: &[ScaleSeries]) {
    println!("\nFigure 15 — startup latency vs running instances (ms)");
    println!("(paper: Catalyzer <10 ms at 1000 instances on both machines)");
    rule(72);
    print!("{:<10}", "running");
    for s in series {
        print!(" {:>18}", s.system);
    }
    println!();
    let n = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..n {
        print!("{:<10}", series[0].points[i].running);
        for s in series {
            print!(" {:>18}", ms(s.points[i].startup));
        }
        println!();
    }
}

/// §6.9: warm-cache vs fork-boot startup distributions over a multi-function
/// trace. Returns `(cache outcome, fork outcome)`.
///
/// # Errors
///
/// Engine errors.
pub fn tail_latency(model: &CostModel) -> Result<(TraceOutcome, TraceOutcome), SandboxError> {
    let functions = [
        AppProfile::c_hello(),
        AppProfile::c_nginx(),
        AppProfile::python_hello(),
        AppProfile::ruby_hello(),
        AppProfile::node_hello(),
        AppProfile::python_django(),
    ];
    let mut restore = GvisorRestoreEngine::new();
    let cached = simulate_trace(
        &mut restore,
        &functions,
        48,
        BootPolicy::WarmCache { capacity: 3 },
        model,
    )?;
    let mut fork = CatalyzerEngine::standalone(BootMode::Fork);
    let forked = simulate_trace(&mut fork, &functions, 48, BootPolicy::AlwaysBoot, model)?;
    Ok((cached, forked))
}

/// Prints the tail-latency study.
pub fn render_tail(cached: &TraceOutcome, forked: &TraceOutcome) {
    println!("\n§6.9 — sustainable hot boot: warm cache vs fork boot (startup ms)");
    rule(72);
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>10}",
        "policy", "p50", "p95", "p99", "hit rate"
    );
    for (label, o) in [("warm cache (cap 3)", cached), ("fork boot", forked)] {
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>9.0}%",
            label,
            ms(o.startup.p50),
            ms(o.startup.p95),
            ms(o.startup.p99),
            o.hit_rate * 100.0
        );
    }
}
