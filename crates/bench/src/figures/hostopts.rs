//! Host-level optimization experiments: Fig. 16 a–d.

use runtimes::AppProfile;
use sandbox::host::{HostFdTable, HostTweaks, KvmDevice};
use sandbox::SandboxError;
use simtime::jitter::Jitter;
use simtime::{CostModel, SimClock, SimNanos};

use super::rule;
use crate::ms;

/// Fig. 16a: normalized execution latency with and without the fine-grained
/// func-entry point, for a memory-reading C microbenchmark and SPECjbb.
/// Returns `(name, baseline exec, optimized exec)` rows.
///
/// # Errors
///
/// Engine errors.
pub fn fig16a(model: &CostModel) -> Result<Vec<(String, SimNanos, SimNanos)>, SandboxError> {
    // The paper moves the entry point past in-function preparation,
    // reducing execution latency ~3×: shift two thirds of the handler work
    // before the checkpoint.
    let mut c_mem = AppProfile::c_hello();
    c_mem.name = "C-mem-read-16K".into();
    c_mem.exec_time = SimNanos::from_micros_f64(360.6);
    c_mem.exec_alloc_pages = 4;
    c_mem.exec_touch_fraction = 0.06; // reads its 16K buffer only
    c_mem.exec_io = false; // pure-compute microbenchmark
    let cases = [c_mem, AppProfile::java_specjbb()];

    let mut rows = Vec::new();
    for base in cases {
        let shifted = base.clone().with_entry_point_shift(2.0 / 3.0);
        let run = |profile: &AppProfile| -> Result<SimNanos, SandboxError> {
            let mut system = catalyzer::Catalyzer::new();
            system.ensure_template(profile, model)?;
            let mut ctx = sandbox::BootCtx::fresh(model);
            let mut boot = system.boot(catalyzer::BootMode::Fork, profile, &mut ctx)?;
            let before = ctx.now();
            boot.program
                .invoke_handler(ctx.clock(), model)
                .map_err(sandbox::SandboxError::Runtime)?;
            Ok(ctx.now() - before)
        };
        let baseline = run(&base)?;
        let optimized = run(&shifted)?;
        rows.push((base.name.clone(), baseline, optimized));
    }
    Ok(rows)
}

/// Prints Fig. 16a.
pub fn render_fig16a(rows: &[(String, SimNanos, SimNanos)]) {
    println!("\nFigure 16a — fine-grained func-entry point (paper: ~3x exec reduction)");
    rule(72);
    println!(
        "{:<18} {:>14} {:>14} {:>8}",
        "workload", "baseline", "optimized", "speedup"
    );
    for (name, base, opt) in rows {
        println!(
            "{:<18} {:>12}ms {:>12}ms {:>7.2}x",
            name,
            ms(*base),
            ms(*opt),
            base.as_nanos() as f64 / opt.as_nanos().max(1) as f64
        );
    }
}

/// Fig. 16b: `kvcalloc` latency per invocation, baseline KVM vs the
/// dedicated cache. Returns `(invocation #, baseline, cached)` rows.
pub fn fig16b(model: &CostModel) -> Vec<(u32, SimNanos, SimNanos)> {
    let clock = SimClock::new();
    let mut baseline = KvmDevice::create(HostTweaks::baseline(), &clock, model);
    let mut cached = KvmDevice::create(HostTweaks::catalyzer(), &clock, model);
    (1..=6)
        .map(|i| {
            (
                i,
                baseline.kvcalloc(&clock, model),
                cached.kvcalloc(&clock, model),
            )
        })
        .collect()
}

/// Prints Fig. 16b.
pub fn render_fig16b(rows: &[(u32, SimNanos, SimNanos)]) {
    println!("\nFigure 16b — kvcalloc latency vs invocations (paper: 1.6 ms total → <50 us)");
    rule(56);
    println!(
        "{:<12} {:>14} {:>14}",
        "invocation", "baseline KVM", "KVM cache"
    );
    for (i, base, cached) in rows {
        println!(
            "{:<12} {:>12}us {:>12}us",
            i,
            base.as_micros_f64().round(),
            cached.as_micros_f64().round()
        );
    }
}

/// Fig. 16c: `set_memory_region` latency per ioctl, PML on vs off.
/// Returns `(ioctl #, default/PML, PML disabled)` rows.
pub fn fig16c(model: &CostModel) -> Vec<(u32, SimNanos, SimNanos)> {
    let clock = SimClock::new();
    let mut pml = KvmDevice::create(HostTweaks::upstream(), &clock, model);
    let mut nopml = KvmDevice::create(HostTweaks::baseline(), &clock, model);
    (1..=11)
        .map(|i| {
            (
                i,
                pml.set_memory_region(&clock, model),
                nopml.set_memory_region(&clock, model),
            )
        })
        .collect()
}

/// Prints Fig. 16c.
pub fn render_fig16c(rows: &[(u32, SimNanos, SimNanos)]) {
    println!("\nFigure 16c — set_memory_region latency (paper: disabling PML ≈ 10x faster)");
    rule(56);
    println!(
        "{:<10} {:>16} {:>16}",
        "ioctl #", "default (PML)", "PML disabled"
    );
    for (i, pml, nopml) in rows {
        println!(
            "{:<10} {:>14}us {:>14}us",
            i,
            pml.as_micros_f64().round(),
            nopml.as_micros_f64().round()
        );
    }
}

/// Fig. 16d: per-call `dup` latency over 40 syscalls with a nearly-full fd
/// table — the burst is the fdtable expansion. Returns `(call #, eager,
/// lazy)` rows; the lazy-dup series never bursts.
pub fn fig16d(model: &CostModel) -> Vec<(u32, SimNanos, SimNanos)> {
    let clock = SimClock::new();
    let mut jitter = Jitter::seeded(16);
    let mut eager = HostFdTable::new(HostTweaks::baseline(), model);
    let mut lazy = HostFdTable::new(HostTweaks::catalyzer(), model);
    // Fill close to the first expansion point.
    for _ in 0..40 {
        eager.dup(&clock, model);
        lazy.dup(&clock, model);
    }
    (1..=40)
        .map(|i| {
            let e = eager.dup(&clock, model);
            let l = lazy.dup(&clock, model);
            // Fast-path calls show scheduler noise; bursts stand alone.
            let mut noise = |d: SimNanos| {
                if d < SimNanos::from_millis(1) {
                    jitter.uniform(d, 0.3)
                } else {
                    d
                }
            };
            (i, noise(e), noise(l))
        })
        .collect()
}

/// Prints Fig. 16d.
pub fn render_fig16d(rows: &[(u32, SimNanos, SimNanos)]) {
    println!("\nFigure 16d — dup latency per call (paper: ~1 us, rare ~30 ms bursts)");
    rule(56);
    println!("{:<8} {:>16} {:>16}", "call #", "dup", "lazy dup");
    for (i, eager, lazy) in rows {
        println!(
            "{:<8} {:>16} {:>16}",
            i,
            format!("{eager}"),
            format!("{lazy}")
        );
    }
}
