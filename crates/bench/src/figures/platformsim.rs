//! Platform-level extension experiments: a trace-driven keep-alive vs
//! fork-boot comparison, and the warm-boot phase breakdown.

use catalyzer::{BootMode, Catalyzer, CatalyzerEngine};
use platform::simulate::{self, SimulationOutcome, TraceRequest};
use runtimes::AppProfile;
use sandbox::{BootCtx, GvisorRestoreEngine, SandboxError};
use simtime::{Breakdown, CostModel, SimNanos};
use workloads::generator::{trace, Popularity};

use super::rule;
use crate::ms;

/// Builds the shared zipf trace over six functions.
fn shared_trace(functions: &[AppProfile]) -> Vec<TraceRequest> {
    trace(
        functions.len(),
        60,
        20.0,
        Popularity::Zipf { exponent: 1.1 },
        2020,
    )
    .into_iter()
    .map(|r| TraceRequest {
        arrival: r.arrival,
        function: r.function,
    })
    .collect()
}

/// Runs the trace against a keep-alive pooled gVisor-restore fleet and a
/// fork-boot fleet. Returns `(pooled, forked)` outcomes.
///
/// # Errors
///
/// Platform errors.
pub fn platform_sim(
    model: &CostModel,
) -> Result<(SimulationOutcome, SimulationOutcome), platform::PlatformError> {
    let functions = [
        AppProfile::c_hello(),
        AppProfile::c_nginx(),
        AppProfile::python_hello(),
        AppProfile::ruby_hello(),
        AppProfile::node_hello(),
        AppProfile::python_django(),
    ];
    let requests = shared_trace(&functions);
    let pooled = simulate::run(
        &functions,
        &requests,
        SimNanos::from_secs(2),
        2,
        |_| GvisorRestoreEngine::new(),
        model,
    )?;
    let forked = simulate::run(
        &functions,
        &requests,
        SimNanos::from_secs(2),
        0, // fork boot keeps nothing idle: the template is the cache
        |_| CatalyzerEngine::standalone(BootMode::Fork),
        model,
    )?;
    Ok((pooled, forked))
}

/// Prints the platform simulation.
pub fn render_platform_sim(pooled: &SimulationOutcome, forked: &SimulationOutcome) {
    println!("\nplatform simulation — 60 zipf requests over 6 functions (extension)");
    rule(86);
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>8} {:>8} {:>6}",
        "fleet", "p50", "p95", "p99", "reuse", "boots", "peak"
    );
    for (label, o) in [
        ("gVisor-restore + pool", pooled),
        ("Catalyzer fork boot", forked),
    ] {
        println!(
            "{:<26} {:>9} {:>9} {:>9} {:>7.0}% {:>8} {:>6}",
            label,
            ms(o.startup.p50),
            ms(o.startup.p95),
            ms(o.startup.p99),
            o.reuse_rate * 100.0,
            o.pools.boots,
            o.peak_concurrency
        );
    }
}

/// Warm-boot phase breakdown per language (what is inside the paper's
/// 5/14/9/12/9 ms).
///
/// # Errors
///
/// Engine errors.
pub fn warm_breakdown(model: &CostModel) -> Result<Vec<(String, Breakdown)>, SandboxError> {
    let apps = [
        AppProfile::c_hello(),
        AppProfile::java_hello(),
        AppProfile::python_hello(),
        AppProfile::ruby_hello(),
        AppProfile::node_hello(),
    ];
    let mut out = Vec::new();
    for app in apps {
        let mut system = Catalyzer::new();
        system.boot(BootMode::Cold, &app, &mut BootCtx::fresh(model))?;
        let outcome = system.boot(BootMode::Warm, &app, &mut BootCtx::fresh(model))?;
        out.push((app.name, outcome.breakdown));
    }
    Ok(out)
}

/// Prints the warm-boot breakdown.
pub fn render_warm_breakdown(rows: &[(String, Breakdown)]) {
    println!("\nwarm-boot phase breakdown (what is inside §6.2's zygote numbers)");
    rule(86);
    for (app, breakdown) in rows {
        println!("{app}:");
        for (phase, cost) in breakdown.iter() {
            println!("    {:<28} {:>10}", phase, format!("{cost}"));
        }
        println!(
            "    {:<28} {:>10}",
            "TOTAL",
            format!("{}", breakdown.total())
        );
    }
}
