//! End-to-end experiments: Fig. 1 (CDF) and Fig. 13 (three suites).

use catalyzer::{BootMode, CatalyzerEngine};
use platform::Gateway;
use runtimes::AppProfile;
use sandbox::GvisorEngine;
use simtime::stats::Cdf;
use simtime::{CostModel, SimNanos};
use workloads::catalogue;
use workloads::deathstar::Service;
use workloads::ecommerce::EcommerceOp;
use workloads::pillow::ImageOp;

use super::rule;
use crate::ms;
use platform::PlatformError;

/// One Fig. 13 bar: boot + execution for one system on one function.
#[derive(Debug, Clone)]
pub struct E2eRow {
    /// System label ("gVisor", "C-sfork", "C-restore").
    pub system: &'static str,
    /// Function name.
    pub function: String,
    /// Startup latency.
    pub boot: SimNanos,
    /// Execution latency.
    pub exec: SimNanos,
}

impl E2eRow {
    /// Total user-visible latency.
    pub fn total(&self) -> SimNanos {
        self.boot + self.exec
    }
}

fn run_suite(functions: &[AppProfile], model: &CostModel) -> Result<Vec<E2eRow>, PlatformError> {
    let mut rows = Vec::new();
    // gVisor baseline.
    let mut gv = Gateway::new(GvisorEngine::new(), model.clone());
    // Catalyzer fork and cold boot.
    let mut fork = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model.clone());
    let mut cold = Gateway::new(CatalyzerEngine::standalone(BootMode::Cold), model.clone());
    for p in functions {
        gv.register(p.clone());
        fork.register(p.clone());
        cold.register(p.clone());
    }
    for p in functions {
        let r = gv.invoke(&p.name)?;
        rows.push(E2eRow {
            system: "gVisor",
            function: p.name.clone(),
            boot: r.boot,
            exec: r.exec,
        });
        let r = fork.invoke(&p.name)?;
        rows.push(E2eRow {
            system: "C-sfork",
            function: p.name.clone(),
            boot: r.boot,
            exec: r.exec,
        });
        let r = cold.invoke(&p.name)?;
        rows.push(E2eRow {
            system: "C-restore",
            function: p.name.clone(),
            boot: r.boot,
            exec: r.exec,
        });
    }
    Ok(rows)
}

/// Fig. 13a: the five DeathStar microservices.
///
/// # Errors
///
/// Platform errors.
pub fn fig13a(model: &CostModel) -> Result<Vec<E2eRow>, PlatformError> {
    let fns: Vec<AppProfile> = Service::ALL.iter().map(|s| s.profile()).collect();
    run_suite(&fns, model)
}

/// Fig. 13b: the five Pillow image functions.
///
/// # Errors
///
/// Platform errors.
pub fn fig13b(model: &CostModel) -> Result<Vec<E2eRow>, PlatformError> {
    let fns: Vec<AppProfile> = ImageOp::ALL.iter().map(|o| o.profile()).collect();
    run_suite(&fns, model)
}

/// Fig. 13c: the four e-commerce functions, on the server machine.
///
/// # Errors
///
/// Platform errors.
pub fn fig13c() -> Result<Vec<E2eRow>, PlatformError> {
    let model = CostModel::server_machine();
    let fns: Vec<AppProfile> = EcommerceOp::ALL.iter().map(|o| o.profile()).collect();
    run_suite(&fns, &model)
}

/// Prints one Fig. 13 panel.
pub fn render_fig13(title: &str, rows: &[E2eRow]) {
    println!("\n{title}");
    rule(88);
    println!(
        "{:<12} {:<26} {:>10} {:>10} {:>10} {:>8}",
        "system", "function", "boot", "exec", "total", "boot%"
    );
    for r in rows {
        println!(
            "{:<12} {:<26} {:>10} {:>10} {:>10} {:>7.1}%",
            r.system,
            r.function,
            ms(r.boot),
            ms(r.exec),
            ms(r.total()),
            100.0 * r.boot.as_nanos() as f64 / r.total().as_nanos().max(1) as f64
        );
    }
}

/// Fig. 1: the CDF of execution/overall-latency ratio over the 14 functions,
/// for gVisor cold boot and Catalyzer (fork boot). Returns `(gvisor,
/// catalyzer)` CDFs.
///
/// # Errors
///
/// Platform errors.
pub fn fig01(model: &CostModel) -> Result<(Cdf, Cdf), PlatformError> {
    let fns = catalogue::fig1_functions();
    let mut gv = Gateway::new(GvisorEngine::new(), model.clone());
    let mut cat = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model.clone());
    for p in &fns {
        gv.register(p.clone());
        cat.register(p.clone());
    }
    let mut gv_ratios = Vec::new();
    let mut cat_ratios = Vec::new();
    for p in &fns {
        gv_ratios.push(gv.invoke(&p.name)?.execution_ratio());
        cat_ratios.push(cat.invoke(&p.name)?.execution_ratio());
    }
    Ok((Cdf::from_samples(gv_ratios), Cdf::from_samples(cat_ratios)))
}

/// Prints Fig. 1.
pub fn render_fig01(gvisor: &Cdf, catalyzer: &Cdf) {
    println!("\nFigure 1 — CDF of execution/overall latency ratio, 14 functions");
    println!(
        "(paper: no gVisor function exceeds 65.54 %; ours peaks at {:.2} %)",
        gvisor.max().unwrap_or(0.0) * 100.0
    );
    rule(56);
    println!(
        "{:>14} {:>14} {:>14}",
        "ratio (%)", "gVisor CDF", "Catalyzer CDF"
    );
    for pct in (0..=100).step_by(10) {
        let x = f64::from(pct) / 100.0;
        println!(
            "{:>13}% {:>14.2} {:>14.2}",
            pct,
            gvisor.at(x),
            catalyzer.at(x)
        );
    }
}
