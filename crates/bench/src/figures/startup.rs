//! Startup-latency experiments: Fig. 4, Fig. 6, Fig. 7, Fig. 11, Table 2.

use catalyzer::{BootMode, Catalyzer, CatalyzerEngine};
use runtimes::{AppProfile, RuntimeKind};
use sandbox::{BootCtx, BootEngine, SandboxError};
use simtime::{CostModel, SimNanos};

use super::{boot_once, rule, System};
use crate::ms;

/// One Fig. 4 bar: the sandbox-vs-application split of startup latency.
#[derive(Debug, Clone)]
pub struct ShareRow {
    /// System name.
    pub system: &'static str,
    /// Application name.
    pub app: String,
    /// Sandbox-initialization share of startup (percent).
    pub sandbox_pct: f64,
    /// Application-initialization share of startup (percent).
    pub app_pct: f64,
    /// Total startup.
    pub total: SimNanos,
}

/// Fig. 4: startup-latency distribution for four sandboxes × four apps.
///
/// # Errors
///
/// Engine errors.
pub fn fig04(model: &CostModel) -> Result<Vec<ShareRow>, SandboxError> {
    let apps = [
        AppProfile::java_hello(),
        AppProfile::java_specjbb(),
        AppProfile::python_hello(),
        AppProfile::python_django(),
    ];
    let mut rows = Vec::new();
    for app in &apps {
        let mut systems: Vec<Box<dyn BootEngine>> = vec![
            Box::new(sandbox::DockerEngine::new()),
            Box::new(sandbox::GvisorEngine::new()),
            Box::new(sandbox::FirecrackerEngine::new()),
            Box::new(sandbox::HyperContainerEngine::new()),
        ];
        for engine in &mut systems {
            let (total, outcome) = boot_once(engine.as_mut(), app, model)?;
            let sandbox = outcome.sandbox_time().as_nanos() as f64;
            let appt = outcome.app_time().as_nanos() as f64;
            let sum = (sandbox + appt).max(1.0);
            rows.push(ShareRow {
                system: outcome.system,
                app: app.name.clone(),
                sandbox_pct: 100.0 * sandbox / sum,
                app_pct: 100.0 * appt / sum,
                total,
            });
        }
    }
    Ok(rows)
}

/// Prints Fig. 4.
pub fn render_fig04(rows: &[ShareRow]) {
    println!("\nFigure 4 — startup latency distribution (sandbox vs application %)");
    rule(78);
    println!(
        "{:<16} {:<14} {:>10} {:>10} {:>12}",
        "system", "app", "sandbox%", "app%", "total(ms)"
    );
    for r in rows {
        println!(
            "{:<16} {:<14} {:>9.1}% {:>9.1}% {:>12}",
            r.system,
            r.app,
            r.sandbox_pct,
            r.app_pct,
            ms(r.total)
        );
    }
}

/// One Fig. 6 / Fig. 11 cell.
#[derive(Debug, Clone)]
pub struct StartupRow {
    /// System name.
    pub system: &'static str,
    /// Application name.
    pub app: String,
    /// Startup latency.
    pub startup: SimNanos,
    /// Sandbox-attributed part.
    pub sandbox: SimNanos,
    /// Application/restore-attributed part.
    pub app_part: SimNanos,
}

/// Fig. 6: gVisor vs gVisor-restore across six applications.
///
/// # Errors
///
/// Engine errors.
pub fn fig06(model: &CostModel) -> Result<Vec<StartupRow>, SandboxError> {
    let apps = [
        AppProfile::c_hello(),
        AppProfile::c_nginx(),
        AppProfile::java_hello(),
        AppProfile::java_specjbb(),
        AppProfile::python_hello(),
        AppProfile::python_django(),
    ];
    let mut gvisor = sandbox::GvisorEngine::new();
    let mut restore = sandbox::GvisorRestoreEngine::new();
    let mut rows = Vec::new();
    for app in &apps {
        for engine in [&mut gvisor as &mut dyn BootEngine, &mut restore] {
            let (startup, outcome) = boot_once(engine, app, model)?;
            rows.push(StartupRow {
                system: outcome.system,
                app: app.name.clone(),
                startup,
                sandbox: outcome.sandbox_time(),
                app_part: outcome.app_time(),
            });
        }
    }
    Ok(rows)
}

/// Prints Fig. 6.
pub fn render_fig06(rows: &[StartupRow]) {
    println!("\nFigure 6 — startup latency of gVisor vs gVisor-restore (ms)");
    rule(78);
    println!(
        "{:<16} {:<16} {:>10} {:>12} {:>12}",
        "system", "app", "total", "sandbox", "app/restore"
    );
    for r in rows {
        println!(
            "{:<16} {:<16} {:>10} {:>12} {:>12}",
            r.system,
            r.app,
            ms(r.startup),
            ms(r.sandbox),
            ms(r.app_part)
        );
    }
}

/// Fig. 7: the cold/warm/fork taxonomy latencies for one C-class function
/// (the paper sketches 40 / 12 / 1 ms).
///
/// # Errors
///
/// Engine errors.
pub fn fig07(model: &CostModel) -> Result<[(&'static str, SimNanos); 3], SandboxError> {
    let profile = AppProfile::c_nginx();
    let mut system = Catalyzer::new();
    let cold = {
        let mut ctx = BootCtx::fresh(model);
        system.boot(BootMode::Cold, &profile, &mut ctx)?;
        ctx.now()
    };
    let warm = {
        let mut ctx = BootCtx::fresh(model);
        system.boot(BootMode::Warm, &profile, &mut ctx)?;
        ctx.now()
    };
    system.ensure_template(&profile, model)?;
    let fork = {
        let mut ctx = BootCtx::fresh(model);
        system.boot(BootMode::Fork, &profile, &mut ctx)?;
        ctx.now()
    };
    Ok([
        ("cold boot", cold),
        ("warm boot", warm),
        ("fork boot", fork),
    ])
}

/// Prints Fig. 7.
pub fn render_fig07(rows: &[(&'static str, SimNanos); 3]) {
    println!("\nFigure 7 — Catalyzer boot kinds (C-Nginx; paper sketch: 40/12/1 ms)");
    rule(40);
    for (kind, latency) in rows {
        println!("{:<12} {:>10} ms", kind, ms(*latency));
    }
}

/// Fig. 11: startup latency of every system across the ten applications.
///
/// # Errors
///
/// Engine errors.
pub fn fig11(model: &CostModel) -> Result<Vec<StartupRow>, SandboxError> {
    let apps = AppProfile::catalogue();
    let mut systems = System::fig11_lineup();
    let mut rows = Vec::new();
    for system in &mut systems {
        let name = system.name();
        for app in &apps {
            // The paper skips Ruby on FireCracker (unsupported kernel).
            if name == "FireCracker" && app.runtime == RuntimeKind::Ruby {
                continue;
            }
            let (startup, outcome) = boot_once(system.as_engine(), app, model)?;
            rows.push(StartupRow {
                system: outcome.system,
                app: app.name.clone(),
                startup,
                sandbox: outcome.sandbox_time(),
                app_part: outcome.app_time(),
            });
        }
    }
    Ok(rows)
}

/// Prints Fig. 11 as a system × app matrix.
pub fn render_fig11(rows: &[StartupRow]) {
    println!("\nFigure 11 — startup latency (ms), all systems × all applications");
    let apps: Vec<&str> = {
        let mut seen = Vec::new();
        for r in rows {
            if !seen.contains(&r.app.as_str()) {
                seen.push(r.app.as_str());
            }
        }
        seen
    };
    rule(20 + apps.len() * 10);
    print!("{:<18}", "system");
    for app in &apps {
        print!(" {:>9}", app.split('-').next_back().unwrap_or(app));
    }
    println!();
    let mut systems = Vec::new();
    for r in rows {
        if !systems.contains(&r.system) {
            systems.push(r.system);
        }
    }
    for system in systems {
        print!("{:<18}", system);
        for app in &apps {
            match rows.iter().find(|r| r.system == system && r.app == *app) {
                Some(r) => print!(" {:>9}", ms(r.startup)),
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }
}

/// Table 2: cold boot with the Java runtime template.
#[derive(Debug, Clone, Copy)]
pub struct Table2 {
    /// Native (no sandbox, warm host) JVM start.
    pub native: SimNanos,
    /// gVisor cold boot.
    pub gvisor: SimNanos,
    /// Catalyzer Java-runtime-template cold boot.
    pub template: SimNanos,
}

/// The speedup the JVM gets outside any sandbox with a warm host cache and
/// class-data sharing — calibrated so the "Native" row lands at the paper's
/// 89.4 ms (our in-sandbox JVM profiles model gVisor's interposed syscalls).
pub const NATIVE_JVM_FACTOR: f64 = 0.14;

/// Table 2: computes the three rows for a lightweight Java function.
///
/// # Errors
///
/// Engine errors.
pub fn table2(model: &CostModel) -> Result<Table2, SandboxError> {
    let profile = AppProfile::java_hello();
    let native = profile.app_init_estimate().scale(NATIVE_JVM_FACTOR);
    let (gvisor, _) = boot_once(&mut sandbox::GvisorEngine::new(), &profile, model)?;
    let mut cat = Catalyzer::new();
    cat.ensure_language_template(RuntimeKind::Java, model)?;
    let mut ctx = BootCtx::fresh(model);
    cat.language_template_boot(&profile, &mut ctx)?;
    Ok(Table2 {
        native,
        gvisor,
        template: ctx.now(),
    })
}

/// Prints Table 2.
pub fn render_table2(t: &Table2) {
    println!("\nTable 2 — cold boot with Java runtime templates (paper: 89.4 / 659.1 / 29.3 ms)");
    rule(56);
    println!("{:<14} {:>12} {:>14}", "Native", "gVisor", "Java template");
    println!(
        "{:<14} {:>12} {:>14}",
        ms(t.native),
        ms(t.gvisor),
        ms(t.template)
    );
}

/// Convenience wrapper used by benches: one warm boot per language hello app
/// (the paper's §6.2 zygote numbers).
///
/// # Errors
///
/// Engine errors.
pub fn zygote_warm_boots(model: &CostModel) -> Result<Vec<(String, SimNanos)>, SandboxError> {
    let apps = [
        AppProfile::c_hello(),
        AppProfile::java_hello(),
        AppProfile::python_hello(),
        AppProfile::ruby_hello(),
        AppProfile::node_hello(),
    ];
    let mut out = Vec::new();
    for app in apps {
        let mut engine = CatalyzerEngine::standalone(BootMode::Warm);
        let mut ctx = BootCtx::fresh(model);
        engine.boot(&app, &mut ctx)?;
        out.push((app.name, ctx.now()));
    }
    Ok(out)
}
