//! Experiment harness for the Catalyzer reproduction.
//!
//! One module per table/figure of the paper's evaluation (§2 and §6); each
//! exposes a typed `compute(..)` returning the figure's rows/series and a
//! `render(..)` that prints them the way the paper reports them. The `repro`
//! binary drives them from the command line:
//!
//! ```text
//! cargo run -p bench --bin repro -- all
//! cargo run -p bench --bin repro -- fig11
//! ```
//!
//! Criterion benches (`benches/figures.rs`, `benches/mechanisms.rs`) measure
//! the real wall-clock cost of the underlying mechanisms.

#![forbid(unsafe_code)]

pub mod admitbench;
pub mod chaosbench;
pub mod clusterbench;
pub mod export;
pub mod faultbench;
pub mod figures;
pub mod fleetbench;

/// Formats a `SimNanos` latency as the paper prints them (ms with 2–3
/// significant decimals).
pub fn ms(d: simtime::SimNanos) -> String {
    let v = d.as_millis_f64();
    if v < 0.01 {
        format!("{:.4}", v)
    } else if v < 10.0 {
        format!("{:.2}", v)
    } else {
        format!("{:.1}", v)
    }
}
