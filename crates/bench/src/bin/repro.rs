//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all            # everything (Fig. 15 at the paper's 1000 instances)
//! repro quick          # everything, with Fig. 15 capped at 100 instances
//! repro fig11          # one experiment
//! repro list           # available experiment ids
//! repro faults         # fault-injection sweep -> BENCH_pr3.json
//! repro overload       # admission/overload sweep -> BENCH_pr4.json
//! repro fleet          # fleet density grid -> BENCH_pr7.json
//! repro cluster        # cluster routing sweep -> BENCH_pr8.json
//! repro chaos          # node-fault survivability grid -> BENCH_pr9.json
//! repro all --check    # validate all six checked-in bench exports
//! ```

use bench::figures::{
    ablation, endtoend, generality, hostopts, pipeline, platformsim, scale, startup,
};
use simtime::CostModel;

const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "fig10",
    "fig11",
    "fig12",
    "fig13a",
    "fig13b",
    "fig13c",
    "fig14",
    "fig15",
    "fig16a",
    "fig16b",
    "fig16c",
    "fig16d",
    "table1",
    "table2",
    "table3",
    "tail",
    "generality",
    "sensitivity",
    "platform",
    "warm-breakdown",
];

fn run(id: &str, fig15_max: u32) -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::experimental_machine();
    match id {
        "fig1" => {
            let (gv, cat) = endtoend::fig01(&model)?;
            endtoend::render_fig01(&gv, &cat);
        }
        "fig2" => {
            let (boot, restore) = pipeline::fig02(&model)?;
            pipeline::render_fig02(&boot, &restore);
        }
        "fig3" => pipeline::render_fig03(),
        "fig4" => startup::render_fig04(&startup::fig04(&model)?),
        "fig6" => startup::render_fig06(&startup::fig06(&model)?),
        "fig7" => startup::render_fig07(&startup::fig07(&model)?),
        "fig10" => pipeline::render_fig10(),
        "fig11" => startup::render_fig11(&startup::fig11(&model)?),
        "fig12" => ablation::render_fig12(&ablation::fig12(&model)?),
        "fig13a" => endtoend::render_fig13(
            "Figure 13a — DeathStar microservices end-to-end (ms)",
            &endtoend::fig13a(&model)?,
        ),
        "fig13b" => endtoend::render_fig13(
            "Figure 13b — Pillow image processing end-to-end (ms)",
            &endtoend::fig13b(&model)?,
        ),
        "fig13c" => endtoend::render_fig13(
            "Figure 13c — E-commerce functions end-to-end, server machine (ms)",
            &endtoend::fig13c()?,
        ),
        "fig14" => scale::render_fig14(&scale::fig14(&model)?),
        "fig15" => scale::render_fig15(&scale::fig15(fig15_max)?),
        "fig16a" => hostopts::render_fig16a(&hostopts::fig16a(&model)?),
        "fig16b" => hostopts::render_fig16b(&hostopts::fig16b(&model)),
        "fig16c" => hostopts::render_fig16c(&hostopts::fig16c(&model)),
        "fig16d" => hostopts::render_fig16d(&hostopts::fig16d(&model)),
        "table1" => pipeline::render_table1(),
        "table2" => startup::render_table2(&startup::table2(&model)?),
        "table3" => ablation::render_table3(&ablation::table3(&model)?),
        "tail" => {
            let (cached, forked) = scale::tail_latency(&model)?;
            scale::render_tail(&cached, &forked);
        }
        "generality" => generality::render_generality(&generality::generality(&model)?),
        "platform" => {
            let (pooled, forked) = platformsim::platform_sim(&model)?;
            platformsim::render_platform_sim(&pooled, &forked);
        }
        "warm-breakdown" => {
            platformsim::render_warm_breakdown(&platformsim::warm_breakdown(&model)?)
        }
        "sensitivity" => generality::render_sensitivity(&generality::sensitivity()?),
        other => {
            eprintln!("unknown experiment '{other}'; try: repro list");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn csv(id: &str) -> Result<(), Box<dyn std::error::Error>> {
    use bench::figures::csv as out;
    let model = CostModel::experimental_machine();
    let text = match id {
        "fig6" => out::startup_rows(&startup::fig06(&model)?),
        "fig11" => out::startup_rows(&startup::fig11(&model)?),
        "fig12" => out::ablation_rows(&ablation::fig12(&model)?),
        "fig13a" => out::e2e_rows(&endtoend::fig13a(&model)?),
        "fig13b" => out::e2e_rows(&endtoend::fig13b(&model)?),
        "fig13c" => out::e2e_rows(&endtoend::fig13c()?),
        "fig14" => out::memory_rows(&scale::fig14(&model)?),
        "fig15" => out::scale_series(&scale::fig15(1000)?),
        "fig16b" => out::indexed_pair(
            "invocation,baseline_ms,cached_ms",
            &hostopts::fig16b(&model),
        ),
        "fig16c" => out::indexed_pair("ioctl,pml_ms,nopml_ms", &hostopts::fig16c(&model)),
        "fig16d" => out::indexed_pair("call,dup_ms,lazy_dup_ms", &hostopts::fig16d(&model)),
        other => {
            eprintln!("no CSV export for '{other}'");
            std::process::exit(2);
        }
    };
    print!("{text}");
    Ok(())
}

/// Writes the observability export (span trees + latency histograms per
/// Fig. 11 engine) to `path`, or with `check = true` re-generates it and
/// verifies `path` is valid and byte-identical (determinism gate).
fn export(path: &str, check: bool) -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::experimental_machine();
    let fresh = bench::export::generate(&model)?;
    bench::export::validate(&fresh)?;
    let text = bench::export::to_json(&fresh)?;
    if check {
        let on_disk = std::fs::read_to_string(path)?;
        let parsed = bench::export::from_json(&on_disk)?;
        bench::export::validate(&parsed)?;
        if on_disk != text {
            return Err(format!("{path} is stale: regenerate with 'repro export {path}'").into());
        }
        println!(
            "{path}: valid, {} engines, up to date",
            parsed.engines.len()
        );
    } else {
        std::fs::write(path, &text)?;
        println!(
            "wrote {path} ({} engines, {} bytes)",
            fresh.engines.len(),
            text.len()
        );
    }
    Ok(())
}

/// Writes the fault-injection sweep (availability, degraded counts, and
/// recovery latency per fault-rate × policy cell, plus the storm run) to
/// `path`, or with `check = true` re-generates it and verifies `path` is
/// valid and byte-identical (determinism gate).
fn faults(path: &str, check: bool) -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::experimental_machine();
    let fresh = bench::faultbench::generate(&model);
    bench::faultbench::validate(&fresh)?;
    let text = bench::faultbench::to_json(&fresh)?;
    if check {
        let on_disk = std::fs::read_to_string(path)?;
        let parsed = bench::faultbench::from_json(&on_disk)?;
        bench::faultbench::validate(&parsed)?;
        if on_disk != text {
            return Err(format!("{path} is stale: regenerate with 'repro faults {path}'").into());
        }
        println!(
            "{path}: valid, {} cells + storm, up to date",
            parsed.cells.len()
        );
    } else {
        std::fs::write(path, &text)?;
        println!(
            "wrote {path} ({} cells + storm, {} bytes)",
            fresh.cells.len(),
            text.len()
        );
    }
    Ok(())
}

/// Writes the overload sweep (admission grid + baseline-vs-full storm
/// comparison) to `path`, or with `check = true` re-generates it and
/// verifies `path` is valid and byte-identical (determinism gate).
fn overload(path: &str, check: bool) -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::experimental_machine();
    let fresh = bench::admitbench::generate(&model);
    bench::admitbench::validate(&fresh)?;
    let text = bench::admitbench::to_json(&fresh)?;
    if check {
        let on_disk = std::fs::read_to_string(path)?;
        let parsed = bench::admitbench::from_json(&on_disk)?;
        bench::admitbench::validate(&parsed)?;
        if on_disk != text {
            return Err(format!("{path} is stale: regenerate with 'repro overload {path}'").into());
        }
        println!(
            "{path}: valid, {} cells + storm, up to date",
            parsed.cells.len()
        );
    } else {
        std::fs::write(path, &text)?;
        println!(
            "wrote {path} ({} cells + storm, {} bytes)",
            fresh.cells.len(),
            text.len()
        );
    }
    Ok(())
}

/// Writes the fleet density grid (open-loop event engine over a 10k-function
/// synthetic catalogue, burst ladder 10^3–10^6 concurrent instances) to
/// `path`, or with `check = true` re-generates it and verifies `path` is
/// valid and byte-identical (determinism gate).
fn fleet(path: &str, check: bool) -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::experimental_machine();
    let fresh = bench::fleetbench::generate(&model)?;
    bench::fleetbench::validate(&fresh)?;
    let text = bench::fleetbench::to_json(&fresh)?;
    if check {
        let on_disk = std::fs::read_to_string(path)?;
        let parsed = bench::fleetbench::from_json(&on_disk)?;
        bench::fleetbench::validate(&parsed)?;
        if on_disk != text {
            return Err(format!("{path} is stale: regenerate with 'repro fleet {path}'").into());
        }
        let top = parsed.cells.last().map_or(0, |c| c.peak_instances);
        println!(
            "{path}: valid, {} cells, peak {top} instances, up to date",
            parsed.cells.len()
        );
    } else {
        std::fs::write(path, &text)?;
        let top = fresh.cells.last().map_or(0, |c| c.peak_instances);
        println!(
            "wrote {path} ({} cells, peak {top} instances, {} bytes)",
            fresh.cells.len(),
            text.len()
        );
    }
    Ok(())
}

/// Writes the cluster sweep (nodes × placement budget × routing policy on
/// a shared viral flash-crowd trace, plus the single-node parity probe and
/// the poisoned-transfer storm) to `path`, or with `check = true`
/// re-generates it and verifies `path` is valid and byte-identical
/// (determinism gate).
fn cluster(path: &str, check: bool) -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::experimental_machine();
    let fresh = bench::clusterbench::generate(&model)?;
    bench::clusterbench::validate(&fresh)?;
    let text = bench::clusterbench::to_json(&fresh)?;
    if check {
        let on_disk = std::fs::read_to_string(path)?;
        let parsed = bench::clusterbench::from_json(&on_disk)?;
        bench::clusterbench::validate(&parsed)?;
        if on_disk != text {
            return Err(format!("{path} is stale: regenerate with 'repro cluster {path}'").into());
        }
        println!(
            "{path}: valid, {} cells + parity + storm, up to date",
            parsed.cells.len()
        );
    } else {
        std::fs::write(path, &text)?;
        println!(
            "wrote {path} ({} cells + parity + storm, {} bytes)",
            fresh.cells.len(),
            text.len()
        );
    }
    Ok(())
}

/// Exports the chaos/survivability grid (fault class × cluster size ×
/// failover policy, plus the gray-then-crash storm) to `path`, or with
/// `check = true` re-generates it and verifies `path` is valid and
/// byte-identical (determinism gate).
fn chaos(path: &str, check: bool) -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::experimental_machine();
    let fresh = bench::chaosbench::generate(&model)?;
    bench::chaosbench::validate(&fresh)?;
    let text = bench::chaosbench::to_json(&fresh)?;
    if check {
        let on_disk = std::fs::read_to_string(path)?;
        let parsed = bench::chaosbench::from_json(&on_disk)?;
        bench::chaosbench::validate(&parsed)?;
        if on_disk != text {
            return Err(format!("{path} is stale: regenerate with 'repro chaos {path}'").into());
        }
        println!(
            "{path}: valid, {} cells + 2 storms, up to date",
            parsed.cells.len()
        );
    } else {
        std::fs::write(path, &text)?;
        println!(
            "wrote {path} ({} cells + 2 storms, {} bytes)",
            fresh.cells.len(),
            text.len()
        );
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let result = match command {
        "list" => {
            for id in EXPERIMENTS {
                println!("{id}");
            }
            Ok(())
        }
        "export" => {
            let check = args.iter().any(|a| a == "--check");
            let path = args
                .iter()
                .skip(1)
                .find(|a| *a != "--check")
                .map(String::as_str)
                .unwrap_or("BENCH_pr2.json");
            export(path, check)
        }
        "faults" => {
            let check = args.iter().any(|a| a == "--check");
            let path = args
                .iter()
                .skip(1)
                .find(|a| *a != "--check")
                .map(String::as_str)
                .unwrap_or("BENCH_pr3.json");
            faults(path, check)
        }
        "overload" => {
            let check = args.iter().any(|a| a == "--check");
            let path = args
                .iter()
                .skip(1)
                .find(|a| *a != "--check")
                .map(String::as_str)
                .unwrap_or("BENCH_pr4.json");
            overload(path, check)
        }
        "fleet" => {
            let check = args.iter().any(|a| a == "--check");
            let path = args
                .iter()
                .skip(1)
                .find(|a| *a != "--check")
                .map(String::as_str)
                .unwrap_or("BENCH_pr7.json");
            fleet(path, check)
        }
        "cluster" => {
            let check = args.iter().any(|a| a == "--check");
            let path = args
                .iter()
                .skip(1)
                .find(|a| *a != "--check")
                .map(String::as_str)
                .unwrap_or("BENCH_pr8.json");
            cluster(path, check)
        }
        "chaos" => {
            let check = args.iter().any(|a| a == "--check");
            let path = args
                .iter()
                .skip(1)
                .find(|a| *a != "--check")
                .map(String::as_str)
                .unwrap_or("BENCH_pr9.json");
            chaos(path, check)
        }
        "csv" => match args.get(1) {
            Some(id) => csv(id),
            None => {
                eprintln!("usage: repro csv <experiment>");
                std::process::exit(2);
            }
        },
        "all" | "quick" if args.iter().any(|a| a == "--check") => {
            // The one-stop determinism gate: every checked-in bench export
            // regenerated in-memory and verified byte-identical.
            export("BENCH_pr2.json", true)
                .and_then(|()| faults("BENCH_pr3.json", true))
                .and_then(|()| overload("BENCH_pr4.json", true))
                .and_then(|()| fleet("BENCH_pr7.json", true))
                .and_then(|()| cluster("BENCH_pr8.json", true))
                .and_then(|()| chaos("BENCH_pr9.json", true))
        }
        "all" | "quick" => {
            let fig15_max = if command == "quick" { 100 } else { 1000 };
            println!("Catalyzer reproduction — regenerating every table and figure");
            println!("(virtual-time simulation; see DESIGN.md for the substitution rules)");
            EXPERIMENTS.iter().try_for_each(|id| run(id, fig15_max))
        }
        id => run(id, 1000),
    };
    if let Err(e) = result {
        eprintln!("repro failed: {e}");
        std::process::exit(1);
    }
}
