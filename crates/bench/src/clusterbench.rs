//! Deterministic JSON export of the cluster sweep (`repro cluster`).
//!
//! `generate` drives the open-loop cluster engine
//! ([`platform::cluster::ClusterSim`]) through a nodes × placement-budget ×
//! routing-policy grid on one shared flash-crowd trace: a Poisson baseline
//! with Zipf-skewed popularity over a 10 000-function catalogue, plus a
//! viral burst — [`BURST`] arrivals for one function inside a window
//! shorter than a single fork boot. The burst saturates the function's
//! template holders, so overflow traffic must pick a rung: remote sfork
//! from a holder ([`platform::cluster::RoutingPolicy::RemoteFork`]) or a
//! registry pull and cold boot (the
//! [`platform::cluster::RoutingPolicy::LocalCold`] baseline).
//!
//! The export also carries two non-grid probes the validator pins:
//!
//! - **parity** — a single-node closed-loop [`Cluster`] and a plain
//!   `Gateway<CatalyzerEngine>` replay the same request sequence; their
//!   span trees and gateway metrics must digest identically (the cluster
//!   layer adds nothing until there is a second node);
//! - **storm** — the grid's remote-fork shape re-run with the
//!   template-transfer seam poisoned: transfers fault, requests degrade to
//!   cold instead of shedding, and background repairs restore the fabric.
//!
//! Everything runs on virtual time from seeded traces, so two runs produce
//! byte-identical output — `tools/check.sh` validates `BENCH_pr8.json` the
//! same way it gates the pr2–pr4 and pr7 exports.

use catalyzer::{BootMode, CatalyzerEngine};
use faultsim::{FaultPlan, InjectionPoint, PointPlan};
use platform::cluster::{ClusterConfig, ClusterOutcome, ClusterSim, RoutingPolicy, TransferCosts};
use platform::simulate::TraceRequest;
use platform::{Cluster, Gateway, Invocation, PlatformError};
use runtimes::AppProfile;
use serde::{Deserialize, Serialize};
use simtime::{CostModel, SimNanos};
use workloads::catalogue;
use workloads::generator::{open_loop, Arrivals, Popularity, TraceSpec};

use crate::fleetbench::QuantRow;

/// Schema tag so downstream tooling can reject stale files.
pub const SCHEMA: &str = "catalyzer-bench/pr8-v1";

/// Seed for the catalogue, the baseline trace, and the storm injector.
pub const SEED: u64 = 0x0C10_0801;

/// Functions in the shared catalogue.
pub const FUNCTIONS: usize = 10_000;

/// Zipf exponent of baseline function popularity.
pub const ZIPF_EXPONENT: f64 = 1.0;

/// Keep-alive every cell runs with — short enough that the warm set stays
/// a small fraction of node capacity at the baseline rate.
pub const KEEP_ALIVE: SimNanos = SimNanos::from_millis(200);

/// Warm instances retained per (node, function).
pub const MAX_IDLE: usize = 4;

/// Concurrent-instance cap per node. One node cannot absorb the viral
/// burst; two can — the capacity cliff the routing policies fight over.
pub const NODE_CAPACITY: usize = 2_000;

/// Poisson baseline rate under the burst (drives reuse and keep-alive).
pub const BASE_RATE_HZ: f64 = 2_000.0;

/// Baseline requests around the burst.
pub const TAIL: usize = 6_000;

/// Instant the viral burst lands.
pub const BURST_AT: SimNanos = SimNanos::from_secs(1);

/// Window the burst's arrivals spread over — shorter than one fork boot,
/// so the whole burst is airborne before any of its boots complete.
pub const BURST_WIDTH: SimNanos = SimNanos::from_micros(500);

/// Burst size: arrivals for the viral function, 1.5× one node's capacity.
pub const BURST: usize = 3_000;

/// The function that goes viral (the Zipf head).
pub const VIRAL_FUNCTION: usize = 0;

/// The node-count axis of the grid.
pub const NODE_AXIS: [usize; 4] = [1, 2, 4, 8];

/// The placement-budget axis (skipped where the budget exceeds the nodes).
pub const BUDGET_AXIS: [usize; 2] = [1, 2];

/// Requests the closed-loop parity probe replays on both stacks.
pub const PARITY_REQUESTS: usize = 48;

/// One grid cell: a cluster shape × routing policy on the shared trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterCell {
    /// Nodes in the cluster.
    pub nodes: u64,
    /// Template replicas placed per function.
    pub placement_budget: u64,
    /// Routing policy label (`remote-fork` / `local-cold`).
    pub policy: String,
    /// Requests in the trace.
    pub requests: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests shed with every node at capacity.
    pub shed: u64,
    /// `completed / requests`.
    pub availability: f64,
    /// Requests served by a warm instance.
    pub reuses: u64,
    /// Requests served by a local sfork on a template holder.
    pub local: u64,
    /// Requests served by a remote sfork.
    pub remote: u64,
    /// Requests served by a cold boot.
    pub cold: u64,
    /// Requests pushed off the template-local nodes by saturation.
    pub reroutes: u64,
    /// Template transfers started.
    pub transfers: u64,
    /// Transfers that absorbed an injected fault.
    pub transfer_faults: u64,
    /// Background node repairs after poisoned transfers.
    pub node_repairs: u64,
    /// Instances reclaimed by keep-alive expiry.
    pub expirations: u64,
    /// Events the queue processed.
    pub events: u64,
    /// Virtual time of the last event.
    pub horizon: SimNanos,
    /// `cold / requests`.
    pub cold_rate: f64,
    /// Most instances ever live at once on any node.
    pub peak_node_instances: u64,
    /// Per-node peak instance counts.
    pub per_node_peak: Vec<u64>,
    /// Startup distribution across every served request.
    pub startup: QuantRow,
    /// End-to-end (startup + execution) distribution.
    pub end_to_end: QuantRow,
    /// Startup distribution of the remote-sfork rung alone.
    pub remote_startup: QuantRow,
    /// Startup distribution of the cold rung alone.
    pub cold_startup: QuantRow,
    /// FNV-1a digest of every routing decision in order.
    pub route_hash: u64,
}

/// The single-node closed-loop equivalence probe.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParityProbe {
    /// Requests replayed on both stacks.
    pub requests: u64,
    /// FNV-1a digest of the plain `Gateway<CatalyzerEngine>` run: every
    /// span tree plus the final gateway metrics.
    pub gateway_digest: u64,
    /// The same digest over the single-node cluster's node-0 gateway.
    pub cluster_digest: u64,
    /// `gateway_digest == cluster_digest`.
    pub matches: bool,
}

/// The whole `BENCH_pr8.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterBenchExport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Machine model the latencies were simulated on.
    pub machine: String,
    /// Catalogue/trace seed.
    pub seed: u64,
    /// Functions in the catalogue.
    pub functions: u64,
    /// Zipf exponent of baseline popularity.
    pub zipf_exponent: f64,
    /// Keep-alive every cell runs with.
    pub keep_alive: SimNanos,
    /// Warm instances retained per (node, function).
    pub max_idle: u64,
    /// Concurrent-instance cap per node.
    pub node_capacity: u64,
    /// Poisson baseline rate.
    pub base_rate_hz: f64,
    /// Viral burst size.
    pub burst: u64,
    /// Burst window width.
    pub burst_width: SimNanos,
    /// RDMA setup cost per transfer.
    pub transfer_setup: SimNanos,
    /// Per-page one-sided read cost.
    pub transfer_per_page: SimNanos,
    /// Fraction of the template shipped eagerly.
    pub eager_fraction: f64,
    /// Registry pull paid by a cold boot on a non-holder node.
    pub cold_pull: SimNanos,
    /// Single-node closed-loop equivalence probe.
    pub parity: ParityProbe,
    /// The grid, in axis order (nodes, then budget, then policy).
    pub cells: Vec<ClusterCell>,
    /// The remote-fork shape under a poisoned transfer fabric.
    pub storm: ClusterCell,
}

fn fnv_bytes(hash: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *hash = (*hash ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
}

/// The grid catalogue: [`FUNCTIONS`] functions cycling the fourteen paper
/// profiles — every function gets its own name (its own placement,
/// routing, and warm set) while the underlying cost shapes repeat, so the
/// per-cell calibration pass stays a fixed fourteen shapes instead of
/// growing with the catalogue.
fn cluster_catalogue() -> Vec<AppProfile> {
    let bases = catalogue::fig1_functions();
    (0..FUNCTIONS)
        .map(|i| {
            let mut p = bases[i % bases.len()].clone();
            p.name = format!("{}-{i:05}", p.name);
            p
        })
        .collect()
}

/// The shared flash-crowd trace: a Zipf Poisson baseline with [`BURST`]
/// extra arrivals for [`VIRAL_FUNCTION`] spread evenly over
/// [`BURST_WIDTH`] at [`BURST_AT`].
fn flash_crowd_trace() -> Vec<TraceRequest> {
    let spec = TraceSpec {
        functions: FUNCTIONS,
        count: TAIL,
        arrivals: Arrivals::Poisson {
            rate_hz: BASE_RATE_HZ,
        },
        popularity: Popularity::Zipf {
            exponent: ZIPF_EXPONENT,
        },
        seed: SEED,
    };
    let mut trace: Vec<TraceRequest> = open_loop(&spec)
        .into_iter()
        .map(|r| TraceRequest {
            arrival: r.arrival,
            function: r.function,
        })
        .collect();
    let step = BURST_WIDTH.as_nanos().max(1) / BURST as u64;
    for i in 0..BURST {
        trace.push(TraceRequest {
            arrival: BURST_AT.saturating_add(SimNanos::from_nanos(step.saturating_mul(i as u64))),
            function: VIRAL_FUNCTION,
        });
    }
    trace.sort_by_key(|r| r.arrival);
    trace
}

fn cell_row(
    nodes: usize,
    budget: usize,
    policy: RoutingPolicy,
    requests: usize,
    outcome: &ClusterOutcome,
) -> ClusterCell {
    ClusterCell {
        nodes: u64::try_from(nodes).unwrap_or(u64::MAX),
        placement_budget: u64::try_from(budget).unwrap_or(u64::MAX),
        policy: policy.label().to_string(),
        requests: u64::try_from(requests).unwrap_or(u64::MAX),
        completed: outcome.completed,
        shed: outcome.shed,
        availability: outcome.goodput,
        reuses: outcome.reuses,
        local: outcome.local,
        remote: outcome.remote,
        cold: outcome.cold,
        reroutes: outcome.reroutes,
        transfers: outcome.transfers,
        transfer_faults: outcome.transfer_faults,
        node_repairs: outcome.node_repairs,
        expirations: outcome.expirations,
        events: outcome.events,
        horizon: outcome.horizon,
        cold_rate: outcome.cold_rate,
        peak_node_instances: u64::try_from(outcome.peak_node_instances).unwrap_or(u64::MAX),
        per_node_peak: outcome
            .per_node_peak
            .iter()
            .map(|&p| u64::try_from(p).unwrap_or(u64::MAX))
            .collect(),
        startup: outcome.startup.into(),
        end_to_end: outcome.end_to_end.into(),
        remote_startup: outcome.remote_startup.into(),
        cold_startup: outcome.cold_startup.into(),
        route_hash: outcome.route_hash,
    }
}

fn run_cell(
    model: &CostModel,
    cat: &[AppProfile],
    trace: &[TraceRequest],
    nodes: usize,
    budget: usize,
    policy: RoutingPolicy,
    plan: Option<FaultPlan>,
) -> Result<ClusterCell, PlatformError> {
    let mut config = ClusterConfig::new(nodes, budget);
    config.routing = policy;
    let mut sim = ClusterSim::new(cat.to_vec(), config)
        .with_model(model.clone())
        .with_keep_alive(KEEP_ALIVE)
        .with_max_idle(MAX_IDLE)
        .with_node_capacity(NODE_CAPACITY);
    if let Some(plan) = plan {
        sim = sim.with_faults(plan);
    }
    let outcome = sim.run_cluster(trace)?;
    Ok(cell_row(nodes, budget, policy, trace.len(), &outcome))
}

/// Folds one served invocation into a parity digest: the full span tree
/// plus the latency split.
fn fold_invocation(hash: &mut u64, invocation: &Invocation) -> Result<(), PlatformError> {
    let spans =
        serde_json::to_string(&invocation.trace).map_err(|e| PlatformError::ClusterConfig {
            detail: format!("parity digest serialization failed: {e}"),
        })?;
    fnv_bytes(hash, spans.as_bytes());
    fnv_bytes(hash, &invocation.report.boot.as_nanos().to_le_bytes());
    fnv_bytes(hash, &invocation.report.exec.as_nanos().to_le_bytes());
    fnv_bytes(hash, &invocation.queued.as_nanos().to_le_bytes());
    Ok(())
}

fn fold_metrics(hash: &mut u64, metrics: &simtime::MetricsRegistry) -> Result<(), PlatformError> {
    let text = serde_json::to_string(metrics).map_err(|e| PlatformError::ClusterConfig {
        detail: format!("parity digest serialization failed: {e}"),
    })?;
    fnv_bytes(hash, text.as_bytes());
    Ok(())
}

/// The request sequence both parity stacks replay: the two C profiles,
/// interleaved.
fn parity_sequence() -> Vec<&'static str> {
    (0..PARITY_REQUESTS)
        .map(|i| if i % 2 == 0 { "C-hello" } else { "C-Nginx" })
        .collect()
}

/// Replays the parity sequence on a plain gateway and on a single-node
/// cluster, digesting span trees and metrics from both.
fn parity_probe(model: &CostModel) -> Result<ParityProbe, PlatformError> {
    let sequence = parity_sequence();

    let mut gateway = Gateway::new(CatalyzerEngine::standalone(BootMode::Fork), model.clone());
    gateway.register(AppProfile::c_hello());
    gateway.register(AppProfile::c_nginx());
    let mut gateway_digest = 0xcbf2_9ce4_8422_2325u64;
    for function in &sequence {
        let invocation = gateway.invoke_detailed(function)?;
        fold_invocation(&mut gateway_digest, &invocation)?;
    }
    fold_metrics(&mut gateway_digest, gateway.metrics())?;

    let mut cluster = Cluster::new(ClusterConfig::new(1, 1), model)?;
    cluster.register(AppProfile::c_hello());
    cluster.register(AppProfile::c_nginx());
    let mut cluster_digest = 0xcbf2_9ce4_8422_2325u64;
    for function in &sequence {
        let (_, invocation) = cluster.call(function, None)?;
        fold_invocation(&mut cluster_digest, &invocation)?;
    }
    let node = cluster
        .nodes()
        .first()
        .ok_or(PlatformError::ClusterConfig {
            detail: "single-node cluster has no node 0".into(),
        })?;
    fold_metrics(&mut cluster_digest, node.gateway().metrics())?;

    Ok(ParityProbe {
        requests: u64::try_from(sequence.len()).unwrap_or(u64::MAX),
        gateway_digest,
        cluster_digest,
        matches: gateway_digest == cluster_digest,
    })
}

/// The storm injector: every transfer consult fires, always poison, so the
/// fabric breaks on first use and background repairs must restore it.
fn storm_plan() -> FaultPlan {
    FaultPlan::zero(SEED)
        .with_point(
            InjectionPoint::TemplateTransfer,
            PointPlan {
                rate: 1.0,
                stall_ratio: 0.0,
                max_burst: 1,
            },
        )
        .with_poison_ratio(1.0)
}

/// Runs the grid, the parity probe, and the storm.
///
/// # Errors
///
/// Propagates [`PlatformError`] from the engines (none in practice: the
/// generated traces and configs are valid by construction).
pub fn generate(model: &CostModel) -> Result<ClusterBenchExport, PlatformError> {
    let cat = cluster_catalogue();
    let trace = flash_crowd_trace();
    let costs = TransferCosts::rdma_defaults();

    let mut cells = Vec::new();
    for nodes in NODE_AXIS {
        for budget in BUDGET_AXIS {
            if budget > nodes {
                continue;
            }
            for policy in [RoutingPolicy::RemoteFork, RoutingPolicy::LocalCold] {
                cells.push(run_cell(model, &cat, &trace, nodes, budget, policy, None)?);
            }
        }
    }
    let storm = run_cell(
        model,
        &cat,
        &trace,
        4,
        1,
        RoutingPolicy::RemoteFork,
        Some(storm_plan()),
    )?;
    let parity = parity_probe(model)?;

    Ok(ClusterBenchExport {
        schema: SCHEMA.to_string(),
        machine: model.machine.label().to_string(),
        seed: SEED,
        functions: u64::try_from(FUNCTIONS).unwrap_or(u64::MAX),
        zipf_exponent: ZIPF_EXPONENT,
        keep_alive: KEEP_ALIVE,
        max_idle: u64::try_from(MAX_IDLE).unwrap_or(u64::MAX),
        node_capacity: u64::try_from(NODE_CAPACITY).unwrap_or(u64::MAX),
        base_rate_hz: BASE_RATE_HZ,
        burst: u64::try_from(BURST).unwrap_or(u64::MAX),
        burst_width: BURST_WIDTH,
        transfer_setup: costs.setup,
        transfer_per_page: costs.per_page,
        eager_fraction: costs.eager_fraction,
        cold_pull: costs.cold_pull,
        parity,
        cells,
        storm,
    })
}

/// Serializes an export to its canonical JSON form.
///
/// # Errors
///
/// Serialization errors (none in practice: the types are closed).
pub fn to_json(export: &ClusterBenchExport) -> Result<String, serde_json::Error> {
    serde_json::to_string(export)
}

/// Parses a previously exported document.
///
/// # Errors
///
/// Malformed JSON or schema drift.
pub fn from_json(text: &str) -> Result<ClusterBenchExport, serde_json::Error> {
    serde_json::from_str(text)
}

fn check_conservation(tag: &str, cell: &ClusterCell) -> Result<(), String> {
    if cell.requests == 0 {
        return Err(format!("{tag}: empty cell"));
    }
    if cell.completed + cell.shed != cell.requests {
        return Err(format!("{tag}: completed + shed != requests"));
    }
    if cell.reuses + cell.local + cell.remote + cell.cold != cell.completed {
        return Err(format!("{tag}: rung counts do not sum to completions"));
    }
    let availability = cell.completed as f64 / cell.requests as f64;
    if (cell.availability - availability).abs() > 1e-9 {
        return Err(format!("{tag}: availability != completed / requests"));
    }
    if cell.startup.count != cell.completed || cell.end_to_end.count != cell.completed {
        return Err(format!("{tag}: latency samples != completions"));
    }
    if cell.policy == RoutingPolicy::LocalCold.label() && (cell.remote != 0 || cell.transfers != 0)
    {
        return Err(format!("{tag}: the no-remote-fork baseline remote-sforked"));
    }
    if cell.nodes == 1 && (cell.remote != 0 || cell.reroutes != 0) {
        return Err(format!("{tag}: a single node has nowhere to re-route"));
    }
    Ok(())
}

/// Validates an export's internal consistency and the claims the sweep
/// exists to demonstrate: the single-node cluster is byte-identical to the
/// plain gateway; every zero-fault remote-fork cell with a second node
/// holds availability 1.0 with zero cold boots while the local-cold
/// baseline cold-boots (or sheds) on the same trace and pays a worse
/// startup tail; and the storm absorbs transfer poison by degrading to
/// cold — never by shedding — while background repairs run.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate(export: &ClusterBenchExport) -> Result<(), String> {
    if export.schema != SCHEMA {
        return Err(format!(
            "schema mismatch: {} (expected {SCHEMA})",
            export.schema
        ));
    }
    if !export.parity.matches || export.parity.gateway_digest != export.parity.cluster_digest {
        return Err(format!(
            "single-node cluster diverged from the plain gateway: {:#x} vs {:#x}",
            export.parity.gateway_digest, export.parity.cluster_digest
        ));
    }

    let expected: usize = NODE_AXIS
        .iter()
        .map(|&n| 2 * BUDGET_AXIS.iter().filter(|&&b| b <= n).count())
        .sum();
    if export.cells.len() != expected {
        return Err(format!(
            "grid incomplete: {} cells (expected {expected})",
            export.cells.len()
        ));
    }

    for cell in &export.cells {
        let tag = format!(
            "cell {}n/{}r/{}",
            cell.nodes, cell.placement_budget, cell.policy
        );
        check_conservation(&tag, cell)?;
        if cell.transfer_faults != 0 || cell.node_repairs != 0 {
            return Err(format!("{tag}: faults fired without an injector"));
        }
    }

    // The headline comparison, per multi-node shape: the full ladder holds
    // availability 1.0 without a single cold boot; the baseline cold-boots
    // or sheds, and its startup tail is strictly worse.
    for &nodes in NODE_AXIS.iter().filter(|&&n| n > 1) {
        let pick = |policy: RoutingPolicy| {
            export.cells.iter().find(|c| {
                c.nodes == nodes as u64 && c.placement_budget == 1 && c.policy == policy.label()
            })
        };
        let forked = pick(RoutingPolicy::RemoteFork)
            .ok_or_else(|| format!("missing remote-fork cell for {nodes} nodes"))?;
        let baseline = pick(RoutingPolicy::LocalCold)
            .ok_or_else(|| format!("missing local-cold cell for {nodes} nodes"))?;
        if forked.shed != 0 || forked.availability < 1.0 {
            return Err(format!(
                "{nodes}-node remote-fork cell shed {} requests",
                forked.shed
            ));
        }
        if forked.cold != 0 {
            return Err(format!("{nodes}-node remote-fork cell cold-booted"));
        }
        if forked.remote == 0 || forked.transfers == 0 {
            return Err(format!(
                "{nodes}-node remote-fork cell never remote-sforked"
            ));
        }
        if baseline.cold == 0 && baseline.shed == 0 {
            return Err(format!(
                "{nodes}-node local-cold baseline neither cold-booted nor shed"
            ));
        }
        if forked.startup.p99 >= baseline.startup.p99 {
            return Err(format!(
                "{nodes}-node remote-fork p99 {:?} not under the cold baseline's {:?}",
                forked.startup.p99, baseline.startup.p99
            ));
        }
        if baseline.cold > 0 && forked.remote_startup.p99 >= baseline.cold_startup.p99 {
            return Err(format!(
                "{nodes}-node remote-sfork rung p99 {:?} not under the cold rung's {:?}",
                forked.remote_startup.p99, baseline.cold_startup.p99
            ));
        }
    }

    // A single node cannot absorb the burst: the capacity cliff the
    // multi-node cells climb over.
    if let Some(single) = export.cells.iter().find(|c| c.nodes == 1) {
        if single.shed == 0 {
            return Err("the single-node cell absorbed the burst — no cliff to demonstrate".into());
        }
    }

    check_conservation("storm", &export.storm)?;
    if export.storm.transfer_faults == 0 {
        return Err("storm: the poisoned transfer fabric never faulted".into());
    }
    if export.storm.node_repairs == 0 {
        return Err("storm: no background repairs ran".into());
    }
    if export.storm.cold == 0 {
        return Err("storm: poisoned transfers must degrade to cold boots".into());
    }
    if export.storm.shed != 0 || export.storm.availability < 1.0 {
        return Err(format!(
            "storm: degradation must preserve availability (shed {})",
            export.storm.shed
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_probe_matches_the_plain_gateway() {
        let model = CostModel::experimental_machine();
        let parity = parity_probe(&model).unwrap();
        assert!(
            parity.matches,
            "digests {:#x} vs {:#x}",
            parity.gateway_digest, parity.cluster_digest
        );
        assert_eq!(parity.requests, PARITY_REQUESTS as u64);
    }

    #[test]
    fn a_small_cell_is_deterministic_and_conserves_requests() {
        let model = CostModel::experimental_machine();
        let cat = vec![AppProfile::c_hello()];
        let trace: Vec<TraceRequest> = (0..300u64)
            .map(|i| TraceRequest {
                arrival: SimNanos::from_nanos(i),
                function: 0,
            })
            .collect();
        let run = || run_cell(&model, &cat, &trace, 4, 1, RoutingPolicy::RemoteFork, None).unwrap();
        let a = run();
        let b = run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        check_conservation("test", &a).unwrap();
        assert!(a.remote > 0, "{a:?}");
    }

    #[test]
    fn validate_rejects_schema_drift() {
        let model = CostModel::experimental_machine();
        let parity = parity_probe(&model).unwrap();
        let cell = {
            let cat = vec![AppProfile::c_hello()];
            let trace: Vec<TraceRequest> = (0..100u64)
                .map(|i| TraceRequest {
                    arrival: SimNanos::from_nanos(i),
                    function: 0,
                })
                .collect();
            run_cell(&model, &cat, &trace, 2, 1, RoutingPolicy::RemoteFork, None).unwrap()
        };
        let export = ClusterBenchExport {
            schema: "catalyzer-bench/pr0-v0".to_string(),
            machine: "test".to_string(),
            seed: SEED,
            functions: 1,
            zipf_exponent: ZIPF_EXPONENT,
            keep_alive: KEEP_ALIVE,
            max_idle: MAX_IDLE as u64,
            node_capacity: NODE_CAPACITY as u64,
            base_rate_hz: BASE_RATE_HZ,
            burst: BURST as u64,
            burst_width: BURST_WIDTH,
            transfer_setup: SimNanos::ZERO,
            transfer_per_page: SimNanos::ZERO,
            eager_fraction: 0.0,
            cold_pull: SimNanos::ZERO,
            parity,
            cells: vec![cell.clone()],
            storm: cell,
        };
        let err = validate(&export).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }
}
