//! Deterministic JSON export of the overload sweep (`repro overload`).
//!
//! `generate` drives [`platform::run_admitted`] — admission-controlled,
//! self-healing pools over the Catalyzer fork-boot ladder — through an
//! arrival-gap × concurrency-limit × breaker-policy grid (fault-free), plus
//! one fault *storm* comparing the no-admission baseline against the full
//! overload-protection posture on the identical trace and capacity. The
//! sweep demonstrates the PR's robustness claims:
//!
//! - at zero load, admission is invisible: nothing sheds, no breaker trips;
//! - past saturation, the bounded queue sheds typed `Overload` instead of
//!   queueing without bound — and the breaker, with no failures to see,
//!   changes *nothing* (the matching breaker-on/off cells are identical);
//! - under a poison-plus-transient storm, the baseline's unbounded queue
//!   blows its p99 and goodput collapses, while the full policy sheds the
//!   doomed requests typed, trips the breaker, repairs the poisoned
//!   template off the request path, and keeps admitted requests at
//!   availability 1.0 with a bounded p99.
//!
//! Everything runs on virtual time from seeded plans, so two runs produce
//! byte-identical output — `tools/check.sh` validates `BENCH_pr4.json` the
//! same way it gates `BENCH_pr2.json` and `BENCH_pr3.json`.

use catalyzer::{BootMode, CatalyzerEngine};
use faultsim::{FaultPlan, InjectionPoint, PointPlan};
use platform::simulate::TraceRequest;
use platform::{run_admitted, AdmissionPolicy, AdmittedOutcome, ResiliencePolicy};
use runtimes::AppProfile;
use serde::{Deserialize, Serialize};
use simtime::{CostModel, SimNanos};

/// Schema tag so downstream tooling can reject stale files.
pub const SCHEMA: &str = "catalyzer-bench/pr4-v1";

/// Seed the storm cell's [`FaultPlan`] is built from.
pub const SEED: u64 = 0x00AD_C0DE;

/// Requests per fault-free grid cell.
pub const REQUESTS_PER_CELL: usize = 64;

/// Relative deadline stamped on every request (goodput's yardstick).
pub const DEADLINE: SimNanos = SimNanos::from_millis(5);

/// Arrival gaps swept, widest (zero load) first.
pub const GAPS: [SimNanos; 3] = [
    SimNanos::from_millis(2),
    SimNanos::from_micros(400),
    SimNanos::from_micros(100),
];

/// Per-function concurrency limits swept.
pub const LIMITS: [usize; 2] = [2, 8];

/// Arrival gap of the storm trace. Chosen *under* capacity (service is
/// ≈ 1.16 ms against 2 slots, so the fleet sustains one arrival per
/// ≈ 580 µs): absent the storm, nothing queues and nothing sheds — any
/// collapse below is the storm's doing, not steady-state oversaturation.
pub const STORM_GAP: SimNanos = SimNanos::from_micros(700);

/// Requests in the storm trace (≈ 210 ms of arrivals — well past the
/// window, so the baseline's backlog drain has room to show).
pub const STORM_REQUESTS: usize = 300;

/// The storm window on the platform clock, half-open.
pub const STORM_WINDOW: (SimNanos, SimNanos) =
    (SimNanos::from_millis(20), SimNanos::from_millis(50));

/// Per-function concurrency limit in both storm cells.
pub const STORM_LIMIT: usize = 2;

/// Retry budget per ladder rung in the storm cells. The cumulative
/// exponential backoff (`200 µs × (2^8 − 1) ≈ 51 ms`) is guaranteed to
/// carry a retrying rung past the 30 ms window, so an admitted request
/// never runs out of budget mid-storm.
pub const STORM_RETRIES: u32 = 8;

/// One (gap, limit, breaker-policy) cell of the fault-free grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmitCell {
    /// Arrival gap between consecutive requests.
    pub gap: SimNanos,
    /// Per-function concurrency limit.
    pub limit: u64,
    /// Admission-policy label (`deadline` = breaker off, `full` = on).
    pub policy: String,
    /// Requests offered.
    pub requests: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Admitted requests that surfaced an error.
    pub failed: u64,
    /// Sheds typed `Overload`.
    pub shed_overload: u64,
    /// Sheds typed `DeadlineExceeded`.
    pub shed_deadline: u64,
    /// Sheds typed `CircuitOpen`.
    pub shed_breaker: u64,
    /// Completions within their deadline.
    pub goodput: u64,
    /// `completed / admitted`.
    pub availability: f64,
    /// `goodput / requests` — the fraction of *offered* load answered in
    /// time.
    pub goodput_rate: f64,
    /// Median end-to-end latency (queue wait + startup + execution).
    pub p50: SimNanos,
    /// 99th-percentile end-to-end latency.
    pub p99: SimNanos,
    /// Breaker trips (must be zero: the grid is fault-free).
    pub breaker_opens: u64,
}

/// One recorded breaker state change in the storm cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitionRow {
    /// Function whose breaker moved.
    pub function: String,
    /// Virtual time of the transition.
    pub at: SimNanos,
    /// State left.
    pub from: String,
    /// State entered.
    pub to: String,
}

/// One side of the storm comparison (baseline or full policy).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StormSide {
    /// Admission-policy label (`baseline` or `full`).
    pub policy: String,
    /// Requests offered.
    pub requests: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Admitted requests that surfaced an error.
    pub failed: u64,
    /// Sheds typed `Overload`.
    pub shed_overload: u64,
    /// Sheds typed `DeadlineExceeded`.
    pub shed_deadline: u64,
    /// Sheds typed `CircuitOpen`.
    pub shed_breaker: u64,
    /// Completions within their deadline.
    pub goodput: u64,
    /// `completed / admitted`.
    pub availability: f64,
    /// `goodput / requests`.
    pub goodput_rate: f64,
    /// Median end-to-end latency of completed requests.
    pub p50: SimNanos,
    /// 99th-percentile end-to-end latency of completed requests.
    pub p99: SimNanos,
    /// Breaker trips.
    pub breaker_opens: u64,
    /// Background repair-loop rebuilds of poisoned prepared state.
    pub repairs: u64,
    /// Injected faults absorbed.
    pub faults: u64,
    /// Every breaker transition, in order.
    pub transitions: Vec<TransitionRow>,
}

/// The storm experiment: identical trace and capacity, baseline vs full.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StormCompare {
    /// Storm start on the platform clock.
    pub window_start: SimNanos,
    /// Storm end (half-open).
    pub window_end: SimNanos,
    /// Arrival gap of the trace.
    pub gap: SimNanos,
    /// Concurrency limit both sides run at.
    pub limit: u64,
    /// Retry budget per ladder rung both sides run with.
    pub retries: u64,
    /// The no-admission baseline: unbounded queue, deadline stamped but
    /// never enforced, no breaker.
    pub baseline: StormSide,
    /// The full posture: bounded queue, deadline shedding, breaker.
    pub full: StormSide,
}

/// The whole `BENCH_pr4.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmitBenchExport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Machine model the latencies were simulated on.
    pub machine: String,
    /// Function every cell invokes.
    pub function: String,
    /// Seed the storm plan uses.
    pub seed: u64,
    /// Requests per grid cell.
    pub requests_per_cell: u64,
    /// Relative deadline stamped on every request.
    pub deadline: SimNanos,
    /// Arrival gaps swept, widest first.
    pub gaps: Vec<SimNanos>,
    /// Concurrency limits swept.
    pub limits: Vec<u64>,
    /// Admission policies swept, in sweep order.
    pub policies: Vec<String>,
    /// The gap × limit × policy grid, gaps outer, policies inner.
    pub cells: Vec<AdmitCell>,
    /// The storm comparison.
    pub storm: StormCompare,
}

fn trace(n: usize, gap: SimNanos) -> Vec<TraceRequest> {
    (0..n)
        .map(|i| TraceRequest {
            arrival: gap.saturating_mul(u64::try_from(i).unwrap_or(u64::MAX)),
            function: 0,
        })
        .collect()
}

/// The grid's two admission postures at `limit`: breaker off ("deadline")
/// and breaker on ("full"). Identical otherwise, so any divergence between
/// the matching cells is the breaker's doing.
fn grid_policies(limit: usize) -> [AdmissionPolicy; 2] {
    let full = AdmissionPolicy::standard(limit, DEADLINE);
    [
        AdmissionPolicy {
            breaker: None,
            ..full
        },
        full,
    ]
}

/// The storm's fault plan: every in-window sfork attempt poisons the
/// template ([`InjectionPoint::SforkMerge`], deferred to the repair loop),
/// and the warm/cold fallback rungs hit fast transients at
/// [`InjectionPoint::ArenaMap`] until exponential backoff carries the clock
/// past the window. Poison drives the breaker and the repair loop;
/// transients inflate in-storm service time, which is what breaks the
/// baseline's unbounded queue.
fn storm_plan() -> FaultPlan {
    let firing = PointPlan {
        rate: 1.0,
        stall_ratio: 0.0,
        max_burst: 1,
    };
    FaultPlan::zero(SEED)
        .with_poison_ratio(1.0)
        .with_point(InjectionPoint::SforkMerge, firing)
        .with_point(InjectionPoint::ArenaMap, firing)
        .with_window(STORM_WINDOW.0, STORM_WINDOW.1)
}

/// Resilience posture both storm sides boot with: deep per-rung retry
/// budget, exponential backoff, fallback ladder, deferred quarantine.
fn storm_resilience() -> ResiliencePolicy {
    ResiliencePolicy {
        max_retries: STORM_RETRIES,
        ..ResiliencePolicy::full()
    }
}

fn drive(
    requests: &[TraceRequest],
    plan: Option<FaultPlan>,
    policy: ResiliencePolicy,
    admission: AdmissionPolicy,
    model: &CostModel,
) -> AdmittedOutcome {
    // max_idle 0: a fork-boot fleet keeps no warm instances (the paper's
    // posture — boots are cheap), so every request exercises the ladder.
    run_admitted(
        &[AppProfile::c_hello()],
        requests,
        SimNanos::from_secs(1),
        0,
        0,
        |_| CatalyzerEngine::standalone(BootMode::Fork),
        model,
        plan,
        policy,
        admission,
    )
    .expect("bench traces only fail through counted availability loss")
}

fn run_cell(
    gap: SimNanos,
    limit: usize,
    admission: AdmissionPolicy,
    model: &CostModel,
) -> AdmitCell {
    let outcome = drive(
        &trace(REQUESTS_PER_CELL, gap),
        None,
        ResiliencePolicy::full(),
        admission,
        model,
    );
    AdmitCell {
        gap,
        limit: u64::try_from(limit).unwrap_or(u64::MAX),
        policy: admission.label().to_string(),
        requests: outcome.requests,
        admitted: outcome.admitted,
        completed: outcome.completed,
        failed: outcome.failed,
        shed_overload: outcome.shed_overload,
        shed_deadline: outcome.shed_deadline,
        shed_breaker: outcome.shed_breaker,
        goodput: outcome.goodput,
        availability: outcome.availability(),
        goodput_rate: outcome.goodput_rate(),
        p50: outcome.e2e.as_ref().map_or(SimNanos::ZERO, |s| s.p50),
        p99: outcome.e2e.as_ref().map_or(SimNanos::ZERO, |s| s.p99),
        breaker_opens: outcome.breaker_opens,
    }
}

fn storm_side(admission: AdmissionPolicy, model: &CostModel) -> StormSide {
    let outcome = drive(
        &trace(STORM_REQUESTS, STORM_GAP),
        Some(storm_plan()),
        storm_resilience(),
        admission,
        model,
    );
    StormSide {
        policy: admission.label().to_string(),
        requests: outcome.requests,
        admitted: outcome.admitted,
        completed: outcome.completed,
        failed: outcome.failed,
        shed_overload: outcome.shed_overload,
        shed_deadline: outcome.shed_deadline,
        shed_breaker: outcome.shed_breaker,
        goodput: outcome.goodput,
        availability: outcome.availability(),
        goodput_rate: outcome.goodput_rate(),
        p50: outcome.e2e.as_ref().map_or(SimNanos::ZERO, |s| s.p50),
        p99: outcome.e2e.as_ref().map_or(SimNanos::ZERO, |s| s.p99),
        breaker_opens: outcome.breaker_opens,
        repairs: outcome.repairs.repairs,
        faults: outcome.faults,
        transitions: outcome
            .transitions
            .iter()
            .map(|(function, t)| TransitionRow {
                function: function.clone(),
                at: t.at,
                from: t.from.label().to_string(),
                to: t.to.label().to_string(),
            })
            .collect(),
    }
}

/// Runs the full sweep: [`GAPS`] × [`LIMITS`] × breaker-on/off plus the
/// storm comparison.
pub fn generate(model: &CostModel) -> AdmitBenchExport {
    let mut cells = Vec::new();
    for &gap in &GAPS {
        for &limit in &LIMITS {
            for admission in grid_policies(limit) {
                cells.push(run_cell(gap, limit, admission, model));
            }
        }
    }
    let storm = StormCompare {
        window_start: STORM_WINDOW.0,
        window_end: STORM_WINDOW.1,
        gap: STORM_GAP,
        limit: u64::try_from(STORM_LIMIT).unwrap_or(u64::MAX),
        retries: u64::from(STORM_RETRIES),
        baseline: storm_side(AdmissionPolicy::queue_only(STORM_LIMIT, DEADLINE), model),
        full: storm_side(AdmissionPolicy::standard(STORM_LIMIT, DEADLINE), model),
    };
    AdmitBenchExport {
        schema: SCHEMA.to_string(),
        machine: model.machine.label().to_string(),
        function: AppProfile::c_hello().name,
        seed: SEED,
        requests_per_cell: u64::try_from(REQUESTS_PER_CELL).unwrap_or(u64::MAX),
        deadline: DEADLINE,
        gaps: GAPS.to_vec(),
        limits: LIMITS
            .iter()
            .map(|&l| u64::try_from(l).unwrap_or(u64::MAX))
            .collect(),
        policies: grid_policies(2)
            .iter()
            .map(|p| p.label().to_string())
            .collect(),
        cells,
        storm,
    }
}

/// Serializes an export to its canonical JSON form.
///
/// # Errors
///
/// Serialization errors (none in practice: the types are closed).
pub fn to_json(export: &AdmitBenchExport) -> Result<String, serde_json::Error> {
    serde_json::to_string(export)
}

/// Parses a previously exported document.
///
/// # Errors
///
/// Malformed JSON or schema drift.
pub fn from_json(text: &str) -> Result<AdmitBenchExport, serde_json::Error> {
    serde_json::from_str(text)
}

fn check_side(side: &StormSide, requests: u64) -> Result<(), String> {
    let tag = format!("storm {}", side.policy);
    if side.requests != requests {
        return Err(format!("{tag}: wrong trace length"));
    }
    let shed = side.shed_overload + side.shed_deadline + side.shed_breaker;
    if side.admitted + shed != side.requests {
        return Err(format!("{tag}: admitted + shed != requests"));
    }
    if side.completed + side.failed != side.admitted {
        return Err(format!("{tag}: completed + failed != admitted"));
    }
    if side.failed != 0 || side.availability != 1.0 {
        return Err(format!(
            "{tag}: admitted requests lost ({} failed)",
            side.failed
        ));
    }
    if side.faults == 0 {
        return Err(format!("{tag}: the storm never fired"));
    }
    if side.goodput > side.completed {
        return Err(format!("{tag}: more goodput than completions"));
    }
    Ok(())
}

/// Validates an export's internal consistency: schema tag, full grid
/// coverage, count arithmetic, and the robustness claims the sweep exists
/// to demonstrate — admission invisible at zero load, typed overload sheds
/// past saturation, a fault-free breaker changing nothing, and under the
/// storm: zero availability loss for admitted requests on both sides, the
/// baseline's goodput collapsing under its unbounded queue, and the full
/// policy holding a bounded p99 with at least the baseline's goodput while
/// the breaker trips and the repair loop rebuilds poisoned state.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate(export: &AdmitBenchExport) -> Result<(), String> {
    if export.schema != SCHEMA {
        return Err(format!(
            "schema mismatch: {} (expected {SCHEMA})",
            export.schema
        ));
    }
    let grid = export.gaps.len() * export.limits.len() * export.policies.len();
    if export.cells.len() != grid {
        return Err(format!(
            "grid incomplete: {} cells for {} gaps x {} limits x {} policies",
            export.cells.len(),
            export.gaps.len(),
            export.limits.len(),
            export.policies.len()
        ));
    }
    let widest = export.gaps.iter().copied().max().unwrap_or(SimNanos::ZERO);
    let mut any_overload_shed = false;
    for cell in &export.cells {
        let tag = format!(
            "cell gap={} limit={} policy={}",
            cell.gap, cell.limit, cell.policy
        );
        if !export.policies.contains(&cell.policy) {
            return Err(format!("{tag}: unknown policy"));
        }
        if cell.requests == 0 {
            return Err(format!("{tag}: empty cell"));
        }
        let shed = cell.shed_overload + cell.shed_deadline + cell.shed_breaker;
        if cell.admitted + shed != cell.requests {
            return Err(format!("{tag}: admitted + shed != requests"));
        }
        if cell.completed + cell.failed != cell.admitted {
            return Err(format!("{tag}: completed + failed != admitted"));
        }
        // Fault-free: nothing fails, nothing trips, every admitted request
        // is answered.
        if cell.failed != 0 || cell.availability != 1.0 {
            return Err(format!("{tag}: fault-free cell lost requests"));
        }
        if cell.breaker_opens != 0 || cell.shed_breaker != 0 {
            return Err(format!("{tag}: breaker tripped without faults"));
        }
        // Zero load: admission must be invisible.
        if cell.gap == widest && (shed != 0 || cell.goodput != cell.requests) {
            return Err(format!("{tag}: admission visible at zero load"));
        }
        any_overload_shed |= cell.shed_overload > 0;
    }
    if !any_overload_shed {
        return Err("grid: no cell ever saturated — the bounded queue went unexercised".into());
    }
    // A fault-free breaker changes nothing: the matching on/off cells agree.
    for pair in export.cells.chunks(export.policies.len()) {
        if let [off, on] = pair {
            if (off.admitted, off.shed_overload, off.goodput, off.p99)
                != (on.admitted, on.shed_overload, on.goodput, on.p99)
            {
                return Err(format!(
                    "grid gap={} limit={}: fault-free breaker altered the outcome",
                    off.gap, off.limit
                ));
            }
        }
    }

    let storm = &export.storm;
    check_side(&storm.baseline, storm.baseline.requests)?;
    check_side(&storm.full, storm.full.requests)?;
    if storm.baseline.requests != storm.full.requests {
        return Err("storm: sides ran different traces".into());
    }
    let base = &storm.baseline;
    let full = &storm.full;
    if base.shed_overload + base.shed_deadline + base.shed_breaker != 0 {
        return Err("storm baseline: an unbounded queue must never shed".into());
    }
    if base.breaker_opens != 0 || !base.transitions.is_empty() {
        return Err("storm baseline: no breaker configured, yet it moved".into());
    }
    if base.goodput_rate >= 0.5 {
        return Err(format!(
            "storm baseline: goodput must collapse under the backlog (got {:.2})",
            base.goodput_rate
        ));
    }
    if full.shed_breaker == 0 || full.breaker_opens == 0 {
        return Err("storm full: the breaker must trip and shed typed".into());
    }
    if full.repairs == 0 {
        return Err("storm full: poisoned state must be repaired off the request path".into());
    }
    if full.p99 >= base.p99 {
        return Err("storm full: admission must bound the p99 below the baseline".into());
    }
    if full.p99 > STORM_WINDOW.1 {
        return Err(format!(
            "storm full: p99 {} exceeds the storm window — the queue was not bounded",
            full.p99
        ));
    }
    if full.goodput < base.goodput {
        return Err("storm full: shedding doomed requests must not cost goodput".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_valid_and_deterministic() {
        let model = CostModel::experimental_machine();
        let a = generate(&model);
        validate(&a).unwrap();
        let b = generate(&model);
        assert_eq!(to_json(&a).unwrap(), to_json(&b).unwrap());
    }

    #[test]
    fn export_roundtrips_through_json() {
        let model = CostModel::experimental_machine();
        let export = generate(&model);
        let text = to_json(&export).unwrap();
        let back = from_json(&text).unwrap();
        validate(&back).unwrap();
        assert_eq!(to_json(&back).unwrap(), text);
    }

    #[test]
    fn validate_rejects_a_lost_admitted_request() {
        let model = CostModel::experimental_machine();
        let mut export = generate(&model);
        export.storm.full.completed -= 1;
        export.storm.full.failed += 1;
        export.storm.full.availability =
            f64::from(u32::try_from(export.storm.full.completed).unwrap_or(u32::MAX))
                / f64::from(u32::try_from(export.storm.full.admitted).unwrap_or(u32::MAX));
        let err = validate(&export).unwrap_err();
        assert!(err.contains("admitted requests lost"), "{err}");
    }

    #[test]
    fn validate_rejects_an_unbounded_full_p99() {
        let model = CostModel::experimental_machine();
        let mut export = generate(&model);
        export.storm.full.p99 = export.storm.baseline.p99;
        let err = validate(&export).unwrap_err();
        assert!(err.contains("bound the p99"), "{err}");
    }
}
