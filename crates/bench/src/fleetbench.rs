//! Deterministic JSON export of the fleet density grid (`repro fleet`).
//!
//! `generate` drives the open-loop event engine
//! ([`platform::Simulation::run_fleet`]) through a density ladder that
//! extends Figure 15 past its 1 000-instance ceiling: each cell fires a
//! flash-crowd burst (all arrivals inside a window shorter than one cold
//! fork boot, so none can be absorbed by completions) on top of a Poisson
//! baseline, over a 10 000-function synthetic catalogue with Zipf-skewed
//! popularity. The ladder climbs 10^3 → 10^4 → 10^5 → 10^6 peak concurrent
//! instances — the closed-loop simulator tops out around 10^4 requests per
//! practical run, so the top cells are only reachable through the event
//! engine's arena + calibrated-cost path.
//!
//! Per cell the export records peak density (instances and in-flight
//! requests), cold boots vs keep-alive reuses, expirations, and
//! fixed-ladder startup / end-to-end quantiles. Everything runs on virtual
//! time from seeded traces, so two runs produce byte-identical output —
//! `tools/check.sh` validates `BENCH_pr7.json` the same way it gates the
//! pr2–pr4 exports.

use platform::simulate::fleet::{FleetOutcome, Quantiles};
use platform::simulate::TraceRequest;
use platform::{PlatformError, Simulation};
use serde::{Deserialize, Serialize};
use simtime::{CostModel, SimNanos};
use workloads::catalogue;
use workloads::generator::{open_loop, Arrivals, Popularity, TraceSpec};

/// Schema tag so downstream tooling can reject stale files.
pub const SCHEMA: &str = "catalyzer-bench/pr7-v1";

/// Seed for both the synthetic catalogue and the per-cell traces.
pub const SEED: u64 = 0x0F1E_E701;

/// Functions in every cell's catalogue (the "10k+ functions" axis).
pub const FUNCTIONS: usize = 10_000;

/// Zipf exponent of function popularity (the classic web skew).
pub const ZIPF_EXPONENT: f64 = 1.0;

/// Keep-alive every cell runs with.
pub const KEEP_ALIVE: SimNanos = SimNanos::from_secs(5);

/// Warm instances retained per function.
pub const MAX_IDLE: usize = 4;

/// Poisson baseline rate under the burst (drives reuse traffic).
pub const BASE_RATE_HZ: f64 = 2_000.0;

/// Burst period: one burst, fired after a second of baseline warm-up.
pub const BURST_EVERY: SimNanos = SimNanos::from_secs(1);

/// Window the burst's arrivals spread over. Shorter than one cold fork
/// boot (≈ 620 µs), so the whole burst is airborne before any of its own
/// boots complete — peak density is guaranteed to reach the burst size.
pub const BURST_WIDTH: SimNanos = SimNanos::from_micros(500);

/// Baseline requests added around each burst (≈ 1 s before, ≈ 2 s after,
/// exercising warm reuse and keep-alive expiry on both sides).
pub const TAIL: usize = 6_000;

/// The density ladder: `(label, burst size)`, ascending.
pub const LADDER: [(&str, usize); 4] = [
    ("1e3", 1_000),
    ("1e4", 10_000),
    ("1e5", 120_000),
    ("1e6", 1_000_000),
];

/// Latency digest row (fixed-ladder quantiles; upper bounds except
/// min/max/mean, which are exact).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuantRow {
    /// Samples recorded.
    pub count: u64,
    /// Exact mean.
    pub mean: SimNanos,
    /// Exact minimum.
    pub min: SimNanos,
    /// Exact maximum.
    pub max: SimNanos,
    /// Median upper bound.
    pub p50: SimNanos,
    /// 90th-percentile upper bound.
    pub p90: SimNanos,
    /// 99th-percentile upper bound.
    pub p99: SimNanos,
}

impl From<Quantiles> for QuantRow {
    fn from(q: Quantiles) -> QuantRow {
        QuantRow {
            count: q.count,
            mean: q.mean,
            min: q.min,
            max: q.max,
            p50: q.p50,
            p90: q.p90,
            p99: q.p99,
        }
    }
}

/// One rung of the density ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetCell {
    /// Density label (`1e3` … `1e6`).
    pub label: String,
    /// Functions in the catalogue.
    pub functions: u64,
    /// Burst size — the density target.
    pub burst: u64,
    /// Requests in the trace (burst + baseline).
    pub requests: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests shed (zero: the grid runs without admission caps).
    pub shed: u64,
    /// Cold boots across the fleet.
    pub cold_boots: u64,
    /// Warm reuses.
    pub reuses: u64,
    /// `reuses / completed`.
    pub reuse_rate: f64,
    /// Instances reclaimed by keep-alive expiry.
    pub expirations: u64,
    /// Most instances (busy + warm) ever live at once — the density axis.
    pub peak_instances: u64,
    /// Most requests ever concurrently in flight.
    pub peak_in_flight: u64,
    /// Events the queue processed.
    pub events: u64,
    /// Virtual time of the last event.
    pub horizon: SimNanos,
    /// Startup-latency distribution.
    pub startup: QuantRow,
    /// End-to-end latency distribution.
    pub end_to_end: QuantRow,
}

/// The whole `BENCH_pr7.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetBenchExport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Machine model the latencies were simulated on.
    pub machine: String,
    /// Catalogue/trace seed.
    pub seed: u64,
    /// Functions per cell.
    pub functions: u64,
    /// Zipf exponent of function popularity.
    pub zipf_exponent: f64,
    /// Keep-alive every cell runs with.
    pub keep_alive: SimNanos,
    /// Warm instances retained per function.
    pub max_idle: u64,
    /// Poisson baseline rate.
    pub base_rate_hz: f64,
    /// Burst window width.
    pub burst_width: SimNanos,
    /// The density ladder, ascending.
    pub cells: Vec<FleetCell>,
}

fn cell_row(label: &str, burst: usize, requests: usize, outcome: &FleetOutcome) -> FleetCell {
    FleetCell {
        label: label.to_string(),
        functions: u64::try_from(FUNCTIONS).unwrap_or(u64::MAX),
        burst: u64::try_from(burst).unwrap_or(u64::MAX),
        requests: u64::try_from(requests).unwrap_or(u64::MAX),
        completed: outcome.completed,
        shed: outcome.shed,
        cold_boots: outcome.cold_boots,
        reuses: outcome.reuses,
        reuse_rate: outcome.reuse_rate,
        expirations: outcome.expirations,
        peak_instances: u64::try_from(outcome.peak_instances).unwrap_or(u64::MAX),
        peak_in_flight: u64::try_from(outcome.peak_in_flight).unwrap_or(u64::MAX),
        events: outcome.events,
        horizon: outcome.horizon,
        startup: outcome.startup.into(),
        end_to_end: outcome.end_to_end.into(),
    }
}

/// One cell's trace: a burst of `burst` arrivals inside [`BURST_WIDTH`] at
/// t ≈ [`BURST_EVERY`], over a Poisson baseline contributing [`TAIL`]
/// requests of reuse traffic.
fn cell_trace(burst: usize) -> Vec<TraceRequest> {
    let spec = TraceSpec {
        functions: FUNCTIONS,
        count: burst + TAIL,
        arrivals: Arrivals::Bursty {
            rate_hz: BASE_RATE_HZ,
            every: BURST_EVERY,
            size: burst,
            width: BURST_WIDTH,
        },
        popularity: Popularity::Zipf {
            exponent: ZIPF_EXPONENT,
        },
        seed: SEED ^ u64::try_from(burst).unwrap_or(u64::MAX),
    };
    open_loop(&spec)
        .into_iter()
        .map(|r| TraceRequest {
            arrival: r.arrival,
            function: r.function,
        })
        .collect()
}

/// Runs the density ladder.
///
/// # Errors
///
/// Propagates [`PlatformError`] from the engine (none in practice: the
/// generated traces are valid by construction).
pub fn generate(model: &CostModel) -> Result<FleetBenchExport, PlatformError> {
    let mut cells = Vec::new();
    for (label, burst) in LADDER {
        let trace = cell_trace(burst);
        let outcome = Simulation::new(catalogue::synthetic(FUNCTIONS, SEED))
            .with_model(model.clone())
            .with_keep_alive(KEEP_ALIVE)
            .with_max_idle(MAX_IDLE)
            .run_fleet(&trace)?;
        cells.push(cell_row(label, burst, trace.len(), &outcome));
    }
    Ok(FleetBenchExport {
        schema: SCHEMA.to_string(),
        machine: model.machine.label().to_string(),
        seed: SEED,
        functions: u64::try_from(FUNCTIONS).unwrap_or(u64::MAX),
        zipf_exponent: ZIPF_EXPONENT,
        keep_alive: KEEP_ALIVE,
        max_idle: u64::try_from(MAX_IDLE).unwrap_or(u64::MAX),
        base_rate_hz: BASE_RATE_HZ,
        burst_width: BURST_WIDTH,
        cells,
    })
}

/// Serializes an export to its canonical JSON form.
///
/// # Errors
///
/// Serialization errors (none in practice: the types are closed).
pub fn to_json(export: &FleetBenchExport) -> Result<String, serde_json::Error> {
    serde_json::to_string(export)
}

/// Parses a previously exported document.
///
/// # Errors
///
/// Malformed JSON or schema drift.
pub fn from_json(text: &str) -> Result<FleetBenchExport, serde_json::Error> {
    serde_json::from_str(text)
}

/// Validates an export's internal consistency: schema tag, the full
/// ascending ladder, count arithmetic per cell, and the density claims the
/// grid exists to demonstrate — every cell's peak reaches its burst size,
/// density climbs monotonically, the top rung clears 10^5 concurrent
/// instances, and warm reuse plus keep-alive expiry stay exercised at
/// every scale.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate(export: &FleetBenchExport) -> Result<(), String> {
    if export.schema != SCHEMA {
        return Err(format!(
            "schema mismatch: {} (expected {SCHEMA})",
            export.schema
        ));
    }
    if export.cells.len() != LADDER.len() {
        return Err(format!(
            "ladder incomplete: {} cells (expected {})",
            export.cells.len(),
            LADDER.len()
        ));
    }
    let mut prev_peak = 0u64;
    for cell in &export.cells {
        let tag = format!("cell {}", cell.label);
        if cell.requests == 0 {
            return Err(format!("{tag}: empty cell"));
        }
        if cell.completed + cell.shed != cell.requests {
            return Err(format!("{tag}: completed + shed != requests"));
        }
        if cell.shed != 0 {
            return Err(format!("{tag}: shed without an admission cap"));
        }
        if cell.cold_boots + cell.reuses != cell.completed {
            return Err(format!("{tag}: cold_boots + reuses != completed"));
        }
        if cell.peak_instances < cell.burst {
            return Err(format!(
                "{tag}: peak {} never reached the {}-instance burst",
                cell.peak_instances, cell.burst
            ));
        }
        if cell.peak_instances <= prev_peak {
            return Err(format!("{tag}: density ladder is not ascending"));
        }
        prev_peak = cell.peak_instances;
        if cell.reuses == 0 || cell.expirations == 0 {
            return Err(format!("{tag}: baseline reuse/expiry went unexercised"));
        }
        if cell.startup.count != cell.completed || cell.end_to_end.count != cell.completed {
            return Err(format!("{tag}: latency samples != completions"));
        }
        if cell.end_to_end.max < cell.startup.max || cell.horizon < cell.end_to_end.max {
            return Err(format!("{tag}: latency ordering violated"));
        }
    }
    if prev_peak < 100_000 {
        return Err(format!(
            "top rung peaks at {prev_peak} instances — the grid never left Figure 15's regime"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shrunk ladder exercising the same machinery (the full 10^6 rung
    /// belongs to `repro fleet`, not the unit suite).
    fn small_cell(burst: usize) -> FleetCell {
        let model = CostModel::experimental_machine();
        let trace = cell_trace(burst);
        let outcome = Simulation::new(catalogue::synthetic(FUNCTIONS, SEED))
            .with_model(model)
            .with_keep_alive(KEEP_ALIVE)
            .with_max_idle(MAX_IDLE)
            .run_fleet(&trace)
            .unwrap();
        cell_row("test", burst, trace.len(), &outcome)
    }

    #[test]
    fn burst_density_is_reached_and_deterministic() {
        let a = small_cell(2_000);
        let b = small_cell(2_000);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert!(a.peak_instances >= 2_000, "peak {}", a.peak_instances);
        assert_eq!(a.completed + a.shed, a.requests);
        assert!(a.reuses > 0 && a.expirations > 0);
    }

    #[test]
    fn validate_rejects_schema_drift_and_a_flat_ladder() {
        let cell = small_cell(1_200);
        let mut export = FleetBenchExport {
            schema: SCHEMA.to_string(),
            machine: "test".to_string(),
            seed: SEED,
            functions: u64::try_from(FUNCTIONS).unwrap_or(u64::MAX),
            zipf_exponent: ZIPF_EXPONENT,
            keep_alive: KEEP_ALIVE,
            max_idle: u64::try_from(MAX_IDLE).unwrap_or(u64::MAX),
            base_rate_hz: BASE_RATE_HZ,
            burst_width: BURST_WIDTH,
            cells: vec![cell.clone(), cell.clone(), cell.clone(), cell],
        };
        let err = validate(&export).unwrap_err();
        assert!(err.contains("not ascending"), "{err}");
        export.schema = "catalyzer-bench/pr0-v0".to_string();
        let err = validate(&export).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn export_roundtrips_through_json() {
        let cell = small_cell(1_500);
        let export = FleetBenchExport {
            schema: SCHEMA.to_string(),
            machine: "test".to_string(),
            seed: SEED,
            functions: u64::try_from(FUNCTIONS).unwrap_or(u64::MAX),
            zipf_exponent: ZIPF_EXPONENT,
            keep_alive: KEEP_ALIVE,
            max_idle: u64::try_from(MAX_IDLE).unwrap_or(u64::MAX),
            base_rate_hz: BASE_RATE_HZ,
            burst_width: BURST_WIDTH,
            cells: vec![cell],
        };
        let text = to_json(&export).unwrap();
        let back = from_json(&text).unwrap();
        assert_eq!(to_json(&back).unwrap(), text);
    }
}
