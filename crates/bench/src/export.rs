//! Deterministic JSON export of the boot pipeline's observability data.
//!
//! `generate` boots every Fig. 11 engine repeatedly on a fixed profile set,
//! collects each engine's boot-latency histogram plus one representative
//! span tree, and `to_json` serializes the result to a stable string: the
//! whole pipeline runs on virtual time, so two runs on the same machine
//! model produce byte-identical output (`tests/figure_smoke.rs` and
//! `tools/check.sh` rely on this to validate `BENCH_pr2.json`).

use crate::figures::System;
use runtimes::AppProfile;
use sandbox::{BootCtx, SandboxError};
use serde::{Deserialize, Serialize};
use simtime::{CostModel, LatencyHistogram, SimNanos, Span};

/// Schema tag so downstream tooling can reject stale files.
pub const SCHEMA: &str = "catalyzer-bench/pr2-v1";

/// Boots per engine/profile pair — enough to fill every histogram bucket
/// the deterministic latencies land in.
pub const BOOTS_PER_PROFILE: usize = 8;

/// One engine's export: latency quantiles over all profile boots plus the
/// span tree of the last boot of the *reference* profile (Python-hello).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineExport {
    /// System name as the boot outcome reports it (Fig. 11 label).
    pub system: String,
    /// Number of boots aggregated into the histogram.
    pub boots: u64,
    /// Median boot latency.
    pub p50: SimNanos,
    /// 90th-percentile boot latency.
    pub p90: SimNanos,
    /// 99th-percentile boot latency.
    pub p99: SimNanos,
    /// Fastest observed boot.
    pub min: SimNanos,
    /// Slowest observed boot.
    pub max: SimNanos,
    /// Depth-1 phase attribution of the reference trace: `(phase, total)`.
    pub phases: Vec<PhaseTotal>,
    /// Virtual time not covered by any depth-1 child of the boot span.
    pub self_time: SimNanos,
    /// Total duration of the reference boot span; equals the sum of
    /// `phases` plus `self_time` exactly (no rounding in virtual time).
    pub total: SimNanos,
    /// Full nested span tree of the reference boot.
    pub trace: Span,
}

/// One depth-1 phase and its total within the boot span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTotal {
    /// Phase name (`sandbox:*`, `app:*`, `restore:*`, ...).
    pub phase: String,
    /// Summed duration of all depth-1 spans with this name.
    pub total: SimNanos,
}

/// The whole `BENCH_pr2.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchExport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Machine model the latencies were simulated on.
    pub machine: String,
    /// Profiles each engine booted.
    pub profiles: Vec<String>,
    /// Per-engine histograms and traces, in Fig. 11 lineup order.
    pub engines: Vec<EngineExport>,
}

/// The profile set every engine boots: the reference function first (its
/// trace is the one exported), then one heavier app per runtime family.
fn profile_set() -> Vec<AppProfile> {
    vec![
        AppProfile::python_hello(),
        AppProfile::c_hello(),
        AppProfile::java_hello(),
        AppProfile::node_hello(),
    ]
}

/// Runs the full export: every Fig. 11 engine × the profile set ×
/// [`BOOTS_PER_PROFILE`] boots.
///
/// # Errors
///
/// Engine errors.
pub fn generate(model: &CostModel) -> Result<BenchExport, SandboxError> {
    let profiles = profile_set();
    let mut engines = Vec::new();
    for system in &mut System::fig11_lineup() {
        let engine = system.as_engine();
        let mut histogram = LatencyHistogram::new();
        let mut reference: Option<(String, Span)> = None;
        for profile in &profiles {
            for _ in 0..BOOTS_PER_PROFILE {
                let mut ctx = BootCtx::fresh(model);
                let outcome = engine.boot(profile, &mut ctx)?;
                histogram.record(outcome.boot_latency);
                if reference.is_none() {
                    reference = Some((outcome.system.to_string(), outcome.trace));
                }
            }
        }
        let (system_name, trace) = reference.expect("profile set is non-empty");
        let phases = trace
            .to_breakdown()
            .iter()
            .map(|(phase, total)| PhaseTotal {
                phase: phase.to_string(),
                total,
            })
            .collect();
        engines.push(EngineExport {
            system: system_name,
            boots: histogram.count(),
            p50: histogram.p50().unwrap_or(SimNanos::ZERO),
            p90: histogram.p90().unwrap_or(SimNanos::ZERO),
            p99: histogram.p99().unwrap_or(SimNanos::ZERO),
            min: histogram.min().unwrap_or(SimNanos::ZERO),
            max: histogram.max().unwrap_or(SimNanos::ZERO),
            phases,
            self_time: trace.self_time(),
            total: trace.duration(),
            trace,
        });
    }
    Ok(BenchExport {
        schema: SCHEMA.to_string(),
        machine: model.machine.label().to_string(),
        profiles: profiles.into_iter().map(|p| p.name).collect(),
        engines,
    })
}

/// Serializes an export to its canonical JSON form.
///
/// # Errors
///
/// Serialization errors (none in practice: the types are closed).
pub fn to_json(export: &BenchExport) -> Result<String, serde_json::Error> {
    serde_json::to_string(export)
}

/// Parses a previously exported document.
///
/// # Errors
///
/// Malformed JSON or schema drift.
pub fn from_json(text: &str) -> Result<BenchExport, serde_json::Error> {
    serde_json::from_str(text)
}

/// The Fig. 11 systems every export must cover.
pub const REQUIRED_SYSTEMS: &[&str] = &[
    "HyperContainer",
    "FireCracker",
    "gVisor",
    "Docker",
    "gVisor-restore",
    "Catalyzer-restore",
    "Catalyzer-Zygote",
    "Catalyzer-sfork",
];

/// Validates an export's internal consistency: schema tag, full engine
/// coverage, monotone span nesting, non-empty histograms, and per-phase
/// attribution summing exactly to the boot total.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate(export: &BenchExport) -> Result<(), String> {
    if export.schema != SCHEMA {
        return Err(format!(
            "schema mismatch: {} (expected {SCHEMA})",
            export.schema
        ));
    }
    for required in REQUIRED_SYSTEMS {
        if !export.engines.iter().any(|e| e.system == *required) {
            return Err(format!("engine missing from export: {required}"));
        }
    }
    for engine in &export.engines {
        let name = &engine.system;
        if engine.boots == 0 {
            return Err(format!("{name}: empty histogram"));
        }
        if engine.p50 > engine.p90 || engine.p90 > engine.p99 {
            return Err(format!("{name}: non-monotone quantiles"));
        }
        if engine.min > engine.max {
            return Err(format!("{name}: min > max"));
        }
        engine
            .trace
            .validate_nesting()
            .map_err(|e| format!("{name}: {e}"))?;
        if engine.trace.name != sandbox::SPAN_BOOT {
            return Err(format!("{name}: root span is '{}'", engine.trace.name));
        }
        let phase_sum: SimNanos = engine.phases.iter().map(|p| p.total).sum();
        if phase_sum + engine.self_time != engine.total {
            return Err(format!(
                "{name}: phases {phase_sum} + self {} != total {}",
                engine.self_time, engine.total
            ));
        }
        if engine.total != engine.trace.duration() {
            return Err(format!("{name}: total != trace duration"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_valid_and_deterministic() {
        let model = CostModel::experimental_machine();
        let a = generate(&model).unwrap();
        validate(&a).unwrap();
        let b = generate(&model).unwrap();
        assert_eq!(to_json(&a).unwrap(), to_json(&b).unwrap());
    }

    #[test]
    fn export_roundtrips_through_json() {
        let model = CostModel::experimental_machine();
        let export = generate(&model).unwrap();
        let text = to_json(&export).unwrap();
        let back = from_json(&text).unwrap();
        validate(&back).unwrap();
        assert_eq!(to_json(&back).unwrap(), text);
    }

    #[test]
    fn validate_rejects_missing_engine() {
        let model = CostModel::experimental_machine();
        let mut export = generate(&model).unwrap();
        export.engines.retain(|e| e.system != "Catalyzer-sfork");
        let err = validate(&export).unwrap_err();
        assert!(err.contains("Catalyzer-sfork"), "{err}");
    }
}
