//! Guest tasks (processes), guest threads, sessions, and namespaces.
//!
//! PID and USER namespaces are what lets `sfork` keep identity-dependent
//! state consistent across fork (paper §4, Challenge-3: a template that
//! cached `getpid()` must observe the same pid after `sfork`).

use simtime::{CostModel, SimClock};

use crate::KernelError;

/// A guest thread context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestThread {
    /// Thread id.
    pub tid: u32,
    /// Opaque register-file digest (stands in for saved CPU context).
    pub context: u64,
    /// Id of the wait object this thread blocks on, if any.
    pub blocked_on: Option<u64>,
}

/// A guest task (process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Process id, as seen inside the PID namespace.
    pub pid: u32,
    /// Parent pid (0 for the init task).
    pub ppid: u32,
    /// Command name.
    pub name: String,
    /// Threads belonging to the task.
    pub threads: Vec<GuestThread>,
    /// Session id.
    pub sid: u32,
}

/// A session / process-group record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Session id.
    pub sid: u32,
    /// Leader pid.
    pub leader: u32,
}

/// A namespace record (PID, USER, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceInfo {
    /// Namespace kind label ("pid", "user", "net", ...).
    pub kind: String,
    /// Root identity mapped inside the namespace (pid 1 / uid 0).
    pub init_id: u32,
}

/// The guest task table.
#[derive(Debug, Clone)]
pub struct TaskTable {
    tasks: Vec<Task>,
    sessions: Vec<Session>,
    namespaces: Vec<NamespaceInfo>,
    next_pid: u32,
    next_tid: u32,
}

impl TaskTable {
    /// Creates a table with the init task (pid 1) in fresh PID and USER
    /// namespaces.
    pub fn new(init_name: &str) -> TaskTable {
        TaskTable {
            tasks: vec![Task {
                pid: 1,
                ppid: 0,
                name: init_name.into(),
                threads: vec![GuestThread {
                    tid: 1,
                    context: 0,
                    blocked_on: None,
                }],
                sid: 1,
            }],
            sessions: vec![Session { sid: 1, leader: 1 }],
            namespaces: vec![
                NamespaceInfo {
                    kind: "pid".into(),
                    init_id: 1,
                },
                NamespaceInfo {
                    kind: "user".into(),
                    init_id: 0,
                },
            ],
            next_pid: 2,
            next_tid: 2,
        }
    }

    /// An empty table for restore paths (no init task pre-created).
    pub fn empty() -> TaskTable {
        TaskTable {
            tasks: Vec::new(),
            sessions: Vec::new(),
            namespaces: Vec::new(),
            next_pid: 2,
            next_tid: 2,
        }
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All sessions.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// All namespaces.
    pub fn namespaces(&self) -> &[NamespaceInfo] {
        &self.namespaces
    }

    /// Total guest threads across tasks.
    pub fn thread_count(&self) -> usize {
        self.tasks.iter().map(|t| t.threads.len()).sum()
    }

    /// The init (pid 1) task's pid as seen in-namespace — constant across
    /// `sfork` thanks to the PID namespace.
    pub fn getpid(&self) -> u32 {
        self.tasks.first().map(|t| t.pid).unwrap_or(0)
    }

    /// Spawns a task, charging process-spawn cost.
    pub fn spawn_task(
        &mut self,
        ppid: u32,
        name: &str,
        clock: &SimClock,
        model: &CostModel,
    ) -> u32 {
        clock.charge(model.host.process_spawn);
        let pid = self.next_pid;
        self.next_pid += 1;
        let tid = self.next_tid;
        self.next_tid += 1;
        let sid = self
            .tasks
            .iter()
            .find(|t| t.pid == ppid)
            .map(|t| t.sid)
            .unwrap_or(1);
        self.tasks.push(Task {
            pid,
            ppid,
            name: name.into(),
            threads: vec![GuestThread {
                tid,
                context: u64::from(tid) << 32,
                blocked_on: None,
            }],
            sid,
        });
        pid
    }

    /// Spawns a thread in an existing task (`clone`).
    ///
    /// # Errors
    ///
    /// [`KernelError::CorruptGraph`] if the pid does not exist.
    pub fn spawn_thread(
        &mut self,
        pid: u32,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<u32, KernelError> {
        clock.charge(model.host.thread_spawn);
        let tid = self.next_tid;
        let task = self
            .tasks
            .iter_mut()
            .find(|t| t.pid == pid)
            .ok_or_else(|| KernelError::CorruptGraph {
                detail: format!("spawn_thread: no task with pid {pid}"),
            })?;
        self.next_tid += 1;
        task.threads.push(GuestThread {
            tid,
            context: u64::from(tid) << 32 | 0xCAFE,
            blocked_on: None,
        });
        Ok(tid)
    }

    /// Creates a new session led by `pid` (`setsid`).
    ///
    /// # Errors
    ///
    /// [`KernelError::CorruptGraph`] if the pid does not exist.
    pub fn setsid(&mut self, pid: u32) -> Result<u32, KernelError> {
        let sid = pid;
        let task = self
            .tasks
            .iter_mut()
            .find(|t| t.pid == pid)
            .ok_or_else(|| KernelError::CorruptGraph {
                detail: format!("setsid: no task with pid {pid}"),
            })?;
        task.sid = sid;
        self.sessions.push(Session { sid, leader: pid });
        Ok(sid)
    }

    /// Adds a namespace record.
    pub fn add_namespace(&mut self, kind: &str, init_id: u32, clock: &SimClock, model: &CostModel) {
        clock.charge(model.host.namespace_setup);
        self.namespaces.push(NamespaceInfo {
            kind: kind.into(),
            init_id,
        });
    }

    /// Installs a restored task verbatim.
    pub fn install_restored_task(&mut self, task: Task) {
        self.next_pid = self.next_pid.max(task.pid + 1);
        self.next_tid = self
            .next_tid
            .max(task.threads.iter().map(|t| t.tid + 1).max().unwrap_or(2));
        self.tasks.push(task);
    }

    /// Installs a restored session verbatim.
    pub fn install_restored_session(&mut self, session: Session) {
        self.sessions.push(session);
    }

    /// Installs a restored namespace verbatim.
    pub fn install_restored_namespace(&mut self, ns: NamespaceInfo) {
        self.namespaces.push(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimClock, CostModel) {
        (SimClock::new(), CostModel::experimental_machine())
    }

    #[test]
    fn init_task_exists() {
        let t = TaskTable::new("wrapper");
        assert_eq!(t.getpid(), 1);
        assert_eq!(t.tasks().len(), 1);
        assert_eq!(t.thread_count(), 1);
        assert_eq!(t.namespaces().len(), 2);
    }

    #[test]
    fn spawn_task_and_thread() {
        let (clock, model) = setup();
        let mut t = TaskTable::new("init");
        let pid = t.spawn_task(1, "worker", &clock, &model);
        assert_eq!(pid, 2);
        let tid = t.spawn_thread(pid, &clock, &model).unwrap();
        assert!(tid > 1);
        assert_eq!(t.thread_count(), 3);
        assert!(t.spawn_thread(99, &clock, &model).is_err());
    }

    #[test]
    fn sessions_inherit_and_split() {
        let (clock, model) = setup();
        let mut t = TaskTable::new("init");
        let pid = t.spawn_task(1, "daemon", &clock, &model);
        assert_eq!(t.tasks()[1].sid, 1, "inherits parent session");
        t.setsid(pid).unwrap();
        assert_eq!(t.tasks()[1].sid, pid);
        assert_eq!(t.sessions().len(), 2);
        assert!(t.setsid(404).is_err());
    }

    #[test]
    fn restored_ids_advance_counters() {
        let (clock, model) = setup();
        let mut t = TaskTable::empty();
        t.install_restored_task(Task {
            pid: 40,
            ppid: 1,
            name: "jvm".into(),
            threads: vec![GuestThread {
                tid: 77,
                context: 1,
                blocked_on: None,
            }],
            sid: 1,
        });
        let pid = t.spawn_task(40, "child", &clock, &model);
        assert!(pid > 40);
        let tid = t.spawn_thread(pid, &clock, &model).unwrap();
        assert!(tid > 77);
    }
}
