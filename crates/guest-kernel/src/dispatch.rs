//! The executable syscall dispatcher: guest programs drive the kernel
//! through [`SyscallInvocation`]s, each gated by the Table-1 policy
//! (`template mode` denies the Denied class) and charged the Sentry's
//! syscall-interposition cost.

use bytes::Bytes;
use simtime::{CostModel, SimClock, SimNanos};

use crate::syscalls::SyscallName;
use crate::{GuestKernel, KernelError};

/// A concrete syscall with its arguments.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SyscallInvocation<'a> {
    /// `openat(2)`.
    Openat {
        /// Path to open.
        path: &'a str,
        /// Whether to open for writing.
        writable: bool,
    },
    /// `read(2)`.
    Read {
        /// Descriptor.
        fd: i32,
        /// Bytes requested.
        len: usize,
    },
    /// `write(2)`.
    Write {
        /// Descriptor.
        fd: i32,
        /// Data to write.
        data: &'a [u8],
    },
    /// `close(2)`.
    Close {
        /// Descriptor.
        fd: i32,
    },
    /// `dup(2)`.
    Dup {
        /// Descriptor.
        fd: i32,
    },
    /// `getpid(2)`.
    Getpid,
    /// `clone(2)` creating a thread in task `pid`.
    Clone {
        /// Task to add the thread to.
        pid: u32,
    },
    /// `socket(2)`.
    Socket,
    /// `listen(2)` (bind + listen on `addr`).
    Listen {
        /// Socket id.
        sock: u64,
        /// Address to listen on.
        addr: &'a str,
    },
    /// `accept(2)`.
    Accept {
        /// Listening socket id.
        sock: u64,
        /// Peer label.
        peer: &'a str,
    },
    /// `sendmsg(2)`.
    Sendmsg {
        /// Socket id.
        sock: u64,
        /// Payload size.
        bytes: usize,
    },
    /// `shutdown(2)`.
    Shutdown {
        /// Socket id.
        sock: u64,
    },
    /// `nanosleep(2)`.
    Nanosleep {
        /// Sleep duration.
        duration: SimNanos,
    },
    /// `setsid(2)` for task `pid`.
    Setsid {
        /// Calling task.
        pid: u32,
    },
    /// `ptrace(2)` — representative denied syscall.
    Ptrace,
}

/// What a dispatched syscall returned.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SyscallRet {
    /// A file descriptor.
    Fd(i32),
    /// A socket id.
    Sock(u64),
    /// Data read.
    Data(Bytes),
    /// Bytes written.
    Written(usize),
    /// A pid / tid / sid.
    Id(u32),
    /// Nothing.
    Unit,
}

impl<'a> SyscallInvocation<'a> {
    /// The Table-1 name of this invocation (drives policy and accounting).
    pub fn name(&self) -> SyscallName {
        match self {
            SyscallInvocation::Openat { .. } => SyscallName::Openat,
            SyscallInvocation::Read { .. } => SyscallName::Read,
            SyscallInvocation::Write { .. } => SyscallName::Write,
            SyscallInvocation::Close { .. } => SyscallName::Close,
            SyscallInvocation::Dup { .. } => SyscallName::Dup,
            SyscallInvocation::Getpid => SyscallName::Getpid,
            SyscallInvocation::Clone { .. } => SyscallName::Clone,
            SyscallInvocation::Socket => SyscallName::Poll, // socket(2) is outside Table 1; account as VFS plumbing
            SyscallInvocation::Listen { .. } => SyscallName::Listen,
            SyscallInvocation::Accept { .. } => SyscallName::Accept,
            SyscallInvocation::Sendmsg { .. } => SyscallName::Sendmsg,
            SyscallInvocation::Shutdown { .. } => SyscallName::Shutdown,
            SyscallInvocation::Nanosleep { .. } => SyscallName::Nanosleep,
            SyscallInvocation::Setsid { .. } => SyscallName::Setsid,
            SyscallInvocation::Ptrace => SyscallName::Ptrace,
        }
    }
}

impl GuestKernel {
    /// Dispatches one syscall: policy gate, then execution against the
    /// owning subsystem, with all costs charged.
    ///
    /// # Errors
    ///
    /// [`KernelError::DeniedSyscall`] under template mode for denied calls;
    /// otherwise whatever the subsystem returns.
    pub fn syscall(
        &mut self,
        invocation: SyscallInvocation<'_>,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<SyscallRet, KernelError> {
        self.check_syscall(invocation.name())?;
        match invocation {
            SyscallInvocation::Openat { path, writable } => self
                .vfs
                .open(path, writable, clock, model)
                .map(SyscallRet::Fd),
            SyscallInvocation::Read { fd, len } => {
                self.vfs.read(fd, len, clock, model).map(SyscallRet::Data)
            }
            SyscallInvocation::Write { fd, data } => self
                .vfs
                .write(fd, data, clock, model)
                .map(SyscallRet::Written),
            SyscallInvocation::Close { fd } => {
                self.vfs.close(fd, clock, model).map(|()| SyscallRet::Unit)
            }
            SyscallInvocation::Dup { fd } => self.vfs.dup(fd, clock, model).map(SyscallRet::Fd),
            SyscallInvocation::Getpid => {
                clock.charge(model.host.syscall_base);
                Ok(SyscallRet::Id(self.tasks.getpid()))
            }
            SyscallInvocation::Clone { pid } => self
                .tasks
                .spawn_thread(pid, clock, model)
                .map(SyscallRet::Id),
            SyscallInvocation::Socket => Ok(SyscallRet::Sock(self.net.socket(clock, model))),
            SyscallInvocation::Listen { sock, addr } => self
                .net
                .listen(sock, addr, clock, model)
                .map(|()| SyscallRet::Unit),
            SyscallInvocation::Accept { sock, peer } => self
                .net
                .accept(sock, peer, clock, model)
                .map(SyscallRet::Sock),
            SyscallInvocation::Sendmsg { sock, bytes } => self
                .net
                .send(sock, bytes, clock, model)
                .map(|()| SyscallRet::Unit),
            SyscallInvocation::Shutdown { sock } => self
                .net
                .shutdown(sock, clock, model)
                .map(|()| SyscallRet::Unit),
            SyscallInvocation::Nanosleep { duration } => {
                clock.charge(model.host.syscall_base + duration);
                Ok(SyscallRet::Unit)
            }
            SyscallInvocation::Setsid { pid } => {
                clock.charge(model.host.syscall_base);
                self.tasks.setsid(pid).map(SyscallRet::Id)
            }
            SyscallInvocation::Ptrace => {
                unreachable!(
                    "denied syscalls never pass the policy gate in template mode; \
                              outside template mode ptrace is unimplemented"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gofer::FsServer;
    use std::sync::Arc;

    fn kernel() -> (SimClock, CostModel, GuestKernel) {
        let clock = SimClock::new();
        let model = CostModel::experimental_machine();
        let fs = Arc::new(
            FsServer::builder("d")
                .file("/app/bin", b"payload".to_vec())
                .build(),
        );
        (
            clock.clone(),
            model.clone(),
            GuestKernel::boot("d", fs, &clock, &model),
        )
    }

    #[test]
    fn file_lifecycle_through_the_dispatcher() {
        let (clock, model, mut k) = kernel();
        let fd = match k
            .syscall(
                SyscallInvocation::Openat {
                    path: "/app/bin",
                    writable: false,
                },
                &clock,
                &model,
            )
            .unwrap()
        {
            SyscallRet::Fd(fd) => fd,
            other => panic!("{other:?}"),
        };
        let data = match k
            .syscall(SyscallInvocation::Read { fd, len: 7 }, &clock, &model)
            .unwrap()
        {
            SyscallRet::Data(d) => d,
            other => panic!("{other:?}"),
        };
        assert_eq!(&data[..], b"payload");
        let dup = k
            .syscall(SyscallInvocation::Dup { fd }, &clock, &model)
            .unwrap();
        assert!(matches!(dup, SyscallRet::Fd(d) if d != fd));
        k.syscall(SyscallInvocation::Close { fd }, &clock, &model)
            .unwrap();
        assert!(k
            .syscall(SyscallInvocation::Read { fd, len: 1 }, &clock, &model)
            .is_err());
    }

    #[test]
    fn network_lifecycle_through_the_dispatcher() {
        let (clock, model, mut k) = kernel();
        let sock = match k
            .syscall(SyscallInvocation::Socket, &clock, &model)
            .unwrap()
        {
            SyscallRet::Sock(s) => s,
            other => panic!("{other:?}"),
        };
        k.syscall(
            SyscallInvocation::Listen {
                sock,
                addr: "0.0.0.0:80",
            },
            &clock,
            &model,
        )
        .unwrap();
        let conn = match k
            .syscall(
                SyscallInvocation::Accept {
                    sock,
                    peer: "10.0.0.1:5",
                },
                &clock,
                &model,
            )
            .unwrap()
        {
            SyscallRet::Sock(s) => s,
            other => panic!("{other:?}"),
        };
        k.syscall(
            SyscallInvocation::Sendmsg {
                sock: conn,
                bytes: 64,
            },
            &clock,
            &model,
        )
        .unwrap();
        k.syscall(SyscallInvocation::Shutdown { sock: conn }, &clock, &model)
            .unwrap();
    }

    #[test]
    fn identity_and_time_calls() {
        let (clock, model, mut k) = kernel();
        assert_eq!(
            k.syscall(SyscallInvocation::Getpid, &clock, &model)
                .unwrap(),
            SyscallRet::Id(1)
        );
        let tid = k
            .syscall(SyscallInvocation::Clone { pid: 1 }, &clock, &model)
            .unwrap();
        assert!(matches!(tid, SyscallRet::Id(t) if t > 1));
        let before = clock.now();
        k.syscall(
            SyscallInvocation::Nanosleep {
                duration: SimNanos::from_millis(5),
            },
            &clock,
            &model,
        )
        .unwrap();
        assert!(clock.now() >= before + SimNanos::from_millis(5));
        let sid = k
            .syscall(SyscallInvocation::Setsid { pid: 1 }, &clock, &model)
            .unwrap();
        assert_eq!(sid, SyscallRet::Id(1));
    }

    #[test]
    fn template_mode_denies_through_the_dispatcher() {
        let (clock, model, mut k) = kernel();
        k.set_template_mode(true);
        assert!(matches!(
            k.syscall(SyscallInvocation::Ptrace, &clock, &model)
                .unwrap_err(),
            KernelError::DeniedSyscall { name: "ptrace" }
        ));
        // Allowed calls still work in template mode.
        k.syscall(SyscallInvocation::Getpid, &clock, &model)
            .unwrap();
    }

    #[test]
    fn syscall_counter_tracks_dispatches() {
        let (clock, model, mut k) = kernel();
        let before = k.stats().syscalls;
        k.syscall(SyscallInvocation::Getpid, &clock, &model)
            .unwrap();
        k.syscall(SyscallInvocation::Socket, &clock, &model)
            .unwrap();
        assert_eq!(k.stats().syscalls, before + 2);
    }
}
