//! The sandbox process's own (Golang) threads and the **transient
//! single-thread** protocol (paper §4.1, Fig. 9b).
//!
//! gVisor's Sentry is a Go program: its host threads fall into three
//! categories — *runtime* threads (GC, sysmon, preemption), *scheduling*
//! threads (the `M`s multiplexing goroutines), and *blocking* threads
//! (dedicated to goroutines stuck in blocking syscalls). Plain `fork` only
//! carries one thread into the child, so Catalyzer modifies the Go runtime
//! to temporarily **merge** all threads into a single `m0`: runtime threads
//! save their contexts to memory and exit; scheduling is configured down to
//! one `M`; blocking threads observe a time-out, save, and exit. After
//! `sfork`, the child **expands** back to the full set from the saved
//! contexts.

use simtime::{CostModel, SimClock, SimNanos};

use crate::KernelError;

/// Category of a Sentry host thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadCategory {
    /// Go runtime service thread (GC, sysmon, preemption).
    Runtime,
    /// Scheduling thread (`M`) running goroutines.
    Scheduling,
    /// Thread dedicated to a goroutine blocked in a syscall.
    Blocking,
}

/// One Sentry host thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentryThread {
    /// Host thread id.
    pub htid: u32,
    /// Category.
    pub category: ThreadCategory,
    /// Opaque saved context digest.
    pub context: u64,
    /// Blocking threads carry the time-out that lets them observe the merge
    /// request (paper: "we add a time-out in all blocking threads").
    pub block_timeout: Option<SimNanos>,
}

/// Thread-set mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadMode {
    /// Normal multi-threaded operation.
    Multi,
    /// Merged into the single `m0` (ready for `sfork`).
    TransientSingle,
}

/// The Sentry's host thread set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentryThreads {
    mode: ThreadMode,
    /// Live threads. In `TransientSingle` mode this is exactly `[m0]`.
    live: Vec<SentryThread>,
    /// Saved contexts of merged threads, kept in memory for re-expansion.
    saved: Vec<SentryThread>,
    next_htid: u32,
}

impl SentryThreads {
    /// The standard gVisor-like thread set: `m0`, `sched - 1` additional
    /// scheduling threads, 3 runtime threads, and `blocking` blocked threads.
    pub fn standard(sched: usize, blocking: usize) -> SentryThreads {
        let mut set = SentryThreads {
            mode: ThreadMode::Multi,
            live: Vec::new(),
            saved: Vec::new(),
            next_htid: 1,
        };
        set.push(ThreadCategory::Scheduling, None); // m0
        for _ in 1..sched.max(1) {
            set.push(ThreadCategory::Scheduling, None);
        }
        for _ in 0..3 {
            set.push(ThreadCategory::Runtime, None);
        }
        for _ in 0..blocking {
            set.push(ThreadCategory::Blocking, Some(SimNanos::from_millis(10)));
        }
        set
    }

    fn push(&mut self, category: ThreadCategory, block_timeout: Option<SimNanos>) -> u32 {
        let htid = self.next_htid;
        self.next_htid += 1;
        self.live.push(SentryThread {
            htid,
            category,
            context: u64::from(htid) * 0x9E37_79B9,
            block_timeout,
        });
        htid
    }

    /// Current mode.
    pub fn mode(&self) -> ThreadMode {
        self.mode
    }

    /// Live thread count.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Saved (merged-away) thread count.
    pub fn saved_count(&self) -> usize {
        self.saved.len()
    }

    /// Live threads.
    pub fn live(&self) -> &[SentryThread] {
        &self.live
    }

    /// Spawns an additional blocking thread (a goroutine entered a blocking
    /// syscall).
    ///
    /// # Errors
    ///
    /// [`KernelError::ThreadMode`] in transient single-thread mode — no new
    /// threads may appear while merged.
    pub fn enter_blocking_syscall(
        &mut self,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<u32, KernelError> {
        if self.mode != ThreadMode::Multi {
            return Err(KernelError::ThreadMode {
                detail: "cannot spawn threads while merged",
            });
        }
        clock.charge(model.host.thread_spawn);
        Ok(self.push(ThreadCategory::Blocking, Some(SimNanos::from_millis(10))))
    }

    /// Merges the set into the transient single thread (`m0`): runtime
    /// threads save context and exit; scheduling is configured to one `M`;
    /// blocking threads observe their time-out, save, and exit.
    ///
    /// Charges context saves and joins, plus the largest blocking time-out
    /// (threads check the merge flag when their time-out fires). This runs
    /// during offline template generation, not on the startup critical path.
    ///
    /// # Errors
    ///
    /// [`KernelError::ThreadMode`] if already merged.
    pub fn merge_to_single(
        &mut self,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), KernelError> {
        if self.mode != ThreadMode::Multi {
            return Err(KernelError::ThreadMode {
                detail: "already in transient single-thread mode",
            });
        }
        let max_timeout = self
            .live
            .iter()
            .filter_map(|t| t.block_timeout)
            .fold(SimNanos::ZERO, SimNanos::max);
        clock.charge(max_timeout);

        let m0 = self.live[0].clone();
        debug_assert_eq!(m0.category, ThreadCategory::Scheduling);
        let merged: Vec<SentryThread> = self.live.drain(1..).collect();
        clock.charge(
            (model.host.thread_ctx_save + model.host.thread_join)
                .saturating_mul(merged.len() as u64),
        );
        self.saved = merged;
        self.live = vec![m0];
        self.mode = ThreadMode::TransientSingle;
        Ok(())
    }

    /// Expands back to the full thread set from saved contexts — the child
    /// side of `sfork`, on the startup critical path.
    ///
    /// # Errors
    ///
    /// [`KernelError::ThreadMode`] if not merged.
    pub fn expand(&mut self, clock: &SimClock, model: &CostModel) -> Result<(), KernelError> {
        if self.mode != ThreadMode::TransientSingle {
            return Err(KernelError::ThreadMode {
                detail: "expand requires transient single-thread mode",
            });
        }
        clock.charge(
            (model.host.thread_spawn + model.host.thread_ctx_restore)
                .saturating_mul(self.saved.len() as u64),
        );
        self.live.append(&mut self.saved);
        self.mode = ThreadMode::Multi;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimClock, CostModel) {
        (SimClock::new(), CostModel::experimental_machine())
    }

    #[test]
    fn standard_set_shape() {
        let t = SentryThreads::standard(4, 2);
        assert_eq!(t.mode(), ThreadMode::Multi);
        assert_eq!(t.live_count(), 4 + 3 + 2);
        assert_eq!(
            t.live()
                .iter()
                .filter(|x| x.category == ThreadCategory::Runtime)
                .count(),
            3
        );
    }

    #[test]
    fn merge_then_expand_round_trips() {
        let (clock, model) = setup();
        let mut t = SentryThreads::standard(4, 2);
        let before = t.clone();
        t.merge_to_single(&clock, &model).unwrap();
        assert_eq!(t.mode(), ThreadMode::TransientSingle);
        assert_eq!(t.live_count(), 1);
        assert_eq!(t.saved_count(), 8);
        t.expand(&clock, &model).unwrap();
        assert_eq!(t.mode(), ThreadMode::Multi);
        assert_eq!(t.live_count(), 9);
        assert_eq!(t.saved_count(), 0);
        // All contexts survive (order: m0 then the merged tail).
        assert_eq!(t.live(), before.live());
    }

    #[test]
    fn merge_charges_blocking_timeout() {
        let (clock, model) = setup();
        let mut t = SentryThreads::standard(2, 1);
        t.merge_to_single(&clock, &model).unwrap();
        assert!(
            clock.now() >= SimNanos::from_millis(10),
            "blocking time-out dominates"
        );
    }

    #[test]
    fn merge_without_blocking_threads_is_fast() {
        let (clock, model) = setup();
        let mut t = SentryThreads::standard(2, 0);
        t.merge_to_single(&clock, &model).unwrap();
        assert!(clock.now() < SimNanos::from_millis(1));
    }

    #[test]
    fn expand_is_cheap_enough_for_sub_ms_sfork() {
        let (clock, model) = setup();
        let mut t = SentryThreads::standard(4, 2);
        t.merge_to_single(&SimClock::new(), &model).unwrap();
        t.expand(&clock, &model).unwrap();
        // 8 threads × (spawn + ctx restore) must stay well under 1 ms.
        assert!(
            clock.now() < SimNanos::from_micros(400),
            "expand cost {}",
            clock.now()
        );
    }

    #[test]
    fn mode_errors() {
        let (clock, model) = setup();
        let mut t = SentryThreads::standard(2, 0);
        assert!(t.expand(&clock, &model).is_err());
        t.merge_to_single(&clock, &model).unwrap();
        assert!(t.merge_to_single(&clock, &model).is_err());
        assert!(t.enter_blocking_syscall(&clock, &model).is_err());
        t.expand(&clock, &model).unwrap();
        let tid = t.enter_blocking_syscall(&clock, &model).unwrap();
        assert!(tid > 0);
    }
}
