use std::error::Error;
use std::fmt;

/// Guest-kernel errors (the moral equivalent of errno values).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// Path does not exist (`ENOENT`).
    NoEntry {
        /// The path looked up.
        path: String,
    },
    /// Bad file descriptor (`EBADF`).
    BadFd {
        /// The offending descriptor.
        fd: i32,
    },
    /// Descriptor is not open for writing (`EBADF`/`EROFS`).
    ReadOnly {
        /// The offending descriptor.
        fd: i32,
    },
    /// A syscall was denied by the template-sandbox policy (paper Table 1).
    DeniedSyscall {
        /// Name of the denied syscall.
        name: &'static str,
    },
    /// Socket operation on a socket in the wrong state (`EINVAL`).
    BadSocketState {
        /// The socket id.
        sock: u64,
    },
    /// Restore found an inconsistent object graph.
    CorruptGraph {
        /// Human-readable description.
        detail: String,
    },
    /// The thread set is in the wrong mode for the requested transition.
    ThreadMode {
        /// Human-readable description.
        detail: &'static str,
    },
    /// Out of descriptors or another resource limit (`EMFILE`).
    ResourceExhausted {
        /// What ran out.
        what: &'static str,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoEntry { path } => write!(f, "no such file or directory: {path}"),
            KernelError::BadFd { fd } => write!(f, "bad file descriptor {fd}"),
            KernelError::ReadOnly { fd } => write!(f, "descriptor {fd} is read-only"),
            KernelError::DeniedSyscall { name } => {
                write!(f, "syscall '{name}' is denied in a template sandbox")
            }
            KernelError::BadSocketState { sock } => {
                write!(f, "socket {sock} is in the wrong state")
            }
            KernelError::CorruptGraph { detail } => {
                write!(f, "corrupt kernel object graph: {detail}")
            }
            KernelError::ThreadMode { detail } => write!(f, "thread-set mode error: {detail}"),
            KernelError::ResourceExhausted { what } => write!(f, "resource exhausted: {what}"),
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(KernelError::NoEntry { path: "/x".into() }
            .to_string()
            .contains("/x"));
        assert!(KernelError::BadFd { fd: 7 }.to_string().contains('7'));
        assert!(KernelError::DeniedSyscall { name: "ptrace" }
            .to_string()
            .contains("ptrace"));
        assert!(KernelError::ThreadMode {
            detail: "not merged"
        }
        .to_string()
        .contains("merged"));
    }
}
