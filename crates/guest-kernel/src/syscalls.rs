//! The syscall surface and the paper's **Table 1** classification.
//!
//! For `sfork`, Catalyzer classifies syscalls into three groups (§4):
//!
//! - **Allowed** — run as normal syscalls; their effects are safe to reuse
//!   across fork.
//! - **Handled** — user-space logic must fix related system state after
//!   `sfork` (e.g. `clone`'s multi-threaded contexts are re-expanded by the
//!   transient single-thread mechanism; `openat`'s descriptors survive as
//!   read-only gofer grants).
//! - **Denied** — removed from template sandboxes because they would make
//!   system state non-deterministically inconsistent across fork.

use std::fmt;

/// Table 1's category rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallCategory {
    /// Process control.
    Proc,
    /// VFS (FS/Net) descriptor plumbing.
    Vfs,
    /// File (storage) data path.
    File,
    /// Network endpoints.
    Network,
    /// Memory management.
    Mem,
    /// Miscellaneous identity/time/sync.
    Misc,
}

/// Table 1's handler mechanisms for *handled* syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SforkHandler {
    /// Transient single-thread (multi-threaded context recovery, §4.1).
    TransientSingleThread,
    /// PID/USER namespaces keep identity state consistent.
    Namespace,
    /// Read-only descriptors remain valid across fork.
    ReadOnlyFd,
    /// Stateless overlay rootFS (§4.2).
    StatelessOverlayFs,
    /// On-demand reconnection (§3.3).
    Reconnect,
    /// Handled directly by the `sfork` implementation (CoW mappings).
    HandledBySfork,
}

/// Classification of a syscall under the template-sandbox policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallClass {
    /// Runs as a normal syscall.
    Allowed,
    /// Allowed, but user-space logic repairs its state after `sfork`.
    Handled(SforkHandler),
    /// Removed from template sandboxes.
    Denied,
}

macro_rules! syscall_table {
    ($( $variant:ident => ($name:literal, $cat:ident, $class:expr) ),+ $(,)?) => {
        /// Every syscall named in the paper's Table 1, plus representative
        /// denied syscalls.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum SyscallName {
            $( $variant, )+
        }

        impl SyscallName {
            /// All table entries.
            pub const ALL: &'static [SyscallName] = &[ $( SyscallName::$variant, )+ ];

            /// The Linux syscall name.
            pub fn as_str(self) -> &'static str {
                match self { $( SyscallName::$variant => $name, )+ }
            }

            /// Table 1 category row.
            pub fn category(self) -> SyscallCategory {
                match self { $( SyscallName::$variant => SyscallCategory::$cat, )+ }
            }

            /// Template-sandbox classification.
            pub fn classify(self) -> SyscallClass {
                match self { $( SyscallName::$variant => $class, )+ }
            }
        }
    };
}

use SforkHandler as H;
use SyscallClass::{Allowed, Denied, Handled};

syscall_table! {
    // --- Proc: transient single-thread + namespaces ---
    Capget => ("capget", Proc, Allowed),
    Clone => ("clone", Proc, Handled(H::TransientSingleThread)),
    Getpid => ("getpid", Proc, Handled(H::Namespace)),
    Gettid => ("gettid", Proc, Handled(H::TransientSingleThread)),
    ArchPrctl => ("arch_prctl", Proc, Allowed),
    Prctl => ("prctl", Proc, Allowed),
    RtSigaction => ("rt_sigaction", Proc, Allowed),
    RtSigprocmask => ("rt_sigprocmask", Proc, Allowed),
    RtSigreturn => ("rt_sigreturn", Proc, Allowed),
    Seccomp => ("seccomp", Proc, Allowed),
    Sigaltstack => ("sigaltstack", Proc, Allowed),
    SchedGetaffinity => ("sched_getaffinity", Proc, Allowed),
    // --- VFS (FS/Net): read-only fd handling ---
    Poll => ("poll", Vfs, Allowed),
    Ioctl => ("ioctl", Vfs, Allowed),
    MemfdCreate => ("memfd_create", Vfs, Allowed),
    Ftruncate => ("ftruncate", Vfs, Allowed),
    Mount => ("mount", Vfs, Handled(H::ReadOnlyFd)),
    PivotRoot => ("pivot_root", Vfs, Handled(H::ReadOnlyFd)),
    Umount => ("umount", Vfs, Handled(H::ReadOnlyFd)),
    EpollCreate1 => ("epoll_create1", Vfs, Allowed),
    EpollCtl => ("epoll_ctl", Vfs, Allowed),
    EpollPwait => ("epoll_pwait", Vfs, Allowed),
    Eventfd2 => ("eventfd2", Vfs, Allowed),
    Fcntl => ("fcntl", Vfs, Allowed),
    Chdir => ("chdir", Vfs, Allowed),
    Close => ("close", Vfs, Handled(H::ReadOnlyFd)),
    Dup => ("dup", Vfs, Handled(H::ReadOnlyFd)),
    Dup2 => ("dup2", Vfs, Handled(H::ReadOnlyFd)),
    Lseek => ("lseek", Vfs, Allowed),
    Openat => ("openat", Vfs, Handled(H::ReadOnlyFd)),
    // --- File (storage): stateless overlayFS ---
    Newfstat => ("newfstat", File, Allowed),
    Newfstatat => ("newfstatat", File, Allowed),
    Mkdirat => ("mkdirat", File, Handled(H::StatelessOverlayFs)),
    Write => ("write", File, Handled(H::StatelessOverlayFs)),
    Read => ("read", File, Handled(H::StatelessOverlayFs)),
    Readlinkat => ("readlinkat", File, Allowed),
    Pread64 => ("pread64", File, Allowed),
    // --- Network: reconnect ---
    Sendmsg => ("sendmsg", Network, Handled(H::Reconnect)),
    Shutdown => ("shutdown", Network, Handled(H::Reconnect)),
    Recvmsg => ("recvmsg", Network, Handled(H::Reconnect)),
    Getsockopt => ("getsockopt", Network, Allowed),
    Listen => ("listen", Network, Handled(H::Reconnect)),
    Accept => ("accept", Network, Handled(H::Reconnect)),
    // --- Mem: handled by sfork ---
    Mmap => ("mmap", Mem, Handled(H::HandledBySfork)),
    Munmap => ("munmap", Mem, Handled(H::HandledBySfork)),
    // --- Misc: namespaces ---
    Setgid => ("setgid", Misc, Handled(H::Namespace)),
    Setuid => ("setuid", Misc, Handled(H::Namespace)),
    Getgid => ("getgid", Misc, Allowed),
    Getuid => ("getuid", Misc, Allowed),
    Getegid => ("getegid", Misc, Allowed),
    Geteuid => ("geteuid", Misc, Allowed),
    Getrandom => ("getrandom", Misc, Allowed),
    Nanosleep => ("nanosleep", Misc, Allowed),
    Futex => ("futex", Misc, Allowed),
    Getgroups => ("getgroups", Misc, Allowed),
    ClockGettime => ("clock_gettime", Misc, Allowed),
    Getrlimit => ("getrlimit", Misc, Allowed),
    Setsid => ("setsid", Misc, Handled(H::Namespace)),
    // --- Denied in template sandboxes (non-deterministic state) ---
    Ptrace => ("ptrace", Proc, Denied),
    Reboot => ("reboot", Misc, Denied),
    KexecLoad => ("kexec_load", Misc, Denied),
    InitModule => ("init_module", Misc, Denied),
    DeleteModule => ("delete_module", Misc, Denied),
    Iopl => ("iopl", Misc, Denied),
}

impl fmt::Display for SyscallName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Convenience: the classification of a syscall by Linux name; `None` for
/// syscalls outside the table.
pub fn classify(name: &str) -> Option<SyscallClass> {
    SyscallName::ALL
        .iter()
        .find(|s| s.as_str() == name)
        .map(|s| s.classify())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_examples() {
        assert_eq!(
            SyscallName::Clone.classify(),
            Handled(H::TransientSingleThread)
        );
        assert_eq!(SyscallName::Openat.classify(), Handled(H::ReadOnlyFd));
        assert_eq!(
            SyscallName::Write.classify(),
            Handled(H::StatelessOverlayFs)
        );
        assert_eq!(SyscallName::Accept.classify(), Handled(H::Reconnect));
        assert_eq!(SyscallName::Mmap.classify(), Handled(H::HandledBySfork));
        assert_eq!(SyscallName::Setsid.classify(), Handled(H::Namespace));
        assert_eq!(SyscallName::ClockGettime.classify(), Allowed);
        assert_eq!(SyscallName::Ptrace.classify(), Denied);
    }

    #[test]
    fn categories_match_table_rows() {
        assert_eq!(SyscallName::Seccomp.category(), SyscallCategory::Proc);
        assert_eq!(SyscallName::EpollCtl.category(), SyscallCategory::Vfs);
        assert_eq!(SyscallName::Pread64.category(), SyscallCategory::File);
        assert_eq!(SyscallName::Getsockopt.category(), SyscallCategory::Network);
        assert_eq!(SyscallName::Munmap.category(), SyscallCategory::Mem);
        assert_eq!(SyscallName::Futex.category(), SyscallCategory::Misc);
    }

    #[test]
    fn classify_by_name() {
        assert_eq!(classify("getpid"), Some(Handled(H::Namespace)));
        assert_eq!(classify("nanosleep"), Some(Allowed));
        assert_eq!(classify("reboot"), Some(Denied));
        assert_eq!(classify("not_a_syscall"), None);
    }

    #[test]
    fn table_covers_every_paper_row() {
        // Spot-check the full Table 1 membership by name.
        for name in [
            "capget",
            "clone",
            "getpid",
            "gettid",
            "arch_prctl",
            "prctl",
            "rt_sigaction",
            "rt_sigprocmask",
            "rt_sigreturn",
            "seccomp",
            "sigaltstack",
            "sched_getaffinity",
            "poll",
            "ioctl",
            "memfd_create",
            "ftruncate",
            "mount",
            "pivot_root",
            "umount",
            "epoll_create1",
            "epoll_ctl",
            "epoll_pwait",
            "eventfd2",
            "fcntl",
            "chdir",
            "close",
            "dup",
            "dup2",
            "lseek",
            "openat",
            "newfstat",
            "newfstatat",
            "mkdirat",
            "write",
            "read",
            "readlinkat",
            "pread64",
            "sendmsg",
            "shutdown",
            "recvmsg",
            "getsockopt",
            "listen",
            "accept",
            "mmap",
            "munmap",
            "setgid",
            "setuid",
            "getgid",
            "getuid",
            "getegid",
            "geteuid",
            "getrandom",
            "nanosleep",
            "futex",
            "getgroups",
            "clock_gettime",
            "getrlimit",
            "setsid",
        ] {
            assert!(classify(name).is_some(), "missing table entry for {name}");
            assert_ne!(classify(name), Some(Denied), "{name} must not be denied");
        }
    }

    #[test]
    fn display_prints_linux_name() {
        assert_eq!(SyscallName::EpollPwait.to_string(), "epoll_pwait");
    }

    #[test]
    fn denied_set_is_disjoint_from_table() {
        let denied: Vec<_> = SyscallName::ALL
            .iter()
            .filter(|s| s.classify() == Denied)
            .collect();
        assert!(!denied.is_empty());
        for d in denied {
            assert!(matches!(d.classify(), Denied));
        }
    }
}
