//! Synthesizing realistic kernel object graphs.
//!
//! Language runtimes create wildly different amounts of guest-kernel state
//! during initialization: a C hello-world leaves a few hundred objects, a
//! JVM running SPECjbb leaves 37 838 (paper §2.2). [`GraphSpec`] drives the
//! live subsystems (never raw record injection) so the synthesized kernel is
//! a *valid* kernel: everything it creates can be checkpointed, restored,
//! validated, and exercised.

use simtime::{CostModel, SimClock, SimNanos};

use crate::kernel::{Dentry, EpollInstance, GuestKernel, WaitQueue};
use crate::KernelError;

/// How much state to synthesize into a kernel. Counts are *additional* to
/// whatever the kernel already holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphSpec {
    /// Extra tasks to spawn (children of init).
    pub extra_tasks: u32,
    /// Threads to add to each extra task.
    pub threads_per_task: u32,
    /// Dentry-cache entries.
    pub dentries: u32,
    /// Files to open (paths cycle over the FS server's rootfs).
    pub open_files: u32,
    /// Connected sockets.
    pub sockets: u32,
    /// Armed timers.
    pub timers: u32,
    /// Wait queues (each with up to 3 waiters).
    pub waitqueues: u32,
    /// Epoll instances (each watching one open fd, if any).
    pub epolls: u32,
    /// Opaque runtime objects.
    pub misc_objects: u32,
    /// Payload bytes per misc object.
    pub misc_payload: u32,
}

impl GraphSpec {
    /// A spec whose populated kernel lands close to `target` total objects,
    /// with proportions resembling a managed-runtime process (mostly misc
    /// runtime objects and dentries, some threads/timers, a minority of I/O).
    pub fn sized(target: u64) -> GraphSpec {
        let t = target as f64;
        GraphSpec {
            extra_tasks: 2,
            threads_per_task: ((t / 4_000.0).ceil() as u32).clamp(1, 64),
            dentries: (t * 0.18) as u32,
            open_files: ((t * 0.012) as u32).max(1),
            sockets: ((t * 0.003) as u32).max(1),
            timers: ((t * 0.01) as u32).max(1),
            waitqueues: (t * 0.02) as u32,
            epolls: 1,
            misc_objects: (t * 0.72) as u32,
            misc_payload: 32,
        }
    }

    /// Populates `kernel` through its live subsystems.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (e.g. fd exhaustion when `open_files`
    /// exceeds the table size).
    pub fn populate(
        &self,
        kernel: &mut GuestKernel,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), KernelError> {
        let init_pid = kernel.tasks.getpid();
        for i in 0..self.extra_tasks {
            let pid = kernel
                .tasks
                .spawn_task(init_pid, &format!("worker-{i}"), clock, model);
            for _ in 0..self.threads_per_task {
                kernel.tasks.spawn_thread(pid, clock, model)?;
            }
        }
        for i in 0..self.dentries {
            kernel.dentries.push(Dentry {
                path: format!("/proc/cache/entry-{i}"),
                inode: 0x1000 + u64::from(i),
                parent: if i == 0 { None } else { Some(i - 1) },
            });
        }
        let paths: Vec<String> = kernel.vfs.server().paths().map(str::to_string).collect();
        let mut opened = Vec::new();
        for i in 0..self.open_files {
            let path = match paths.get(i as usize % paths.len().max(1)) {
                Some(p) => p.clone(),
                None => break,
            };
            opened.push(kernel.vfs.open(&path, false, clock, model)?);
        }
        for i in 0..self.sockets {
            let s = kernel.net.socket(clock, model);
            kernel
                .net
                .connect(s, &format!("10.0.0.{}:6379", i % 250), clock, model)?;
        }
        for i in 0..self.timers {
            kernel.timers.arm(
                SimNanos::from_millis(10 + u64::from(i)),
                if i % 2 == 0 {
                    SimNanos::from_millis(50)
                } else {
                    SimNanos::ZERO
                },
                init_pid,
            );
        }
        let tids: Vec<u32> = kernel
            .tasks
            .tasks()
            .iter()
            .flat_map(|t| t.threads.iter().map(|th| th.tid))
            .collect();
        for i in 0..self.waitqueues {
            let waiters = tids
                .iter()
                .skip(i as usize % tids.len().max(1))
                .take(3)
                .copied()
                .collect();
            kernel.waitqueues.push(WaitQueue { waiters });
        }
        for _ in 0..self.epolls {
            kernel.epolls.push(EpollInstance {
                watched: opened.first().copied().into_iter().collect(),
            });
        }
        for i in 0..self.misc_objects {
            let mut blob = vec![0u8; self.misc_payload as usize];
            for (j, b) in blob.iter_mut().enumerate() {
                *b = (i as usize + j) as u8;
            }
            kernel.misc.push(blob.into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gofer::FsServer;
    use std::sync::Arc;

    fn fresh_kernel() -> (SimClock, CostModel, GuestKernel) {
        let clock = SimClock::new();
        let model = CostModel::experimental_machine();
        let fs = Arc::new(
            FsServer::builder("f")
                .synthetic_tree("/lib", 16, 64)
                .build(),
        );
        let k = GuestKernel::boot("synth", fs, &clock, &model);
        (clock, model, k)
    }

    #[test]
    fn sized_spec_hits_target_within_tolerance() {
        for target in [500u64, 5_000, 37_838] {
            let (clock, model, mut k) = fresh_kernel();
            let baseline = k.object_count();
            GraphSpec::sized(target)
                .populate(&mut k, &clock, &model)
                .unwrap();
            let total = k.object_count();
            let lo = (target as f64 * 0.9) as u64;
            let hi = (target as f64 * 1.1) as u64 + baseline + 64;
            assert!(
                (lo..=hi).contains(&total),
                "target {target}: got {total} objects"
            );
            k.validate().unwrap();
        }
    }

    #[test]
    fn populated_kernel_round_trips_through_checkpoint() {
        let (clock, model, mut k) = fresh_kernel();
        GraphSpec::sized(2_000)
            .populate(&mut k, &clock, &model)
            .unwrap();
        let records = k.checkpoint_objects();
        assert_eq!(records.len() as u64, k.object_count());
        let restored = GuestKernel::restore_from_records(
            "r",
            &records,
            Arc::clone(k.vfs.server()),
            false,
            &clock,
            &model,
        )
        .unwrap();
        assert_eq!(restored.object_count(), k.object_count());
    }

    #[test]
    fn io_fraction_is_minority() {
        let (clock, model, mut k) = fresh_kernel();
        GraphSpec::sized(10_000)
            .populate(&mut k, &clock, &model)
            .unwrap();
        let io = k.io_object_count() as f64;
        let total = k.object_count() as f64;
        assert!(io / total < 0.2, "io fraction {}", io / total);
        assert!(io > 0.0);
    }

    #[test]
    fn default_spec_adds_nothing() {
        let (clock, model, mut k) = fresh_kernel();
        let before = k.object_count();
        GraphSpec::default()
            .populate(&mut k, &clock, &model)
            .unwrap();
        assert_eq!(k.object_count(), before);
    }
}
