//! The guest VFS: mount table, fd table, and the **stateless overlay
//! rootFS** (paper §4.2).
//!
//! Each sandbox sees two file-system layers:
//!
//! - an **upper**, in-memory, read-write overlay private to the sandbox
//!   (cheaply CoW-cloned across `sfork`); over
//! - the **lower**, read-only rootfs owned by the per-function
//!   [`FsServer`] (gofer), accessed through granted
//!   read-only descriptors that remain valid across `sfork`.
//!
//! After a restore, descriptors exist but are *disconnected*: the first use
//! triggers on-demand reconnection (paper §3.3), unless the restore path
//! eagerly reconnected them (gVisor-restore) or replayed them from the I/O
//! cache (Catalyzer warm boot).
//!
//! [`FsServer`]: crate::gofer::FsServer

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use simtime::{CostModel, SimClock};

use crate::gofer::{FsServer, GoferFd};
use crate::KernelError;

/// Maximum guest descriptors per sandbox.
pub const MAX_FDS: usize = 1024;

/// Where a descriptor's bytes live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Backend {
    /// The in-memory upper overlay layer (read-write).
    Upper,
    /// A read-only grant from the FS server.
    Gofer(GoferFd),
    /// A writable persistent grant (log files) — write-through to the server.
    Persistent(GoferFd),
}

/// One open file description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDesc {
    /// Path within the sandbox rootfs.
    pub path: String,
    /// Current file offset.
    pub offset: u64,
    /// Whether writes are allowed.
    pub writable: bool,
    /// Backing layer.
    pub backend: Backend,
    /// False right after a restore until the connection is re-established.
    pub connected: bool,
    /// True once the descriptor has been used (read/written) — feeds the
    /// `used_immediately` hint in the checkpoint I/O manifest.
    pub used: bool,
}

/// A mount-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MountInfo {
    /// Device / source label.
    pub source: String,
    /// Mount point.
    pub target: String,
    /// Filesystem type label.
    pub fs_type: String,
}

/// The per-sandbox VFS.
#[derive(Debug)]
pub struct Vfs {
    server: Arc<FsServer>,
    /// Upper-layer contents are held as [`Bytes`]: copy-up shares the
    /// server's buffer, `sfork` clones are reference bumps, and reads
    /// return zero-copy slices. Writes (off the restore hot path) rebuild
    /// the buffer — classic copy-on-write.
    upper: BTreeMap<String, Bytes>,
    fds: Vec<Option<FileDesc>>,
    mounts: Vec<MountInfo>,
    /// Count of on-demand reconnections performed (Fig. 12 I/O accounting).
    reconnects: u64,
}

impl Vfs {
    /// Creates a VFS over the function's FS server with the root mount
    /// installed.
    pub fn new(server: Arc<FsServer>) -> Vfs {
        Vfs {
            server,
            upper: BTreeMap::new(),
            fds: Vec::new(),
            mounts: vec![MountInfo {
                source: "rootfs".into(),
                target: "/".into(),
                fs_type: "overlay".into(),
            }],
            reconnects: 0,
        }
    }

    /// The backing FS server.
    pub fn server(&self) -> &Arc<FsServer> {
        &self.server
    }

    /// Registered mounts.
    pub fn mounts(&self) -> &[MountInfo] {
        &self.mounts
    }

    /// Replaces the whole mount table (restore path; no cost — the redo cost
    /// is accounted per-object by the restore engine).
    pub fn set_mounts(&mut self, mounts: Vec<MountInfo>) {
        self.mounts = mounts;
    }

    /// Adds a mount, charging the mount cost.
    pub fn mount(&mut self, info: MountInfo, clock: &SimClock, model: &CostModel) {
        clock.charge(model.host.mount_fs);
        self.mounts.push(info);
    }

    /// Number of open descriptors.
    pub fn open_fds(&self) -> usize {
        self.fds.iter().flatten().count()
    }

    /// On-demand reconnections performed since boot/restore.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn alloc_fd(&mut self, desc: FileDesc) -> Result<i32, KernelError> {
        if let Some(i) = self.fds.iter().position(Option::is_none) {
            self.fds[i] = Some(desc);
            return Ok(i as i32);
        }
        if self.fds.len() >= MAX_FDS {
            return Err(KernelError::ResourceExhausted { what: "guest fds" });
        }
        self.fds.push(Some(desc));
        Ok((self.fds.len() - 1) as i32)
    }

    fn desc(&self, fd: i32) -> Result<&FileDesc, KernelError> {
        self.fds
            .get(fd as usize)
            .and_then(Option::as_ref)
            .ok_or(KernelError::BadFd { fd })
    }

    fn desc_mut(&mut self, fd: i32) -> Result<&mut FileDesc, KernelError> {
        self.fds
            .get_mut(fd as usize)
            .and_then(Option::as_mut)
            .ok_or(KernelError::BadFd { fd })
    }

    /// Opens `path`. Read-only opens resolve upper-then-lower; writable opens
    /// copy the file up into the overlay (unless it is a persistent grant
    /// path, which stays write-through).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoEntry`] if the path exists in neither layer;
    /// [`KernelError::ResourceExhausted`] if the fd table is full.
    pub fn open(
        &mut self,
        path: &str,
        writable: bool,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<i32, KernelError> {
        clock.charge(model.host.syscall_base);
        // Upper layer wins (overlay precedence).
        if self.upper.contains_key(path) {
            return self.alloc_fd(FileDesc {
                path: path.into(),
                offset: 0,
                writable,
                backend: Backend::Upper,
                connected: true,
                used: false,
            });
        }
        if writable {
            if let Ok(grant) = self.server.grant_persistent(path, clock, model) {
                return self.alloc_fd(FileDesc {
                    path: path.into(),
                    offset: 0,
                    writable: true,
                    backend: Backend::Persistent(grant),
                    connected: true,
                    used: false,
                });
            }
            // Copy-up: adopt the lower contents into the overlay. The server
            // hands back a `Bytes` view, so no bytes are duplicated until a
            // write actually lands.
            let gfd = self.server.open(path, clock, model)?;
            let len = usize::try_from(self.server.size_of(path).unwrap_or(0)).unwrap_or(usize::MAX);
            let data = self.server.read(&gfd, 0, len, clock, model)?;
            self.upper.insert(path.to_string(), data);
            return self.alloc_fd(FileDesc {
                path: path.into(),
                offset: 0,
                writable: true,
                backend: Backend::Upper,
                connected: true,
                used: false,
            });
        }
        let gfd = self.server.open(path, clock, model)?;
        self.alloc_fd(FileDesc {
            path: path.into(),
            offset: 0,
            writable: false,
            backend: Backend::Gofer(gfd),
            connected: true,
            used: false,
        })
    }

    /// Creates (or truncates) a file in the overlay layer.
    ///
    /// # Errors
    ///
    /// [`KernelError::ResourceExhausted`] if the fd table is full.
    pub fn create(
        &mut self,
        path: &str,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<i32, KernelError> {
        clock.charge(model.host.syscall_base);
        self.upper.insert(path.to_string(), Bytes::new());
        self.alloc_fd(FileDesc {
            path: path.into(),
            offset: 0,
            writable: true,
            backend: Backend::Upper,
            connected: true,
            used: false,
        })
    }

    /// Re-establishes a disconnected descriptor (on-demand I/O reconnection).
    /// No-op when already connected.
    ///
    /// # Errors
    ///
    /// Propagates FS-server errors if the path vanished.
    pub fn ensure_connected(
        &mut self,
        fd: i32,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), KernelError> {
        let desc = self.desc(fd)?.clone();
        if desc.connected {
            return Ok(());
        }
        let backend = match desc.backend {
            Backend::Upper => Backend::Upper,
            Backend::Gofer(_) => Backend::Gofer(self.server.open(&desc.path, clock, model)?),
            Backend::Persistent(_) => {
                Backend::Persistent(self.server.grant_persistent(&desc.path, clock, model)?)
            }
        };
        let slot = self.desc_mut(fd)?;
        slot.backend = backend;
        slot.connected = true;
        self.reconnects += 1;
        Ok(())
    }

    /// Reads up to `len` bytes at the current offset, advancing it.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadFd`]; reconnection errors on first post-restore use.
    pub fn read(
        &mut self,
        fd: i32,
        len: usize,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<Bytes, KernelError> {
        clock.charge(model.host.syscall_base);
        self.ensure_connected(fd, clock, model)?;
        let desc = self.desc(fd)?.clone();
        let data = match &desc.backend {
            Backend::Upper => {
                // `cloned()` bumps a refcount; `slice()` is a zero-copy view.
                // Only the simulated guest→user copy is charged.
                let content = self.upper.get(&desc.path).cloned().unwrap_or_default();
                let start = usize::try_from(desc.offset)
                    .unwrap_or(usize::MAX)
                    .min(content.len());
                let end = start.saturating_add(len).min(content.len());
                clock.charge(model.memcpy((end - start) as u64));
                content.slice(start..end)
            }
            Backend::Gofer(g) | Backend::Persistent(g) => {
                self.server.read(g, desc.offset, len, clock, model)?
            }
        };
        let slot = self.desc_mut(fd)?;
        slot.offset += data.len() as u64;
        slot.used = true;
        Ok(data)
    }

    /// Writes at the current offset, advancing it. Overlay-backed files
    /// mutate the in-memory layer; persistent grants are counted as
    /// write-through (contents live server-side and are not modeled).
    ///
    /// # Errors
    ///
    /// [`KernelError::ReadOnly`] on read-only descriptors; [`KernelError::BadFd`].
    pub fn write(
        &mut self,
        fd: i32,
        data: &[u8],
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<usize, KernelError> {
        clock.charge(model.host.syscall_base);
        self.ensure_connected(fd, clock, model)?;
        let desc = self.desc(fd)?.clone();
        if !desc.writable {
            return Err(KernelError::ReadOnly { fd });
        }
        match &desc.backend {
            Backend::Upper => {
                // Copy-on-write: materialize a private buffer (cheap if this
                // sandbox is the sole owner), mutate, and store the new view.
                let entry = self.upper.entry(desc.path.clone()).or_default();
                let mut content = Vec::from(std::mem::take(entry));
                let off = desc.offset as usize;
                if content.len() < off + data.len() {
                    content.resize(off + data.len(), 0);
                }
                content[off..off + data.len()].copy_from_slice(data);
                *entry = Bytes::from(content);
                clock.charge(model.memcpy(data.len() as u64));
            }
            Backend::Persistent(_) => {
                clock.charge(model.io.gofer_rpc + model.memcpy(data.len() as u64));
            }
            Backend::Gofer(_) => return Err(KernelError::ReadOnly { fd }),
        }
        let slot = self.desc_mut(fd)?;
        slot.offset += data.len() as u64;
        slot.used = true;
        Ok(data.len())
    }

    /// Duplicates a descriptor.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadFd`]; [`KernelError::ResourceExhausted`].
    pub fn dup(
        &mut self,
        fd: i32,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<i32, KernelError> {
        clock.charge(model.host.syscall_base + model.io.dup_fast);
        let desc = self.desc(fd)?.clone();
        self.alloc_fd(desc)
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadFd`].
    pub fn close(
        &mut self,
        fd: i32,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), KernelError> {
        clock.charge(model.host.syscall_base + model.io.close_fd);
        let slot = self
            .fds
            .get_mut(fd as usize)
            .ok_or(KernelError::BadFd { fd })?;
        if slot.take().is_none() {
            return Err(KernelError::BadFd { fd });
        }
        Ok(())
    }

    /// File size as seen through the overlay.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoEntry`].
    pub fn stat(&self, path: &str) -> Result<u64, KernelError> {
        if let Some(content) = self.upper.get(path) {
            return Ok(content.len() as u64);
        }
        self.server
            .size_of(path)
            .ok_or_else(|| KernelError::NoEntry { path: path.into() })
    }

    /// Clones this VFS for `sfork`: the overlay layer and fd table are
    /// duplicated (CoW at page granularity in a real kernel; here the upper
    /// map is cloned and a small per-entry cost is charged), and **read-only
    /// gofer descriptors are inherited as-is** — they stay valid because the
    /// server content is immutable. Persistent (writable) grants are re-
    /// granted so the child's log handle is its own.
    pub fn sfork_clone(&self, clock: &SimClock, model: &CostModel) -> Vfs {
        let mut fds = self.fds.clone();
        for slot in fds.iter_mut().flatten() {
            if let Backend::Persistent(_) = slot.backend {
                if let Ok(grant) = self.server.grant_persistent(&slot.path, clock, model) {
                    slot.backend = Backend::Persistent(grant);
                }
            }
        }
        // Upper-layer clone: CoW bookkeeping only.
        clock.charge(simtime::SimNanos::from_nanos(120).saturating_mul(self.upper.len() as u64));
        Vfs {
            server: Arc::clone(&self.server),
            upper: self.upper.clone(),
            fds,
            mounts: self.mounts.clone(),
            reconnects: 0,
        }
    }

    /// Installs a descriptor restored from a checkpoint, in the disconnected
    /// state (reconnection happens eagerly, lazily, or via the I/O cache
    /// depending on the restore engine).
    ///
    /// # Errors
    ///
    /// [`KernelError::ResourceExhausted`].
    pub fn install_restored_fd(
        &mut self,
        path: &str,
        writable: bool,
        offset: u64,
    ) -> Result<i32, KernelError> {
        let backend = if writable {
            Backend::Persistent(GoferFd {
                id: 0,
                path: path.into(),
                writable: true,
            })
        } else {
            Backend::Gofer(GoferFd {
                id: 0,
                path: path.into(),
                writable: false,
            })
        };
        self.alloc_fd(FileDesc {
            path: path.into(),
            offset,
            writable,
            backend,
            connected: false,
            used: false,
        })
    }

    /// Iterates over open descriptors as `(fd, desc)`.
    pub fn iter_fds(&self) -> impl Iterator<Item = (i32, &FileDesc)> {
        self.fds
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|d| (i as i32, d)))
    }

    /// Paths currently materialized in the upper overlay layer.
    pub fn upper_paths(&self) -> impl Iterator<Item = &str> {
        self.upper.keys().map(String::as_str)
    }
}

impl fmt::Display for Vfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vfs: {} fds, {} upper files, {} mounts",
            self.open_fds(),
            self.upper.len(),
            self.mounts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimClock, CostModel, Vfs) {
        let server = FsServer::builder("f")
            .file("/app/config.json", b"{}".to_vec())
            .file("/lib/base.so", vec![1u8; 256])
            .persistent("/var/log/fn.log")
            .build();
        (
            SimClock::new(),
            CostModel::experimental_machine(),
            Vfs::new(Arc::new(server)),
        )
    }

    #[test]
    fn open_read_lower_layer() {
        let (clock, model, mut vfs) = setup();
        let fd = vfs.open("/app/config.json", false, &clock, &model).unwrap();
        assert_eq!(&vfs.read(fd, 2, &clock, &model).unwrap()[..], b"{}");
        assert_eq!(vfs.open_fds(), 1);
    }

    #[test]
    fn missing_path() {
        let (clock, model, mut vfs) = setup();
        assert!(matches!(
            vfs.open("/nope", false, &clock, &model).unwrap_err(),
            KernelError::NoEntry { .. }
        ));
    }

    #[test]
    fn write_copies_up_into_overlay() {
        let (clock, model, mut vfs) = setup();
        let fd = vfs.open("/lib/base.so", true, &clock, &model).unwrap();
        vfs.write(fd, b"patched", &clock, &model).unwrap();
        assert!(vfs.upper_paths().any(|p| p == "/lib/base.so"));
        // Lower layer is untouched.
        assert_eq!(vfs.server().size_of("/lib/base.so"), Some(256));
        // Reading back through a fresh fd sees the overlay version.
        let fd2 = vfs.open("/lib/base.so", false, &clock, &model).unwrap();
        assert_eq!(&vfs.read(fd2, 7, &clock, &model).unwrap()[..], b"patched");
    }

    #[test]
    fn create_and_stat() {
        let (clock, model, mut vfs) = setup();
        let fd = vfs.create("/tmp/scratch", &clock, &model).unwrap();
        vfs.write(fd, &[0u8; 100], &clock, &model).unwrap();
        assert_eq!(vfs.stat("/tmp/scratch").unwrap(), 100);
        assert_eq!(vfs.stat("/lib/base.so").unwrap(), 256);
        assert!(vfs.stat("/gone").is_err());
    }

    #[test]
    fn readonly_write_rejected() {
        let (clock, model, mut vfs) = setup();
        let fd = vfs.open("/app/config.json", false, &clock, &model).unwrap();
        assert!(matches!(
            vfs.write(fd, b"x", &clock, &model).unwrap_err(),
            KernelError::ReadOnly { .. }
        ));
    }

    #[test]
    fn persistent_log_is_write_through() {
        let (clock, model, mut vfs) = setup();
        let fd = vfs.open("/var/log/fn.log", true, &clock, &model).unwrap();
        assert!(matches!(
            vfs.iter_fds().next().unwrap().1.backend,
            Backend::Persistent(_)
        ));
        vfs.write(fd, b"log line", &clock, &model).unwrap();
        assert!(!vfs.upper_paths().any(|p| p == "/var/log/fn.log"));
    }

    #[test]
    fn dup_and_close() {
        let (clock, model, mut vfs) = setup();
        let fd = vfs.open("/app/config.json", false, &clock, &model).unwrap();
        let dup = vfs.dup(fd, &clock, &model).unwrap();
        assert_ne!(fd, dup);
        vfs.close(fd, &clock, &model).unwrap();
        assert!(vfs.read(dup, 1, &clock, &model).is_ok());
        assert!(matches!(
            vfs.close(fd, &clock, &model).unwrap_err(),
            KernelError::BadFd { .. }
        ));
    }

    #[test]
    fn restored_fd_reconnects_on_first_use() {
        let (clock, model, mut vfs) = setup();
        let fd = vfs
            .install_restored_fd("/app/config.json", false, 0)
            .unwrap();
        assert_eq!(vfs.reconnects(), 0);
        let before = vfs.server().opens_served();
        let data = vfs.read(fd, 2, &clock, &model).unwrap();
        assert_eq!(&data[..], b"{}");
        assert_eq!(vfs.reconnects(), 1);
        assert_eq!(vfs.server().opens_served(), before + 1);
        // Second read: no further reconnection.
        vfs.read(fd, 0, &clock, &model).unwrap();
        assert_eq!(vfs.reconnects(), 1);
    }

    #[test]
    fn sfork_clone_inherits_readonly_fds_and_isolates_overlay() {
        let (clock, model, mut vfs) = setup();
        let ro = vfs.open("/app/config.json", false, &clock, &model).unwrap();
        let scratch = vfs.create("/tmp/x", &clock, &model).unwrap();
        vfs.write(scratch, b"parent", &clock, &model).unwrap();

        let mut child = vfs.sfork_clone(&clock, &model);
        // Read-only fd works in the child without reopening.
        let opens_before = child.server().opens_served();
        assert_eq!(&child.read(ro, 2, &clock, &model).unwrap()[..], b"{}");
        assert_eq!(child.server().opens_served(), opens_before);

        // Overlay writes diverge.
        let cfd = child.open("/tmp/x", true, &clock, &model).unwrap();
        child.write(cfd, b"child!", &clock, &model).unwrap();
        let pfd = vfs.open("/tmp/x", false, &clock, &model).unwrap();
        assert_eq!(&vfs.read(pfd, 6, &clock, &model).unwrap()[..], b"parent");
    }

    #[test]
    fn fd_exhaustion() {
        let (clock, model, mut vfs) = setup();
        for _ in 0..MAX_FDS {
            vfs.create("/tmp/a", &clock, &model).unwrap();
        }
        assert!(matches!(
            vfs.create("/tmp/a", &clock, &model).unwrap_err(),
            KernelError::ResourceExhausted { .. }
        ));
    }

    #[test]
    fn mounts_register() {
        let (clock, model, mut vfs) = setup();
        assert_eq!(vfs.mounts().len(), 1);
        vfs.mount(
            MountInfo {
                source: "proc".into(),
                target: "/proc".into(),
                fs_type: "procfs".into(),
            },
            &clock,
            &model,
        );
        assert_eq!(vfs.mounts().len(), 2);
    }
}
