use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use imagefmt::IoConn;
use simtime::{CostModel, SimClock};

use crate::gofer::FsServer;
use crate::net::{SockState, SocketTable};
use crate::syscalls::{SyscallClass, SyscallName};
use crate::tasks::TaskTable;
use crate::threads::SentryThreads;
use crate::timers::TimerTable;
use crate::vfs::Vfs;
use crate::KernelError;

/// A directory-cache entry (dentry), part of the checkpointed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dentry {
    /// Cached path.
    pub path: String,
    /// Inode number.
    pub inode: u64,
    /// Parent dentry index, if any.
    pub parent: Option<u32>,
}

/// An epoll instance watching guest descriptors (I/O state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpollInstance {
    /// Watched guest fds.
    pub watched: Vec<i32>,
}

/// A wait queue with blocked guest threads (non-I/O state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitQueue {
    /// Blocked thread ids.
    pub waiters: Vec<u32>,
}

/// Aggregate counters for a kernel instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Syscalls dispatched.
    pub syscalls: u64,
    /// Syscalls denied by template policy.
    pub denied: u64,
}

/// The guest kernel: every piece of system state a sandbox owns.
///
/// See the crate docs for the subsystem map. The kernel can run in
/// *template mode* (paper §4), where Table-1-denied syscalls error out so a
/// template sandbox cannot accumulate non-deterministic state.
#[derive(Debug)]
pub struct GuestKernel {
    /// Sandbox label.
    pub name: String,
    /// VFS: overlay rootfs, fd table, mounts.
    pub vfs: Vfs,
    /// Network endpoints.
    pub net: SocketTable,
    /// Kernel timers.
    pub timers: TimerTable,
    /// Guest tasks, sessions, namespaces.
    pub tasks: TaskTable,
    /// The sandbox process's own (Golang) threads.
    pub sentry_threads: SentryThreads,
    /// Dentry cache.
    pub dentries: Vec<Dentry>,
    /// Epoll instances.
    pub epolls: Vec<EpollInstance>,
    /// Wait queues.
    pub waitqueues: Vec<WaitQueue>,
    /// Opaque runtime objects (language runtime internals etc.).
    pub misc: Vec<Bytes>,
    template_mode: bool,
    stats: KernelStats,
}

impl GuestKernel {
    /// Boots a fresh guest kernel over the function's FS server, with the
    /// init task and the standard Sentry thread set.
    pub fn boot(
        name: impl Into<String>,
        fs: Arc<FsServer>,
        clock: &SimClock,
        model: &CostModel,
    ) -> GuestKernel {
        let mut tasks = TaskTable::new("wrapper");
        tasks.add_namespace("net", 0, clock, model);
        GuestKernel {
            name: name.into(),
            vfs: Vfs::new(fs),
            net: SocketTable::new(),
            timers: TimerTable::new(),
            tasks,
            sentry_threads: SentryThreads::standard(4, 1),
            dentries: Vec::new(),
            epolls: Vec::new(),
            waitqueues: Vec::new(),
            misc: Vec::new(),
            template_mode: false,
            stats: KernelStats::default(),
        }
    }

    /// An empty shell used by restore paths (subsystems filled from records).
    pub(crate) fn empty_shell(name: impl Into<String>, fs: Arc<FsServer>) -> GuestKernel {
        GuestKernel {
            name: name.into(),
            vfs: Vfs::new(fs),
            net: SocketTable::new(),
            timers: TimerTable::new(),
            tasks: TaskTable::empty(),
            sentry_threads: SentryThreads::standard(4, 1),
            dentries: Vec::new(),
            epolls: Vec::new(),
            waitqueues: Vec::new(),
            misc: Vec::new(),
            template_mode: false,
            stats: KernelStats::default(),
        }
    }

    /// Enables or disables template mode (denied syscalls error).
    pub fn set_template_mode(&mut self, on: bool) {
        self.template_mode = on;
    }

    /// True if in template mode.
    pub fn is_template(&self) -> bool {
        self.template_mode
    }

    /// Aggregate counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Policy gate: dispatchers call this before executing any syscall.
    ///
    /// # Errors
    ///
    /// [`KernelError::DeniedSyscall`] for Table-1-denied calls in template
    /// mode.
    pub fn check_syscall(&mut self, name: SyscallName) -> Result<(), KernelError> {
        self.stats.syscalls += 1;
        if self.template_mode && name.classify() == SyscallClass::Denied {
            self.stats.denied += 1;
            return Err(KernelError::DeniedSyscall {
                name: name.as_str(),
            });
        }
        Ok(())
    }

    /// Total checkpointable objects in the graph (the paper's "37 838
    /// objects" figure for SPECjbb is this count).
    pub fn object_count(&self) -> u64 {
        let t = &self.tasks;
        (t.tasks().len()
            + t.tasks().iter().map(|x| x.threads.len()).sum::<usize>()
            + t.sessions().len()
            + t.namespaces().len()
            + self.vfs.mounts().len()
            + self.dentries.len()
            + self.vfs.open_fds() * 2 // File + FdSlot records
            + self.net.len()
            + self.timers.len()
            + self.epolls.len()
            + self.waitqueues.len()
            + self.misc.len()) as u64
    }

    /// Count of objects representing I/O state (deferred by Catalyzer).
    pub fn io_object_count(&self) -> u64 {
        (self.vfs.open_fds() * 2 + self.net.len() + self.epolls.len()) as u64
    }

    /// Builds the I/O manifest for a checkpoint: every open file and socket,
    /// with the `used_immediately` hint from observed usage.
    pub fn io_manifest(&self) -> Vec<IoConn> {
        let mut conns = Vec::new();
        for (_, desc) in self.vfs.iter_fds() {
            conns.push(IoConn {
                kind: imagefmt::IoConnKind::File,
                target: desc.path.clone(),
                used_immediately: desc.used,
                writable: desc.writable,
            });
        }
        for sock in self.net.iter() {
            conns.push(IoConn {
                kind: imagefmt::IoConnKind::Socket,
                target: sock.addr.clone(),
                // Listeners must be ready the moment the handler runs;
                // outbound client connections reconnect lazily (§3.3).
                used_immediately: sock.state == SockState::Listening,
                writable: true,
            });
        }
        conns
    }

    /// Duplicates the whole guest kernel for `sfork` (paper §4): the VFS is
    /// cloned through the stateless overlay rootFS (read-only gofer fds
    /// inherited, writable grants re-granted), every other subsystem is
    /// duplicated verbatim — PID/USER namespaces make the child observe
    /// identical identities — and the Sentry thread set is carried over in
    /// its merged state for the caller to expand.
    ///
    /// Charges per-object bookkeeping for the kernel-side duplication (the
    /// memory itself is duplicated CoW by the address-space layer).
    pub fn sfork_clone(
        &self,
        child_name: impl Into<String>,
        clock: &SimClock,
        model: &CostModel,
    ) -> GuestKernel {
        // Kernel bookkeeping: O(objects) but with a tiny constant — the
        // structures are reference-counted or table-copied, not re-created.
        clock.charge(simtime::SimNanos::from_nanos(8).saturating_mul(self.object_count()));
        GuestKernel {
            name: child_name.into(),
            vfs: self.vfs.sfork_clone(clock, model),
            net: self.net.clone(),
            timers: self.timers.clone(),
            tasks: self.tasks.clone(),
            sentry_threads: self.sentry_threads.clone(),
            dentries: self.dentries.clone(),
            epolls: self.epolls.clone(),
            waitqueues: self.waitqueues.clone(),
            misc: self.misc.clone(),
            template_mode: false, // children serve requests
            stats: KernelStats::default(),
        }
    }

    /// Convenience for experiments: verifies the graph is internally
    /// consistent (thread/task links, epoll fd targets, session leaders).
    ///
    /// # Errors
    ///
    /// [`KernelError::CorruptGraph`] describing the first inconsistency.
    pub fn validate(&self) -> Result<(), KernelError> {
        for session in self.tasks.sessions() {
            if !self.tasks.tasks().iter().any(|t| t.pid == session.leader) {
                return Err(KernelError::CorruptGraph {
                    detail: format!("session {} leader {} missing", session.sid, session.leader),
                });
            }
        }
        for ep in &self.epolls {
            for fd in &ep.watched {
                if self.vfs.iter_fds().all(|(i, _)| i != *fd) {
                    return Err(KernelError::CorruptGraph {
                        detail: format!("epoll watches dead fd {fd}"),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for GuestKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {}: {} objects ({} io), {} tasks, {} fds, {} socks",
            self.name,
            self.object_count(),
            self.io_object_count(),
            self.tasks.tasks().len(),
            self.vfs.open_fds(),
            self.net.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimClock, CostModel, GuestKernel) {
        let clock = SimClock::new();
        let model = CostModel::experimental_machine();
        let fs = Arc::new(
            FsServer::builder("f")
                .file("/app/bin", b"x".to_vec())
                .build(),
        );
        let kernel = GuestKernel::boot("k", fs, &clock, &model);
        (clock, model, kernel)
    }

    #[test]
    fn boot_creates_baseline_graph() {
        let (_, _, k) = setup();
        assert!(k.object_count() > 0);
        assert_eq!(k.tasks.getpid(), 1);
        assert!(!k.is_template());
        k.validate().unwrap();
    }

    #[test]
    fn template_mode_denies_denied_syscalls() {
        let (_, _, mut k) = setup();
        k.check_syscall(SyscallName::Getpid).unwrap();
        k.check_syscall(SyscallName::Ptrace).unwrap(); // allowed outside template mode
        k.set_template_mode(true);
        k.check_syscall(SyscallName::Getpid).unwrap();
        assert!(matches!(
            k.check_syscall(SyscallName::Ptrace).unwrap_err(),
            KernelError::DeniedSyscall { name: "ptrace" }
        ));
        assert_eq!(k.stats().denied, 1);
        assert_eq!(k.stats().syscalls, 4);
    }

    #[test]
    fn object_count_tracks_subsystems() {
        let (clock, model, mut k) = setup();
        let before = k.object_count();
        let fd = k.vfs.open("/app/bin", false, &clock, &model).unwrap();
        k.net.socket(&clock, &model);
        k.timers
            .arm(simtime::SimNanos::from_secs(1), simtime::SimNanos::ZERO, 1);
        k.epolls.push(EpollInstance { watched: vec![fd] });
        k.misc.push(vec![1, 2, 3].into());
        // fd contributes 2 (File + FdSlot); socket, timer, epoll, misc 1 each.
        assert_eq!(k.object_count(), before + 6);
        assert_eq!(k.io_object_count(), 2 + 1 + 1);
        k.validate().unwrap();
    }

    #[test]
    fn io_manifest_reflects_usage() {
        let (clock, model, mut k) = setup();
        let fd = k.vfs.open("/app/bin", false, &clock, &model).unwrap();
        let sock = k.net.socket(&clock, &model);
        k.net.connect(sock, "db:1", &clock, &model).unwrap();
        let manifest = k.io_manifest();
        assert_eq!(manifest.len(), 2);
        assert!(!manifest[0].used_immediately, "file not read yet");
        k.vfs.read(fd, 1, &clock, &model).unwrap();
        let manifest = k.io_manifest();
        assert!(manifest[0].used_immediately);
        assert!(
            !manifest[1].used_immediately,
            "client connections reconnect lazily"
        );
        let listener = k.net.socket(&clock, &model);
        k.net
            .listen(listener, "0.0.0.0:80", &clock, &model)
            .unwrap();
        assert!(
            k.io_manifest()[2].used_immediately,
            "listeners are needed immediately"
        );
    }

    #[test]
    fn validate_catches_dead_epoll_target() {
        let (_, _, mut k) = setup();
        k.epolls.push(EpollInstance { watched: vec![42] });
        assert!(matches!(
            k.validate().unwrap_err(),
            KernelError::CorruptGraph { .. }
        ));
    }
}
