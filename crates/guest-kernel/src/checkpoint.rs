//! Checkpointing the guest-kernel object graph to [`imagefmt`] records, and
//! restoring it back.
//!
//! The checkpoint walks every subsystem and emits one [`ObjRecord`] per
//! kernel object, with real inter-object references (threads → task,
//! sessions → leader, fd slots → file descriptions, epolls → fd slots,
//! dentries → parent). For SPECjbb-class workloads this graph reaches tens
//! of thousands of objects — the restore cost the paper measures (§2.2).
//!
//! Restore supports both policies:
//!
//! - **eager I/O** (gVisor-restore): every file is re-opened and every
//!   socket reconnected on the critical path;
//! - **deferred I/O** (Catalyzer): descriptors and sockets are installed
//!   disconnected; reconnection happens on demand or from the I/O cache.

use std::collections::HashMap;
use std::sync::Arc;

use imagefmt::varint;
use imagefmt::{ImageError, ObjKind, ObjRecord};
use simtime::{CostModel, SimClock};

use crate::gofer::FsServer;
use crate::kernel::{Dentry, EpollInstance, GuestKernel, WaitQueue};
use crate::net::SockState;
use crate::tasks::{GuestThread, NamespaceInfo, Session, Task};
use crate::KernelError;

/// Length prefix for a collection. `usize` → `u64` cannot truncate on any
/// supported target; saturate rather than panic if it ever could.
fn len_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Encodes a guest fd for a checkpoint payload. Guest fds are never
/// negative; a hypothetical negative one encodes as 0 rather than
/// sign-extending into a huge u64.
fn fd_u64(fd: i32) -> u64 {
    u64::try_from(fd).unwrap_or(0)
}

impl GuestKernel {
    /// Serializes the kernel object graph into checkpoint records.
    ///
    /// Application memory is checkpointed separately (it lives in the
    /// sandbox's [`memsim::AddressSpace`]); combine both into an
    /// [`imagefmt::CheckpointSource`] at the sandbox layer.
    pub fn checkpoint_objects(&self) -> Vec<ObjRecord> {
        let mut out = Vec::with_capacity(usize::try_from(self.object_count()).unwrap_or(0));
        let mut next_id: u64 = 1;
        let mut id = || {
            let v = next_id;
            next_id += 1;
            v
        };

        // Pre-assign ids so references can point forward or backward.
        let mut task_ids: HashMap<u32, u64> = HashMap::new();
        let mut thread_ids: HashMap<u32, u64> = HashMap::new();
        for task in self.tasks.tasks() {
            task_ids.insert(task.pid, id());
            for th in &task.threads {
                thread_ids.insert(th.tid, id());
            }
        }
        let session_ids: Vec<u64> = self.tasks.sessions().iter().map(|_| id()).collect();
        let ns_ids: Vec<u64> = self.tasks.namespaces().iter().map(|_| id()).collect();
        let mount_ids: Vec<u64> = self.vfs.mounts().iter().map(|_| id()).collect();
        let dentry_ids: Vec<u64> = self.dentries.iter().map(|_| id()).collect();
        let timer_ids: Vec<u64> = self.timers.iter().map(|_| id()).collect();
        let wq_ids: Vec<u64> = self.waitqueues.iter().map(|_| id()).collect();
        let misc_ids: Vec<u64> = self.misc.iter().map(|_| id()).collect();
        let fds: Vec<(i32, crate::vfs::FileDesc)> =
            self.vfs.iter_fds().map(|(fd, d)| (fd, d.clone())).collect();
        let file_ids: Vec<u64> = fds.iter().map(|_| id()).collect();
        let fdslot_ids: Vec<u64> = fds.iter().map(|_| id()).collect();
        let mut fdslot_by_fd: HashMap<i32, u64> = HashMap::new();
        for ((fd, _), slot_id) in fds.iter().zip(&fdslot_ids) {
            fdslot_by_fd.insert(*fd, *slot_id);
        }
        let sock_ids: HashMap<u64, u64> = self.net.iter().map(|s| (s.id, id())).collect();
        let epoll_ids: Vec<u64> = self.epolls.iter().map(|_| id()).collect();

        // --- tasks + threads ---
        for task in self.tasks.tasks() {
            // Ids were assigned from this same iteration just above; a miss
            // is impossible, but the checkpoint writer must not panic.
            let Some(&task_id) = task_ids.get(&task.pid) else {
                continue;
            };
            let mut payload = Vec::new();
            varint::put_u64(&mut payload, u64::from(task.pid));
            varint::put_u64(&mut payload, u64::from(task.ppid));
            varint::put_u64(&mut payload, u64::from(task.sid));
            varint::put_bytes(&mut payload, task.name.as_bytes());
            let refs = task
                .threads
                .iter()
                .filter_map(|t| thread_ids.get(&t.tid).copied())
                .collect();
            out.push(ObjRecord::new(task_id, ObjKind::Task, 0, refs, payload));
            for th in &task.threads {
                let Some(&thread_id) = thread_ids.get(&th.tid) else {
                    continue;
                };
                let mut p = Vec::new();
                varint::put_u64(&mut p, u64::from(th.tid));
                varint::put_u64(&mut p, th.context);
                varint::put_u64(&mut p, th.blocked_on.map(|b| b + 1).unwrap_or(0));
                varint::put_u64(&mut p, u64::from(task.pid));
                out.push(ObjRecord::new(
                    thread_id,
                    ObjKind::Thread,
                    0,
                    vec![task_id],
                    p,
                ));
            }
        }
        // --- sessions ---
        for (session, sid_id) in self.tasks.sessions().iter().zip(&session_ids) {
            let mut p = Vec::new();
            varint::put_u64(&mut p, u64::from(session.sid));
            varint::put_u64(&mut p, u64::from(session.leader));
            let refs = task_ids.get(&session.leader).copied().into_iter().collect();
            out.push(ObjRecord::new(*sid_id, ObjKind::Session, 0, refs, p));
        }
        // --- namespaces ---
        for (ns, ns_id) in self.tasks.namespaces().iter().zip(&ns_ids) {
            let mut p = Vec::new();
            varint::put_bytes(&mut p, ns.kind.as_bytes());
            varint::put_u64(&mut p, u64::from(ns.init_id));
            out.push(ObjRecord::new(*ns_id, ObjKind::Namespace, 0, vec![], p));
        }
        // --- mounts ---
        for (m, m_id) in self.vfs.mounts().iter().zip(&mount_ids) {
            let mut p = Vec::new();
            varint::put_bytes(&mut p, m.source.as_bytes());
            varint::put_bytes(&mut p, m.target.as_bytes());
            varint::put_bytes(&mut p, m.fs_type.as_bytes());
            out.push(ObjRecord::new(*m_id, ObjKind::Mount, 0, vec![], p));
        }
        // --- dentries ---
        for (d, d_id) in self.dentries.iter().zip(&dentry_ids) {
            let mut p = Vec::new();
            varint::put_bytes(&mut p, d.path.as_bytes());
            varint::put_u64(&mut p, d.inode);
            varint::put_u64(&mut p, d.parent.map(|x| u64::from(x) + 1).unwrap_or(0));
            let refs = d
                .parent
                .and_then(|i| usize::try_from(i).ok())
                .and_then(|i| dentry_ids.get(i).copied())
                .into_iter()
                .collect();
            out.push(ObjRecord::new(*d_id, ObjKind::Dentry, 0, refs, p));
        }
        // --- timers ---
        for (t, t_id) in self.timers.iter().zip(&timer_ids) {
            let mut p = Vec::new();
            varint::put_u64(&mut p, t.deadline.as_nanos());
            varint::put_u64(&mut p, t.period.as_nanos());
            varint::put_u64(&mut p, u64::from(t.owner_pid));
            let refs = task_ids.get(&t.owner_pid).copied().into_iter().collect();
            out.push(ObjRecord::new(*t_id, ObjKind::Timer, 0, refs, p));
        }
        // --- wait queues ---
        for (wq, wq_id) in self.waitqueues.iter().zip(&wq_ids) {
            let mut p = Vec::new();
            varint::put_u64(&mut p, len_u64(wq.waiters.len()));
            for w in &wq.waiters {
                varint::put_u64(&mut p, u64::from(*w));
            }
            let refs = wq
                .waiters
                .iter()
                .filter_map(|w| thread_ids.get(w).copied())
                .collect();
            out.push(ObjRecord::new(*wq_id, ObjKind::WaitQueue, 0, refs, p));
        }
        // --- misc runtime objects ---
        for (blob, m_id) in self.misc.iter().zip(&misc_ids) {
            out.push(ObjRecord::new(
                *m_id,
                ObjKind::Misc,
                0,
                vec![],
                blob.clone(),
            ));
        }
        // --- files + fd slots (I/O state) ---
        for (((fd, desc), f_id), s_id) in fds.iter().zip(&file_ids).zip(&fdslot_ids) {
            let mut p = Vec::new();
            varint::put_bytes(&mut p, desc.path.as_bytes());
            varint::put_u64(&mut p, desc.offset);
            let flags = u32::from(desc.writable) | (u32::from(desc.used) << 1);
            out.push(ObjRecord::new(*f_id, ObjKind::File, flags, vec![], p));
            let mut sp = Vec::new();
            varint::put_u64(&mut sp, fd_u64(*fd));
            out.push(ObjRecord::new(*s_id, ObjKind::FdSlot, 0, vec![*f_id], sp));
        }
        // --- sockets ---
        for sock in self.net.iter() {
            let Some(&sock_id) = sock_ids.get(&sock.id) else {
                continue;
            };
            let mut p = Vec::new();
            varint::put_bytes(&mut p, sock.addr.as_bytes());
            varint::put_u64(
                &mut p,
                match sock.state {
                    SockState::Created => 0,
                    SockState::Listening => 1,
                    SockState::Connected => 2,
                },
            );
            out.push(ObjRecord::new(sock_id, ObjKind::Socket, 0, vec![], p));
        }
        // --- epolls ---
        for (ep, e_id) in self.epolls.iter().zip(&epoll_ids) {
            let mut p = Vec::new();
            varint::put_u64(&mut p, len_u64(ep.watched.len()));
            let mut refs = Vec::new();
            for fd in &ep.watched {
                varint::put_u64(&mut p, fd_u64(*fd));
                if let Some(slot) = fdslot_by_fd.get(fd) {
                    refs.push(*slot);
                }
            }
            out.push(ObjRecord::new(*e_id, ObjKind::Epoll, 0, refs, p));
        }
        out
    }

    /// Rebuilds a kernel from checkpoint records.
    ///
    /// Charges [`simtime::ObjectCosts::recover_per_object_non_io`] for every
    /// non-I/O object (the paper's "Recover Kernel" redo work). With
    /// `eager_io`, every file is re-opened and every socket reconnected on
    /// the spot (gVisor-restore); otherwise I/O state is installed
    /// disconnected for on-demand reconnection (Catalyzer).
    ///
    /// # Errors
    ///
    /// [`KernelError::CorruptGraph`] on malformed payloads or dangling
    /// references.
    pub fn restore_from_records(
        name: impl Into<String>,
        records: &[ObjRecord],
        fs: Arc<FsServer>,
        eager_io: bool,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<GuestKernel, KernelError> {
        let bad = |detail: String| KernelError::CorruptGraph { detail };
        let imgerr = |e: ImageError| KernelError::CorruptGraph {
            detail: format!("payload: {e}"),
        };
        // Typed narrowing for untrusted payload fields: out-of-range values
        // are corrupt input, not a reason to panic.
        let u32_of = |v: u64, what: &str| {
            u32::try_from(v).map_err(|_| bad(format!("{what} {v} out of u32 range")))
        };
        let usize_of = |v: u64, what: &str| {
            usize::try_from(v).map_err(|_| bad(format!("{what} {v} out of usize range")))
        };
        let i32_of = |v: u64, what: &str| {
            i32::try_from(v).map_err(|_| bad(format!("{what} {v} out of i32 range")))
        };
        // Validates in place; the single unavoidable copy builds the owned
        // String, with no intermediate Vec.
        let str_of = |b: &[u8], what: &str| {
            std::str::from_utf8(b)
                .map(str::to_string)
                .map_err(|_| bad(format!("{what} not utf-8")))
        };

        let mut kernel = GuestKernel::empty_shell(name, fs);
        // The root mount is re-created by Vfs::new; drop it so the restored
        // mount table matches the checkpoint exactly.
        let mut restored_mounts = Vec::new();
        let mut tasks_by_pid: HashMap<u32, Task> = HashMap::new();
        let mut task_order: Vec<u32> = Vec::new();
        let mut restored_fds: Vec<(String, bool, u64, bool)> = Vec::new();

        let mut non_io_objects: u64 = 0;
        for rec in records {
            let p = &rec.payload;
            let mut pos = 0usize;
            if !rec.kind.is_io_state() {
                non_io_objects += 1;
            }
            match rec.kind {
                ObjKind::Task => {
                    let pid = u32_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "task pid")?;
                    let ppid = u32_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "task ppid")?;
                    let sid = u32_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "task sid")?;
                    let name =
                        str_of(varint::get_bytes(p, &mut pos).map_err(imgerr)?, "task name")?;
                    tasks_by_pid.insert(
                        pid,
                        Task {
                            pid,
                            ppid,
                            name,
                            threads: Vec::new(),
                            sid,
                        },
                    );
                    task_order.push(pid);
                }
                ObjKind::Thread => {
                    let tid = u32_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "thread tid")?;
                    let context = varint::get_u64(p, &mut pos).map_err(imgerr)?;
                    let blocked = varint::get_u64(p, &mut pos).map_err(imgerr)?;
                    let task_pid =
                        u32_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "thread task")?;
                    let task = tasks_by_pid.get_mut(&task_pid).ok_or_else(|| {
                        bad(format!("thread {tid} references missing task {task_pid}"))
                    })?;
                    task.threads.push(GuestThread {
                        tid,
                        context,
                        blocked_on: if blocked == 0 {
                            None
                        } else {
                            Some(blocked - 1)
                        },
                    });
                }
                ObjKind::Session => {
                    let sid = u32_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "session sid")?;
                    let leader = u32_of(
                        varint::get_u64(p, &mut pos).map_err(imgerr)?,
                        "session leader",
                    )?;
                    kernel
                        .tasks
                        .install_restored_session(Session { sid, leader });
                }
                ObjKind::Namespace => {
                    let kind = str_of(varint::get_bytes(p, &mut pos).map_err(imgerr)?, "ns kind")?;
                    let init_id =
                        u32_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "ns init id")?;
                    kernel
                        .tasks
                        .install_restored_namespace(NamespaceInfo { kind, init_id });
                }
                ObjKind::Mount => {
                    let read = |pos: &mut usize| -> Result<String, KernelError> {
                        str_of(varint::get_bytes(p, pos).map_err(imgerr)?, "mount field")
                    };
                    restored_mounts.push(crate::vfs::MountInfo {
                        source: read(&mut pos)?,
                        target: read(&mut pos)?,
                        fs_type: read(&mut pos)?,
                    });
                }
                ObjKind::Dentry => {
                    let path = str_of(
                        varint::get_bytes(p, &mut pos).map_err(imgerr)?,
                        "dentry path",
                    )?;
                    let inode = varint::get_u64(p, &mut pos).map_err(imgerr)?;
                    let parent = varint::get_u64(p, &mut pos).map_err(imgerr)?;
                    kernel.dentries.push(Dentry {
                        path,
                        inode,
                        parent: if parent == 0 {
                            None
                        } else {
                            Some(u32_of(parent - 1, "dentry parent")?)
                        },
                    });
                }
                ObjKind::Timer => {
                    let deadline = varint::get_u64(p, &mut pos).map_err(imgerr)?;
                    let period = varint::get_u64(p, &mut pos).map_err(imgerr)?;
                    let owner =
                        u32_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "timer owner")?;
                    kernel.timers.install_restored(
                        simtime::SimNanos::from_nanos(deadline),
                        simtime::SimNanos::from_nanos(period),
                        owner,
                    );
                }
                ObjKind::WaitQueue => {
                    let n = usize_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "wq count")?;
                    // Capacity is clamped: a corrupt count fails at the first
                    // missing varint instead of reserving gigabytes.
                    let mut waiters = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        waiters.push(u32_of(
                            varint::get_u64(p, &mut pos).map_err(imgerr)?,
                            "wq waiter",
                        )?);
                    }
                    kernel.waitqueues.push(WaitQueue { waiters });
                }
                ObjKind::Misc => {
                    kernel.misc.push(rec.payload.clone());
                }
                ObjKind::File => {
                    let path =
                        str_of(varint::get_bytes(p, &mut pos).map_err(imgerr)?, "file path")?;
                    let offset = varint::get_u64(p, &mut pos).map_err(imgerr)?;
                    let writable = rec.flags & 1 != 0;
                    let used = rec.flags & 2 != 0;
                    restored_fds.push((path, writable, offset, used));
                }
                ObjKind::FdSlot => { /* slot numbering is restored via order */ }
                ObjKind::Socket => {
                    let addr = str_of(
                        varint::get_bytes(p, &mut pos).map_err(imgerr)?,
                        "socket addr",
                    )?;
                    let state = match varint::get_u64(p, &mut pos).map_err(imgerr)? {
                        0 => SockState::Created,
                        1 => SockState::Listening,
                        2 => SockState::Connected,
                        other => return Err(bad(format!("socket state {other}"))),
                    };
                    kernel.net.install_restored(&addr, state);
                }
                ObjKind::Epoll => {
                    let n = usize_of(varint::get_u64(p, &mut pos).map_err(imgerr)?, "epoll count")?;
                    let mut watched = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        watched.push(i32_of(
                            varint::get_u64(p, &mut pos).map_err(imgerr)?,
                            "epoll fd",
                        )?);
                    }
                    kernel.epolls.push(EpollInstance { watched });
                }
                ObjKind::MemRegion => { /* memory is restored via the EPT */ }
            }
        }

        for pid in task_order {
            let task = tasks_by_pid
                .remove(&pid)
                .ok_or_else(|| bad(format!("task {pid} appears twice in the checkpoint")))?;
            kernel.tasks.install_restored_task(task);
        }
        if !restored_mounts.is_empty() {
            kernel.vfs.set_mounts(restored_mounts);
        }
        for (path, writable, offset, _used) in &restored_fds {
            kernel
                .vfs
                .install_restored_fd(path, *writable, *offset)
                .map_err(|e| bad(format!("fd install: {e}")))?;
        }

        // Non-I/O system state re-establishment on the critical path.
        clock.charge(
            model
                .obj
                .recover_per_object_non_io
                .saturating_mul(non_io_objects),
        );

        if eager_io {
            // gVisor-restore: re-do every I/O connection now.
            let fds: Vec<i32> = kernel.vfs.iter_fds().map(|(fd, _)| fd).collect();
            for fd in fds {
                kernel
                    .vfs
                    .ensure_connected(fd, clock, model)
                    .map_err(|e| bad(format!("eager reconnect fd {fd}: {e}")))?;
            }
            let socks: Vec<u64> = kernel.net.iter().map(|s| s.id).collect();
            for s in socks {
                kernel
                    .net
                    .ensure_connected(s, clock, model)
                    .map_err(|e| bad(format!("eager reconnect sock {s}: {e}")))?;
            }
        }
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::GraphSpec;
    use simtime::SimNanos;

    fn test_fs() -> Arc<FsServer> {
        Arc::new(
            FsServer::builder("f")
                .synthetic_tree("/lib", 8, 64)
                .file("/app/bin", b"bin".to_vec())
                .persistent("/var/log/app.log")
                .build(),
        )
    }

    fn build_kernel() -> (SimClock, CostModel, GuestKernel) {
        let clock = SimClock::new();
        let model = CostModel::experimental_machine();
        let mut k = GuestKernel::boot("orig", test_fs(), &clock, &model);
        GraphSpec {
            extra_tasks: 3,
            threads_per_task: 2,
            dentries: 20,
            open_files: 5,
            sockets: 3,
            timers: 4,
            waitqueues: 2,
            epolls: 1,
            misc_objects: 10,
            misc_payload: 24,
        }
        .populate(&mut k, &clock, &model)
        .unwrap();
        (clock, model, k)
    }

    #[test]
    fn checkpoint_emits_full_graph() {
        let (_, _, k) = build_kernel();
        let records = k.checkpoint_objects();
        assert_eq!(records.len() as u64, k.object_count());
        // Ids are unique.
        let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), records.len());
        // Every ref points at an existing id.
        let idset: std::collections::HashSet<u64> = ids.into_iter().collect();
        for r in &records {
            for target in &r.refs {
                assert!(idset.contains(target), "dangling ref in {:?}", r.kind);
            }
        }
    }

    #[test]
    fn restore_round_trips_state() {
        let (clock, model, k) = build_kernel();
        let records = k.checkpoint_objects();
        let restored =
            GuestKernel::restore_from_records("copy", &records, test_fs(), false, &clock, &model)
                .unwrap();
        assert_eq!(restored.object_count(), k.object_count());
        assert_eq!(restored.tasks.tasks().len(), k.tasks.tasks().len());
        assert_eq!(restored.tasks.thread_count(), k.tasks.thread_count());
        assert_eq!(restored.timers.len(), k.timers.len());
        assert_eq!(restored.net.len(), k.net.len());
        assert_eq!(restored.vfs.open_fds(), k.vfs.open_fds());
        assert_eq!(restored.vfs.mounts(), k.vfs.mounts());
        assert_eq!(restored.dentries, k.dentries);
        assert_eq!(restored.misc, k.misc);
        // Re-checkpointing yields the identical record stream.
        assert_eq!(restored.checkpoint_objects(), records);
    }

    #[test]
    fn deferred_io_restores_disconnected() {
        let (clock, model, k) = build_kernel();
        let records = k.checkpoint_objects();
        let opens_before = {
            let fs = test_fs();
            let restored = GuestKernel::restore_from_records(
                "c",
                &records,
                Arc::clone(&fs),
                false,
                &clock,
                &model,
            )
            .unwrap();
            assert!(restored.vfs.iter_fds().all(|(_, d)| !d.connected));
            fs.opens_served()
        };
        assert_eq!(opens_before, 0, "deferred restore must not open files");
    }

    #[test]
    fn eager_io_reconnects_everything_and_costs_more() {
        let (_, model, k) = build_kernel();
        let records = k.checkpoint_objects();

        let lazy_clock = SimClock::new();
        GuestKernel::restore_from_records("l", &records, test_fs(), false, &lazy_clock, &model)
            .unwrap();

        let eager_clock = SimClock::new();
        let fs = test_fs();
        let restored = GuestKernel::restore_from_records(
            "e",
            &records,
            Arc::clone(&fs),
            true,
            &eager_clock,
            &model,
        )
        .unwrap();
        assert!(restored.vfs.iter_fds().all(|(_, d)| d.connected));
        assert!(fs.opens_served() > 0);
        assert!(
            eager_clock.now() > lazy_clock.now() + SimNanos::from_micros(100),
            "eager {} vs lazy {}",
            eager_clock.now(),
            lazy_clock.now()
        );
    }

    #[test]
    fn corrupt_thread_reference_rejected() {
        let (clock, model, k) = build_kernel();
        let mut records = k.checkpoint_objects();
        // Point a thread at a nonexistent task pid.
        let thread = records
            .iter_mut()
            .find(|r| r.kind == ObjKind::Thread)
            .expect("has threads");
        let mut p = Vec::new();
        varint::put_u64(&mut p, 999);
        varint::put_u64(&mut p, 0);
        varint::put_u64(&mut p, 0);
        varint::put_u64(&mut p, 4242); // missing task
        thread.payload = p.into();
        assert!(matches!(
            GuestKernel::restore_from_records("x", &records, test_fs(), false, &clock, &model),
            Err(KernelError::CorruptGraph { .. })
        ));
    }

    #[test]
    fn restore_cost_scales_with_non_io_objects() {
        let (_, model, k) = build_kernel();
        let records = k.checkpoint_objects();
        let clock = SimClock::new();
        GuestKernel::restore_from_records("c", &records, test_fs(), false, &clock, &model).unwrap();
        let non_io = records.iter().filter(|r| !r.kind.is_io_state()).count() as u64;
        let floor = model.obj.recover_per_object_non_io.saturating_mul(non_io);
        assert!(clock.now() >= floor);
    }
}
