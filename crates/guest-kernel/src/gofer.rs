//! The FS server ("Gofer") companion process.
//!
//! In gVisor, the Sentry never touches host files directly: a per-sandbox
//! Gofer process opens files on its behalf and passes descriptors back over
//! RPC. Catalyzer makes the FS server *per-function* and read-only (paper
//! §4.2): sandboxes receive read-only descriptors for rootfs content and may
//! be granted a small number of writable descriptors for persistent files
//! (e.g. logs).

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use simtime::{CostModel, SimClock};

use crate::KernelError;

/// A descriptor granted by the FS server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoferFd {
    /// Server-side id.
    pub id: u64,
    /// Path within the function rootfs.
    pub path: String,
    /// Whether the grant allows writes (only persistent grants do).
    pub writable: bool,
}

/// Per-function FS server holding the real rootfs contents.
///
/// Shared (`Arc`) among every sandbox of the function; read-only grants are
/// safe to inherit across `sfork` because the server content never mutates
/// (writes go to the per-sandbox in-memory overlay, or to explicit persistent
/// grants).
pub struct FsServer {
    function: String,
    files: BTreeMap<String, Bytes>,
    persistent: HashSet<String>,
    next_fd: AtomicU64,
    opens: AtomicU64,
}

/// Builder for [`FsServer`].
#[derive(Debug, Default)]
pub struct FsServerBuilder {
    function: String,
    files: BTreeMap<String, Bytes>,
    persistent: HashSet<String>,
}

impl FsServerBuilder {
    /// Adds a rootfs file.
    pub fn file(mut self, path: impl Into<String>, data: impl Into<Bytes>) -> Self {
        self.files.insert(path.into(), data.into());
        self
    }

    /// Adds `count` synthetic library files of `size` bytes each under `dir`
    /// (used to populate realistic rootfs shapes for runtimes).
    pub fn synthetic_tree(mut self, dir: &str, count: usize, size: usize) -> Self {
        for i in 0..count {
            let path = format!("{dir}/lib{i:04}.so");
            let fill = (i % 251) as u8;
            self.files.insert(path, Bytes::from(vec![fill; size]));
        }
        self
    }

    /// Marks a path as persistent (writable grants allowed, e.g. a log file).
    /// Creates it empty if absent.
    pub fn persistent(mut self, path: impl Into<String>) -> Self {
        let path = path.into();
        self.files.entry(path.clone()).or_default();
        self.persistent.insert(path);
        self
    }

    /// Finishes the server.
    pub fn build(self) -> FsServer {
        FsServer {
            function: self.function,
            files: self.files,
            persistent: self.persistent,
            next_fd: AtomicU64::new(1),
            opens: AtomicU64::new(0),
        }
    }
}

impl FsServer {
    /// Starts building a server for `function`.
    pub fn builder(function: impl Into<String>) -> FsServerBuilder {
        FsServerBuilder {
            function: function.into(),
            ..FsServerBuilder::default()
        }
    }

    /// The function this server belongs to.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// Number of rootfs files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total `open` RPCs served (drives Fig. 12's I/O bar).
    pub fn opens_served(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// True if `path` exists in the rootfs.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// File size, if it exists.
    pub fn size_of(&self, path: &str) -> Option<u64> {
        self.files.get(path).map(|b| b.len() as u64)
    }

    /// Opens `path` read-only, charging one gofer RPC plus the host `open`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoEntry`] if the path does not exist.
    pub fn open(
        &self,
        path: &str,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<GoferFd, KernelError> {
        if !self.files.contains_key(path) {
            // Even a failed lookup costs the RPC round trip.
            clock.charge(model.io.gofer_rpc);
            return Err(KernelError::NoEntry { path: path.into() });
        }
        clock.charge(model.io.gofer_rpc + model.io.open_file);
        self.opens.fetch_add(1, Ordering::Relaxed);
        Ok(GoferFd {
            id: self.next_fd.fetch_add(1, Ordering::Relaxed),
            path: path.into(),
            writable: false,
        })
    }

    /// Grants a writable descriptor for a persistent path (paper §4.2:
    /// "Catalyzer allows the FS server to grant some file descriptors of the
    /// log files with the read/write permission").
    ///
    /// # Errors
    ///
    /// [`KernelError::NoEntry`] if absent, [`KernelError::ReadOnly`] if the
    /// path was not marked persistent.
    pub fn grant_persistent(
        &self,
        path: &str,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<GoferFd, KernelError> {
        if !self.files.contains_key(path) {
            return Err(KernelError::NoEntry { path: path.into() });
        }
        if !self.persistent.contains(path) {
            return Err(KernelError::ReadOnly { fd: -1 });
        }
        clock.charge(model.io.gofer_rpc + model.io.open_file);
        self.opens.fetch_add(1, Ordering::Relaxed);
        Ok(GoferFd {
            id: self.next_fd.fetch_add(1, Ordering::Relaxed),
            path: path.into(),
            writable: true,
        })
    }

    /// Reads up to `len` bytes at `offset`, charging the RPC and transfer.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoEntry`] if the grant's path has vanished (never
    /// happens for well-formed grants; guards corrupted restores).
    pub fn read(
        &self,
        fd: &GoferFd,
        offset: u64,
        len: usize,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<Bytes, KernelError> {
        let data = self
            .files
            .get(&fd.path)
            .ok_or_else(|| KernelError::NoEntry {
                path: fd.path.clone(),
            })?;
        clock.charge(model.io.gofer_rpc);
        let start = (offset as usize).min(data.len());
        let end = (start + len).min(data.len());
        clock.charge(model.memcpy((end - start) as u64));
        Ok(data.slice(start..end))
    }

    /// Lists rootfs paths (deterministic order).
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }
}

impl fmt::Debug for FsServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FsServer")
            .field("function", &self.function)
            .field("files", &self.files.len())
            .field("persistent", &self.persistent.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::SimNanos;

    fn setup() -> (SimClock, CostModel) {
        (SimClock::new(), CostModel::experimental_machine())
    }

    fn server() -> FsServer {
        FsServer::builder("f")
            .file("/app/bin", b"code".to_vec())
            .persistent("/var/log/app.log")
            .synthetic_tree("/lib", 3, 128)
            .build()
    }

    #[test]
    fn open_and_read() {
        let (clock, model) = setup();
        let s = server();
        let fd = s.open("/app/bin", &clock, &model).unwrap();
        assert!(!fd.writable);
        let data = s.read(&fd, 0, 4, &clock, &model).unwrap();
        assert_eq!(&data[..], b"code");
        assert_eq!(s.opens_served(), 1);
        assert!(clock.now() > SimNanos::ZERO);
    }

    #[test]
    fn missing_path_is_noentry_but_charges_rpc() {
        let (clock, model) = setup();
        let s = server();
        let err = s.open("/nope", &clock, &model).unwrap_err();
        assert!(matches!(err, KernelError::NoEntry { .. }));
        assert_eq!(clock.now(), model.io.gofer_rpc);
    }

    #[test]
    fn persistent_grant_rules() {
        let (clock, model) = setup();
        let s = server();
        let log = s
            .grant_persistent("/var/log/app.log", &clock, &model)
            .unwrap();
        assert!(log.writable);
        // Non-persistent paths cannot be granted writable.
        assert!(matches!(
            s.grant_persistent("/app/bin", &clock, &model).unwrap_err(),
            KernelError::ReadOnly { .. }
        ));
        assert!(matches!(
            s.grant_persistent("/missing", &clock, &model).unwrap_err(),
            KernelError::NoEntry { .. }
        ));
    }

    #[test]
    fn synthetic_tree_populates() {
        let s = server();
        assert!(s.exists("/lib/lib0000.so"));
        assert!(s.exists("/lib/lib0002.so"));
        assert_eq!(s.size_of("/lib/lib0001.so"), Some(128));
        assert_eq!(s.file_count(), 5);
    }

    #[test]
    fn read_clamps_to_file_end() {
        let (clock, model) = setup();
        let s = server();
        let fd = s.open("/app/bin", &clock, &model).unwrap();
        let data = s.read(&fd, 2, 100, &clock, &model).unwrap();
        assert_eq!(&data[..], b"de");
        let empty = s.read(&fd, 99, 10, &clock, &model).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn fd_ids_are_unique() {
        let (clock, model) = setup();
        let s = server();
        let a = s.open("/app/bin", &clock, &model).unwrap();
        let b = s.open("/app/bin", &clock, &model).unwrap();
        assert_ne!(a.id, b.id);
    }
}
