//! A gVisor-Sentry-like guest kernel for the Catalyzer reproduction.
//!
//! gVisor runs each sandbox as a user-space kernel (the *Sentry*) plus an I/O
//! companion process (the *Gofer*). The Sentry owns all guest system state —
//! tasks, threads, mounts, dentries, open files, sockets, timers, sessions,
//! namespaces — and it is exactly this state (37 838 objects for SPECjbb,
//! paper §2.2) that checkpoint/restore must persist and re-establish.
//!
//! This crate provides:
//!
//! - [`GuestKernel`]: the typed object graph plus live subsystems
//!   ([`vfs`], [`net`], [`timers`], [`tasks`]) driven through a
//!   [`SyscallInvocation`] dispatcher with per-call cost accounting;
//! - [`gofer::FsServer`]: the per-function FS server backing the overlay
//!   rootfs (paper §4.2) with read-only fd grants and write-through log fds;
//! - [`threads::SentryThreads`]: the sandbox process's own (Golang) thread
//!   set with the *transient single-thread* merge/expand protocol (§4.1);
//! - [`syscalls::classify`]: the paper's Table 1 — which syscalls are
//!   allowed, handled, or denied in a template sandbox;
//! - checkpoint/restore to and from [`imagefmt`] object records, with
//!   deferred (on-demand) I/O reconnection (§3.3).
//!
//! # Example
//!
//! ```
//! use guest_kernel::{gofer::FsServer, GuestKernel};
//! use simtime::{CostModel, SimClock};
//! use std::sync::Arc;
//!
//! let model = CostModel::experimental_machine();
//! let clock = SimClock::new();
//! let fs = FsServer::builder("demo-fn")
//!     .file("/app/handler.bin", b"elf".to_vec())
//!     .build();
//! let mut kernel = GuestKernel::boot("demo", Arc::new(fs), &clock, &model);
//! let fd = kernel.vfs.open("/app/handler.bin", false, &clock, &model)?;
//! let data = kernel.vfs.read(fd, 3, &clock, &model)?;
//! assert_eq!(&data[..], b"elf");
//! # Ok::<(), guest_kernel::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod checkpoint;
mod dispatch;
mod error;
pub mod gofer;
mod kernel;
pub mod net;
pub mod synth;
pub mod syscalls;
pub mod tasks;
pub mod threads;
pub mod timers;
pub mod vfs;

pub use dispatch::{SyscallInvocation, SyscallRet};
pub use error::KernelError;
pub use kernel::{GuestKernel, KernelStats};
pub use synth::GraphSpec;
