//! Guest network endpoints.
//!
//! Sockets are I/O system state: after a restore they exist but are
//! disconnected until re-established (eagerly by gVisor-restore, lazily or
//! via the I/O cache by Catalyzer — paper §3.3).

use simtime::{CostModel, SimClock};

use crate::KernelError;

/// Socket lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockState {
    /// Created, unbound.
    Created,
    /// Listening on an address.
    Listening,
    /// Connected to a peer.
    Connected,
}

/// One guest socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Socket {
    /// Socket id within the table.
    pub id: u64,
    /// Bound / peer address.
    pub addr: String,
    /// Lifecycle state.
    pub state: SockState,
    /// False right after restore until reconnected.
    pub connected_to_host: bool,
}

/// The guest socket table.
#[derive(Debug, Default, Clone)]
pub struct SocketTable {
    socks: Vec<Option<Socket>>,
    reconnects: u64,
}

impl SocketTable {
    /// Creates an empty table.
    pub fn new() -> SocketTable {
        SocketTable::default()
    }

    /// Number of live sockets.
    pub fn len(&self) -> usize {
        self.socks.iter().flatten().count()
    }

    /// True if no sockets are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-demand socket reconnections performed.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn push(&mut self, mut sock: Socket) -> u64 {
        let id = self.socks.len() as u64;
        sock.id = id;
        self.socks.push(Some(sock));
        id
    }

    /// Creates a socket.
    pub fn socket(&mut self, clock: &SimClock, model: &CostModel) -> u64 {
        clock.charge(model.host.syscall_base);
        self.push(Socket {
            id: 0,
            addr: String::new(),
            state: SockState::Created,
            connected_to_host: true,
        })
    }

    fn get_mut(&mut self, id: u64) -> Result<&mut Socket, KernelError> {
        self.socks
            .get_mut(id as usize)
            .and_then(Option::as_mut)
            .ok_or(KernelError::BadSocketState { sock: id })
    }

    /// Looks up a socket.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSocketState`] for a dead id.
    pub fn get(&self, id: u64) -> Result<&Socket, KernelError> {
        self.socks
            .get(id as usize)
            .and_then(Option::as_ref)
            .ok_or(KernelError::BadSocketState { sock: id })
    }

    /// Starts listening on `addr`.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSocketState`] if not in `Created` state.
    pub fn listen(
        &mut self,
        id: u64,
        addr: &str,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), KernelError> {
        clock.charge(model.host.syscall_base);
        let sock = self.get_mut(id)?;
        if sock.state != SockState::Created {
            return Err(KernelError::BadSocketState { sock: id });
        }
        sock.addr = addr.into();
        sock.state = SockState::Listening;
        Ok(())
    }

    /// Connects to a peer.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSocketState`] if not in `Created` state.
    pub fn connect(
        &mut self,
        id: u64,
        addr: &str,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), KernelError> {
        clock.charge(model.host.syscall_base + model.io.reconnect_socket);
        let sock = self.get_mut(id)?;
        if sock.state != SockState::Created {
            return Err(KernelError::BadSocketState { sock: id });
        }
        sock.addr = addr.into();
        sock.state = SockState::Connected;
        Ok(())
    }

    /// Accepts a connection on a listening socket, producing a new connected
    /// socket.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSocketState`] if not listening.
    pub fn accept(
        &mut self,
        id: u64,
        peer: &str,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<u64, KernelError> {
        clock.charge(model.host.syscall_base);
        let state = self.get(id)?.state;
        if state != SockState::Listening {
            return Err(KernelError::BadSocketState { sock: id });
        }
        Ok(self.push(Socket {
            id: 0,
            addr: peer.into(),
            state: SockState::Connected,
            connected_to_host: true,
        }))
    }

    /// Sends on a connected socket, reconnecting on demand after a restore.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSocketState`] if not connected.
    pub fn send(
        &mut self,
        id: u64,
        bytes: usize,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), KernelError> {
        clock.charge(model.host.syscall_base);
        self.ensure_connected(id, clock, model)?;
        let sock = self.get_mut(id)?;
        if sock.state != SockState::Connected {
            return Err(KernelError::BadSocketState { sock: id });
        }
        clock.charge(model.memcpy(bytes as u64));
        Ok(())
    }

    /// Re-establishes the host-side connection if needed (on-demand I/O
    /// reconnection, §3.3).
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSocketState`] for a dead id.
    pub fn ensure_connected(
        &mut self,
        id: u64,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), KernelError> {
        let sock = self.get_mut(id)?;
        if !sock.connected_to_host {
            sock.connected_to_host = true;
            self.reconnects += 1;
            clock.charge(model.io.reconnect_socket);
        }
        Ok(())
    }

    /// Closes a socket.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSocketState`] for a dead id.
    pub fn shutdown(
        &mut self,
        id: u64,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), KernelError> {
        clock.charge(model.host.syscall_base + model.io.close_fd);
        let slot = self
            .socks
            .get_mut(id as usize)
            .ok_or(KernelError::BadSocketState { sock: id })?;
        if slot.take().is_none() {
            return Err(KernelError::BadSocketState { sock: id });
        }
        Ok(())
    }

    /// Installs a restored socket in the disconnected state.
    pub fn install_restored(&mut self, addr: &str, state: SockState) -> u64 {
        self.push(Socket {
            id: 0,
            addr: addr.into(),
            state,
            connected_to_host: false,
        })
    }

    /// Iterates live sockets.
    pub fn iter(&self) -> impl Iterator<Item = &Socket> {
        self.socks.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimClock, CostModel, SocketTable) {
        (
            SimClock::new(),
            CostModel::experimental_machine(),
            SocketTable::new(),
        )
    }

    #[test]
    fn listen_accept_flow() {
        let (clock, model, mut t) = setup();
        let s = t.socket(&clock, &model);
        t.listen(s, "0.0.0.0:80", &clock, &model).unwrap();
        let c = t.accept(s, "10.0.0.9:1234", &clock, &model).unwrap();
        assert_eq!(t.get(c).unwrap().state, SockState::Connected);
        assert_eq!(t.len(), 2);
        t.send(c, 128, &clock, &model).unwrap();
    }

    #[test]
    fn connect_flow_and_state_errors() {
        let (clock, model, mut t) = setup();
        let s = t.socket(&clock, &model);
        t.connect(s, "db:5432", &clock, &model).unwrap();
        // Connecting again is a state error.
        assert!(t.connect(s, "x", &clock, &model).is_err());
        // Accept on a non-listening socket is a state error.
        assert!(t.accept(s, "p", &clock, &model).is_err());
        // Send on a created socket is a state error.
        let fresh = t.socket(&clock, &model);
        assert!(t.send(fresh, 1, &clock, &model).is_err());
    }

    #[test]
    fn restored_socket_reconnects_on_first_send() {
        let (clock, model, mut t) = setup();
        let s = t.install_restored("cache:6379", SockState::Connected);
        assert!(!t.get(s).unwrap().connected_to_host);
        t.send(s, 64, &clock, &model).unwrap();
        assert!(t.get(s).unwrap().connected_to_host);
        assert_eq!(t.reconnects(), 1);
        t.send(s, 64, &clock, &model).unwrap();
        assert_eq!(t.reconnects(), 1, "reconnect happens once");
    }

    #[test]
    fn shutdown_frees() {
        let (clock, model, mut t) = setup();
        let s = t.socket(&clock, &model);
        t.shutdown(s, &clock, &model).unwrap();
        assert!(t.get(s).is_err());
        assert!(t.shutdown(s, &clock, &model).is_err());
        assert!(t.is_empty());
    }
}
