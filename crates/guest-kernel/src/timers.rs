//! Guest kernel timers — non-I/O system state that separated state recovery
//! re-establishes on the critical path (paper §3.2 counts timers among the
//! 37 838 restored objects).

use simtime::SimNanos;

/// One armed timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timer {
    /// Timer id within the table.
    pub id: u64,
    /// Absolute virtual deadline.
    pub deadline: SimNanos,
    /// Re-arm period (zero for one-shot).
    pub period: SimNanos,
    /// Owning task's pid.
    pub owner_pid: u32,
}

/// The timer table.
#[derive(Debug, Default, Clone)]
pub struct TimerTable {
    timers: Vec<Option<Timer>>,
    fired: u64,
}

impl TimerTable {
    /// Creates an empty table.
    pub fn new() -> TimerTable {
        TimerTable::default()
    }

    /// Arms a timer, returning its id.
    pub fn arm(&mut self, deadline: SimNanos, period: SimNanos, owner_pid: u32) -> u64 {
        let id = self.timers.len() as u64;
        self.timers.push(Some(Timer {
            id,
            deadline,
            period,
            owner_pid,
        }));
        id
    }

    /// Cancels a timer; returns whether it was armed.
    pub fn cancel(&mut self, id: u64) -> bool {
        self.timers
            .get_mut(id as usize)
            .map(|slot| slot.take().is_some())
            .unwrap_or(false)
    }

    /// Fires every timer due at or before `now`; periodic timers re-arm.
    /// Returns the ids fired.
    pub fn fire_due(&mut self, now: SimNanos) -> Vec<u64> {
        let mut fired = Vec::new();
        for slot in self.timers.iter_mut() {
            if let Some(t) = slot {
                if t.deadline <= now {
                    fired.push(t.id);
                    self.fired += 1;
                    if t.period.is_zero() {
                        *slot = None;
                    } else {
                        t.deadline = now + t.period;
                    }
                }
            }
        }
        fired
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.timers.iter().flatten().count()
    }

    /// True if no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total fire events.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Iterates armed timers.
    pub fn iter(&self) -> impl Iterator<Item = &Timer> {
        self.timers.iter().flatten()
    }

    /// Installs a restored timer verbatim.
    pub fn install_restored(
        &mut self,
        deadline: SimNanos,
        period: SimNanos,
        owner_pid: u32,
    ) -> u64 {
        self.arm(deadline, period, owner_pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_fires_once() {
        let mut t = TimerTable::new();
        let id = t.arm(SimNanos::from_millis(5), SimNanos::ZERO, 1);
        assert!(t.fire_due(SimNanos::from_millis(4)).is_empty());
        assert_eq!(t.fire_due(SimNanos::from_millis(5)), vec![id]);
        assert!(t.fire_due(SimNanos::from_millis(100)).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn periodic_rearms() {
        let mut t = TimerTable::new();
        let id = t.arm(SimNanos::from_millis(10), SimNanos::from_millis(10), 1);
        assert_eq!(t.fire_due(SimNanos::from_millis(10)), vec![id]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.fire_due(SimNanos::from_millis(20)), vec![id]);
        assert_eq!(t.fired(), 2);
    }

    #[test]
    fn cancel_works_once() {
        let mut t = TimerTable::new();
        let id = t.arm(SimNanos::from_secs(1), SimNanos::ZERO, 7);
        assert!(t.cancel(id));
        assert!(!t.cancel(id));
        assert!(!t.cancel(99));
        assert!(t.fire_due(SimNanos::from_secs(2)).is_empty());
    }

    #[test]
    fn multiple_due_fire_together() {
        let mut t = TimerTable::new();
        let a = t.arm(SimNanos::from_millis(1), SimNanos::ZERO, 1);
        let b = t.arm(SimNanos::from_millis(2), SimNanos::ZERO, 2);
        t.arm(SimNanos::from_millis(50), SimNanos::ZERO, 3);
        assert_eq!(t.fire_due(SimNanos::from_millis(3)), vec![a, b]);
        assert_eq!(t.len(), 1);
    }
}
