//! Property-based tests: checkpoint/restore of the guest-kernel object graph
//! is faithful for arbitrary graph shapes, and the syscall policy is total.

use std::sync::Arc;

use guest_kernel::gofer::FsServer;
use guest_kernel::syscalls::{SyscallClass, SyscallName};
use guest_kernel::{GraphSpec, GuestKernel};
use proptest::prelude::*;
use simtime::{CostModel, SimClock};

fn test_fs() -> Arc<FsServer> {
    Arc::new(
        FsServer::builder("prop")
            .synthetic_tree("/lib", 24, 64)
            .persistent("/var/log/x.log")
            .build(),
    )
}

fn arb_spec() -> impl Strategy<Value = GraphSpec> {
    (
        0u32..4,
        0u32..6,
        0u32..64,
        0u32..24,
        0u32..8,
        0u32..16,
        0u32..8,
        0u32..3,
        0u32..128,
        0u32..48,
    )
        .prop_map(
            |(tasks, threads, dentries, files, socks, timers, wqs, epolls, misc, payload)| {
                GraphSpec {
                    extra_tasks: tasks,
                    threads_per_task: threads,
                    dentries,
                    open_files: files,
                    sockets: socks,
                    timers,
                    waitqueues: wqs,
                    epolls,
                    misc_objects: misc,
                    misc_payload: payload,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// checkpoint → restore → checkpoint is a fixed point for any graph.
    #[test]
    fn checkpoint_restore_fixed_point(spec in arb_spec()) {
        let clock = SimClock::new();
        let model = CostModel::experimental_machine();
        let mut kernel = GuestKernel::boot("prop", test_fs(), &clock, &model);
        spec.populate(&mut kernel, &clock, &model).unwrap();
        kernel.validate().unwrap();

        let records = kernel.checkpoint_objects();
        prop_assert_eq!(records.len() as u64, kernel.object_count());

        let restored = GuestKernel::restore_from_records(
            "copy", &records, test_fs(), false, &clock, &model,
        ).unwrap();
        restored.validate().unwrap();
        prop_assert_eq!(restored.checkpoint_objects(), records);
    }

    /// Eager and deferred restore produce the same graph; only connection
    /// status differs.
    #[test]
    fn eager_and_lazy_restore_agree(spec in arb_spec()) {
        let clock = SimClock::new();
        let model = CostModel::experimental_machine();
        let mut kernel = GuestKernel::boot("prop", test_fs(), &clock, &model);
        spec.populate(&mut kernel, &clock, &model).unwrap();
        let records = kernel.checkpoint_objects();

        let eager = GuestKernel::restore_from_records(
            "e", &records, test_fs(), true, &clock, &model).unwrap();
        let lazy = GuestKernel::restore_from_records(
            "l", &records, test_fs(), false, &clock, &model).unwrap();
        prop_assert_eq!(eager.object_count(), lazy.object_count());
        prop_assert!(eager.vfs.iter_fds().all(|(_, d)| d.connected));
        if spec.open_files > 0 {
            prop_assert!(lazy.vfs.iter_fds().all(|(_, d)| !d.connected));
        }
        prop_assert_eq!(eager.checkpoint_objects().len(), lazy.checkpoint_objects().len());
    }

    /// The template-mode policy gate is total and only rejects Denied.
    #[test]
    fn policy_gate_matches_classification(idx in 0usize..SyscallName::ALL.len()) {
        let clock = SimClock::new();
        let model = CostModel::experimental_machine();
        let mut kernel = GuestKernel::boot("p", test_fs(), &clock, &model);
        kernel.set_template_mode(true);
        let name = SyscallName::ALL[idx];
        let outcome = kernel.check_syscall(name);
        match name.classify() {
            SyscallClass::Denied => prop_assert!(outcome.is_err()),
            _ => prop_assert!(outcome.is_ok()),
        }
    }

    /// sfork_clone preserves observable kernel state for any graph, and the
    /// child's mutations never reach the parent.
    #[test]
    fn sfork_clone_preserves_and_isolates(spec in arb_spec()) {
        let clock = SimClock::new();
        let model = CostModel::experimental_machine();
        let mut parent = GuestKernel::boot("parent", test_fs(), &clock, &model);
        spec.populate(&mut parent, &clock, &model).unwrap();
        let before = parent.checkpoint_objects();

        let mut child = parent.sfork_clone("child", &clock, &model);
        prop_assert_eq!(child.object_count(), parent.object_count());
        prop_assert_eq!(child.tasks.getpid(), parent.tasks.getpid(),
            "PID namespace must keep getpid() stable");

        // Child mutates: new file, new socket, fired timers.
        let fd = child.vfs.create("/tmp/child-only", &clock, &model).unwrap();
        child.vfs.write(fd, b"x", &clock, &model).unwrap();
        child.net.socket(&clock, &model);
        child.timers.fire_due(simtime::SimNanos::from_secs(60));

        prop_assert_eq!(parent.checkpoint_objects(), before, "child leaked into parent");
        prop_assert!(parent.vfs.stat("/tmp/child-only").is_err());
    }
}
