//! A small RGBA image type with the real pixel kernels the Pillow workloads
//! execute.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An RGBA8 image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<[u8; 4]>,
}

impl Image {
    /// A black image.
    pub fn new(width: usize, height: usize) -> Image {
        Image {
            width,
            height,
            pixels: vec![[0, 0, 0, 255]; width * height],
        }
    }

    /// A deterministic pseudo-random test image.
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut img = Image::new(width, height);
        for p in &mut img.pixels {
            p[0] = rng.gen();
            p[1] = rng.gen();
            p[2] = rng.gen();
        }
        img
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 4] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Mutable pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn pixel_mut(&mut self, x: usize, y: usize) -> &mut [u8; 4] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        &mut self.pixels[y * self.width + x]
    }

    /// Mean luminance (0–255), for verifying enhancement effects.
    pub fn mean_luma(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .pixels
            .iter()
            .map(|p| 0.299 * f64::from(p[0]) + 0.587 * f64::from(p[1]) + 0.114 * f64::from(p[2]))
            .sum();
        sum / self.pixels.len() as f64
    }

    /// Contrast enhancement about the mid-point (Pillow `ImageEnhance`).
    pub fn enhance_contrast(&self, factor: f64) -> Image {
        let mut out = self.clone();
        for p in &mut out.pixels {
            for c in &mut p[..3] {
                let v = (f64::from(*c) - 128.0) * factor + 128.0;
                *c = v.clamp(0.0, 255.0) as u8;
            }
        }
        out
    }

    /// 3×3 box blur (Pillow `ImageFilter.BLUR`-style kernel).
    pub fn box_blur(&self) -> Image {
        let mut out = Image::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let mut acc = [0u32; 4];
                let mut n = 0u32;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let nx = x as i64 + dx;
                        let ny = y as i64 + dy;
                        if nx >= 0
                            && ny >= 0
                            && (nx as usize) < self.width
                            && (ny as usize) < self.height
                        {
                            let p = self.pixel(nx as usize, ny as usize);
                            for c in 0..4 {
                                acc[c] += u32::from(p[c]);
                            }
                            n += 1;
                        }
                    }
                }
                let q = out.pixel_mut(x, y);
                for c in 0..4 {
                    q[c] = (acc[c] / n) as u8;
                }
            }
        }
        out
    }

    /// Horizontal roll by `delta` pixels (the Pillow tutorial's `roll`).
    pub fn roll(&self, delta: usize) -> Image {
        let delta = if self.width == 0 {
            0
        } else {
            delta % self.width
        };
        let mut out = Image::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                *out.pixel_mut((x + delta) % self.width, y) = self.pixel(x, y);
            }
        }
        out
    }

    /// Channel split + re-merge with R and B swapped (`Image.split`/`merge`).
    pub fn split_merge_swapped(&self) -> Image {
        let (mut r, mut g, mut b) = (Vec::new(), Vec::new(), Vec::new());
        for p in &self.pixels {
            r.push(p[0]);
            g.push(p[1]);
            b.push(p[2]);
        }
        let mut out = Image::new(self.width, self.height);
        for (i, p) in out.pixels.iter_mut().enumerate() {
            p[0] = b[i];
            p[1] = g[i];
            p[2] = r[i];
        }
        out
    }

    /// Transpose (flip across the main diagonal).
    pub fn transpose(&self) -> Image {
        let mut out = Image::new(self.height, self.width);
        for y in 0..self.height {
            for x in 0..self.width {
                *out.pixel_mut(y, x) = self.pixel(x, y);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        assert_eq!(Image::synthetic(16, 16, 7), Image::synthetic(16, 16, 7));
        assert_ne!(Image::synthetic(16, 16, 7), Image::synthetic(16, 16, 8));
    }

    #[test]
    fn contrast_stretches_about_midpoint() {
        let img = Image::synthetic(32, 32, 1);
        let hi = img.enhance_contrast(2.0);
        let lo = img.enhance_contrast(0.0);
        // Zero contrast collapses to gray.
        assert!((lo.mean_luma() - 128.0).abs() < 1.0, "{}", lo.mean_luma());
        // Stretching moves pixels away from the midpoint.
        let spread = |i: &Image| {
            i.pixel(3, 3)
                .iter()
                .take(3)
                .map(|&c| (f64::from(c) - 128.0).abs())
                .sum::<f64>()
        };
        assert!(spread(&hi) >= spread(&img));
    }

    #[test]
    fn blur_smooths_extremes() {
        let mut img = Image::new(9, 9);
        img.pixel_mut(4, 4)[0] = 255;
        let blurred = img.box_blur();
        assert!(blurred.pixel(4, 4)[0] < 255);
        assert!(blurred.pixel(3, 4)[0] > 0, "energy spreads to neighbours");
    }

    #[test]
    fn roll_wraps_and_full_roll_is_identity() {
        let img = Image::synthetic(20, 8, 3);
        let rolled = img.roll(5);
        assert_eq!(rolled.pixel(5, 0), img.pixel(0, 0));
        assert_eq!(img.roll(20), img);
        assert_eq!(img.roll(0), img);
    }

    #[test]
    fn split_merge_swaps_channels() {
        let mut img = Image::new(2, 1);
        *img.pixel_mut(0, 0) = [10, 20, 30, 255];
        let swapped = img.split_merge_swapped();
        assert_eq!(swapped.pixel(0, 0), [30, 20, 10, 255]);
        // Twice swaps back.
        assert_eq!(swapped.split_merge_swapped(), img);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let img = Image::synthetic(13, 7, 9);
        let t = img.transpose();
        assert_eq!(t.width(), 7);
        assert_eq!(t.height(), 13);
        assert_eq!(t.transpose(), img);
        assert_eq!(t.pixel(2, 5), img.pixel(5, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_bounds_checked() {
        let img = Image::new(4, 4);
        let _ = img.pixel(4, 0);
    }
}
