//! The five Pillow image-processing functions (paper §6.4, Fig. 13b).
//!
//! "The Pillow applications receive images, process them (i.e., enhance /
//! filter / roll / splitmerge / transpose the images), and then return the
//! processed results." Execution takes 100–200 ms (dominated by reading the
//! input image), yet under gVisor startup still dominates (>500 ms).

use runtimes::{AppProfile, RuntimeKind};
use simtime::SimNanos;

use crate::image::Image;

/// The five image operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageOp {
    /// Contrast enhancement.
    Enhancement,
    /// 3×3 blur filter.
    Filters,
    /// Horizontal roll.
    Rolling,
    /// Channel split + merge.
    SplitMerge,
    /// Transpose.
    Transpose,
}

impl ImageOp {
    /// All operations, in Fig. 13b order.
    pub const ALL: [ImageOp; 5] = [
        ImageOp::Enhancement,
        ImageOp::Filters,
        ImageOp::Rolling,
        ImageOp::SplitMerge,
        ImageOp::Transpose,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            ImageOp::Enhancement => "Enhancement",
            ImageOp::Filters => "Filters",
            ImageOp::Rolling => "Rolling",
            ImageOp::SplitMerge => "SplitMerge",
            ImageOp::Transpose => "Transpose",
        }
    }

    /// The calibrated profile: Python + imaging library (heavy init,
    /// 100–200 ms execution, most of it reading the input image).
    pub fn profile(self) -> AppProfile {
        let exec_ms = match self {
            ImageOp::Enhancement => 105.0,
            ImageOp::Filters => 185.0,
            ImageOp::Rolling => 120.0,
            ImageOp::SplitMerge => 160.0,
            ImageOp::Transpose => 110.0,
        };
        let mut p = AppProfile::python_django();
        p.name = format!("pillow-{}", self.label());
        p.runtime = RuntimeKind::Python;
        p.runtime_start = SimNanos::from_millis(84);
        p.load_units = 480; // interpreter + Pillow + codec modules
        p.init_heap_pages = 8_192; // 32 MB interpreter + library state
        p.kernel_objects = 9_000;
        p.exec_time = SimNanos::from_millis_f64(exec_ms);
        p.exec_touch_fraction = 0.25;
        p.exec_alloc_pages = 512; // the decoded input image
        p
    }

    /// Runs the real pixel kernel.
    pub fn apply(self, input: &Image) -> Image {
        match self {
            ImageOp::Enhancement => input.enhance_contrast(1.5),
            ImageOp::Filters => input.box_blur(),
            ImageOp::Rolling => input.roll(input.width() / 3),
            ImageOp::SplitMerge => input.split_merge_swapped(),
            ImageOp::Transpose => input.transpose(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_shape() {
        for op in ImageOp::ALL {
            let p = op.profile();
            assert_eq!(p.runtime, RuntimeKind::Python);
            let exec = p.exec_time.as_millis_f64();
            assert!((100.0..=200.0).contains(&exec), "{}: {exec} ms", p.name);
            // App init >450 ms so gVisor startup dominates (paper: >500 ms
            // overall with sandbox init included).
            assert!(p.app_init_estimate() > SimNanos::from_millis(450));
        }
    }

    #[test]
    fn every_op_transforms_the_image() {
        let input = Image::synthetic(48, 32, 11);
        for op in ImageOp::ALL {
            let out = op.apply(&input);
            assert!(
                out != input || op == ImageOp::Rolling && input.width() < 3,
                "{} produced identity output",
                op.label()
            );
        }
    }

    #[test]
    fn transpose_dimensions_swap_others_preserve() {
        let input = Image::synthetic(40, 20, 2);
        for op in ImageOp::ALL {
            let out = op.apply(&input);
            if op == ImageOp::Transpose {
                assert_eq!((out.width(), out.height()), (20, 40));
            } else {
                assert_eq!((out.width(), out.height()), (40, 20), "{}", op.label());
            }
        }
    }
}
