//! The 14-function set behind Figure 1's CDF: five DeathStar microservices,
//! five Pillow image functions, and four e-commerce services.

use runtimes::AppProfile;

use crate::deathstar::Service;
use crate::ecommerce::EcommerceOp;
use crate::pillow::ImageOp;

/// All 14 evaluated serverless functions (§6.4), DeathStar first.
pub fn fig1_functions() -> Vec<AppProfile> {
    let mut out: Vec<AppProfile> = Service::ALL.iter().map(|s| s.profile()).collect();
    out.extend(ImageOp::ALL.iter().map(|o| o.profile()));
    out.extend(EcommerceOp::ALL.iter().map(|o| o.profile()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fourteen_distinct_functions() {
        let fns = fig1_functions();
        assert_eq!(fns.len(), 14);
        let names: HashSet<&str> = fns.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 14, "names must be unique");
    }

    #[test]
    fn spans_execution_range() {
        let fns = fig1_functions();
        let min = fns.iter().map(|p| p.exec_time).min().unwrap();
        let max = fns.iter().map(|p| p.exec_time).max().unwrap();
        // From sub-ms microservices to >1 s purchase.
        assert!(min < simtime::SimNanos::from_millis(1));
        assert!(max > simtime::SimNanos::from_secs(1));
    }
}
