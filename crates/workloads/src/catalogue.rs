//! The 14-function set behind Figure 1's CDF: five DeathStar microservices,
//! five Pillow image functions, and four e-commerce services.

use runtimes::AppProfile;

use crate::deathstar::Service;
use crate::ecommerce::EcommerceOp;
use crate::pillow::ImageOp;

/// All 14 evaluated serverless functions (§6.4), DeathStar first.
pub fn fig1_functions() -> Vec<AppProfile> {
    let mut out: Vec<AppProfile> = Service::ALL.iter().map(|s| s.profile()).collect();
    out.extend(ImageOp::ALL.iter().map(|o| o.profile()));
    out.extend(EcommerceOp::ALL.iter().map(|o| o.profile()));
    out
}

/// A synthetic fleet catalogue of `count` functions for density experiments
/// past the 14 measured apps: each entry clones one of the Figure 1
/// profiles (cycling through all 14) and applies a deterministic per-index
/// scale — execution time, heap footprint, and load units move together to
/// one of nine levels between 60% and 140% of the base — under a unique
/// name. Same `(count, seed)`, same catalogue.
///
/// The scale is deliberately *quantized*: the catalogue spans 14 × 9
/// distinct cost shapes, so fleet-scale consumers (which calibrate boot
/// and execution cost per distinct shape) pay ~126 calibrations for a
/// 10 000-function catalogue instead of 10 000.
pub fn synthetic(count: usize, seed: u64) -> Vec<AppProfile> {
    let bases = fig1_functions();
    (0..count)
        .map(|i| {
            let mut p = bases[i % bases.len()].clone();
            // SplitMix64-style index hash: cheap, stateless, deterministic.
            let mut h = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            let pct = 60 + (h % 9) * 10; // 60, 70, ... 140
            p.exec_time =
                simtime::SimNanos::from_nanos(p.exec_time.as_nanos().saturating_mul(pct) / 100);
            p.init_heap_pages = p.init_heap_pages.saturating_mul(pct) / 100;
            p.load_units =
                u32::try_from((u64::from(p.load_units).saturating_mul(pct) / 100).max(1))
                    .unwrap_or(u32::MAX);
            p.name = format!("{}-{i:05}", p.name);
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fourteen_distinct_functions() {
        let fns = fig1_functions();
        assert_eq!(fns.len(), 14);
        let names: HashSet<&str> = fns.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 14, "names must be unique");
    }

    #[test]
    fn synthetic_scales_with_unique_names_deterministically() {
        let a = synthetic(10_000, 7);
        let b = synthetic(10_000, 7);
        assert_eq!(a.len(), 10_000);
        assert_eq!(a, b);
        let names: HashSet<&str> = a.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 10_000, "names must be unique");
        // Variation spreads costs across many distinct shapes, but the
        // quantized scale keeps the shape count bounded (14 bases x 9
        // levels) so fleet calibration stays cheap.
        let base = fig1_functions();
        assert!(a[0].name.starts_with(&base[0].name));
        let execs: HashSet<simtime::SimNanos> = a.iter().map(|p| p.exec_time).collect();
        assert!(execs.len() > 50, "only {} exec shapes", execs.len());
        assert!(execs.len() <= 14 * 9, "{} exec shapes", execs.len());
        assert!(a.iter().all(|p| p.load_units >= 1));
    }

    #[test]
    fn spans_execution_range() {
        let fns = fig1_functions();
        let min = fns.iter().map(|p| p.exec_time).min().unwrap();
        let max = fns.iter().map(|p| p.exec_time).max().unwrap();
        // From sub-ms microservices to >1 s purchase.
        assert!(min < simtime::SimNanos::from_millis(1));
        assert!(max > simtime::SimNanos::from_secs(1));
    }
}
