//! Five DeathStarBench social-network microservices, ported as serverless
//! functions (paper §6.4, Fig. 13a; `composePost` drives Fig. 14 and `text`
//! drives Fig. 15).
//!
//! These are the paper's "real-world lightweight serverless functions":
//! C++ services with <2.5 ms handlers whose end-to-end latency is utterly
//! dominated by startup under gVisor. The handler logic here is real (string
//! processing, id generation, in-memory timelines); microservice calls are
//! replaced by stubs exactly as the paper did ("all microservice invocations
//! ... are replaced by stub functions").

use runtimes::{AppProfile, RuntimeKind};
use simtime::SimNanos;

/// The five ported services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// Extract mentions/URLs from post text.
    Text,
    /// Generate a unique post id.
    UniqueId,
    /// Validate and register attached media.
    Media,
    /// Compose a post from the other services' outputs.
    ComposePost,
    /// Read a user's home timeline.
    Timeline,
}

impl Service {
    /// All services, in Fig. 13a order.
    pub const ALL: [Service; 5] = [
        Service::Text,
        Service::UniqueId,
        Service::Media,
        Service::ComposePost,
        Service::Timeline,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Service::Text => "Text",
            Service::UniqueId => "UniqueID",
            Service::Media => "Media",
            Service::ComposePost => "ComposePost",
            Service::Timeline => "Timeline",
        }
    }

    /// The calibrated profile: C++-class sandbox footprint, handler compute
    /// under 2.5 ms (Fig. 13a's execution bars).
    pub fn profile(self) -> AppProfile {
        let (exec_ms, heap_pages, objects) = match self {
            Service::Text => (1.2, 2_048, 900),
            Service::UniqueId => (0.3, 1_536, 700),
            Service::Media => (2.0, 3_072, 1_100),
            Service::ComposePost => (2.4, 4_096, 1_300),
            Service::Timeline => (1.8, 2_560, 1_000),
        };
        let mut p = AppProfile::c_hello();
        p.name = format!("deathstar-{}", self.label());
        p.runtime = RuntimeKind::C;
        p.exec_time = SimNanos::from_millis_f64(exec_ms);
        p.init_heap_pages = heap_pages;
        p.kernel_objects = objects;
        p.exec_touch_fraction = 0.3;
        p.exec_alloc_pages = 8;
        p
    }
}

/// A parsed social-network post.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Post {
    /// Unique id.
    pub id: u64,
    /// Author user id.
    pub user: u32,
    /// Body text.
    pub text: String,
    /// Extracted @mentions.
    pub mentions: Vec<String>,
    /// Extracted URLs.
    pub urls: Vec<String>,
    /// Registered media ids.
    pub media: Vec<u64>,
}

/// `Text`: extract mentions and URLs from a post body.
pub fn text_service(body: &str) -> (Vec<String>, Vec<String>) {
    let mut mentions = Vec::new();
    let mut urls = Vec::new();
    for token in body.split_whitespace() {
        if let Some(name) = token.strip_prefix('@') {
            if !name.is_empty() {
                mentions.push(
                    name.trim_end_matches(|c: char| !c.is_alphanumeric())
                        .to_string(),
                );
            }
        } else if token.starts_with("http://") || token.starts_with("https://") {
            urls.push(token.to_string());
        }
    }
    (mentions, urls)
}

/// `UniqueID`: timestamp-and-sequence id generation (snowflake-style).
pub fn unique_id_service(timestamp_ms: u64, machine: u16, sequence: u16) -> u64 {
    (timestamp_ms << 22) | (u64::from(machine) & 0x3FF) << 12 | u64::from(sequence) & 0xFFF
}

/// `Media`: validate media types and assign ids.
pub fn media_service(filenames: &[&str]) -> Vec<u64> {
    filenames
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.ends_with(".png") || f.ends_with(".jpg") || f.ends_with(".gif") || f.ends_with(".mp4")
        })
        .map(|(i, f)| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in f.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            h ^ i as u64
        })
        .collect()
}

/// `ComposePost`: stitch the other services' outputs into a post.
pub fn compose_post(user: u32, body: &str, media_files: &[&str], timestamp_ms: u64) -> Post {
    let (mentions, urls) = text_service(body);
    let id = unique_id_service(timestamp_ms, 7, 1);
    let media = media_service(media_files);
    Post {
        id,
        user,
        text: body.to_string(),
        mentions,
        urls,
        media,
    }
}

/// `Timeline`: most-recent-first slice of a user's posts.
pub fn timeline_service(posts: &[Post], user: u32, limit: usize) -> Vec<u64> {
    let mut ids: Vec<(u64, u64)> = posts
        .iter()
        .filter(|p| p.user == user || p.mentions.iter().any(|m| m == &format!("user{user}")))
        .map(|p| (p.id >> 22, p.id))
        .collect();
    ids.sort_by_key(|&(ts, _)| std::cmp::Reverse(ts));
    ids.into_iter().take(limit).map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_lightweight_c() {
        for svc in Service::ALL {
            let p = svc.profile();
            assert_eq!(p.runtime, RuntimeKind::C);
            assert!(p.exec_time <= SimNanos::from_millis_f64(2.5), "{}", p.name);
            assert!(p.kernel_objects < 2_000);
        }
    }

    #[test]
    fn text_extracts_mentions_and_urls() {
        let (mentions, urls) = text_service("hi @alice check https://example.com and @bob! thanks");
        assert_eq!(mentions, vec!["alice", "bob"]);
        assert_eq!(urls, vec!["https://example.com"]);
        let (m, u) = text_service("");
        assert!(m.is_empty() && u.is_empty());
    }

    #[test]
    fn unique_ids_are_monotone_in_time_and_distinct() {
        let a = unique_id_service(1_000, 1, 1);
        let b = unique_id_service(1_001, 1, 1);
        let c = unique_id_service(1_001, 1, 2);
        assert!(b > a);
        assert_ne!(b, c);
    }

    #[test]
    fn media_filters_types() {
        let ids = media_service(&["cat.png", "virus.exe", "dog.jpg"]);
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn compose_and_timeline_flow() {
        let p1 = compose_post(1, "hello @user2 https://x.y", &["a.png"], 1_000);
        let p2 = compose_post(2, "reply @user1", &[], 2_000);
        let p3 = compose_post(1, "later", &[], 3_000);
        assert_eq!(p1.mentions, vec!["user2"]);
        assert_eq!(p1.media.len(), 1);

        let posts = vec![p1.clone(), p2.clone(), p3.clone()];
        let tl = timeline_service(&posts, 1, 10);
        // User 1's own posts plus the mention, newest first.
        assert_eq!(tl, vec![p3.id, p2.id, p1.id]);
        assert_eq!(timeline_service(&posts, 1, 1), vec![p3.id]);
        assert!(timeline_service(&posts, 9, 10).is_empty());
    }
}
