//! The paper's evaluation workloads (§6.4): three real application suites
//! plus request generators.
//!
//! - [`deathstar`]: five social-network microservices ported from the
//!   DeathStarBench suite — lightweight C++ functions with <2.5 ms handlers
//!   (Fig. 13a), including `composePost` used for the memory study
//!   (Fig. 14) and `text` used for the scalability study (Fig. 15);
//! - [`pillow`]: five image-processing functions (enhance / filter / roll /
//!   split-merge / transpose) with **real pixel kernels** over synthetic
//!   RGBA images (Fig. 13b);
//! - [`ecommerce`]: four Java services (purchase / advertising / report /
//!   discount) over an in-memory order store (Fig. 13c);
//! - [`catalogue`]: the combined 14-function set behind Figure 1's CDF;
//! - [`specjbb`]: a miniature SPECjbb-2015 backend agent with the classic
//!   transaction mix, matching the paper's heavyweight Java case;
//! - [`generator`]: seeded request traces (uniform and skewed).
//!
//! Each workload pairs a calibrated [`runtimes::AppProfile`] (driving boot
//! and charged execution latency) with genuinely executable logic, so
//! examples and tests can verify functional behaviour, not just latency.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod catalogue;
pub mod deathstar;
pub mod ecommerce;
pub mod generator;
pub mod image;
pub mod pillow;
pub mod specjbb;
