//! Seeded request-trace generation for end-to-end and policy experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtime::SimNanos;

/// One generated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Virtual arrival time.
    pub arrival: SimNanos,
    /// Index of the target function in the caller's function list.
    pub function: usize,
}

/// How requests distribute over functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Uniform across functions.
    Uniform,
    /// Zipf-like skew with the given exponent (≥ 0; larger = more skewed).
    Zipf {
        /// Skew exponent (1.0 is the classic web skew).
        exponent: f64,
    },
}

/// Generates `count` requests with exponential inter-arrivals at `rate_hz`
/// over `functions` functions, deterministically from `seed`.
///
/// # Panics
///
/// Panics if `functions == 0` or `rate_hz <= 0`.
pub fn trace(
    functions: usize,
    count: usize,
    rate_hz: f64,
    popularity: Popularity,
    seed: u64,
) -> Vec<Request> {
    assert!(functions > 0, "need at least one function");
    assert!(rate_hz > 0.0, "rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    // Zipf CDF over ranks.
    let weights: Vec<f64> = match popularity {
        Popularity::Uniform => vec![1.0; functions],
        Popularity::Zipf { exponent } => (1..=functions)
            .map(|r| 1.0 / (r as f64).powf(exponent.max(0.0)))
            .collect(),
    };
    let total: f64 = weights.iter().sum();

    let mut now_ns = 0.0f64;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        now_ns += -u.ln() / rate_hz * 1e9;
        let mut pick: f64 = rng.gen_range(0.0..total);
        let mut function = functions - 1;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                function = i;
                break;
            }
            pick -= w;
        }
        out.push(Request {
            arrival: SimNanos::from_nanos(now_ns as u64),
            function,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let a = trace(4, 100, 50.0, Popularity::Uniform, 9);
        let b = trace(4, 100, 50.0, Popularity::Uniform, 9);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn rate_controls_density() {
        let slow = trace(1, 200, 10.0, Popularity::Uniform, 1);
        let fast = trace(1, 200, 1_000.0, Popularity::Uniform, 1);
        assert!(fast.last().unwrap().arrival < slow.last().unwrap().arrival);
        // Mean inter-arrival of the slow trace ≈ 100 ms.
        let span = slow.last().unwrap().arrival.as_secs_f64();
        assert!((10.0..30.0).contains(&span), "span {span}s");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let reqs = trace(10, 5_000, 100.0, Popularity::Zipf { exponent: 1.2 }, 3);
        let mut counts = [0usize; 10];
        for r in &reqs {
            counts[r.function] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
        let uniform = trace(10, 5_000, 100.0, Popularity::Uniform, 3);
        let mut ucounts = [0usize; 10];
        for r in &uniform {
            ucounts[r.function] += 1;
        }
        assert!(ucounts[0] < ucounts[9] * 2, "{ucounts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn zero_functions_rejected() {
        let _ = trace(0, 1, 1.0, Popularity::Uniform, 0);
    }
}
