//! Seeded request-trace generation for end-to-end and policy experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtime::SimNanos;

/// One generated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Virtual arrival time.
    pub arrival: SimNanos,
    /// Index of the target function in the caller's function list.
    pub function: usize,
}

/// How requests distribute over functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Uniform across functions.
    Uniform,
    /// Zipf-like skew with the given exponent (≥ 0; larger = more skewed).
    Zipf {
        /// Skew exponent (1.0 is the classic web skew).
        exponent: f64,
    },
}

/// The arrival process of an open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_hz`.
    Poisson {
        /// Mean arrival rate, requests per (virtual) second.
        rate_hz: f64,
    },
    /// A Poisson baseline at `rate_hz` punctuated by periodic bursts:
    /// every `every`, `size` extra requests land spread uniformly over
    /// `width` — the flash-crowd shape that drives peak density.
    Bursty {
        /// Baseline arrival rate, requests per second.
        rate_hz: f64,
        /// Burst period.
        every: SimNanos,
        /// Requests per burst.
        size: usize,
        /// Window the burst's requests spread over.
        width: SimNanos,
    },
}

/// Everything that determines an open-loop trace — same spec, same bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Functions in the caller's catalogue.
    pub functions: usize,
    /// Requests to generate.
    pub count: usize,
    /// The arrival process.
    pub arrivals: Arrivals,
    /// How requests distribute over functions.
    pub popularity: Popularity,
    /// RNG seed.
    pub seed: u64,
}

/// Per-rank weights for `popularity` over `functions` ranks.
fn weights(popularity: Popularity, functions: usize) -> Vec<f64> {
    match popularity {
        Popularity::Uniform => vec![1.0; functions],
        Popularity::Zipf { exponent } => (1..=functions)
            .map(|r| 1.0 / (r as f64).powf(exponent.max(0.0)))
            .collect(),
    }
}

/// Generates an open-loop trace from `spec`: arrivals first (Poisson or
/// bursty, then time-sorted), function picks second via a binary-searched
/// popularity CDF — O(log n) per request, so fleet-scale traces over 10k+
/// functions generate in linear-ish time. Deterministic in `spec`.
///
/// # Panics
///
/// Panics if `spec.functions == 0` or any rate is not positive.
pub fn open_loop(spec: &TraceSpec) -> Vec<Request> {
    assert!(spec.functions > 0, "need at least one function");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let mut arrivals: Vec<u64> = Vec::with_capacity(spec.count);
    match spec.arrivals {
        Arrivals::Poisson { rate_hz } => {
            assert!(rate_hz > 0.0, "rate must be positive");
            let mut now_ns = 0.0f64;
            for _ in 0..spec.count {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                now_ns += -u.ln() / rate_hz * 1e9;
                arrivals.push(now_ns as u64);
            }
        }
        Arrivals::Bursty {
            rate_hz,
            every,
            size,
            width,
        } => {
            assert!(rate_hz > 0.0, "rate must be positive");
            assert!(!every.is_zero(), "burst period must be positive");
            let mut now_ns = 0.0f64;
            let mut next_burst = every.as_nanos();
            while arrivals.len() < spec.count {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                now_ns += -u.ln() / rate_hz * 1e9;
                while next_burst as f64 <= now_ns && arrivals.len() < spec.count {
                    for _ in 0..size.min(spec.count - arrivals.len()) {
                        let jitter: f64 = rng.gen_range(0.0..1.0);
                        let offset = (jitter * width.as_nanos() as f64) as u64;
                        arrivals.push(next_burst.saturating_add(offset));
                    }
                    next_burst = next_burst.saturating_add(every.as_nanos());
                }
                if arrivals.len() < spec.count {
                    arrivals.push(now_ns as u64);
                }
            }
            arrivals.sort_unstable();
        }
    }

    // Popularity CDF once, binary search per request.
    let mut cum = weights(spec.popularity, spec.functions);
    let mut running = 0.0f64;
    for w in &mut cum {
        running += *w;
        *w = running;
    }
    let total = running;
    arrivals
        .into_iter()
        .map(|ns| {
            let pick: f64 = rng.gen_range(0.0..total);
            let function = cum.partition_point(|&c| c <= pick).min(spec.functions - 1);
            Request {
                arrival: SimNanos::from_nanos(ns),
                function,
            }
        })
        .collect()
}

/// Generates `count` requests with exponential inter-arrivals at `rate_hz`
/// over `functions` functions, deterministically from `seed`.
///
/// The closed-loop-era generator, kept bit-stable for the pinned bench
/// exports; new code should prefer [`open_loop`], which adds bursty
/// arrivals and scales the popularity pick to fleet-size catalogues.
///
/// # Panics
///
/// Panics if `functions == 0` or `rate_hz <= 0`.
pub fn trace(
    functions: usize,
    count: usize,
    rate_hz: f64,
    popularity: Popularity,
    seed: u64,
) -> Vec<Request> {
    assert!(functions > 0, "need at least one function");
    assert!(rate_hz > 0.0, "rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    // Zipf CDF over ranks.
    let weights: Vec<f64> = match popularity {
        Popularity::Uniform => vec![1.0; functions],
        Popularity::Zipf { exponent } => (1..=functions)
            .map(|r| 1.0 / (r as f64).powf(exponent.max(0.0)))
            .collect(),
    };
    let total: f64 = weights.iter().sum();

    let mut now_ns = 0.0f64;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        now_ns += -u.ln() / rate_hz * 1e9;
        let mut pick: f64 = rng.gen_range(0.0..total);
        let mut function = functions - 1;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                function = i;
                break;
            }
            pick -= w;
        }
        out.push(Request {
            arrival: SimNanos::from_nanos(now_ns as u64),
            function,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let a = trace(4, 100, 50.0, Popularity::Uniform, 9);
        let b = trace(4, 100, 50.0, Popularity::Uniform, 9);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn rate_controls_density() {
        let slow = trace(1, 200, 10.0, Popularity::Uniform, 1);
        let fast = trace(1, 200, 1_000.0, Popularity::Uniform, 1);
        assert!(fast.last().unwrap().arrival < slow.last().unwrap().arrival);
        // Mean inter-arrival of the slow trace ≈ 100 ms.
        let span = slow.last().unwrap().arrival.as_secs_f64();
        assert!((10.0..30.0).contains(&span), "span {span}s");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let reqs = trace(10, 5_000, 100.0, Popularity::Zipf { exponent: 1.2 }, 3);
        let mut counts = [0usize; 10];
        for r in &reqs {
            counts[r.function] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
        let uniform = trace(10, 5_000, 100.0, Popularity::Uniform, 3);
        let mut ucounts = [0usize; 10];
        for r in &uniform {
            ucounts[r.function] += 1;
        }
        assert!(ucounts[0] < ucounts[9] * 2, "{ucounts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn zero_functions_rejected() {
        let _ = trace(0, 1, 1.0, Popularity::Uniform, 0);
    }

    #[test]
    fn open_loop_poisson_is_deterministic_and_sorted() {
        let spec = TraceSpec {
            functions: 10_000,
            count: 20_000,
            arrivals: Arrivals::Poisson { rate_hz: 5_000.0 },
            popularity: Popularity::Zipf { exponent: 1.0 },
            seed: 0x7001,
        };
        let a = open_loop(&spec);
        let b = open_loop(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20_000);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|r| r.function < 10_000));
    }

    #[test]
    fn open_loop_zipf_matches_linear_scan_skew() {
        // The binary-searched CDF must skew the same way the closed-loop
        // generator's linear scan does: rank 0 dominates the tail.
        let spec = TraceSpec {
            functions: 1_000,
            count: 20_000,
            arrivals: Arrivals::Poisson { rate_hz: 1_000.0 },
            popularity: Popularity::Zipf { exponent: 1.2 },
            seed: 11,
        };
        let reqs = open_loop(&spec);
        let rank0 = reqs.iter().filter(|r| r.function == 0).count();
        let tail = reqs.iter().filter(|r| r.function >= 500).count();
        assert!(rank0 > 1_000, "rank0 {rank0}");
        assert!(rank0 > tail, "rank0 {rank0} vs tail half {tail}");
    }

    #[test]
    fn bursty_concentrates_arrivals_at_burst_boundaries() {
        let every = SimNanos::from_millis(100);
        let width = SimNanos::from_millis(1);
        let spec = TraceSpec {
            functions: 8,
            count: 2_000,
            arrivals: Arrivals::Bursty {
                rate_hz: 50.0,
                every,
                size: 200,
                width,
            },
            popularity: Popularity::Uniform,
            seed: 42,
        };
        let reqs = open_loop(&spec);
        assert_eq!(reqs.len(), 2_000);
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Most requests sit inside some [k*every, k*every + width) window.
        let in_burst = reqs
            .iter()
            .filter(|r| {
                let ns = r.arrival.as_nanos();
                ns % every.as_nanos() < width.as_nanos()
            })
            .count();
        assert!(in_burst * 2 > reqs.len() * 3 / 2, "in_burst {in_burst}");
        // The baseline still trickles between bursts.
        assert!(in_burst < reqs.len(), "baseline vanished");
    }
}
