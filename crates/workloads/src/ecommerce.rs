//! The four Java e-commerce functions (paper §6.4, Fig. 13c).
//!
//! "Purchase, advertising, report generation, and discount applying. The
//! execution time of these services varies from hundreds of milliseconds
//! (report generation) to more than one second (purchase)." Under gVisor
//! their boot contributes 34–88 % of end-to-end latency; under Catalyzer it
//! drops below 5 %.
//!
//! The business logic runs for real against an in-memory [`Store`].

use std::collections::BTreeMap;

use runtimes::{AppProfile, RuntimeKind};
use simtime::SimNanos;

/// The four services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EcommerceOp {
    /// Place an order (inventory + payment + ledger).
    Purchase,
    /// Pick advertisements for a user.
    Advertisement,
    /// Generate a sales report.
    Report,
    /// Apply a discount campaign to the catalogue.
    Discount,
}

impl EcommerceOp {
    /// All services, in Fig. 13c order.
    pub const ALL: [EcommerceOp; 4] = [
        EcommerceOp::Purchase,
        EcommerceOp::Advertisement,
        EcommerceOp::Report,
        EcommerceOp::Discount,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            EcommerceOp::Purchase => "Purchase",
            EcommerceOp::Advertisement => "Advertisement",
            EcommerceOp::Report => "Report",
            EcommerceOp::Discount => "Discount",
        }
    }

    /// Calibrated profile: heavyweight Java services, JVM-dominated boot.
    pub fn profile(self) -> AppProfile {
        let exec_ms = match self {
            EcommerceOp::Purchase => 1_250.0,
            EcommerceOp::Advertisement => 300.0,
            EcommerceOp::Report => 380.0,
            EcommerceOp::Discount => 95.0,
        };
        let mut p = AppProfile::java_hello();
        p.name = format!("ecommerce-{}", self.label());
        p.runtime = RuntimeKind::Java;
        p.runtime_start = SimNanos::from_millis(520);
        p.load_units = 500;
        p.init_heap_pages = 16_384; // 64 MB of framework state
        p.kernel_objects = 24_000;
        p.exec_time = SimNanos::from_millis_f64(exec_ms);
        p.exec_touch_fraction = 0.2;
        p.exec_alloc_pages = 256;
        p
    }
}

/// A catalogue product.
#[derive(Debug, Clone, PartialEq)]
pub struct Product {
    /// Product id.
    pub id: u32,
    /// Price in cents.
    pub price_cents: u64,
    /// Units in stock.
    pub stock: u32,
    /// Category tag (drives advertising).
    pub category: &'static str,
}

/// A completed order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Order {
    /// Order id.
    pub id: u64,
    /// Buyer.
    pub user: u32,
    /// Product purchased.
    pub product: u32,
    /// Quantity.
    pub quantity: u32,
    /// Total paid, cents.
    pub total_cents: u64,
}

/// Errors from the business logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Unknown product id.
    NoSuchProduct(u32),
    /// Not enough stock.
    OutOfStock {
        /// Product id.
        product: u32,
        /// Units available.
        available: u32,
    },
}

/// The in-memory product/order store backing the four functions.
#[derive(Debug, Default)]
pub struct Store {
    products: BTreeMap<u32, Product>,
    orders: Vec<Order>,
    next_order: u64,
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// A store seeded with `n` products across four categories.
    pub fn with_catalogue(n: u32) -> Store {
        let mut store = Store::new();
        let categories = ["books", "games", "garden", "kitchen"];
        for id in 0..n {
            store.products.insert(
                id,
                Product {
                    id,
                    price_cents: 500 + u64::from(id % 97) * 25,
                    stock: 10 + id % 40,
                    category: categories[id as usize % categories.len()],
                },
            );
        }
        store
    }

    /// Product lookup.
    pub fn product(&self, id: u32) -> Option<&Product> {
        self.products.get(&id)
    }

    /// Orders placed.
    pub fn orders(&self) -> &[Order] {
        &self.orders
    }

    /// **Purchase**: check stock, decrement inventory, record the order.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchProduct`] or [`StoreError::OutOfStock`].
    pub fn purchase(
        &mut self,
        user: u32,
        product: u32,
        quantity: u32,
    ) -> Result<Order, StoreError> {
        let p = self
            .products
            .get_mut(&product)
            .ok_or(StoreError::NoSuchProduct(product))?;
        if p.stock < quantity {
            return Err(StoreError::OutOfStock {
                product,
                available: p.stock,
            });
        }
        p.stock -= quantity;
        let order = Order {
            id: self.next_order,
            user,
            product,
            quantity,
            total_cents: p.price_cents * u64::from(quantity),
        };
        self.next_order += 1;
        self.orders.push(order.clone());
        Ok(order)
    }

    /// **Advertisement**: products from the buyer's favourite category that
    /// they have not bought yet, cheapest first.
    pub fn advertisements(&self, user: u32, limit: usize) -> Vec<u32> {
        let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
        let mut owned = Vec::new();
        for o in self.orders.iter().filter(|o| o.user == user) {
            if let Some(p) = self.products.get(&o.product) {
                *counts.entry(p.category).or_insert(0) += 1;
                owned.push(p.id);
            }
        }
        let favourite = counts
            .into_iter()
            .max_by_key(|(_, c)| *c)
            .map(|(cat, _)| cat)
            .unwrap_or("books");
        let mut candidates: Vec<&Product> = self
            .products
            .values()
            .filter(|p| p.category == favourite && !owned.contains(&p.id) && p.stock > 0)
            .collect();
        candidates.sort_by_key(|p| p.price_cents);
        candidates.into_iter().take(limit).map(|p| p.id).collect()
    }

    /// **Report**: revenue and units per category.
    pub fn sales_report(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut report: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for o in &self.orders {
            if let Some(p) = self.products.get(&o.product) {
                let entry = report.entry(p.category).or_insert((0, 0));
                entry.0 += o.total_cents;
                entry.1 += u64::from(o.quantity);
            }
        }
        report
    }

    /// **Discount**: apply `percent` off to a category; returns products
    /// touched.
    pub fn apply_discount(&mut self, category: &str, percent: u8) -> usize {
        let percent = u64::from(percent.min(90));
        let mut touched = 0;
        for p in self.products.values_mut() {
            if p.category == category {
                p.price_cents = p.price_cents * (100 - percent) / 100;
                touched += 1;
            }
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_heavyweight_java() {
        for op in EcommerceOp::ALL {
            let p = op.profile();
            assert_eq!(p.runtime, RuntimeKind::Java);
            assert!(
                p.app_init_estimate() > SimNanos::from_millis(500),
                "{}",
                p.name
            );
        }
        assert!(EcommerceOp::Purchase.profile().exec_time > SimNanos::from_secs(1));
        assert!(EcommerceOp::Report.profile().exec_time < SimNanos::from_millis(500));
    }

    #[test]
    fn purchase_decrements_stock_and_records() {
        let mut s = Store::with_catalogue(20);
        let before = s.product(3).unwrap().stock;
        let order = s.purchase(1, 3, 2).unwrap();
        assert_eq!(s.product(3).unwrap().stock, before - 2);
        assert_eq!(order.total_cents, s.product(3).unwrap().price_cents * 2);
        assert_eq!(s.orders().len(), 1);
    }

    #[test]
    fn purchase_failures() {
        let mut s = Store::with_catalogue(5);
        assert_eq!(
            s.purchase(1, 99, 1).unwrap_err(),
            StoreError::NoSuchProduct(99)
        );
        let stock = s.product(0).unwrap().stock;
        assert!(matches!(
            s.purchase(1, 0, stock + 1).unwrap_err(),
            StoreError::OutOfStock { .. }
        ));
        assert!(s.orders().is_empty());
    }

    #[test]
    fn ads_follow_purchase_history() {
        let mut s = Store::with_catalogue(40);
        // User 7 buys games (ids ≡ 1 mod 4).
        s.purchase(7, 1, 1).unwrap();
        s.purchase(7, 5, 1).unwrap();
        let ads = s.advertisements(7, 5);
        assert!(!ads.is_empty());
        for id in &ads {
            assert_eq!(s.product(*id).unwrap().category, "games");
            assert!(![1, 5].contains(id), "already owned");
        }
        // Cheapest first.
        let prices: Vec<u64> = ads
            .iter()
            .map(|id| s.product(*id).unwrap().price_cents)
            .collect();
        assert!(prices.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn report_aggregates_by_category() {
        let mut s = Store::with_catalogue(8);
        s.purchase(1, 0, 1).unwrap(); // books
        s.purchase(2, 4, 2).unwrap(); // books
        s.purchase(3, 1, 1).unwrap(); // games
        let report = s.sales_report();
        assert_eq!(report["books"].1, 3);
        assert_eq!(report["games"].1, 1);
        assert!(report["books"].0 > 0);
    }

    #[test]
    fn discount_applies_to_category_only() {
        let mut s = Store::with_catalogue(8);
        let before_books = s.product(0).unwrap().price_cents;
        let before_games = s.product(1).unwrap().price_cents;
        let touched = s.apply_discount("books", 50);
        assert_eq!(touched, 2);
        assert_eq!(s.product(0).unwrap().price_cents, before_books / 2);
        assert_eq!(s.product(1).unwrap().price_cents, before_games);
        // Discount clamps at 90 %.
        s.apply_discount("games", 200);
        assert_eq!(s.product(1).unwrap().price_cents, before_games / 10);
    }
}
