//! A miniature SPECjbb-2015-style backend agent.
//!
//! SPECjbb is the paper's heavyweight Java case (§6.2: 1.85 s JVM start,
//! 200 MB of state, 37 838 kernel objects; Fig. 16a: 2 643.8 ms execution).
//! The latency profile lives in [`runtimes::AppProfile::java_specjbb`]; this
//! module supplies *executable* backend logic in the benchmark's spirit — an
//! inter-company supermarket model processing a fixed transaction mix — so
//! examples and tests can run real work inside the restored sandboxes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ecommerce::Store;

/// The SPECjbb transaction mix (fractions of the classic TPC-C-like blend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transaction {
    /// Create a purchase order.
    NewOrder,
    /// Pay for an existing order.
    Payment,
    /// Query an order's status.
    OrderStatus,
    /// Restock low inventory.
    StockLevel,
}

/// Counters produced by a benchmark run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixReport {
    /// Orders created.
    pub new_orders: u64,
    /// Payments settled (cents).
    pub payments_cents: u64,
    /// Status queries answered.
    pub status_queries: u64,
    /// Products restocked.
    pub restocks: u64,
    /// Transactions rejected (out of stock etc.).
    pub rejected: u64,
}

/// The backend agent: owns the inventory and processes the mix.
#[derive(Debug)]
pub struct BackendAgent {
    store: Store,
    rng: StdRng,
    settled: Vec<u64>, // order ids already paid
}

impl BackendAgent {
    /// An agent over a catalogue of `products` items, deterministic in
    /// `seed`.
    pub fn new(products: u32, seed: u64) -> BackendAgent {
        BackendAgent {
            store: Store::with_catalogue(products),
            rng: StdRng::seed_from_u64(seed),
            settled: Vec::new(),
        }
    }

    /// The inventory (for assertions).
    pub fn store(&self) -> &Store {
        &self.store
    }

    fn pick(&mut self) -> Transaction {
        // SPECjbb-like weights: mostly new orders and payments.
        match self.rng.gen_range(0u32..100) {
            0..=44 => Transaction::NewOrder,
            45..=78 => Transaction::Payment,
            79..=90 => Transaction::OrderStatus,
            _ => Transaction::StockLevel,
        }
    }

    /// Processes one transaction.
    pub fn step(&mut self, report: &mut MixReport) {
        match self.pick() {
            Transaction::NewOrder => {
                let user = self.rng.gen_range(1u32..200);
                let product = self.rng.gen_range(0u32..40);
                let quantity = self.rng.gen_range(1u32..4);
                match self.store.purchase(user, product, quantity) {
                    Ok(_) => report.new_orders += 1,
                    Err(_) => report.rejected += 1,
                }
            }
            Transaction::Payment => {
                // Settle the oldest unpaid order.
                let unpaid = self
                    .store
                    .orders()
                    .iter()
                    .find(|o| !self.settled.contains(&o.id))
                    .map(|o| (o.id, o.total_cents));
                match unpaid {
                    Some((id, cents)) => {
                        self.settled.push(id);
                        report.payments_cents += cents;
                    }
                    None => report.rejected += 1,
                }
            }
            Transaction::OrderStatus => {
                // Look up the most recent order for a random user; the query
                // itself counts whether or not a match exists.
                let user = self.rng.gen_range(1u32..200);
                let _latest = self.store.orders().iter().rev().find(|o| o.user == user);
                report.status_queries += 1;
            }
            Transaction::StockLevel => {
                // Restock anything that ran dry, and move dry stock along
                // with a small clearance discount.
                let dry = (0u32..40)
                    .filter(|id| matches!(self.store.product(*id), Some(p) if p.stock == 0))
                    .count() as u64;
                if dry > 0 {
                    report.restocks += dry;
                    self.store.apply_discount("books", 1);
                }
            }
        }
    }

    /// Runs `count` transactions and reports the mix outcome.
    pub fn run_mix(&mut self, count: u64) -> MixReport {
        let mut report = MixReport::default();
        for _ in 0..count {
            self.step(&mut report);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        let a = BackendAgent::new(40, 7).run_mix(500);
        let b = BackendAgent::new(40, 7).run_mix(500);
        assert_eq!(a, b);
        let c = BackendAgent::new(40, 8).run_mix(500);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_shape_matches_weights() {
        let report = BackendAgent::new(60, 1).run_mix(2_000);
        // New orders dominate; everything occurs.
        assert!(report.new_orders > 500, "{report:?}");
        assert!(report.payments_cents > 0);
        assert!(report.status_queries > 100);
        let processed = report.new_orders + report.status_queries / 2 + report.rejected;
        assert!(processed > 1_000);
    }

    #[test]
    fn payments_never_exceed_order_totals() {
        let mut agent = BackendAgent::new(40, 3);
        let report = agent.run_mix(1_000);
        let total_ordered: u64 = agent.store().orders().iter().map(|o| o.total_cents).sum();
        assert!(report.payments_cents <= total_ordered, "{report:?}");
    }

    #[test]
    fn inventory_only_decreases_or_restocks() {
        let mut agent = BackendAgent::new(20, 5);
        let initial: u32 = (0..20)
            .map(|i| agent.store().product(i).unwrap().stock)
            .sum();
        agent.run_mix(800);
        let after: u32 = (0..20)
            .map(|i| agent.store().product(i).unwrap().stock)
            .sum();
        assert!(after <= initial, "stock must be consumed by orders");
    }
}
