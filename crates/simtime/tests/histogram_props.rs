//! Property tests for the fixed-bucket latency histogram.
//!
//! The two claims every `BENCH_*.json` export leans on:
//!
//! 1. **Quantiles are conservative within one 1-2-5 bucket** — the reported
//!    quantile is exactly the inclusive upper bound of the bucket holding
//!    the true nearest-rank sample (the recorded maximum for the overflow
//!    bucket). It never under-reports the true quantile and never skips to
//!    a higher bucket.
//! 2. **Recording and merging are order-free** — recording the same samples
//!    in any order yields equal histograms, and merging shards equals
//!    recording the union, so per-function shards combine without changing
//!    any exported number.

use proptest::prelude::*;
use simtime::metrics::BUCKET_BOUNDS_NS;
use simtime::{LatencyHistogram, SimNanos};

fn from_samples(samples: &[u64]) -> LatencyHistogram {
    let mut hist = LatencyHistogram::new();
    for &ns in samples {
        hist.record(SimNanos::from_nanos(ns));
    }
    hist
}

/// The true nearest-rank quantile of `samples` (which must be non-empty).
fn true_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0);
    let idx = usize::try_from(rank as u64).unwrap_or(usize::MAX) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

/// Samples spanning the whole ladder: sub-µs, every 1-2-5 decade, and
/// past the 10 s overflow bound.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..30_000_000_000, 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The histogram quantile equals the upper bound of the 1-2-5 bucket
    /// holding the true nearest-rank sample — an upper estimate that is
    /// never below the true quantile and never a whole bucket above it.
    #[test]
    fn quantile_brackets_the_true_quantile_within_one_bucket(
        samples in samples(),
        q_pct in 0u32..=100,
    ) {
        let hist = from_samples(&samples);
        let q = f64::from(q_pct) / 100.0;
        let truth = true_quantile(&samples, q);
        let reported = hist.quantile(q).unwrap().as_nanos();

        prop_assert!(
            reported >= truth,
            "quantile must never under-report: reported {reported} < true {truth}"
        );
        let expected = match BUCKET_BOUNDS_NS.iter().find(|&&b| b >= truth) {
            Some(&bound) => bound,
            // Overflow bucket: the recorded maximum stands in for a bound.
            None => hist.max().unwrap().as_nanos(),
        };
        prop_assert_eq!(
            reported, expected,
            "quantile must report the bound of the bucket holding the true \
             nearest-rank sample ({})", truth
        );
    }

    /// min/max/count are exact and the mean is the true mean rounded down —
    /// only quantiles pay the bucket quantization.
    #[test]
    fn summary_stats_are_exact(samples in samples()) {
        let hist = from_samples(&samples);
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(
            hist.min().unwrap().as_nanos(),
            *samples.iter().min().unwrap()
        );
        prop_assert_eq!(
            hist.max().unwrap().as_nanos(),
            *samples.iter().max().unwrap()
        );
        let sum: u64 = samples.iter().sum();
        prop_assert_eq!(
            hist.mean().unwrap().as_nanos(),
            sum / samples.len() as u64
        );
    }

    /// Recording order is invisible: any permutation (reversal stands in
    /// for all of them) serializes to byte-identical JSON.
    #[test]
    fn recording_order_is_invisible(samples in samples()) {
        let forward = from_samples(&samples);
        let mut reversed_samples = samples.clone();
        reversed_samples.reverse();
        let reversed = from_samples(&reversed_samples);
        prop_assert_eq!(&forward, &reversed);
        prop_assert_eq!(
            serde_json::to_string(&forward).unwrap(),
            serde_json::to_string(&reversed).unwrap()
        );
    }

    /// Merging shards equals recording the union, whichever shard folds
    /// into which — histograms are conflict-free aggregates.
    #[test]
    fn merge_equals_recording_the_union(
        samples in samples(),
        split_pct in 0u32..=100,
    ) {
        let split = samples.len() * usize::try_from(split_pct).unwrap() / 100;
        let (left, right) = samples.split_at(split);
        let whole = from_samples(&samples);

        let mut left_into_right = from_samples(right);
        left_into_right.merge(&from_samples(left));
        prop_assert_eq!(&left_into_right, &whole);

        let mut right_into_left = from_samples(left);
        right_into_left.merge(&from_samples(right));
        prop_assert_eq!(&right_into_left, &whole);

        // Merging an empty shard is a no-op.
        let mut with_empty = whole.clone();
        with_empty.merge(&LatencyHistogram::new());
        prop_assert_eq!(&with_empty, &whole);
    }
}
