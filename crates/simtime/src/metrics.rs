//! Deterministic counters, gauges, and fixed-bucket latency histograms.
//!
//! The platform layer (gateway, pools, autoscaler) needs aggregate
//! observability — invocation counts, pool occupancy, per-function latency
//! distributions — with the same determinism guarantee as the span tracer:
//! identical runs must serialize to identical bytes. Everything here is
//! keyed through `BTreeMap`s (stable iteration order) and counts virtual
//! [`SimNanos`], never wall time.
//!
//! Histograms use a fixed 1-2-5 log ladder from 1 µs to 10 s plus an
//! overflow bucket, so bucket boundaries are part of the stable JSON schema
//! (`BENCH_pr2.json`) rather than data-dependent.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::SimNanos;

/// Inclusive upper bounds (ns) of the fixed histogram buckets: a 1-2-5
/// ladder from 1 µs to 10 s. Samples above the last bound land in one
/// overflow bucket.
pub const BUCKET_BOUNDS_NS: [u64; 22] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// A latency histogram over the fixed [`BUCKET_BOUNDS_NS`] ladder.
///
/// Quantiles resolve to the inclusive upper bound of the bucket holding the
/// nearest-rank sample (the recorded maximum for the overflow bucket), so
/// p50/p90/p99 are conservative upper estimates with bounded, schema-stable
/// error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    min: SimNanos,
    max: SimNanos,
    sum: SimNanos,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            min: SimNanos::ZERO,
            max: SimNanos::ZERO,
            sum: SimNanos::ZERO,
        }
    }

    fn bucket_of(sample: SimNanos) -> usize {
        BUCKET_BOUNDS_NS.partition_point(|&b| b < sample.as_nanos())
    }

    /// Records one sample.
    pub fn record(&mut self, sample: SimNanos) {
        self.buckets[Self::bucket_of(sample)] += 1;
        if self.count == 0 || sample < self.min {
            self.min = sample;
        }
        if sample > self.max {
            self.max = sample;
        }
        self.sum += sample;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<SimNanos> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<SimNanos> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<SimNanos> {
        (self.count > 0).then(|| SimNanos::from_nanos(self.sum.as_nanos() / self.count))
    }

    /// Upper bound on the quantile `q` ∈ [0, 1]: the bound of the bucket
    /// containing the nearest-rank sample. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<SimNanos> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(match BUCKET_BOUNDS_NS.get(i) {
                    Some(&bound) => SimNanos::from_nanos(bound),
                    None => self.max, // overflow bucket
                });
            }
        }
        Some(self.max)
    }

    /// Median upper bound.
    pub fn p50(&self) -> Option<SimNanos> {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> Option<SimNanos> {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> Option<SimNanos> {
        self.quantile(0.99)
    }

    /// Folds `other` into `self`, as if every sample recorded into `other`
    /// had been recorded here instead. Because the bucket ladder is fixed
    /// and shared, merging is exact: counts add bucket-wise and min/max/sum
    /// combine, so `a.merge(&b)` equals recording the union in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Iterates the non-empty buckets as `(inclusive upper bound, count)`;
    /// the overflow bucket reports the recorded maximum as its bound.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (SimNanos, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let bound = match BUCKET_BOUNDS_NS.get(i) {
                    Some(&b) => SimNanos::from_nanos(b),
                    None => self.max,
                };
                (bound, c)
            })
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl FromIterator<SimNanos> for LatencyHistogram {
    fn from_iter<I: IntoIterator<Item = SimNanos>>(iter: I) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for s in iter {
            h.record(s);
        }
        h
    }
}

/// A deterministic registry of named counters, gauges, and latency
/// histograms.
///
/// Names follow a `subsystem.metric` convention (e.g. `pool.hits`,
/// `gateway.boot.c-hello`). Reading a metric that was never written returns
/// zero/`None` rather than creating it, so read paths never perturb the
/// serialized state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments the counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `by` to the counter `name`.
    pub fn add(&mut self, name: &str, by: u64) {
        let c = self.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(by);
    }

    /// Reads the counter `name` (zero when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Reads the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records `sample` into the histogram `name`, creating it on first
    /// observation.
    pub fn observe(&mut self, name: &str, sample: SimNanos) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(sample);
    }

    /// Reads the histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, histograms
    /// [`merge`](LatencyHistogram::merge) bucket-wise, and gauges (which are
    /// point-in-time readings, not accumulations) take `other`'s value.
    /// Used to roll per-pool registries up into one fleet view.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, value) in other.counters() {
            self.add(name, value);
        }
        for (name, value) in other.gauges() {
            self.set_gauge(name, value);
        }
        for (name, hist) in other.histograms() {
            self.histograms
                .entry(name.to_owned())
                .or_default()
                .merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_sorted_and_fixed() {
        assert!(BUCKET_BOUNDS_NS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(BUCKET_BOUNDS_NS[0], 1_000);
        assert_eq!(*BUCKET_BOUNDS_NS.last().unwrap(), 10_000_000_000);
    }

    #[test]
    fn histogram_records_into_the_right_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(SimNanos::from_nanos(400)); // ≤1 µs
        h.record(SimNanos::from_micros(1)); // ≤1 µs (inclusive bound)
        h.record(SimNanos::from_micros(3)); // ≤5 µs
        h.record(SimNanos::from_secs(30)); // overflow
        assert_eq!(h.count(), 4);
        let buckets: Vec<(SimNanos, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets[0], (SimNanos::from_micros(1), 2));
        assert_eq!(buckets[1], (SimNanos::from_micros(5), 1));
        assert_eq!(buckets[2], (SimNanos::from_secs(30), 1)); // overflow reports max
        assert_eq!(h.min(), Some(SimNanos::from_nanos(400)));
        assert_eq!(h.max(), Some(SimNanos::from_secs(30)));
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h: LatencyHistogram = (1..=100).map(SimNanos::from_micros).collect();
        // p50: 50th sample = 50 µs, bucket bound 50 µs exactly.
        assert_eq!(h.p50(), Some(SimNanos::from_micros(50)));
        // p90: 90th sample = 90 µs → ≤100 µs bucket.
        assert_eq!(h.p90(), Some(SimNanos::from_micros(100)));
        assert_eq!(h.p99(), Some(SimNanos::from_micros(100)));
        assert_eq!(LatencyHistogram::new().p50(), None);
    }

    #[test]
    fn overflow_quantile_reports_recorded_max() {
        let mut h = LatencyHistogram::new();
        h.record(SimNanos::from_secs(25));
        assert_eq!(h.p99(), Some(SimNanos::from_secs(25)));
    }

    #[test]
    fn mean_and_emptiness() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        h.record(SimNanos::from_micros(2));
        h.record(SimNanos::from_micros(4));
        assert_eq!(h.mean(), Some(SimNanos::from_micros(3)));
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.inc("pool.hits");
        m.add("pool.hits", 2);
        m.set_gauge("pool.size", 4);
        m.observe("boot", SimNanos::from_millis(1));
        assert_eq!(m.counter("pool.hits"), 3);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("pool.size"), Some(4));
        assert_eq!(m.gauge("never"), None);
        assert_eq!(m.histogram("boot").unwrap().count(), 1);
        assert!(m.histogram("never").is_none());
        assert!(!m.is_empty());
    }

    #[test]
    fn registry_iteration_is_name_ordered() {
        let mut m = MetricsRegistry::new();
        m.inc("z");
        m.inc("a");
        m.inc("m");
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let samples_a = [3u64, 900, 40_000];
        let samples_b = [1u64, 25_000_000_000];
        let mut a: LatencyHistogram = samples_a
            .iter()
            .map(|&us| SimNanos::from_micros(us))
            .collect();
        let b: LatencyHistogram = samples_b
            .iter()
            .map(|&us| SimNanos::from_micros(us))
            .collect();
        a.merge(&b);
        let union: LatencyHistogram = samples_a
            .iter()
            .chain(&samples_b)
            .map(|&us| SimNanos::from_micros(us))
            .collect();
        assert_eq!(a, union);
        // Merging an empty histogram changes nothing, in either direction.
        let mut empty = LatencyHistogram::new();
        empty.merge(&union);
        assert_eq!(empty, union);
        let mut merged = union.clone();
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged, union);
    }

    #[test]
    fn registry_merge_rolls_up() {
        let mut fleet = MetricsRegistry::new();
        fleet.inc("pool.boot");
        fleet.observe("startup", SimNanos::from_millis(2));
        let mut pool = MetricsRegistry::new();
        pool.add("pool.boot", 2);
        pool.set_gauge("pool.idle", 3);
        pool.observe("startup", SimNanos::from_micros(5));
        fleet.merge_from(&pool);
        assert_eq!(fleet.counter("pool.boot"), 3);
        assert_eq!(fleet.gauge("pool.idle"), Some(3));
        assert_eq!(fleet.histogram("startup").unwrap().count(), 2);
    }

    #[test]
    fn registry_serialization_round_trips() {
        let mut m = MetricsRegistry::new();
        m.inc("invocations");
        m.set_gauge("pool.size", -1);
        m.observe("boot", SimNanos::from_micros(700));
        let text = serde_json::to_string(&m).unwrap();
        let back: MetricsRegistry = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
