//! Summary statistics and CDFs for figure regeneration.
//!
//! Figure 1 of the paper is a CDF of the execution/overall-latency ratio
//! across 14 serverless functions; Figure 16d plots per-invocation latency
//! series with heavy tails. This module provides the small, dependency-free
//! statistics needed to print those series.

use crate::SimNanos;

/// Summary statistics over a latency sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: SimNanos,
    /// Minimum sample.
    pub min: SimNanos,
    /// Maximum sample.
    pub max: SimNanos,
    /// Median (p50).
    pub p50: SimNanos,
    /// 95th percentile.
    pub p95: SimNanos,
    /// 99th percentile.
    pub p99: SimNanos,
}

/// Computes summary statistics. Returns `None` for an empty sample.
///
/// Percentiles use the nearest-rank method on a sorted copy.
///
/// # Example
///
/// ```
/// use simtime::stats::summarize;
/// use simtime::SimNanos;
///
/// let xs: Vec<SimNanos> = (1..=100).map(SimNanos::from_micros).collect();
/// let s = summarize(&xs).unwrap();
/// assert_eq!(s.p50, SimNanos::from_micros(50));
/// assert_eq!(s.p99, SimNanos::from_micros(99));
/// ```
pub fn summarize(samples: &[SimNanos]) -> Option<Summary> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let count = sorted.len();
    let total_ns: u128 = sorted.iter().map(|d| d.as_nanos() as u128).sum();
    let mean = SimNanos::from_nanos((total_ns / count as u128) as u64);
    let rank = |p: f64| -> SimNanos {
        let idx = ((p * count as f64).ceil() as usize).clamp(1, count) - 1;
        sorted[idx]
    };
    Some(Summary {
        count,
        mean,
        min: sorted[0],
        max: sorted[count - 1],
        p50: rank(0.50),
        p95: rank(0.95),
        p99: rank(0.99),
    })
}

/// An empirical CDF over arbitrary `f64` values (e.g. latency *ratios* for
/// Figure 1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples; NaNs are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(sorted.iter().all(|x| !x.is_nan()), "CDF sample was NaN");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
        Cdf { sorted }
    }

    /// Fraction of samples ≤ `x` (0.0 for an empty CDF).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&s| s <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The value below which fraction `q` of samples fall (inverse CDF,
    /// nearest rank). Returns `None` for an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let idx = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.sorted[idx])
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Emits `(x, F(x))` steps for plotting/printing, one per sample.
    pub fn steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n as f64))
    }

    /// The maximum sample, if any (Fig. 1 reports "the ratio of all functions
    /// in gVisor can not even achieve 65.54 %": the CDF's max x).
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

/// A log-scale latency histogram (power-of-two buckets from 1 µs), the shape
/// used to summarize heavy-tailed host behaviour like Fig. 16d's `dup`
/// latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    const BASE_NS: u64 = 1_000; // first bucket: ≤1 µs
    const BUCKETS: usize = 32; // up to ~4 000 s

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
        }
    }

    fn bucket_of(sample: SimNanos) -> usize {
        let ns = sample.as_nanos().max(1);
        let ratio = ns.div_ceil(Self::BASE_NS).max(1);
        // Smallest power of two ≥ ratio names the bucket.
        (ratio.next_power_of_two().trailing_zeros() as usize).min(Self::BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, sample: SimNanos) {
        self.buckets[Self::bucket_of(sample)] += 1;
        self.count += 1;
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The inclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> SimNanos {
        SimNanos::from_nanos(Self::BASE_NS << i)
    }

    /// Iterates non-empty buckets as `(upper bound, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (SimNanos, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper(i), c))
    }

    /// An upper bound on the quantile `q` (the bucket boundary at or above
    /// it). Returns `None` when empty.
    pub fn quantile_upper(&self, q: f64) -> Option<SimNanos> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(Self::bucket_upper(Self::BUCKETS - 1))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl FromIterator<SimNanos> for Histogram {
    fn from_iter<I: IntoIterator<Item = SimNanos>>(iter: I) -> Histogram {
        let mut h = Histogram::new();
        for s in iter {
            h.record(s);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_empty_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn summarize_single_sample() {
        let s = summarize(&[SimNanos::from_micros(7)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, SimNanos::from_micros(7));
        assert_eq!(s.min, s.max);
        assert_eq!(s.p99, SimNanos::from_micros(7));
    }

    #[test]
    fn summarize_percentiles() {
        let xs: Vec<SimNanos> = (1..=1000).map(SimNanos::from_nanos).collect();
        let s = summarize(&xs).unwrap();
        assert_eq!(s.p50, SimNanos::from_nanos(500));
        assert_eq!(s.p95, SimNanos::from_nanos(950));
        assert_eq!(s.p99, SimNanos::from_nanos(990));
        assert_eq!(s.min, SimNanos::from_nanos(1));
        assert_eq!(s.max, SimNanos::from_nanos(1000));
    }

    #[test]
    fn cdf_basic() {
        let cdf = Cdf::from_samples([0.1, 0.5, 0.9, 0.3]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.at(0.0), 0.0);
        assert_eq!(cdf.at(0.3), 0.5);
        assert_eq!(cdf.at(1.0), 1.0);
        assert_eq!(cdf.max(), Some(0.9));
        assert_eq!(cdf.quantile(0.5), Some(0.3));
    }

    #[test]
    fn cdf_steps_are_monotone() {
        let cdf = Cdf::from_samples([3.0, 1.0, 2.0]);
        let steps: Vec<(f64, f64)> = cdf.steps().collect();
        assert_eq!(steps, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn cdf_empty() {
        let cdf = Cdf::from_samples([]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.at(5.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.max(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cdf_rejects_nan() {
        let _ = Cdf::from_samples([f64::NAN]);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let mut h = Histogram::new();
        h.record(SimNanos::from_nanos(500)); // ≤1 µs bucket
        h.record(SimNanos::from_micros(1)); // ≤1 µs bucket
        h.record(SimNanos::from_micros(3)); // ≤4 µs bucket
        h.record(SimNanos::from_millis(30)); // a high bucket
        assert_eq!(h.count(), 4);
        let buckets: Vec<(SimNanos, u64)> = h.iter().collect();
        assert_eq!(buckets[0], (SimNanos::from_micros(1), 2));
        assert_eq!(buckets[1], (SimNanos::from_micros(4), 1));
        assert!(buckets[2].0 >= SimNanos::from_millis(30));
    }

    #[test]
    fn histogram_quantiles_capture_the_tail() {
        // 99 fast dups + 1 burst: p50 tiny, p100 ≥ burst.
        let h: Histogram = (0..99)
            .map(|_| SimNanos::from_micros(1))
            .chain(std::iter::once(SimNanos::from_millis(28)))
            .collect();
        assert_eq!(h.quantile_upper(0.5), Some(SimNanos::from_micros(1)));
        assert!(h.quantile_upper(1.0).unwrap() >= SimNanos::from_millis(28));
        assert_eq!(Histogram::new().quantile_upper(0.5), None);
    }

    #[test]
    fn histogram_never_drops_samples() {
        let mut h = Histogram::new();
        h.record(SimNanos::ZERO);
        h.record(SimNanos::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.iter().map(|(_, c)| c).sum::<u64>(), 2);
    }
}
