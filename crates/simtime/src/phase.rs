use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{SimClock, SimNanos};

/// A named-phase latency breakdown, like the pipelines in the paper's
/// Figure 2 ("Parse Configuration → Boot Sandbox process → ... → Execute
/// handler").
///
/// Phases are recorded in order; the same name may appear more than once
/// (repeat occurrences are kept separate so pipelines remain legible), and
/// [`Breakdown::total_for`] aggregates across occurrences.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    phases: Vec<(String, SimNanos)>,
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Appends a phase measurement.
    pub fn push(&mut self, name: impl Into<String>, cost: SimNanos) {
        self.phases.push((name.into(), cost));
    }

    /// Iterates over `(name, cost)` pairs in recording order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SimNanos)> {
        self.phases.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True if no phase has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Sum of every recorded phase.
    pub fn total(&self) -> SimNanos {
        self.phases.iter().map(|(_, c)| *c).sum()
    }

    /// Sum of all occurrences of the phase called `name`.
    pub fn total_for(&self, name: &str) -> SimNanos {
        self.phases
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Sum of all phases whose name satisfies `pred`. Used to aggregate into
    /// the paper's coarse categories (e.g. Fig. 12 splits everything into
    /// "Kernel" / "Memory" / "I/O").
    pub fn total_matching(&self, pred: impl Fn(&str) -> bool) -> SimNanos {
        self.phases
            .iter()
            .filter(|(n, _)| pred(n))
            .map(|(_, c)| *c)
            .sum()
    }

    /// Merges another breakdown's phases onto the end of this one.
    pub fn extend_from(&mut self, other: &Breakdown) {
        self.phases.extend(other.phases.iter().cloned());
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.phases.is_empty() {
            return write!(f, "(empty breakdown)");
        }
        for (i, (name, cost)) in self.phases.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{name} {cost}")?;
        }
        write!(f, " (total {})", self.total())
    }
}

/// Records named phases against a [`SimClock`].
///
/// # Example
///
/// ```
/// use simtime::{PhaseRecorder, SimClock, SimNanos};
///
/// let clock = SimClock::new();
/// let mut rec = PhaseRecorder::new(&clock);
/// rec.phase("recover-kernel", |clk| clk.charge(SimNanos::from_millis(8)));
/// rec.phase("reconnect-io", |clk| clk.charge(SimNanos::from_millis(2)));
/// let breakdown = rec.finish();
/// assert_eq!(breakdown.total(), SimNanos::from_millis(10));
/// assert_eq!(breakdown.total_for("reconnect-io"), SimNanos::from_millis(2));
/// ```
#[derive(Debug)]
pub struct PhaseRecorder {
    clock: SimClock,
    breakdown: Breakdown,
}

impl PhaseRecorder {
    /// Creates a recorder charging the given clock.
    pub fn new(clock: &SimClock) -> Self {
        PhaseRecorder {
            clock: clock.clone(),
            breakdown: Breakdown::new(),
        }
    }

    /// Runs `f`, recording everything it charges to the clock as one phase.
    pub fn phase<T>(&mut self, name: impl Into<String>, f: impl FnOnce(&SimClock) -> T) -> T {
        let start = self.clock.now();
        let out = f(&self.clock);
        let cost = self.clock.since(start);
        self.breakdown.push(name, cost);
        out
    }

    /// Records a phase with an already-known cost, charging the clock.
    pub fn charge_phase(&mut self, name: impl Into<String>, cost: SimNanos) {
        self.clock.charge(cost);
        self.breakdown.push(name, cost);
    }

    /// Total across recorded phases so far.
    pub fn total(&self) -> SimNanos {
        self.breakdown.total()
    }

    /// The clock being charged.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Consumes the recorder, returning the breakdown.
    pub fn finish(self) -> Breakdown {
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_record_in_order() {
        let clock = SimClock::new();
        let mut rec = PhaseRecorder::new(&clock);
        rec.charge_phase("a", SimNanos::from_micros(1));
        rec.charge_phase("b", SimNanos::from_micros(2));
        rec.charge_phase("a", SimNanos::from_micros(3));
        let b = rec.finish();
        let names: Vec<&str> = b.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b", "a"]);
        assert_eq!(b.total_for("a"), SimNanos::from_micros(4));
        assert_eq!(b.total(), SimNanos::from_micros(6));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn phase_measures_closure_charges() {
        let clock = SimClock::new();
        let mut rec = PhaseRecorder::new(&clock);
        let out = rec.phase("work", |clk| {
            clk.charge(SimNanos::from_millis(7));
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(rec.total(), SimNanos::from_millis(7));
        assert_eq!(clock.now(), SimNanos::from_millis(7));
    }

    #[test]
    fn total_matching_aggregates_categories() {
        let mut b = Breakdown::new();
        b.push("io:open", SimNanos::from_micros(5));
        b.push("io:socket", SimNanos::from_micros(7));
        b.push("mem:load", SimNanos::from_micros(100));
        assert_eq!(
            b.total_matching(|n| n.starts_with("io:")),
            SimNanos::from_micros(12)
        );
    }

    #[test]
    fn display_formats_pipeline() {
        let mut b = Breakdown::new();
        b.push("parse", SimNanos::from_millis_f64(1.369));
        b.push("spawn", SimNanos::from_micros(319));
        let text = b.to_string();
        assert!(text.contains("parse 1.369ms"), "{text}");
        assert!(text.contains("total"), "{text}");
        assert_eq!(Breakdown::new().to_string(), "(empty breakdown)");
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Breakdown::new();
        a.push("x", SimNanos::from_nanos(1));
        let mut b = Breakdown::new();
        b.push("y", SimNanos::from_nanos(2));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total(), SimNanos::from_nanos(3));
    }
}
