//! Deterministic latency jitter.
//!
//! The paper's microbenchmarks show noisy, heavy-tailed host behaviour (the
//! `dup` bursts of Figure 16d, scheduling noise under 1 000 concurrent
//! instances in Figure 15). The simulation reproduces these *shapes* with a
//! seeded RNG so figure regeneration is bit-for-bit repeatable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SimNanos;

/// A seeded jitter source.
///
/// # Example
///
/// ```
/// use simtime::jitter::Jitter;
/// use simtime::SimNanos;
///
/// let mut a = Jitter::seeded(7);
/// let mut b = Jitter::seeded(7);
/// let base = SimNanos::from_micros(100);
/// assert_eq!(a.uniform(base, 0.1), b.uniform(base, 0.1)); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct Jitter {
    rng: StdRng,
}

impl Jitter {
    /// Creates a jitter source from a seed.
    pub fn seeded(seed: u64) -> Self {
        Jitter {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns `base` scaled by a uniform factor in `[1 - spread, 1 + spread]`.
    ///
    /// `spread` is clamped to `[0, 1]`.
    pub fn uniform(&mut self, base: SimNanos, spread: f64) -> SimNanos {
        let spread = spread.clamp(0.0, 1.0);
        let factor = 1.0 + self.rng.gen_range(-spread..=spread);
        base.scale(factor)
    }

    /// Returns a heavy-tailed sample: `base` most of the time, but with
    /// probability `tail_prob` returns `tail` jittered ±20 %.
    ///
    /// This is the shape behind Figure 16d's `dup` latency: ~1 µs fast path
    /// with rare ~30 ms fdtable-expansion bursts.
    pub fn heavy_tail(&mut self, base: SimNanos, tail: SimNanos, tail_prob: f64) -> SimNanos {
        if self.rng.gen_bool(tail_prob.clamp(0.0, 1.0)) {
            self.uniform(tail, 0.2)
        } else {
            self.uniform(base, 0.15)
        }
    }

    /// Returns a multiplicative log-normal-ish factor ≥ ~0.5 with median 1.0,
    /// computed as `exp(sigma * z)` for a cheap normal approximation of `z`
    /// (sum of 4 uniforms). Used for per-instance scheduling noise.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        let z: f64 = (0..4).map(|_| self.rng.gen_range(-1.0..1.0)).sum::<f64>() * 0.5;
        (sigma * z).exp()
    }

    /// Draws a uniform integer in `[lo, hi]`.
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_across_instances() {
        let mut a = Jitter::seeded(42);
        let mut b = Jitter::seeded(42);
        for _ in 0..64 {
            assert_eq!(
                a.heavy_tail(SimNanos::from_micros(1), SimNanos::from_millis(30), 0.03),
                b.heavy_tail(SimNanos::from_micros(1), SimNanos::from_millis(30), 0.03),
            );
        }
    }

    #[test]
    fn uniform_stays_in_band() {
        let mut j = Jitter::seeded(1);
        let base = SimNanos::from_micros(100);
        for _ in 0..256 {
            let s = j.uniform(base, 0.1);
            assert!(s >= SimNanos::from_micros(90) && s <= SimNanos::from_micros(110));
        }
    }

    #[test]
    fn heavy_tail_produces_bursts() {
        let mut j = Jitter::seeded(9);
        let base = SimNanos::from_micros(1);
        let tail = SimNanos::from_millis(30);
        let mut bursts = 0;
        for _ in 0..1_000 {
            if j.heavy_tail(base, tail, 0.05) > SimNanos::from_millis(1) {
                bursts += 1;
            }
        }
        // ~5 % of 1 000 = ~50 bursts; allow a generous deterministic band.
        assert!((20..120).contains(&bursts), "bursts = {bursts}");
    }

    #[test]
    fn lognormal_factor_centers_near_one() {
        let mut j = Jitter::seeded(3);
        let mean: f64 = (0..2_000).map(|_| j.lognormal_factor(0.1)).sum::<f64>() / 2_000.0;
        assert!((0.9..1.1).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn int_in_handles_degenerate_range() {
        let mut j = Jitter::seeded(5);
        assert_eq!(j.int_in(7, 7), 7);
        assert_eq!(j.int_in(9, 3), 9);
        let v = j.int_in(1, 4);
        assert!((1..=4).contains(&v));
    }
}
