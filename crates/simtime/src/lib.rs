//! Virtual time and cost accounting for the Catalyzer reproduction.
//!
//! The Catalyzer paper ([Du et al., ASPLOS 2020]) reports wall-clock latencies
//! measured on two physical machines (an i7-7700 desktop and a 96-core server)
//! running a patched gVisor on Linux/KVM. This reproduction runs the same
//! *mechanisms* (checkpoint/restore, on-demand paging, sandbox fork) on real
//! Rust data structures, but the raw *hardware and host-kernel* costs — disk
//! reads, KVM ioctls, page-fault traps, process spawns — are charged to a
//! deterministic virtual clock using a calibrated [`CostModel`].
//!
//! The crate provides:
//!
//! - [`SimNanos`]: a nanosecond-precision virtual duration / instant newtype.
//! - [`SimClock`]: an accumulating virtual clock that boot engines charge.
//! - [`CostModel`]: every machine-level unit cost, with presets calibrated
//!   against the numbers printed in the paper (see `DESIGN.md` §6).
//! - [`PhaseRecorder`]: named-phase breakdowns matching the paper's Figure 2.
//! - [`trace`]: nested span trees stamped with virtual time, the structured
//!   successor to flat breakdowns.
//! - [`metrics`]: deterministic counters, gauges, and fixed-bucket latency
//!   histograms for the platform layer.
//! - [`stats`]: summary statistics and CDFs used by the figure regenerators.
//!
//! # Example
//!
//! ```
//! use simtime::{CostModel, PhaseRecorder, SimClock, SimNanos};
//!
//! let model = CostModel::experimental_machine();
//! let clock = SimClock::new();
//! let mut phases = PhaseRecorder::new(&clock);
//!
//! phases.phase("parse-config", |clk| {
//!     clk.charge(model.host.config_parse_base);
//! });
//!
//! assert_eq!(clock.now(), model.host.config_parse_base);
//! assert!(phases.total() > SimNanos::ZERO);
//! ```
//!
//! [Du et al., ASPLOS 2020]: https://doi.org/10.1145/3373376.3378512

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod clock;
mod cost;
mod duration;
pub mod jitter;
pub mod metrics;
pub mod names;
mod phase;
pub mod stats;
pub mod trace;

pub use clock::SimClock;
pub use cost::{CostModel, HostCosts, IoCosts, KvmCosts, MachineKind, MemCosts, ObjectCosts};
pub use duration::SimNanos;
pub use metrics::{LatencyHistogram, MetricsRegistry};
pub use phase::{Breakdown, PhaseRecorder};
pub use trace::{Span, Tracer};
