use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use crate::SimNanos;

/// An accumulating virtual clock.
///
/// Boot engines, guest kernels, and workloads *charge* costs to the clock as
/// they perform work; the clock's reading is the total latency on the current
/// critical path. Clones share the same underlying counter, so a clock handle
/// can be passed down through subsystems cheaply.
///
/// `SimClock` is deliberately single-threaded (`!Send`): parallel stages (such
/// as Catalyzer's stage-2 relation-table fixup) compute their per-worker cost
/// off-clock and charge the *maximum* — the critical path — once, via
/// [`SimClock::charge_parallel`].
///
/// # Example
///
/// ```
/// use simtime::{SimClock, SimNanos};
///
/// let clock = SimClock::new();
/// let handle = clock.clone(); // shares the same timeline
/// handle.charge(SimNanos::from_micros(500));
/// assert_eq!(clock.now(), SimNanos::from_micros(500));
/// ```
#[derive(Clone, Default)]
pub struct SimClock {
    ns: Rc<Cell<u64>>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Creates a clock pre-advanced to `start` (useful for resuming a
    /// timeline from a recorded breakdown).
    pub fn starting_at(start: SimNanos) -> Self {
        let clock = SimClock::new();
        clock.charge(start);
        clock
    }

    /// Returns the current virtual time.
    #[inline]
    pub fn now(&self) -> SimNanos {
        SimNanos::from_nanos(self.ns.get())
    }

    /// Advances the clock by `cost`, saturating at the maximum representable
    /// time rather than overflowing.
    #[inline]
    pub fn charge(&self, cost: SimNanos) {
        self.ns.set(self.ns.get().saturating_add(cost.as_nanos()));
    }

    /// Charges the **critical path** of a parallel stage: the maximum of the
    /// per-worker durations. An empty iterator charges nothing.
    ///
    /// This models Catalyzer's parallel pointer re-establishment (§3.2): each
    /// update is independent, so wall latency is the slowest worker, not the
    /// sum.
    pub fn charge_parallel<I>(&self, worker_costs: I) -> SimNanos
    where
        I: IntoIterator<Item = SimNanos>,
    {
        let critical = worker_costs.into_iter().fold(SimNanos::ZERO, SimNanos::max);
        self.charge(critical);
        critical
    }

    /// Returns the elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than the current time, which indicates a
    /// bookkeeping bug in the caller.
    pub fn since(&self, earlier: SimNanos) -> SimNanos {
        let now = self.now();
        assert!(
            earlier <= now,
            "SimClock::since called with a future instant ({earlier} > {now})"
        );
        now - earlier
    }

    /// Runs `f` and returns both its result and the virtual time it charged.
    pub fn measure<T>(&self, f: impl FnOnce(&SimClock) -> T) -> (T, SimNanos) {
        let start = self.now();
        let out = f(self);
        (out, self.since(start))
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimClock")
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimNanos::ZERO);
        clock.charge(SimNanos::from_millis(1));
        clock.charge(SimNanos::from_micros(500));
        assert_eq!(clock.now(), SimNanos::from_micros(1_500));
    }

    #[test]
    fn clones_share_timeline() {
        let a = SimClock::new();
        let b = a.clone();
        b.charge(SimNanos::from_nanos(42));
        assert_eq!(a.now(), SimNanos::from_nanos(42));
    }

    #[test]
    fn starting_at_offsets() {
        let clock = SimClock::starting_at(SimNanos::from_millis(10));
        assert_eq!(clock.now(), SimNanos::from_millis(10));
    }

    #[test]
    fn parallel_charges_max() {
        let clock = SimClock::new();
        let critical = clock.charge_parallel([
            SimNanos::from_micros(10),
            SimNanos::from_micros(80),
            SimNanos::from_micros(30),
        ]);
        assert_eq!(critical, SimNanos::from_micros(80));
        assert_eq!(clock.now(), SimNanos::from_micros(80));
    }

    #[test]
    fn parallel_empty_is_free() {
        let clock = SimClock::new();
        assert_eq!(clock.charge_parallel([]), SimNanos::ZERO);
        assert_eq!(clock.now(), SimNanos::ZERO);
    }

    #[test]
    fn measure_reports_span() {
        let clock = SimClock::new();
        clock.charge(SimNanos::from_millis(3));
        let (value, span) = clock.measure(|clk| {
            clk.charge(SimNanos::from_millis(2));
            7
        });
        assert_eq!(value, 7);
        assert_eq!(span, SimNanos::from_millis(2));
        assert_eq!(clock.now(), SimNanos::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "future instant")]
    fn since_rejects_future() {
        let clock = SimClock::new();
        clock.since(SimNanos::from_nanos(1));
    }

    #[test]
    fn saturates_at_max() {
        let clock = SimClock::starting_at(SimNanos::MAX);
        clock.charge(SimNanos::from_nanos(1));
        assert_eq!(clock.now(), SimNanos::MAX);
    }
}
