//! Deterministic span tracing on the virtual timeline.
//!
//! A [`Tracer`] records a *nested* tree of named spans, each stamped with
//! the [`SimClock`] readings at which it opened and closed. Where the flat
//! [`PhaseRecorder`](crate::PhaseRecorder) can only express Fig. 2-style
//! pipelines, the span tree captures the paper's real structure: the
//! restore pipeline (§3) nests separated-state recovery, overlay-memory
//! mapping, and on-demand I/O reconnection *inside* one boot, and each of
//! those nests its own steps.
//!
//! Everything here is virtual time — spans never touch the wall clock, so
//! two runs with identical inputs serialize to byte-identical trees (the
//! property `tests/determinism.rs` locks in).
//!
//! # Example
//!
//! ```
//! use simtime::trace::Tracer;
//! use simtime::{SimClock, SimNanos};
//!
//! let clock = SimClock::new();
//! let mut tracer = Tracer::new(&clock);
//! tracer.begin("boot");
//! tracer.begin("restore:memory");
//! clock.charge(SimNanos::from_micros(250));
//! tracer.end();
//! let boot = tracer.end();
//! assert_eq!(boot.duration(), SimNanos::from_micros(250));
//! assert_eq!(boot.children[0].name, "restore:memory");
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Breakdown, SimClock, SimNanos};

/// One node of a span tree: a named interval `[start, end]` on the virtual
/// timeline, containing the spans opened while it was open.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Span name (phase-name conventions from `sandbox::boot` apply).
    pub name: String,
    /// Virtual time at which the span opened.
    pub start: SimNanos,
    /// Virtual time at which the span closed.
    pub end: SimNanos,
    /// Spans opened (and closed) while this span was open, in order.
    pub children: Vec<Span>,
}

impl Span {
    /// A leaf span covering `[start, end]` — mostly useful in tests.
    pub fn leaf(name: impl Into<String>, start: SimNanos, end: SimNanos) -> Span {
        Span {
            name: name.into(),
            start,
            end,
            children: Vec::new(),
        }
    }

    /// Total virtual time the span was open.
    pub fn duration(&self) -> SimNanos {
        self.end - self.start
    }

    /// Sum of the direct children's durations.
    pub fn children_total(&self) -> SimNanos {
        self.children.iter().map(Span::duration).sum()
    }

    /// Time charged inside this span but outside any child span.
    pub fn self_time(&self) -> SimNanos {
        self.duration() - self.children_total()
    }

    /// First direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&Span> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Sum of the durations of all direct children called `name` (phases may
    /// repeat, like the two `restore:kernel` legs).
    pub fn total_for(&self, name: &str) -> SimNanos {
        self.children
            .iter()
            .filter(|c| c.name == name)
            .map(Span::duration)
            .sum()
    }

    /// Flattens the direct children into a [`Breakdown`], preserving order
    /// and duplicate names. This is how a boot span reports the paper's
    /// Fig. 2 pipeline while keeping deeper nesting available in the tree.
    pub fn to_breakdown(&self) -> Breakdown {
        let mut b = Breakdown::new();
        for c in &self.children {
            b.push(c.name.as_str(), c.duration());
        }
        b
    }

    /// Visits the span and every descendant, depth-first, with its depth
    /// (the receiver is depth 0).
    pub fn walk(&self, f: &mut impl FnMut(usize, &Span)) {
        self.walk_at(0, f);
    }

    fn walk_at(&self, depth: usize, f: &mut impl FnMut(usize, &Span)) {
        f(depth, self);
        for c in &self.children {
            c.walk_at(depth + 1, f);
        }
    }

    /// Number of spans in the tree, including the receiver.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(Span::node_count).sum::<usize>()
    }

    /// Checks monotone nesting: `start ≤ end`, every child interval lies
    /// within the parent's, children appear in non-overlapping timeline
    /// order, and the same recursively. This is the structural invariant
    /// the bench exporter validates on `BENCH_pr2.json`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated interval.
    pub fn validate_nesting(&self) -> Result<(), String> {
        if self.start > self.end {
            return Err(format!(
                "span `{}` ends before it starts ({} > {})",
                self.name, self.start, self.end
            ));
        }
        let mut cursor = self.start;
        for c in &self.children {
            if c.start < cursor {
                return Err(format!(
                    "child `{}` of `{}` starts at {} before the timeline cursor {}",
                    c.name, self.name, c.start, cursor
                ));
            }
            if c.end > self.end {
                return Err(format!(
                    "child `{}` outlives parent `{}` ({} > {})",
                    c.name, self.name, c.end, self.end
                ));
            }
            c.validate_nesting()?;
            cursor = c.end;
        }
        Ok(())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = Ok(());
        self.walk(&mut |depth, span| {
            if out.is_ok() {
                out = writeln!(
                    f,
                    "{:indent$}{} {} (+{})",
                    "",
                    span.name,
                    span.duration(),
                    span.start,
                    indent = depth * 2
                );
            }
        });
        out
    }
}

/// Records nested spans against a [`SimClock`].
///
/// `begin`/`end` must be balanced; [`Tracer::end`] returns the completed
/// span (also attached to its parent, or to the tracer's root list when it
/// was outermost), so callers can both build one global tree and hand
/// subtrees to their owners — a boot engine keeps its boot span while the
/// gateway keeps the whole invocation.
#[derive(Debug)]
pub struct Tracer {
    clock: SimClock,
    stack: Vec<Span>,
    roots: Vec<Span>,
}

impl Tracer {
    /// Creates a tracer stamping spans from `clock`.
    pub fn new(clock: &SimClock) -> Tracer {
        Tracer {
            clock: clock.clone(),
            stack: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// The clock spans are stamped from.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Opens a span at the current virtual time.
    pub fn begin(&mut self, name: impl Into<String>) {
        let now = self.clock.now();
        self.stack.push(Span {
            name: name.into(),
            start: now,
            end: now,
            children: Vec::new(),
        });
    }

    /// Closes the innermost open span, attaches it to its parent (or the
    /// root list), and returns it.
    ///
    /// # Panics
    ///
    /// Panics when no span is open — a begin/end imbalance is a bookkeeping
    /// bug in the caller.
    pub fn end(&mut self) -> Span {
        let mut span = self
            .stack
            .pop()
            .expect("Tracer::end without a matching begin");
        span.end = self.clock.now();
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(span.clone()),
            None => self.roots.push(span.clone()),
        }
        span
    }

    /// Runs `f` inside a span named `name`; everything `f` charges to the
    /// clock (and every span it opens) lands inside.
    pub fn span<T>(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Tracer) -> T) -> T {
        self.begin(name);
        let out = f(self);
        self.end();
        out
    }

    /// Records a leaf span with an already-known cost, charging the clock.
    pub fn charge_span(&mut self, name: impl Into<String>, cost: SimNanos) {
        self.begin(name);
        self.clock.charge(cost);
        self.end();
    }

    /// How many spans are currently open.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Completed top-level spans, oldest first.
    pub fn roots(&self) -> &[Span] {
        &self.roots
    }

    /// Consumes the tracer, returning the completed top-level spans.
    ///
    /// # Panics
    ///
    /// Panics if spans are still open.
    pub fn finish(self) -> Vec<Span> {
        assert!(
            self.stack.is_empty(),
            "Tracer::finish with {} span(s) still open",
            self.stack.len()
        );
        self.roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_the_timeline() {
        let clock = SimClock::new();
        let mut t = Tracer::new(&clock);
        t.begin("boot");
        t.charge_span("sandbox:spawn", SimNanos::from_micros(300));
        t.begin("restore:memory");
        t.charge_span("map-base", SimNanos::from_micros(40));
        clock.charge(SimNanos::from_micros(10));
        t.end();
        let boot = t.end();

        assert_eq!(boot.name, "boot");
        assert_eq!(boot.duration(), SimNanos::from_micros(350));
        assert_eq!(boot.children.len(), 2);
        let mem = boot.child("restore:memory").unwrap();
        assert_eq!(mem.duration(), SimNanos::from_micros(50));
        assert_eq!(mem.self_time(), SimNanos::from_micros(10));
        assert_eq!(mem.children[0].name, "map-base");
        assert_eq!(boot.node_count(), 4);
        boot.validate_nesting().unwrap();
    }

    #[test]
    fn end_returns_and_attaches() {
        let clock = SimClock::new();
        let mut t = Tracer::new(&clock);
        t.begin("outer");
        t.begin("inner");
        let inner = t.end();
        let outer = t.end();
        assert_eq!(outer.children, vec![inner]);
        assert_eq!(t.roots().len(), 1);
        assert_eq!(t.finish()[0], outer);
    }

    #[test]
    fn span_closure_api() {
        let clock = SimClock::new();
        let mut t = Tracer::new(&clock);
        let out = t.span("work", |t| {
            t.clock().charge(SimNanos::from_nanos(7));
            42
        });
        assert_eq!(out, 42);
        assert_eq!(t.roots()[0].duration(), SimNanos::from_nanos(7));
    }

    #[test]
    fn breakdown_keeps_order_and_duplicates() {
        let clock = SimClock::new();
        let mut t = Tracer::new(&clock);
        t.begin("boot");
        t.charge_span("restore:kernel", SimNanos::from_micros(5));
        t.charge_span("restore:memory", SimNanos::from_micros(9));
        t.charge_span("restore:kernel", SimNanos::from_micros(3));
        let boot = t.end();
        let b = boot.to_breakdown();
        let names: Vec<&str> = b.iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            ["restore:kernel", "restore:memory", "restore:kernel"]
        );
        assert_eq!(b.total_for("restore:kernel"), SimNanos::from_micros(8));
        assert_eq!(boot.total_for("restore:kernel"), SimNanos::from_micros(8));
        assert_eq!(b.total(), boot.duration());
    }

    #[test]
    fn validation_rejects_bad_nesting() {
        let mut parent = Span::leaf("p", SimNanos::from_nanos(10), SimNanos::from_nanos(20));
        parent.children.push(Span::leaf(
            "c",
            SimNanos::from_nanos(5),
            SimNanos::from_nanos(15),
        ));
        let err = parent.validate_nesting().unwrap_err();
        assert!(err.contains("`c`"), "{err}");

        let mut overlap = Span::leaf("p", SimNanos::ZERO, SimNanos::from_nanos(20));
        overlap
            .children
            .push(Span::leaf("a", SimNanos::ZERO, SimNanos::from_nanos(12)));
        overlap.children.push(Span::leaf(
            "b",
            SimNanos::from_nanos(8),
            SimNanos::from_nanos(14),
        ));
        assert!(overlap.validate_nesting().is_err());

        let backwards = Span::leaf("x", SimNanos::from_nanos(9), SimNanos::from_nanos(3));
        assert!(backwards.validate_nesting().is_err());
    }

    #[test]
    #[should_panic(expected = "matching begin")]
    fn unbalanced_end_panics() {
        let clock = SimClock::new();
        Tracer::new(&clock).end();
    }

    #[test]
    fn serialization_round_trips() {
        let clock = SimClock::new();
        let mut t = Tracer::new(&clock);
        t.begin("boot");
        t.charge_span("app:init", SimNanos::from_micros(11));
        let span = t.end();
        let text = serde_json::to_string(&span).unwrap();
        let back: Span = serde_json::from_str(&text).unwrap();
        assert_eq!(back, span);
    }

    #[test]
    fn display_indents_by_depth() {
        let clock = SimClock::new();
        let mut t = Tracer::new(&clock);
        t.begin("boot");
        t.charge_span("sandbox:spawn", SimNanos::from_micros(1));
        let text = t.end().to_string();
        assert!(text.contains("boot"), "{text}");
        assert!(text.contains("  sandbox:spawn"), "{text}");
    }
}
