use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A virtual duration (or instant on a [`SimClock`](crate::SimClock) timeline)
/// with nanosecond precision.
///
/// `SimNanos` is the single unit of latency in the reproduction: every cost in
/// the [`CostModel`](crate::CostModel) and every phase in a boot breakdown is
/// expressed in it. It is a `u64` count of nanoseconds, which covers ~584
/// years of virtual time — far beyond any experiment.
///
/// # Example
///
/// ```
/// use simtime::SimNanos;
///
/// let parse = SimNanos::from_micros(1_369); // 1.369 ms, paper Fig. 2
/// assert_eq!(parse.as_millis_f64(), 1.369);
/// assert_eq!(format!("{parse}"), "1.369ms");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimNanos(u64);

impl SimNanos {
    /// The zero duration.
    pub const ZERO: SimNanos = SimNanos(0);
    /// The maximum representable duration.
    pub const MAX: SimNanos = SimNanos(u64::MAX);

    /// Creates a duration of `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimNanos(ns)
    }

    /// Creates a duration of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimNanos(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimNanos(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimNanos(s * 1_000_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond. Values below zero clamp to [`SimNanos::ZERO`].
    ///
    /// This is the main entry point for calibration constants quoted in the
    /// paper, which are printed in milliseconds (e.g. `1.369`).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        SimNanos((ms * 1e6).max(0.0).round() as u64)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Values below zero clamp to [`SimNanos::ZERO`].
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimNanos((us * 1e3).max(0.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Adds, saturating at [`SimNanos::MAX`] instead of overflowing.
    #[inline]
    pub fn saturating_add(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0.saturating_add(rhs.0))
    }

    /// Subtracts, saturating at [`SimNanos::ZERO`] instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a unitless count, saturating on overflow.
    ///
    /// Used for "N operations at this unit cost" accounting.
    #[inline]
    pub fn saturating_mul(self, count: u64) -> SimNanos {
        SimNanos(self.0.saturating_mul(count))
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// nanosecond. Negative factors clamp to zero.
    #[inline]
    pub fn scale(self, factor: f64) -> SimNanos {
        SimNanos((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: SimNanos) -> SimNanos {
        SimNanos(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: SimNanos) -> SimNanos {
        SimNanos(self.0.min(other.0))
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimNanos {
    type Output = SimNanos;
    #[inline]
    fn add(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0 + rhs.0)
    }
}

impl AddAssign for SimNanos {
    #[inline]
    fn add_assign(&mut self, rhs: SimNanos) {
        self.0 += rhs.0;
    }
}

impl Sub for SimNanos {
    type Output = SimNanos;
    #[inline]
    fn sub(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0 - rhs.0)
    }
}

impl SubAssign for SimNanos {
    #[inline]
    fn sub_assign(&mut self, rhs: SimNanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimNanos {
    type Output = SimNanos;
    #[inline]
    fn mul(self, rhs: u64) -> SimNanos {
        SimNanos(self.0 * rhs)
    }
}

impl Div<u64> for SimNanos {
    type Output = SimNanos;
    #[inline]
    fn div(self, rhs: u64) -> SimNanos {
        SimNanos(self.0 / rhs)
    }
}

impl Sum for SimNanos {
    fn sum<I: Iterator<Item = SimNanos>>(iter: I) -> SimNanos {
        iter.fold(SimNanos::ZERO, |acc, d| acc.saturating_add(d))
    }
}

impl<'a> Sum<&'a SimNanos> for SimNanos {
    fn sum<I: Iterator<Item = &'a SimNanos>>(iter: I) -> SimNanos {
        iter.copied().sum()
    }
}

impl fmt::Display for SimNanos {
    /// Pretty-prints with an automatically chosen unit: `250ns`, `12.500us`,
    /// `1.369ms`, or `2.150s`. Honours width/alignment flags (`{:>10}`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        let text = if ns < 1_000 {
            format!("{ns}ns")
        } else if ns < 1_000_000 {
            format!("{:.3}us", self.as_micros_f64())
        } else if ns < 1_000_000_000 {
            format!("{:.3}ms", self.as_millis_f64())
        } else {
            format!("{:.3}s", self.as_secs_f64())
        };
        f.pad(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimNanos::from_micros(1), SimNanos::from_nanos(1_000));
        assert_eq!(SimNanos::from_millis(1), SimNanos::from_micros(1_000));
        assert_eq!(SimNanos::from_secs(1), SimNanos::from_millis(1_000));
        assert_eq!(
            SimNanos::from_millis_f64(1.369),
            SimNanos::from_nanos(1_369_000)
        );
        assert_eq!(SimNanos::from_micros_f64(0.5), SimNanos::from_nanos(500));
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(SimNanos::from_millis_f64(-3.0), SimNanos::ZERO);
        assert_eq!(SimNanos::from_micros_f64(-0.1), SimNanos::ZERO);
        assert_eq!(SimNanos::from_millis(5).scale(-1.0), SimNanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimNanos::from_millis(2);
        let b = SimNanos::from_millis(3);
        assert_eq!(a + b, SimNanos::from_millis(5));
        assert_eq!(b - a, SimNanos::from_millis(1));
        assert_eq!(a * 4, SimNanos::from_millis(8));
        assert_eq!(b / 3, SimNanos::from_millis(1));
        let mut c = a;
        c += b;
        assert_eq!(c, SimNanos::from_millis(5));
        c -= a;
        assert_eq!(c, b);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimNanos::MAX.saturating_add(SimNanos::from_nanos(1)),
            SimNanos::MAX
        );
        assert_eq!(
            SimNanos::ZERO.saturating_sub(SimNanos::from_nanos(1)),
            SimNanos::ZERO
        );
        assert_eq!(SimNanos::MAX.saturating_mul(2), SimNanos::MAX);
    }

    #[test]
    fn sum_iterates() {
        let parts = [SimNanos::from_micros(10), SimNanos::from_micros(20)];
        let total: SimNanos = parts.iter().sum();
        assert_eq!(total, SimNanos::from_micros(30));
        let owned: SimNanos = parts.into_iter().sum();
        assert_eq!(owned, SimNanos::from_micros(30));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimNanos::from_nanos(250).to_string(), "250ns");
        assert_eq!(SimNanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimNanos::from_millis_f64(1.369).to_string(), "1.369ms");
        assert_eq!(SimNanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn min_max_and_zero() {
        let a = SimNanos::from_micros(1);
        let b = SimNanos::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimNanos::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(
            SimNanos::from_nanos(10).scale(0.25),
            SimNanos::from_nanos(3)
        );
        assert_eq!(
            SimNanos::from_millis(100).scale(1.5),
            SimNanos::from_millis(150)
        );
    }
}
