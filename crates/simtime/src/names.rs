//! The workspace-wide registry of metric, span, and phase names.
//!
//! Every name the platform emits — counters, gauges, histograms, span
//! labels, phase labels — lives here as a `pub const` (fixed names) or a
//! helper function (parameterized names). Emitters and bench validators
//! both import from this module, so a renamed metric is a one-line change
//! that the compiler propagates instead of a string drifting silently out
//! of sync between a gateway and a dashboard.
//!
//! The `namereg` pass of `catalint` enforces the discipline: any string
//! literal elsewhere in the workspace that starts with one of the
//! registered prefixes (`boot.`, `invoke.`, `pool.`, `sandbox:`, ...) is a
//! finding. This file is the single exemption.
//!
//! Naming scheme, by sigil:
//!
//! - `x.y` (dot) — metrics: counters, gauges, histogram families.
//! - `x:y` (colon) — span and phase labels in the trace tree.
//! - Parameterized names interpolate a function name, fallback rung, or
//!   fault point; use the helper so the shape stays canonical.

// ---------------------------------------------------------------------------
// Admission control (platform::admission).

/// Counter: invocations admitted past the gate.
pub const ADMIT_COUNT: &str = "admit.count";
/// Counter: invocations that waited in the admission queue.
pub const ADMIT_QUEUED: &str = "admit.queued";
/// Histogram: virtual nanoseconds spent queued before admission.
pub const ADMIT_WAIT: &str = "admit.wait";
/// Counter: invocations shed because concurrency was saturated.
pub const SHED_OVERLOAD: &str = "shed.overload";
/// Counter: invocations shed because the deadline already passed.
pub const SHED_DEADLINE: &str = "shed.deadline";
/// Counter: invocations shed by an open circuit breaker.
pub const SHED_BREAKER: &str = "shed.breaker";

// ---------------------------------------------------------------------------
// Gateway invocation metrics (platform::gateway).

/// Counter: completed invocations.
pub const INVOKE_COUNT: &str = "invoke.count";
/// Counter: invocations that returned an error.
pub const INVOKE_ERRORS: &str = "invoke.errors";
/// Counter: invocations served in a degraded (fallback) mode.
pub const INVOKE_DEGRADED: &str = "invoke.degraded";
/// Counter: invocations that recovered via retry after a fault.
pub const INVOKE_RECOVERY: &str = "invoke.recovery";
/// Counter: total boot retries across all invocations.
pub const INVOKE_RETRIES: &str = "invoke.retries";
/// Counter: warm-up calls served by the gateway.
pub const WARM_COUNT: &str = "warm.count";

/// Span label wrapping one invocation of `function`.
pub fn invoke_span(function: &str) -> String {
    format!("invoke:{function}")
}

/// Counter: completed invocations of `function`.
pub fn invoke_fn_count(function: &str) -> String {
    format!("invoke.{function}.count")
}

/// Counter: degraded invocations served at fallback rung `rung`.
pub fn invoke_degraded_rung(rung: &str) -> String {
    format!("invoke.degraded.{rung}")
}

/// Histogram: boot latency of `function`.
pub fn boot_hist(function: &str) -> String {
    format!("boot.{function}")
}

/// Histogram: handler-execution latency of `function`.
pub fn exec_hist(function: &str) -> String {
    format!("exec.{function}")
}

/// Gauge: circuit-breaker state of `function` (0 closed / 1 half-open /
/// 2 open).
pub fn breaker_gauge(function: &str) -> String {
    format!("breaker.{function}")
}

// ---------------------------------------------------------------------------
// Zygote pool (platform::pool).

/// Counter: boots served by reusing a pooled sandbox.
pub const POOL_REUSE: &str = "pool.reuse";
/// Counter: boots that missed the pool and booted fresh.
pub const POOL_BOOT: &str = "pool.boot";
/// Counter: pool serves while the pool was degraded.
pub const POOL_DEGRADED: &str = "pool.degraded";
/// Counter: pool serves that recovered a previously poisoned slot.
pub const POOL_RECOVERY: &str = "pool.recovery";
/// Counter: sandboxes marked poisoned by a failed boot.
pub const POOL_POISONED: &str = "pool.poisoned";
/// Counter: pooled sandboxes expired by TTL.
pub const POOL_EXPIRE: &str = "pool.expire";
/// Gauge: idle sandboxes currently pooled.
pub const POOL_IDLE: &str = "pool.idle";
/// Histogram: pool startup (first-boot) latency.
pub const POOL_STARTUP: &str = "pool.startup";
/// Counter: repair sweeps executed by the self-healing pool.
pub const POOL_REPAIR_COUNT: &str = "pool.repair.count";
/// Histogram: virtual time one repair sweep took.
pub const POOL_REPAIR_TIME: &str = "pool.repair.time";
/// Counter: poisoned sandboxes evicted by a repair sweep.
pub const POOL_REPAIR_EVICTED: &str = "pool.repair.evicted";
/// Counter: repair sweeps that failed to replace a sandbox.
pub const POOL_REPAIR_FAILED: &str = "pool.repair.failed";
/// Counter: sandboxes replenished by a repair sweep.
pub const POOL_REPAIR_REPLENISH: &str = "pool.repair.replenish";

// ---------------------------------------------------------------------------
// Fault injection and graceful degradation (platform::resilience).

/// Counter: invocations quarantined after repeated faults.
pub const QUARANTINE_COUNT: &str = "quarantine.count";
/// Counter: quarantine entries deferred because the pool was degraded.
pub const QUARANTINE_DEFERRED: &str = "quarantine.deferred";

/// Counter: faults injected at `point` (e.g. `fault.sfork`).
pub fn fault_metric(point: &str) -> String {
    format!("fault.{point}")
}

/// Span label for the fault-injection wrapper at `point`.
pub fn fault_span(point: &str) -> String {
    format!("fault:{point}")
}

/// Counter: fallback boots served at degradation rung `rung`
/// (e.g. `fallback.warm`).
pub fn fallback_rung(rung: &str) -> String {
    format!("fallback.{rung}")
}

// ---------------------------------------------------------------------------
// Open-loop fleet engine (platform::simulate::fleet).

/// Counter: events the fleet's discrete-event queue processed.
pub const FLEET_EVENTS: &str = "fleet.events";
/// Counter: cold boots across the fleet.
pub const FLEET_COLD_BOOTS: &str = "fleet.boots";
/// Counter: requests served by reusing a warm instance.
pub const FLEET_REUSES: &str = "fleet.reuses";
/// Counter: instances reclaimed by keep-alive expiry.
pub const FLEET_EXPIRATIONS: &str = "fleet.expirations";
/// Counter: instances booted in the background to hold the warm floor.
pub const FLEET_PREWARM: &str = "fleet.prewarm";
/// Counter: requests shed by the per-function concurrency cap.
pub const FLEET_SHED: &str = "fleet.shed";
/// Counter: background repair sweeps (heal + replenish) the fleet ran.
pub const FLEET_REPAIRS: &str = "fleet.repairs";
/// Gauge: peak instances concurrently live across the fleet.
pub const FLEET_PEAK_INSTANCES: &str = "fleet.peak-instances";

// ---------------------------------------------------------------------------
// Cluster scheduler and remote sfork (platform::cluster).

/// Counter: requests routed to a template-local node (local sfork boot).
pub const CLUSTER_LOCAL: &str = "cluster.local";
/// Counter: requests served by a remote sfork (template transferred in).
pub const CLUSTER_REMOTE: &str = "cluster.remote";
/// Counter: requests that fell all the way to a cold image pull.
pub const CLUSTER_COLD: &str = "cluster.cold";
/// Counter: requests served by reusing a node-local warm instance.
pub const CLUSTER_REUSE: &str = "cluster.reuse";
/// Counter: requests shed because every routable node was saturated.
pub const CLUSTER_SHED: &str = "cluster.shed";
/// Counter: requests re-routed off an overloaded or breaker-open node.
pub const CLUSTER_REROUTES: &str = "cluster.reroutes";
/// Counter: cross-node template transfers started.
pub const CLUSTER_TRANSFERS: &str = "cluster.transfers";
/// Counter: faults injected at the template-transfer seam.
pub const CLUSTER_TRANSFER_FAULTS: &str = "cluster.transfer-faults";
/// Counter: background node repairs that healed poisoned replicas.
pub const CLUSTER_NODE_REPAIRS: &str = "cluster.node-repairs";
/// Gauge: peak instances concurrently live on the busiest node.
pub const CLUSTER_PEAK_NODE_INSTANCES: &str = "cluster.peak-node-instances";

// ---------------------------------------------------------------------------
// Node-level chaos and failover (platform::cluster::chaos).

/// Counter: scheduled node crashes that fired.
pub const CHAOS_CRASHES: &str = "chaos.crashes";
/// Counter: requests that failed outright — killed by a crash, routed at an
/// unreachable node, or hung on an orphaned transfer. Not sheds.
pub const CHAOS_FAILED: &str = "chaos.failed";
/// Counter: transfer waiters left with no completion path at run end (the
/// no-failover baseline's signature pathology).
pub const CHAOS_HUNG: &str = "chaos.hung";
/// Counter: requests re-routed off a failed node by the failover policy.
pub const CHAOS_FAILOVERS: &str = "chaos.failovers";
/// Counter: template replicas rebuilt on new holders after a crash.
pub const CHAOS_REREPLICATIONS: &str = "chaos.rereplications";
/// Counter: hedged (second-source) transfers fired after the hedge delay.
pub const CHAOS_HEDGES: &str = "chaos.hedges";
/// Counter: hedged transfers that beat their primary.
pub const CHAOS_HEDGE_WINS: &str = "chaos.hedge-wins";
/// Counter: in-flight transfers aborted by a source-node crash.
pub const CHAOS_ABORTED_TRANSFERS: &str = "chaos.aborted-transfers";
/// Counter: requests that failed typed (`Unreachable`) at a crashed or
/// partitioned node.
pub const CHAOS_UNREACHABLE: &str = "chaos.unreachable";
/// Counter: virtual-time heartbeat rounds the health tracker ran.
pub const CHAOS_HEARTBEATS: &str = "chaos.heartbeats";
/// Counter: heartbeat rounds that marked a node `Suspect` (slow-ack — the
/// gray-node catch a liveness bit would miss).
pub const CHAOS_SUSPECTED: &str = "chaos.suspected";

/// Span label for the cross-node transfer of a template (the RDMA read a
/// remote sfork performs before forking from the received replica).
pub const SPAN_TRANSFER: &str = "transfer:template";
/// Span label for pulling the function's cold image from the registry when
/// no template is reachable on any node.
pub const SPAN_COLD_PULL: &str = "transfer:cold-pull";

// ---------------------------------------------------------------------------
// Autoscaling sweep (platform::scaling).

/// Counter: background (off-path) boots issued by the scaler.
pub const SCALING_BACKGROUND_BOOTS: &str = "scaling.background-boots";
/// Counter: boots whose latency the scaler measured.
pub const SCALING_MEASURED_BOOTS: &str = "scaling.measured-boots";
/// Histogram: startup latency observed by the scaling sweep.
pub const SCALING_STARTUP: &str = "scaling.startup";
/// Gauge: instances currently running, as seen by the scaler.
pub const SCALING_RUNNING: &str = "scaling.running";

// ---------------------------------------------------------------------------
// Span and phase labels of the boot pipeline (sandbox::boot re-exports
// these so engine code keeps its historical import path).

/// Name of the span a boot engine wraps around the whole boot.
pub const SPAN_BOOT: &str = "boot";
/// Name of the span the gateway wraps around handler execution.
pub const SPAN_EXEC: &str = "exec";

/// Phase-name prefix for sandbox-initialization work (Fig. 4's "Sandbox").
pub const PHASE_SANDBOX: &str = "sandbox:";
/// Phase name for application initialization (Fig. 4's "Application").
pub const PHASE_APP: &str = "app:init";
/// Phase name for guest-kernel (non-I/O) state recovery (Fig. 12 "Kernel").
pub const PHASE_RESTORE_KERNEL: &str = "restore:kernel";
/// Phase name for application-memory loading (Fig. 12 "Memory").
pub const PHASE_RESTORE_MEMORY: &str = "restore:memory";
/// Phase name for I/O reconnection (Fig. 12 "I/O").
pub const PHASE_RESTORE_IO: &str = "restore:io";
/// Phase-name prefix shared by the restore phases above.
pub const PHASE_RESTORE_PREFIX: &str = "restore:";

/// Phase: parse the sandbox config (every engine pays this).
pub const PHASE_SANDBOX_PARSE_CONFIG: &str = "sandbox:parse-config";
/// Phase: spawn the VMM process (Firecracker / Catalyzer cold boot).
pub const PHASE_SANDBOX_VMM_PROCESS: &str = "sandbox:vmm-process";
/// Phase: create and configure the KVM VM.
pub const PHASE_SANDBOX_KVM_SETUP: &str = "sandbox:kvm-setup";
/// Phase: boot the guest Linux kernel (microVM engines).
pub const PHASE_SANDBOX_GUEST_LINUX_BOOT: &str = "sandbox:guest-linux-boot";
/// Phase: bring up guest userspace (microVM engines).
pub const PHASE_SANDBOX_GUEST_USERSPACE: &str = "sandbox:guest-userspace";
/// Phase: container runtime setup (Docker).
pub const PHASE_SANDBOX_CONTAINER_RUNTIME: &str = "sandbox:container-runtime";
/// Phase: namespace creation plus process spawn (Docker).
pub const PHASE_SANDBOX_NAMESPACES_PROCESS: &str = "sandbox:namespaces+process";
/// Phase: rootfs mounts (Docker).
pub const PHASE_SANDBOX_ROOTFS_MOUNTS: &str = "sandbox:rootfs-mounts";
/// Phase: boot the sandbox (Sentry) process (gVisor).
pub const PHASE_SANDBOX_BOOT_SANDBOX_PROCESS: &str = "sandbox:boot-sandbox-process";
/// Phase: initialize the guest kernel and platform (gVisor).
pub const PHASE_SANDBOX_INIT_KERNEL_PLATFORM: &str = "sandbox:init-kernel-platform";
/// Phase: mount the root filesystem (gVisor).
pub const PHASE_SANDBOX_MOUNT_ROOTFS: &str = "sandbox:mount-rootfs";
/// Phase: load the task image (gVisor).
pub const PHASE_SANDBOX_LOAD_TASK_IMAGE: &str = "sandbox:load-task-image";
/// Phase: spawn the hyperd daemon (hyper-style engine).
pub const PHASE_SANDBOX_HYPERD: &str = "sandbox:hyperd";
/// Phase: specialize a zygote into the target function (fork boot).
pub const PHASE_SANDBOX_ZYGOTE_SPECIALIZE: &str = "sandbox:zygote-specialize";

/// Phase: load the function's code units (cold application init).
pub const PHASE_APP_LOAD_FUNCTION_UNITS: &str = "app:load-function-units";
/// Phase: build the function heap (cold application init).
pub const PHASE_APP_FUNCTION_HEAP: &str = "app:function-heap";

/// Phase: build the shared base mapping from the func image.
pub const PHASE_MAP_FILE_BUILD_BASE: &str = "map-file:build-base";

// ---------------------------------------------------------------------------
// sfork (sandbox fork) phases (core::sfork, paper §4.2).

/// Phase: the sfork syscall itself.
pub const PHASE_SFORK_SYSCALL: &str = "sfork:syscall";
/// Phase: duplicate guest-kernel state.
pub const PHASE_SFORK_KERNEL_STATE: &str = "sfork:kernel-state";
/// Phase: re-create namespaces for the child.
pub const PHASE_SFORK_NAMESPACES: &str = "sfork:namespaces";
/// Phase: expand the template's thread set.
pub const PHASE_SFORK_EXPAND_THREADS: &str = "sfork:expand-threads";
/// Phase: re-randomize ASLR in the child.
pub const PHASE_SFORK_ASLR: &str = "sfork:aslr";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_interpolate_canonically() {
        assert_eq!(invoke_span("echo"), "invoke:echo");
        assert_eq!(invoke_fn_count("echo"), "invoke.echo.count");
        assert_eq!(invoke_degraded_rung("warm"), "invoke.degraded.warm");
        assert_eq!(boot_hist("echo"), "boot.echo");
        assert_eq!(exec_hist("echo"), "exec.echo");
        assert_eq!(breaker_gauge("echo"), "breaker.echo");
        assert_eq!(fault_metric("sfork"), "fault.sfork");
        assert_eq!(fault_span("sfork"), "fault:sfork");
        assert_eq!(fallback_rung("cold"), "fallback.cold");
    }

    #[test]
    fn restore_phases_share_the_prefix() {
        for phase in [PHASE_RESTORE_KERNEL, PHASE_RESTORE_MEMORY, PHASE_RESTORE_IO] {
            assert!(phase.starts_with(PHASE_RESTORE_PREFIX));
        }
    }
}
