use serde::{Deserialize, Serialize};

use crate::SimNanos;

/// Which physical machine a [`CostModel`] preset is calibrated against.
///
/// The paper evaluates on two boxes (§6.1): an 8-core i7-7700 desktop with a
/// SATA SSD ("the experimental machine", used for microbenchmarks and
/// breakdowns) and a 96-core 2.5 GHz server with 256 GB RAM from Ant Financial
/// (used for end-to-end latency and scalability, labelled `Catalyzer-Indus` /
/// `C-I` in Figures 13c and 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineKind {
    /// 8-core Intel i7-7700 @ 4.2 GHz, 32 GB RAM, SATA SSD.
    Experimental,
    /// 96-core @ 2.5 GHz, 256 GB RAM, datacenter NVMe.
    Server,
}

impl MachineKind {
    /// Human-readable label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            MachineKind::Experimental => "experimental (i7-7700)",
            MachineKind::Server => "server (96-core)",
        }
    }
}

/// Host-process and container-runtime unit costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostCosts {
    /// `fork`+`exec` of a sandbox (Sentry) process. Paper Fig. 2: 0.319 ms.
    pub process_spawn: SimNanos,
    /// Parsing the OCI configuration bundle. Paper Fig. 2: 1.369 ms.
    pub config_parse_base: SimNanos,
    /// Additional parse cost per KiB of configuration beyond the base bundle.
    pub config_parse_per_kib: SimNanos,
    /// Mounting one filesystem (rootfs layer) through the I/O (gofer) process.
    pub mount_fs: SimNanos,
    /// Spawning the I/O (gofer) companion process.
    pub gofer_spawn: SimNanos,
    /// Setting up one Linux namespace (PID, USER, NET, ...).
    pub namespace_setup: SimNanos,
    /// Fixed daemon/cgroup overhead of a classic container runtime (Docker).
    pub container_runtime_overhead: SimNanos,
    /// Fixed overhead of a VM-in-container runtime (HyperContainer).
    pub hyper_runtime_overhead: SimNanos,
    /// Spawning one OS thread.
    pub thread_spawn: SimNanos,
    /// Joining / terminating one OS thread.
    pub thread_join: SimNanos,
    /// Saving one thread context into memory (transient single-thread, §4.1).
    pub thread_ctx_save: SimNanos,
    /// Restoring one thread context after `sfork` (re-expansion, §4.1).
    pub thread_ctx_restore: SimNanos,
    /// The `sfork` system call itself: CoW-duplicating the page tables and
    /// kernel bookkeeping of the transient single-threaded template.
    pub sfork_syscall: SimNanos,
    /// Base cost of any guest syscall trapping into the Sentry.
    pub syscall_base: SimNanos,
    /// Loading the wrapped program's task image into the sandbox.
    /// Paper Fig. 2: 19.889 ms.
    pub task_image_load: SimNanos,
}

/// KVM / hardware-virtualization unit costs (paper §6.7, Fig. 16b–c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvmCosts {
    /// `KVM_CREATE_VM` ioctl.
    pub create_vm: SimNanos,
    /// `KVM_CREATE_VCPU` ioctl, per VCPU.
    pub create_vcpu: SimNanos,
    /// First-invocation latency of `kvcalloc` inside KVM.
    pub kvcalloc_base: SimNanos,
    /// Per-subsequent-invocation latency growth of `kvcalloc` (the allocator
    /// walks a longer freelist as VM management structures accumulate).
    pub kvcalloc_growth: SimNanos,
    /// `kvcalloc` latency when served from Catalyzer's dedicated KVM cache.
    pub kvcalloc_cached: SimNanos,
    /// Base latency of `KVM_SET_USER_MEMORY_REGION`.
    pub set_memory_region_base: SimNanos,
    /// Extra latency per *already-installed* region when Page Modification
    /// Logging is enabled (the default in upstream KVM).
    pub set_memory_region_pml_extra: SimNanos,
    /// Extra latency per already-installed region with PML disabled.
    pub set_memory_region_nopml_extra: SimNanos,
    /// Handling one EPT violation (VM exit + fault handling + resume).
    pub ept_violation: SimNanos,
    /// Booting a minimized guest Linux kernel (FireCracker's microVM path).
    pub guest_linux_boot: SimNanos,
}

/// Memory, paging, and storage unit costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemCosts {
    /// Decompression throughput, in nanoseconds per *output* byte.
    pub decompress_per_byte_ns: f64,
    /// Compression throughput, in nanoseconds per input byte (offline path).
    pub compress_per_byte_ns: f64,
    /// Plain memory-copy throughput, nanoseconds per byte.
    pub memcpy_per_byte_ns: f64,
    /// Sequential storage read throughput, nanoseconds per byte.
    pub disk_read_per_byte_ns: f64,
    /// Storage access latency for a new extent (seek / NVMe queue).
    pub disk_seek: SimNanos,
    /// One `mmap` system call (region setup, no population).
    pub mmap_call: SimNanos,
    /// Incremental `mmap` cost per MiB of region size (VMA bookkeeping).
    pub mmap_per_mib: SimNanos,
    /// Minor page fault (trap + handle + resume), excluding any copying.
    pub page_fault: SimNanos,
    /// `munmap`/teardown of a region.
    pub munmap_call: SimNanos,
    /// Compression ratio assumed when *charging* storage reads of classic
    /// images (the synthetic app memory in this reproduction is low-entropy
    /// and over-compresses; real JVM heaps compress to roughly this ratio).
    pub assumed_image_compression: f64,
}

/// Checkpoint-object (de)serialization unit costs (paper §3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectCosts {
    /// Decoding one guest-kernel metadata object on the classic restore path
    /// (one-by-one deserialization; 37 838 objects ≈ 56.7 ms in the paper).
    pub decode_per_object: SimNanos,
    /// Encoding one object at checkpoint time (offline).
    pub encode_per_object: SimNanos,
    /// Patching one placeholder pointer through the relation table (stage 2
    /// of separated state recovery; embarrassingly parallel).
    pub fixup_per_pointer: SimNanos,
    /// Re-establishing the non-I/O system state carried by one object on the
    /// critical path (thread lists, timers, sessions).
    pub recover_per_object_non_io: SimNanos,
    /// Fixed overhead of the classic C/R restore machinery (state-file
    /// scanning, serializer/GC warm-up in the Golang sentry). Catalyzer's
    /// flat images avoid this entirely.
    pub classic_restore_fixed: SimNanos,
}

/// I/O-reconnection unit costs (paper §3.3, §6.7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoCosts {
    /// Re-opening one file (a re-do `open()` through the gofer).
    pub open_file: SimNanos,
    /// Re-establishing one network connection.
    pub reconnect_socket: SimNanos,
    /// One round trip to the FS-server (gofer) process.
    pub gofer_rpc: SimNanos,
    /// Fast-path `dup`/`dup2` latency.
    pub dup_fast: SimNanos,
    /// Burst `dup` latency when the host fdtable must be expanded.
    pub dup_burst: SimNanos,
    /// The host fdtable doubles at this initial capacity (expansion causes
    /// the burst above; subsequent doublings at each power of two).
    pub fdtable_initial_capacity: u32,
    /// Replaying one cached I/O connection from the I/O cache (§3.3).
    pub io_cache_replay: SimNanos,
    /// Closing one descriptor.
    pub close_fd: SimNanos,
}

/// Every machine-level unit cost used by the simulation, calibrated against
/// the latencies printed in the paper (see `DESIGN.md` §6 for the mapping).
///
/// The model is plain data: experiments may tweak individual fields for
/// ablations (e.g. re-enabling PML reproduces Figure 16c's "Default" series).
///
/// # Example
///
/// ```
/// use simtime::CostModel;
///
/// let model = CostModel::experimental_machine();
/// // Paper Fig. 2: parsing the OCI config costs 1.369 ms.
/// assert_eq!(model.host.config_parse_base.as_millis_f64(), 1.369);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Which machine this model is calibrated for.
    pub machine: MachineKind,
    /// Host process / container runtime costs.
    pub host: HostCosts,
    /// KVM / virtualization costs.
    pub kvm: KvmCosts,
    /// Memory, paging, and storage costs.
    pub mem: MemCosts,
    /// Checkpoint-object costs.
    pub obj: ObjectCosts,
    /// I/O reconnection costs.
    pub io: IoCosts,
    /// Number of workers available for parallel restore stages.
    pub parallel_workers: usize,
}

impl CostModel {
    /// Cost model calibrated for the paper's experimental machine
    /// (i7-7700, 32 GB, SATA SSD; §6.1).
    pub fn experimental_machine() -> Self {
        CostModel {
            machine: MachineKind::Experimental,
            host: HostCosts {
                process_spawn: SimNanos::from_micros(319),
                config_parse_base: SimNanos::from_millis_f64(1.369),
                config_parse_per_kib: SimNanos::from_micros(45),
                mount_fs: SimNanos::from_millis_f64(1.6),
                gofer_spawn: SimNanos::from_micros(450),
                namespace_setup: SimNanos::from_micros(95),
                container_runtime_overhead: SimNanos::from_millis(82),
                hyper_runtime_overhead: SimNanos::from_millis(96),
                thread_spawn: SimNanos::from_micros(16),
                thread_join: SimNanos::from_micros(11),
                thread_ctx_save: SimNanos::from_micros(7),
                thread_ctx_restore: SimNanos::from_micros(9),
                sfork_syscall: SimNanos::from_micros(210),
                syscall_base: SimNanos::from_nanos(260),
                task_image_load: SimNanos::from_micros(19_889),
            },
            kvm: KvmCosts {
                create_vm: SimNanos::from_micros(310),
                create_vcpu: SimNanos::from_micros(85),
                kvcalloc_base: SimNanos::from_micros(85),
                kvcalloc_growth: SimNanos::from_micros(58),
                kvcalloc_cached: SimNanos::from_micros(38),
                set_memory_region_base: SimNanos::from_micros(52),
                set_memory_region_pml_extra: SimNanos::from_micros(610),
                set_memory_region_nopml_extra: SimNanos::from_micros(55),
                ept_violation: SimNanos::from_nanos(1_150),
                guest_linux_boot: SimNanos::from_millis(108),
            },
            mem: MemCosts {
                decompress_per_byte_ns: 0.55,
                compress_per_byte_ns: 1.05,
                memcpy_per_byte_ns: 0.10,
                disk_read_per_byte_ns: 0.50,
                disk_seek: SimNanos::from_micros(82),
                mmap_call: SimNanos::from_micros(4),
                mmap_per_mib: SimNanos::from_micros(2),
                page_fault: SimNanos::from_nanos(1_050),
                munmap_call: SimNanos::from_micros(6),
                assumed_image_compression: 0.6,
            },
            obj: ObjectCosts {
                decode_per_object: SimNanos::from_nanos(1_150),
                encode_per_object: SimNanos::from_nanos(2_050),
                fixup_per_pointer: SimNanos::from_nanos(150),
                recover_per_object_non_io: SimNanos::from_nanos(360),
                classic_restore_fixed: SimNanos::from_millis(85),
            },
            io: IoCosts {
                open_file: SimNanos::from_micros(92),
                reconnect_socket: SimNanos::from_micros(155),
                gofer_rpc: SimNanos::from_micros(31),
                dup_fast: SimNanos::from_nanos(1_200),
                dup_burst: SimNanos::from_millis(28),
                fdtable_initial_capacity: 64,
                io_cache_replay: SimNanos::from_micros(24),
                close_fd: SimNanos::from_nanos(900),
            },
            parallel_workers: 4,
        }
    }

    /// Cost model calibrated for the paper's 96-core server machine (§6.1).
    ///
    /// Individual cores are slower (2.5 GHz vs 4.2 GHz), so CPU-bound unit
    /// costs scale up by ~1.35×; storage is datacenter NVMe (faster), and far
    /// more workers are available for parallel restore stages.
    pub fn server_machine() -> Self {
        let base = Self::experimental_machine();
        let cpu = 1.35;
        CostModel {
            machine: MachineKind::Server,
            host: HostCosts {
                process_spawn: base.host.process_spawn.scale(cpu),
                config_parse_base: base.host.config_parse_base.scale(cpu),
                config_parse_per_kib: base.host.config_parse_per_kib.scale(cpu),
                mount_fs: base.host.mount_fs.scale(cpu),
                gofer_spawn: base.host.gofer_spawn.scale(cpu),
                namespace_setup: base.host.namespace_setup.scale(cpu),
                container_runtime_overhead: base.host.container_runtime_overhead.scale(cpu),
                hyper_runtime_overhead: base.host.hyper_runtime_overhead.scale(cpu),
                thread_spawn: base.host.thread_spawn.scale(cpu),
                thread_join: base.host.thread_join.scale(cpu),
                thread_ctx_save: base.host.thread_ctx_save.scale(cpu),
                thread_ctx_restore: base.host.thread_ctx_restore.scale(cpu),
                sfork_syscall: base.host.sfork_syscall.scale(cpu),
                syscall_base: base.host.syscall_base.scale(cpu),
                task_image_load: base.host.task_image_load.scale(cpu),
            },
            kvm: KvmCosts {
                create_vm: base.kvm.create_vm.scale(cpu),
                create_vcpu: base.kvm.create_vcpu.scale(cpu),
                kvcalloc_base: base.kvm.kvcalloc_base.scale(cpu),
                kvcalloc_growth: base.kvm.kvcalloc_growth.scale(cpu),
                kvcalloc_cached: base.kvm.kvcalloc_cached.scale(cpu),
                set_memory_region_base: base.kvm.set_memory_region_base.scale(cpu),
                set_memory_region_pml_extra: base.kvm.set_memory_region_pml_extra.scale(cpu),
                set_memory_region_nopml_extra: base.kvm.set_memory_region_nopml_extra.scale(cpu),
                ept_violation: base.kvm.ept_violation.scale(cpu),
                guest_linux_boot: base.kvm.guest_linux_boot.scale(cpu),
            },
            mem: MemCosts {
                decompress_per_byte_ns: base.mem.decompress_per_byte_ns * cpu,
                compress_per_byte_ns: base.mem.compress_per_byte_ns * cpu,
                memcpy_per_byte_ns: base.mem.memcpy_per_byte_ns,
                disk_read_per_byte_ns: 0.33, // datacenter NVMe, ~3 GB/s
                disk_seek: SimNanos::from_micros(25),
                mmap_call: base.mem.mmap_call.scale(cpu),
                mmap_per_mib: base.mem.mmap_per_mib.scale(cpu),
                page_fault: base.mem.page_fault.scale(cpu),
                munmap_call: base.mem.munmap_call.scale(cpu),
                assumed_image_compression: base.mem.assumed_image_compression,
            },
            obj: ObjectCosts {
                decode_per_object: base.obj.decode_per_object.scale(cpu),
                encode_per_object: base.obj.encode_per_object.scale(cpu),
                fixup_per_pointer: base.obj.fixup_per_pointer.scale(cpu),
                recover_per_object_non_io: base.obj.recover_per_object_non_io.scale(cpu),
                classic_restore_fixed: base.obj.classic_restore_fixed.scale(cpu),
            },
            io: IoCosts {
                open_file: base.io.open_file.scale(cpu),
                reconnect_socket: base.io.reconnect_socket.scale(cpu),
                gofer_rpc: base.io.gofer_rpc.scale(cpu),
                dup_fast: base.io.dup_fast.scale(cpu),
                dup_burst: base.io.dup_burst.scale(cpu),
                fdtable_initial_capacity: 64,
                io_cache_replay: base.io.io_cache_replay.scale(cpu),
                close_fd: base.io.close_fd.scale(cpu),
            },
            parallel_workers: 16,
        }
    }

    /// Bulk-memory cost helper: `bytes` of decompression.
    pub fn decompress(&self, bytes: u64) -> SimNanos {
        SimNanos::from_nanos((bytes as f64 * self.mem.decompress_per_byte_ns).round() as u64)
    }

    /// Bulk-memory cost helper: `bytes` of compression.
    pub fn compress(&self, bytes: u64) -> SimNanos {
        SimNanos::from_nanos((bytes as f64 * self.mem.compress_per_byte_ns).round() as u64)
    }

    /// Bulk-memory cost helper: `bytes` of plain copy.
    pub fn memcpy(&self, bytes: u64) -> SimNanos {
        SimNanos::from_nanos((bytes as f64 * self.mem.memcpy_per_byte_ns).round() as u64)
    }

    /// Storage cost helper: one sequential read of `bytes` (seek + transfer).
    pub fn disk_read(&self, bytes: u64) -> SimNanos {
        self.mem.disk_seek
            + SimNanos::from_nanos((bytes as f64 * self.mem.disk_read_per_byte_ns).round() as u64)
    }

    /// `mmap` cost helper for a region of `bytes`.
    pub fn mmap_region(&self, bytes: u64) -> SimNanos {
        let mib = bytes.div_ceil(1 << 20);
        self.mem.mmap_call + self.mem.mmap_per_mib.saturating_mul(mib)
    }

    /// Copy-on-write fault cost: trap handling plus copying one page.
    pub fn cow_fault(&self, page_size: u64) -> SimNanos {
        self.mem.page_fault + self.kvm.ept_violation + self.memcpy(page_size)
    }
}

impl Default for CostModel {
    /// The experimental machine — the box all microbenchmarks in the paper
    /// are reported on.
    fn default() -> Self {
        CostModel::experimental_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let exp = CostModel::experimental_machine();
        let srv = CostModel::server_machine();
        assert_eq!(exp.machine, MachineKind::Experimental);
        assert_eq!(srv.machine, MachineKind::Server);
        // Server cores are slower per-op...
        assert!(srv.obj.decode_per_object > exp.obj.decode_per_object);
        // ...but storage is faster and parallelism wider.
        assert!(srv.mem.disk_read_per_byte_ns < exp.mem.disk_read_per_byte_ns);
        assert!(srv.parallel_workers > exp.parallel_workers);
    }

    #[test]
    fn fig2_sandbox_init_sums_to_paper_value() {
        // Paper Fig. 2: parse (1.369) + spawn (0.319) + kernel init (0.757) +
        // task image load (19.889) = 22.3 ms. The first two come straight from
        // the model; the remainder is charged by the gVisor engine. Here we
        // sanity-check the two model-level constants.
        let m = CostModel::experimental_machine();
        assert_eq!(m.host.config_parse_base.as_millis_f64(), 1.369);
        assert_eq!(m.host.process_spawn.as_millis_f64(), 0.319);
    }

    #[test]
    fn classic_memory_load_near_paper() {
        // Fig. 12: overlay memory removes ~261 ms of eager memory loading
        // for SPECjbb (200 MB): disk read of the compressed image +
        // decompression + copy into guest frames + per-page PTE install.
        let m = CostModel::experimental_machine();
        let uncompressed: u64 = 200 << 20;
        let pages = uncompressed / 4096;
        let compressed = (uncompressed as f64 * m.mem.assumed_image_compression) as u64;
        let total = m.disk_read(compressed)
            + m.decompress(uncompressed)
            + m.memcpy(uncompressed)
            + m.mem.page_fault.saturating_mul(pages);
        let ms = total.as_millis_f64();
        assert!((230.0..290.0).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn classic_object_decode_near_paper() {
        // Paper Fig. 2: "Recover Kernel" is 56.723 ms for 37 838 objects —
        // one-by-one decoding plus non-I/O state re-establishment.
        let m = CostModel::experimental_machine();
        let per_obj = m.obj.decode_per_object + m.obj.recover_per_object_non_io;
        let ms = per_obj.saturating_mul(37_838).as_millis_f64();
        assert!((50.0..62.0).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn helpers_are_monotone_in_size() {
        let m = CostModel::experimental_machine();
        assert!(m.decompress(2_000) > m.decompress(1_000));
        assert!(m.disk_read(1 << 20) > m.disk_read(1 << 10));
        assert!(m.mmap_region(64 << 20) > m.mmap_region(1 << 20));
        assert!(m.cow_fault(4096) > m.mem.page_fault);
    }

    #[test]
    fn model_round_trips_through_serde() {
        let m = CostModel::server_machine();
        let json = serde_json::to_string(&m).expect("serialize");
        let back: CostModel = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(m, back);
    }

    #[test]
    fn default_is_experimental() {
        assert_eq!(CostModel::default().machine, MachineKind::Experimental);
    }
}
