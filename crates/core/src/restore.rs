//! On-demand restore: Catalyzer's cold and warm boot (paper §3, Fig. 8).
//!
//! The operational flow follows Fig. 8-c:
//!
//! 1. a Zygote is specialized with the function's config and rootfs
//!    (warm boot; cold boot builds the sandbox from scratch);
//! 2. guest-kernel metadata is recovered by **separated state recovery**
//!    (stage-1 map + stage-2 parallel pointer re-establishment);
//! 3. application memory is attached through **overlay memory**: cold boot
//!    maps the func-image to build the shared Base-EPT (map-file), warm
//!    boot shares the existing Base-EPT (share-mapping);
//! 4. I/O connections recover **on demand**, with the I/O cache eagerly
//!    replaying only the deterministic prefix.
//!
//! Each technique can be disabled via [`CatalyzerConfig`], in which case the
//! engine falls back to the corresponding gVisor-restore behaviour — that is
//! exactly the Fig. 12 ablation ladder.
//!
//! Every step runs under a [`sandbox::BootCtx`] span, so the emitted trace
//! carries the Fig. 8 sub-phases (`restore:kernel` → `separated-state` /
//! `decode-objects`, `restore:memory` → `share-mapping` / `map-file`, …)
//! nested beneath the restore phases that the flat [`Breakdown`] reports.
//!
//! [`Breakdown`]: simtime::Breakdown

use std::sync::Arc;

use faultsim::InjectionPoint;
use guest_kernel::GuestKernel;
use imagefmt::IoConnKind;
use memsim::{AddressSpace, Perms, ShareMode};
use runtimes::{AppProfile, WrappedProgram};
use sandbox::{
    traced_boot, BootCtx, BootOutcome, GvisorEngine, SandboxError, PHASE_RESTORE_IO,
    PHASE_RESTORE_KERNEL, PHASE_RESTORE_MEMORY,
};
use simtime::names;
use simtime::SimClock;

use crate::engine::BootMode;
use crate::store::FuncImageStore;
use crate::zygote::ZygotePool;
use crate::CatalyzerConfig;

pub(crate) fn restore_boot(
    mode: BootMode,
    config: &CatalyzerConfig,
    store: &mut FuncImageStore,
    zygotes: &mut ZygotePool,
    profile: &AppProfile,
    ctx: &mut BootCtx,
) -> Result<BootOutcome, SandboxError> {
    debug_assert!(matches!(mode, BootMode::Cold | BootMode::Warm));
    store.ensure_compiled(profile, ctx.model())?;

    traced_boot(mode.label(), ctx, |ctx| {
        // --- 1. sandbox acquisition -------------------------------------
        let mut space = match mode {
            BootMode::Cold => {
                // Cold boot builds the full sandbox (including importing the
                // function binaries) — this is the ~30 ms the paper reports
                // cold boot pays over warm boot (§6.2).
                let shell = GvisorEngine::prepare_sandbox(config.tweaks, profile, true, ctx)?;
                shell.space
            }
            BootMode::Warm if config.zygotes => {
                ctx.fault(InjectionPoint::ZygoteSpecialize)?;
                ctx.span(names::PHASE_SANDBOX_ZYGOTE_SPECIALIZE, |ctx| {
                    let zygote = zygotes.take(ctx.clock(), ctx.model())?;
                    zygote.specialize(&profile.name, ctx.clock(), ctx.model())?;
                    Ok::<_, SandboxError>(AddressSpace::new(profile.name.clone()))
                })?
            }
            BootMode::Warm => {
                // Zygotes disabled: warm boot still shares memory, but pays
                // full sandbox construction.
                let shell = GvisorEngine::prepare_sandbox(config.tweaks, profile, false, ctx)?;
                shell.space
            }
            BootMode::Fork => unreachable!("fork boot handled by sfork"),
        };

        let stored = store.get_mut(&profile.name).expect("compiled above");
        let fs = Arc::clone(&stored.fs);

        // --- 2. guest-kernel metadata ------------------------------------
        ctx.fault(InjectionPoint::ArenaMap)?;
        let records = if config.separated_state {
            ctx.span(PHASE_RESTORE_KERNEL, |ctx| {
                ctx.span("separated-state", |ctx| {
                    stored.flat.restore_metadata(ctx.clock(), ctx.model())
                })
            })?
        } else {
            // Ablation: charge the classic one-by-one deserialization costs
            // (fixed C/R machinery + per-object decode); the recovered data
            // is identical.
            ctx.span(PHASE_RESTORE_KERNEL, |ctx| {
                ctx.charge_span("decode-objects", {
                    let model = ctx.model();
                    model.obj.classic_restore_fixed.saturating_add(
                        model
                            .obj
                            .decode_per_object
                            .saturating_mul(stored.flat.object_count()),
                    )
                });
                stored.flat.restore_metadata(&SimClock::new(), ctx.model())
            })?
        };
        ctx.fault(InjectionPoint::Relink)?;
        let mut kernel = ctx.span(PHASE_RESTORE_KERNEL, |ctx| {
            GuestKernel::restore_from_records(
                profile.name.clone(),
                &records,
                Arc::clone(&fs),
                false,
                ctx.clock(),
                ctx.model(),
            )
        })?;

        // --- 3. application memory ---------------------------------------
        ctx.fault(InjectionPoint::ImageMmap)?;
        if config.overlay_memory {
            ctx.span(PHASE_RESTORE_MEMORY, |ctx| {
                let (base, step) = match &stored.base {
                    Some(base) => (Arc::clone(base), "share-mapping"), // warm
                    None => {
                        // map-file (first cold boot builds the Base-EPT)
                        let base = ctx.span(names::PHASE_MAP_FILE_BUILD_BASE, |ctx| {
                            stored.flat.build_base_layer(ctx.clock(), ctx.model())
                        })?;
                        stored.base = Some(Arc::clone(&base));
                        (base, "map-file")
                    }
                };
                ctx.span(step, |ctx| {
                    space.attach_base(
                        base,
                        profile.heap_range(),
                        "func-image",
                        ctx.clock(),
                        ctx.model(),
                    )
                })?;
                Ok::<_, SandboxError>(())
            })?;
        } else {
            // Ablation: eager loading of every page, gVisor-restore style.
            ctx.span(PHASE_RESTORE_MEMORY, |ctx| {
                let index = ctx.span("page-index", |ctx| {
                    stored.flat.app_mem_index(ctx.clock(), ctx.model())
                })?;
                let image = Arc::clone(stored.flat.image());
                let app_bytes = index.len() as u64 * memsim::PAGE_SIZE as u64;
                ctx.charge_span("decompress", ctx.model().decompress(app_bytes)); // classic images are compressed
                ctx.span("install-pages", |ctx| {
                    ctx.charge(ctx.model().memcpy(app_bytes));
                    ctx.charge(
                        ctx.model()
                            .mem
                            .page_fault
                            .saturating_mul(index.len() as u64),
                    );
                    space.map_anonymous(
                        profile.heap_range(),
                        Perms::RW,
                        ShareMode::Private,
                        "app-heap",
                    )?;
                    for (vpn, page) in index {
                        let frame = image.load_page(page, ctx.clock(), ctx.model())?;
                        space.install_page(vpn, frame.bytes())?;
                    }
                    Ok::<_, SandboxError>(())
                })
            })?;
        }

        // --- 4. I/O reconnection -----------------------------------------
        ctx.fault(InjectionPoint::IoReconnect)?;
        let manifest = stored
            .flat
            .read_io_manifest(&SimClock::new(), ctx.model())?;
        ctx.span(PHASE_RESTORE_IO, |ctx| {
            if config.lazy_io {
                if config.io_cache {
                    // Replay only the deterministic prefix (the cache hits);
                    // everything else reconnects on first use. The gofer
                    // batches the hinted re-opens into one RPC burst, so the
                    // critical path pays the per-entry replay constant, not a
                    // full open() round trip each — the real reconnection
                    // work still happens (scratch clock), only its latency is
                    // overlapped.
                    ctx.span("io-cache-replay", |ctx| {
                        let scratch = SimClock::new();
                        let fds: Vec<i32> = kernel.vfs.iter_fds().map(|(fd, _)| fd).collect();
                        let files: Vec<&imagefmt::IoConn> = manifest
                            .iter()
                            .filter(|c| c.kind == IoConnKind::File)
                            .collect();
                        for (fd, conn) in fds.iter().zip(&files) {
                            if conn.used_immediately {
                                ctx.charge(ctx.model().io.io_cache_replay);
                                kernel.vfs.ensure_connected(*fd, &scratch, ctx.model())?;
                            }
                        }
                        let socks: Vec<(u64, bool)> = kernel
                            .net
                            .iter()
                            .map(|s| (s.id, s.state == guest_kernel::net::SockState::Listening))
                            .collect();
                        for (id, listening) in socks {
                            if listening {
                                ctx.charge(ctx.model().io.io_cache_replay);
                                kernel.net.ensure_connected(id, &scratch, ctx.model())?;
                            }
                        }
                        Ok::<_, SandboxError>(())
                    })?;
                }
                // Pure lazy (no cache): nothing on the critical path.
            } else {
                // Ablation: eager reconnection of everything.
                ctx.span("reconnect-fds", |ctx| {
                    let fds: Vec<i32> = kernel.vfs.iter_fds().map(|(fd, _)| fd).collect();
                    for fd in fds {
                        kernel.vfs.ensure_connected(fd, ctx.clock(), ctx.model())?;
                    }
                    Ok::<_, SandboxError>(())
                })?;
                ctx.span("reconnect-sockets", |ctx| {
                    let socks: Vec<u64> = kernel.net.iter().map(|s| s.id).collect();
                    for s in socks {
                        kernel.net.ensure_connected(s, ctx.clock(), ctx.model())?;
                    }
                    Ok::<_, SandboxError>(())
                })?;
            }
            Ok::<_, SandboxError>(())
        })?;

        stored.boots += 1;
        Ok(WrappedProgram::from_restored(profile, kernel, space))
    })
}
