//! On-demand restore: Catalyzer's cold and warm boot (paper §3, Fig. 8).
//!
//! The operational flow follows Fig. 8-c:
//!
//! 1. a Zygote is specialized with the function's config and rootfs
//!    (warm boot; cold boot builds the sandbox from scratch);
//! 2. guest-kernel metadata is recovered by **separated state recovery**
//!    (stage-1 map + stage-2 parallel pointer re-establishment);
//! 3. application memory is attached through **overlay memory**: cold boot
//!    maps the func-image to build the shared Base-EPT (map-file), warm
//!    boot shares the existing Base-EPT (share-mapping);
//! 4. I/O connections recover **on demand**, with the I/O cache eagerly
//!    replaying only the deterministic prefix.
//!
//! Each technique can be disabled via [`CatalyzerConfig`], in which case the
//! engine falls back to the corresponding gVisor-restore behaviour — that is
//! exactly the Fig. 12 ablation ladder.

use std::sync::Arc;

use guest_kernel::GuestKernel;
use imagefmt::IoConnKind;
use memsim::{AddressSpace, Perms, ShareMode};
use runtimes::{AppProfile, WrappedProgram};
use sandbox::{
    BootOutcome, GvisorEngine, SandboxError, PHASE_RESTORE_IO, PHASE_RESTORE_KERNEL,
    PHASE_RESTORE_MEMORY,
};
use simtime::{CostModel, PhaseRecorder, SimClock};

use crate::engine::BootMode;
use crate::store::FuncImageStore;
use crate::zygote::ZygotePool;
use crate::CatalyzerConfig;

pub(crate) fn restore_boot(
    mode: BootMode,
    config: &CatalyzerConfig,
    store: &mut FuncImageStore,
    zygotes: &mut ZygotePool,
    profile: &AppProfile,
    clock: &SimClock,
    model: &CostModel,
) -> Result<BootOutcome, SandboxError> {
    debug_assert!(matches!(mode, BootMode::Cold | BootMode::Warm));
    store.ensure_compiled(profile, model)?;

    let start = clock.now();
    let mut rec = PhaseRecorder::new(clock);

    // --- 1. sandbox acquisition -----------------------------------------
    let mut space = match mode {
        BootMode::Cold => {
            // Cold boot builds the full sandbox (including importing the
            // function binaries) — this is the ~30 ms the paper reports
            // cold boot pays over warm boot (§6.2).
            let shell =
                GvisorEngine::prepare_sandbox(config.tweaks, profile, true, &mut rec, model)?;
            shell.space
        }
        BootMode::Warm if config.zygotes => rec.phase("sandbox:zygote-specialize", |clk| {
            let zygote = zygotes.take(clk, model)?;
            zygote.specialize(&profile.name, clk, model)?;
            Ok::<_, SandboxError>(AddressSpace::new(profile.name.clone()))
        })?,
        BootMode::Warm => {
            // Zygotes disabled: warm boot still shares memory, but pays
            // full sandbox construction.
            let shell =
                GvisorEngine::prepare_sandbox(config.tweaks, profile, false, &mut rec, model)?;
            shell.space
        }
        BootMode::Fork => unreachable!("fork boot handled by sfork"),
    };

    let stored = store.get_mut(&profile.name).expect("compiled above");
    let fs = Arc::clone(&stored.fs);

    // --- 2. guest-kernel metadata ----------------------------------------
    let records = if config.separated_state {
        rec.phase(PHASE_RESTORE_KERNEL, |clk| {
            stored.flat.restore_metadata(clk, model)
        })?
    } else {
        // Ablation: charge the classic one-by-one deserialization costs
        // (fixed C/R machinery + per-object decode); the recovered data is
        // identical.
        rec.phase(PHASE_RESTORE_KERNEL, |clk| {
            clk.charge(model.obj.classic_restore_fixed);
            clk.charge(
                model
                    .obj
                    .decode_per_object
                    .saturating_mul(stored.flat.object_count()),
            );
            stored.flat.restore_metadata(&SimClock::new(), model)
        })?
    };
    let mut kernel = rec.phase(PHASE_RESTORE_KERNEL, |clk| {
        GuestKernel::restore_from_records(
            profile.name.clone(),
            &records,
            Arc::clone(&fs),
            false,
            clk,
            model,
        )
    })?;

    // --- 3. application memory -------------------------------------------
    if config.overlay_memory {
        rec.phase(PHASE_RESTORE_MEMORY, |clk| {
            let base = match &stored.base {
                Some(base) => Arc::clone(base), // share-mapping (warm)
                None => {
                    // map-file (first cold boot builds the Base-EPT)
                    let base = stored.flat.build_base_layer(clk, model)?;
                    stored.base = Some(Arc::clone(&base));
                    base
                }
            };
            space.attach_base(base, profile.heap_range(), "func-image", clk, model)?;
            Ok::<_, SandboxError>(())
        })?;
    } else {
        // Ablation: eager loading of every page, gVisor-restore style.
        rec.phase(PHASE_RESTORE_MEMORY, |clk| {
            let index = stored.flat.app_mem_index(clk, model)?;
            let image = Arc::clone(stored.flat.image());
            let app_bytes = index.len() as u64 * memsim::PAGE_SIZE as u64;
            clk.charge(model.decompress(app_bytes)); // classic images are compressed
            clk.charge(model.memcpy(app_bytes));
            clk.charge(model.mem.page_fault.saturating_mul(index.len() as u64));
            space.map_anonymous(
                profile.heap_range(),
                Perms::RW,
                ShareMode::Private,
                "app-heap",
            )?;
            for (vpn, page) in index {
                let frame = image.load_page(page, clk, model)?;
                space.install_page(vpn, frame.bytes())?;
            }
            Ok::<_, SandboxError>(())
        })?;
    }

    // --- 4. I/O reconnection ----------------------------------------------
    let manifest = stored.flat.read_io_manifest(&SimClock::new(), model)?;
    rec.phase(PHASE_RESTORE_IO, |clk| {
        if config.lazy_io {
            if config.io_cache {
                // Replay only the deterministic prefix (the cache hits);
                // everything else reconnects on first use. The gofer batches
                // the hinted re-opens into one RPC burst, so the critical
                // path pays the per-entry replay constant, not a full
                // open() round trip each — the real reconnection work still
                // happens (scratch clock), only its latency is overlapped.
                let scratch = SimClock::new();
                let fds: Vec<i32> = kernel.vfs.iter_fds().map(|(fd, _)| fd).collect();
                let files: Vec<&imagefmt::IoConn> = manifest
                    .iter()
                    .filter(|c| c.kind == IoConnKind::File)
                    .collect();
                for (fd, conn) in fds.iter().zip(&files) {
                    if conn.used_immediately {
                        clk.charge(model.io.io_cache_replay);
                        kernel.vfs.ensure_connected(*fd, &scratch, model)?;
                    }
                }
                let socks: Vec<(u64, bool)> = kernel
                    .net
                    .iter()
                    .map(|s| (s.id, s.state == guest_kernel::net::SockState::Listening))
                    .collect();
                for (id, listening) in socks {
                    if listening {
                        clk.charge(model.io.io_cache_replay);
                        kernel.net.ensure_connected(id, &scratch, model)?;
                    }
                }
            }
            // Pure lazy (no cache): nothing on the critical path.
        } else {
            // Ablation: eager reconnection of everything.
            let fds: Vec<i32> = kernel.vfs.iter_fds().map(|(fd, _)| fd).collect();
            for fd in fds {
                kernel.vfs.ensure_connected(fd, clk, model)?;
            }
            let socks: Vec<u64> = kernel.net.iter().map(|s| s.id).collect();
            for s in socks {
                kernel.net.ensure_connected(s, clk, model)?;
            }
        }
        Ok::<_, SandboxError>(())
    })?;

    stored.boots += 1;
    let program = WrappedProgram::from_restored(profile, kernel, space);
    Ok(BootOutcome {
        system: match mode {
            BootMode::Cold => "Catalyzer-restore",
            BootMode::Warm => "Catalyzer-Zygote",
            BootMode::Fork => unreachable!(),
        },
        boot_latency: clock.since(start),
        breakdown: rec.finish(),
        program,
    })
}
