//! Generality: on-demand restore applied to FireCracker (paper §5).
//!
//! "Although we choose to implement Catalyzer on gVisor/Golang, the design
//! is general ... For example, FireCracker needs more than 100ms to boot a
//! guest kernel, which can be optimized safely with the on-demand restore.
//! The four techniques in on-demand restore only depend on hardware
//! virtualization extensions like Intel EPT or AMD NPT."
//!
//! [`FirecrackerSnapshotEngine`] demonstrates exactly that: the microVM's
//! guest-Linux boot (~108 ms) and the application initialization are both
//! replaced by an on-demand restore from the flat func-image — the snapshot
//! holds the *booted guest kernel plus the initialized application*, and the
//! Base-EPT maps guest memory lazily.

use std::sync::Arc;

use faultsim::InjectionPoint;
use guest_kernel::GuestKernel;
use runtimes::{AppProfile, WrappedProgram};
use sandbox::config::OciConfig;
use sandbox::host::{HostTweaks, KvmDevice};
use sandbox::{
    traced_boot, BootCtx, BootEngine, BootOutcome, IsolationLevel, SandboxError, PHASE_RESTORE_IO,
    PHASE_RESTORE_KERNEL, PHASE_RESTORE_MEMORY,
};
use simtime::names;
use simtime::{CostModel, SimClock};

use crate::store::FuncImageStore;

/// FireCracker with Catalyzer-style snapshot restore.
#[derive(Debug)]
pub struct FirecrackerSnapshotEngine {
    store: FuncImageStore,
    tweaks: HostTweaks,
}

impl FirecrackerSnapshotEngine {
    /// Creates the engine with Catalyzer's host tweaks.
    pub fn new() -> FirecrackerSnapshotEngine {
        FirecrackerSnapshotEngine {
            store: FuncImageStore::new(),
            tweaks: HostTweaks::catalyzer(),
        }
    }

    /// The image store (for inspecting offline work).
    pub fn store(&self) -> &FuncImageStore {
        &self.store
    }
}

impl Default for FirecrackerSnapshotEngine {
    fn default() -> Self {
        FirecrackerSnapshotEngine::new()
    }
}

impl BootEngine for FirecrackerSnapshotEngine {
    fn name(&self) -> &'static str {
        "FireCracker-snapshot"
    }

    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::High
    }

    fn warm(&mut self, profile: &AppProfile, model: &CostModel) -> Result<(), SandboxError> {
        self.store.ensure_compiled(profile, model)?;
        Ok(())
    }

    fn boot(
        &mut self,
        profile: &AppProfile,
        ctx: &mut BootCtx,
    ) -> Result<BootOutcome, SandboxError> {
        self.store.ensure_compiled(profile, ctx.model())?;
        let tweaks = self.tweaks;
        let stored = self.store.get_mut(&profile.name).expect("compiled above");
        let fs = Arc::clone(&stored.fs);

        traced_boot("FireCracker-snapshot", ctx, |ctx| {
            // VMM process + KVM resources — unchanged from stock FireCracker.
            let json = OciConfig::for_function(&profile.name, profile.config_kib).to_json();
            let config = ctx.span(names::PHASE_SANDBOX_PARSE_CONFIG, |ctx| {
                OciConfig::parse(&json, ctx.clock(), ctx.model())
            })?;
            ctx.span(names::PHASE_SANDBOX_VMM_PROCESS, |ctx| {
                ctx.charge(ctx.model().host.process_spawn)
            });
            ctx.span(names::PHASE_SANDBOX_KVM_SETUP, |ctx| {
                let mut kvm = KvmDevice::create(tweaks, ctx.clock(), ctx.model());
                for _ in 0..config.vcpus {
                    kvm.create_vcpu(ctx.clock(), ctx.model());
                }
                kvm.kvcalloc(ctx.clock(), ctx.model());
                kvm.set_memory_region(ctx.clock(), ctx.model());
            });

            // NO guest-Linux boot: the snapshot already contains the booted
            // guest; on-demand restore recovers it. Each restore mechanism
            // consults its fault seam first, like the gVisor engines.
            ctx.fault(InjectionPoint::ArenaMap)?;
            let records = ctx.span(PHASE_RESTORE_KERNEL, |ctx| {
                ctx.span("separated-state", |ctx| {
                    stored.flat.restore_metadata(ctx.clock(), ctx.model())
                })
            })?;
            ctx.fault(InjectionPoint::Relink)?;
            let mut kernel = ctx.span(PHASE_RESTORE_KERNEL, |ctx| {
                GuestKernel::restore_from_records(
                    profile.name.clone(),
                    &records,
                    Arc::clone(&fs),
                    false,
                    ctx.clock(),
                    ctx.model(),
                )
            })?;
            let mut space = memsim::AddressSpace::new(profile.name.clone());
            ctx.fault(InjectionPoint::ImageMmap)?;
            ctx.span(PHASE_RESTORE_MEMORY, |ctx| {
                let (base, step) = match &stored.base {
                    Some(base) => (Arc::clone(base), "share-mapping"),
                    None => {
                        let base = ctx.span(names::PHASE_MAP_FILE_BUILD_BASE, |ctx| {
                            stored.flat.build_base_layer(ctx.clock(), ctx.model())
                        })?;
                        stored.base = Some(Arc::clone(&base));
                        (base, "map-file")
                    }
                };
                ctx.span(step, |ctx| {
                    space.attach_base(
                        base,
                        profile.heap_range(),
                        "snapshot",
                        ctx.clock(),
                        ctx.model(),
                    )
                })?;
                Ok::<_, SandboxError>(())
            })?;
            ctx.fault(InjectionPoint::IoReconnect)?;
            ctx.span(PHASE_RESTORE_IO, |ctx| {
                // Lazy I/O: replay listeners only, as in the gVisor
                // implementation.
                ctx.span("io-cache-replay", |ctx| {
                    let socks: Vec<(u64, bool)> = kernel
                        .net
                        .iter()
                        .map(|s| (s.id, s.state == guest_kernel::net::SockState::Listening))
                        .collect();
                    for (id, listening) in socks {
                        if listening {
                            ctx.charge(ctx.model().io.io_cache_replay);
                            kernel
                                .net
                                .ensure_connected(id, &SimClock::new(), ctx.model())?;
                        }
                    }
                    Ok::<_, SandboxError>(())
                })
            })?;

            stored.boots += 1;
            Ok(WrappedProgram::from_restored(profile, kernel, space))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::SimNanos;

    #[test]
    fn snapshot_restore_removes_the_guest_boot() {
        let model = CostModel::experimental_machine();
        let profile = AppProfile::python_hello();

        let stock = {
            let mut ctx = BootCtx::fresh(&model);
            sandbox::FirecrackerEngine::new()
                .boot(&profile, &mut ctx)
                .unwrap();
            ctx.now()
        };
        let mut snap_engine = FirecrackerSnapshotEngine::new();
        let snap = {
            let mut ctx = BootCtx::fresh(&model);
            let outcome = snap_engine.boot(&profile, &mut ctx).unwrap();
            assert!(outcome
                .breakdown
                .total_for(names::PHASE_SANDBOX_GUEST_LINUX_BOOT)
                .is_zero());
            ctx.now()
        };
        // §5: stock FireCracker pays >100 ms of guest boot plus app init;
        // the snapshot path drops both.
        assert!(stock > SimNanos::from_millis(200), "stock {stock}");
        assert!(snap < SimNanos::from_millis(40), "snapshot {snap}");
        assert!(stock.as_nanos() / snap.as_nanos() >= 8);
    }

    #[test]
    fn snapshot_boots_get_warmer() {
        let model = CostModel::experimental_machine();
        let profile = AppProfile::c_hello();
        let mut engine = FirecrackerSnapshotEngine::new();
        let cold = {
            let mut ctx = BootCtx::fresh(&model);
            engine.boot(&profile, &mut ctx).unwrap();
            ctx.now()
        };
        let warm = {
            let mut ctx = BootCtx::fresh(&model);
            engine.boot(&profile, &mut ctx).unwrap();
            ctx.now()
        };
        assert!(warm < cold, "warm {warm} !< cold {cold} (shared Base-EPT)");
    }

    #[test]
    fn restored_microvm_serves_requests() {
        let model = CostModel::experimental_machine();
        let mut ctx = BootCtx::fresh(&model);
        let mut engine = FirecrackerSnapshotEngine::new();
        let mut outcome = engine.boot(&AppProfile::node_hello(), &mut ctx).unwrap();
        let exec = outcome.program.invoke_handler(ctx.clock(), &model).unwrap();
        assert!(exec.pages_touched > 0);
        assert_eq!(outcome.system, "FireCracker-snapshot");
    }
}
