//! Generality: on-demand restore applied to FireCracker (paper §5).
//!
//! "Although we choose to implement Catalyzer on gVisor/Golang, the design
//! is general ... For example, FireCracker needs more than 100ms to boot a
//! guest kernel, which can be optimized safely with the on-demand restore.
//! The four techniques in on-demand restore only depend on hardware
//! virtualization extensions like Intel EPT or AMD NPT."
//!
//! [`FirecrackerSnapshotEngine`] demonstrates exactly that: the microVM's
//! guest-Linux boot (~108 ms) and the application initialization are both
//! replaced by an on-demand restore from the flat func-image — the snapshot
//! holds the *booted guest kernel plus the initialized application*, and the
//! Base-EPT maps guest memory lazily.

use std::sync::Arc;

use guest_kernel::GuestKernel;
use runtimes::{AppProfile, WrappedProgram};
use sandbox::config::OciConfig;
use sandbox::host::{HostTweaks, KvmDevice};
use sandbox::{
    BootEngine, BootOutcome, IsolationLevel, SandboxError, PHASE_RESTORE_IO, PHASE_RESTORE_KERNEL,
    PHASE_RESTORE_MEMORY,
};
use simtime::{CostModel, PhaseRecorder, SimClock};

use crate::store::FuncImageStore;

/// FireCracker with Catalyzer-style snapshot restore.
#[derive(Debug)]
pub struct FirecrackerSnapshotEngine {
    store: FuncImageStore,
    tweaks: HostTweaks,
}

impl FirecrackerSnapshotEngine {
    /// Creates the engine with Catalyzer's host tweaks.
    pub fn new() -> FirecrackerSnapshotEngine {
        FirecrackerSnapshotEngine {
            store: FuncImageStore::new(),
            tweaks: HostTweaks::catalyzer(),
        }
    }

    /// The image store (for inspecting offline work).
    pub fn store(&self) -> &FuncImageStore {
        &self.store
    }
}

impl Default for FirecrackerSnapshotEngine {
    fn default() -> Self {
        FirecrackerSnapshotEngine::new()
    }
}

impl BootEngine for FirecrackerSnapshotEngine {
    fn name(&self) -> &'static str {
        "FireCracker-snapshot"
    }

    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::High
    }

    fn boot(
        &mut self,
        profile: &AppProfile,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<BootOutcome, SandboxError> {
        self.store.ensure_compiled(profile, model)?;
        let start = clock.now();
        let mut rec = PhaseRecorder::new(clock);

        // VMM process + KVM resources — unchanged from stock FireCracker.
        let json = OciConfig::for_function(&profile.name, profile.config_kib).to_json();
        let config = rec.phase("sandbox:parse-config", |clk| {
            OciConfig::parse(&json, clk, model)
        })?;
        rec.phase("sandbox:vmm-process", |clk| {
            clk.charge(model.host.process_spawn)
        });
        rec.phase("sandbox:kvm-setup", |clk| {
            let mut kvm = KvmDevice::create(self.tweaks, clk, model);
            for _ in 0..config.vcpus {
                kvm.create_vcpu(clk, model);
            }
            kvm.kvcalloc(clk, model);
            kvm.set_memory_region(clk, model);
        });

        // NO guest-Linux boot: the snapshot already contains the booted
        // guest; on-demand restore recovers it.
        let stored = self.store.get_mut(&profile.name).expect("compiled above");
        let fs = Arc::clone(&stored.fs);
        let records = rec.phase(PHASE_RESTORE_KERNEL, |clk| {
            stored.flat.restore_metadata(clk, model)
        })?;
        let mut kernel = rec.phase(PHASE_RESTORE_KERNEL, |clk| {
            GuestKernel::restore_from_records(
                profile.name.clone(),
                &records,
                Arc::clone(&fs),
                false,
                clk,
                model,
            )
        })?;
        let mut space = memsim::AddressSpace::new(profile.name.clone());
        rec.phase(PHASE_RESTORE_MEMORY, |clk| {
            let base = match &stored.base {
                Some(base) => Arc::clone(base),
                None => {
                    let base = stored.flat.build_base_layer(clk, model)?;
                    stored.base = Some(Arc::clone(&base));
                    base
                }
            };
            space.attach_base(base, profile.heap_range(), "snapshot", clk, model)?;
            Ok::<_, SandboxError>(())
        })?;
        rec.phase(PHASE_RESTORE_IO, |clk| {
            // Lazy I/O: replay listeners only, as in the gVisor implementation.
            let socks: Vec<(u64, bool)> = kernel
                .net
                .iter()
                .map(|s| (s.id, s.state == guest_kernel::net::SockState::Listening))
                .collect();
            for (id, listening) in socks {
                if listening {
                    clk.charge(model.io.io_cache_replay);
                    kernel.net.ensure_connected(id, &SimClock::new(), model)?;
                }
            }
            Ok::<_, SandboxError>(())
        })?;

        stored.boots += 1;
        Ok(BootOutcome {
            system: self.name(),
            boot_latency: clock.since(start),
            breakdown: rec.finish(),
            program: WrappedProgram::from_restored(profile, kernel, space),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::SimNanos;

    #[test]
    fn snapshot_restore_removes_the_guest_boot() {
        let model = CostModel::experimental_machine();
        let profile = AppProfile::python_hello();

        let stock = {
            let clock = SimClock::new();
            sandbox::FirecrackerEngine::new()
                .boot(&profile, &clock, &model)
                .unwrap();
            clock.now()
        };
        let mut snap_engine = FirecrackerSnapshotEngine::new();
        let snap = {
            let clock = SimClock::new();
            let outcome = snap_engine.boot(&profile, &clock, &model).unwrap();
            assert!(outcome
                .breakdown
                .total_for("sandbox:guest-linux-boot")
                .is_zero());
            clock.now()
        };
        // §5: stock FireCracker pays >100 ms of guest boot plus app init;
        // the snapshot path drops both.
        assert!(stock > SimNanos::from_millis(200), "stock {stock}");
        assert!(snap < SimNanos::from_millis(40), "snapshot {snap}");
        assert!(stock.as_nanos() / snap.as_nanos() >= 8);
    }

    #[test]
    fn snapshot_boots_get_warmer() {
        let model = CostModel::experimental_machine();
        let profile = AppProfile::c_hello();
        let mut engine = FirecrackerSnapshotEngine::new();
        let cold = {
            let clock = SimClock::new();
            engine.boot(&profile, &clock, &model).unwrap();
            clock.now()
        };
        let warm = {
            let clock = SimClock::new();
            engine.boot(&profile, &clock, &model).unwrap();
            clock.now()
        };
        assert!(warm < cold, "warm {warm} !< cold {cold} (shared Base-EPT)");
    }

    #[test]
    fn restored_microvm_serves_requests() {
        let model = CostModel::experimental_machine();
        let clock = SimClock::new();
        let mut engine = FirecrackerSnapshotEngine::new();
        let mut outcome = engine
            .boot(&AppProfile::node_hello(), &clock, &model)
            .unwrap();
        let exec = outcome.program.invoke_handler(&clock, &model).unwrap();
        assert!(exec.pages_touched > 0);
        assert_eq!(outcome.system, "FireCracker-snapshot");
    }
}
