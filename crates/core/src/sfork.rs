//! The `sfork` (sandbox fork) primitive and template sandboxes (paper §4).
//!
//! A **template sandbox** is a function instance initialized to its
//! func-entry point that holds *no request state*. It runs in template mode
//! (Table-1-denied syscalls error) and keeps its Sentry threads merged into
//! the transient single thread, so it can duplicate itself at any moment:
//!
//! - user and guest-kernel memory duplicate copy-on-write (including
//!   `MAP_SHARED` regions carrying the paper's new CoW flag);
//! - the stateless overlay rootFS clones its in-memory upper layer, while
//!   read-only gofer descriptors are inherited as-is;
//! - PID/USER namespaces keep identity-derived state consistent;
//! - the child re-expands to the full thread set from saved contexts.
//!
//! [`LanguageTemplate`] (§4.3) is a template holding only an initialized
//! language runtime; it serves *cold* boots of any function in that language
//! by sforking and then loading the function's own classes (Table 2).

use std::fmt;
use std::sync::Arc;

use faultsim::InjectionPoint;
use runtimes::{heap_page_byte, AppProfile, RuntimeKind, WrappedProgram};
use sandbox::{traced_boot, BootCtx, BootOutcome, SandboxError};
use simtime::names;
use simtime::{CostModel, SimClock, SimNanos};

use crate::CatalyzerConfig;

/// Pages covered by one last-level page table (the granularity at which
/// `sfork` copies page-table structure).
const PTE_TABLE_SPAN: u64 = 512;

/// A template sandbox for one function.
pub struct Template {
    profile: AppProfile,
    program: WrappedProgram,
    layout_cookie: u64,
    forks: u64,
    offline: SimClock,
}

impl Template {
    /// Generates a template (offline): initialize the wrapped program to its
    /// func-entry point, switch the kernel into template mode, and merge the
    /// Sentry threads into the transient single thread.
    ///
    /// # Errors
    ///
    /// Substrate errors from initialization or the thread merge.
    pub fn generate(profile: &AppProfile, model: &CostModel) -> Result<Template, SandboxError> {
        let offline = SimClock::new();
        let fs = profile.build_fs_server();
        let mut program = WrappedProgram::start_with(profile, Arc::clone(&fs), &offline, model)?;
        program.run_to_entry_point(&offline, model)?;
        program.kernel.set_template_mode(true);
        program
            .kernel
            .sentry_threads
            .merge_to_single(&offline, model)?;
        Ok(Template {
            profile: profile.clone(),
            program,
            layout_cookie: 0x5EED_0000_0000_0001,
            forks: 0,
            offline,
        })
    }

    /// The function this template serves.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Children forked so far (fork boot is *scalable*: any number of
    /// instances from one template, unlike a bounded cache — §2.3).
    pub fn forks(&self) -> u64 {
        self.forks
    }

    /// Offline time spent generating the template.
    pub fn offline_time(&self) -> SimNanos {
        self.offline.now()
    }

    /// The template's address-space layout cookie (§6.8: periodically
    /// re-randomized, or re-randomized per-fork with
    /// [`CatalyzerConfig::aslr_rerandomize`]).
    pub fn layout_cookie(&self) -> u64 {
        self.layout_cookie
    }

    /// **sfork**: duplicate this template into a fresh instance on the boot
    /// critical path. Returns the child program and the child's layout
    /// cookie.
    ///
    /// # Errors
    ///
    /// [`SandboxError::Mem`] if a plain `MAP_SHARED` mapping (without the
    /// CoW flag) survives in the template; other substrate errors.
    pub fn sfork(
        &mut self,
        config: &CatalyzerConfig,
        ctx: &mut BootCtx,
    ) -> Result<(WrappedProgram, u64), SandboxError> {
        let child_name = format!("{}#{}", self.profile.name, self.forks + 1);

        // The sfork syscall: CoW-duplicate the address space (page-table
        // granularity) and the guest-kernel bookkeeping.
        let space = ctx.span(names::PHASE_SFORK_SYSCALL, |ctx| {
            ctx.charge_span("trap", ctx.model().host.sfork_syscall);
            let tables = self.program.space.private_pages().div_ceil(PTE_TABLE_SPAN);
            ctx.charge_span(
                "copy-page-tables",
                SimNanos::from_micros(2).saturating_mul(tables),
            );
            self.program.space.sfork_clone(child_name.clone())
        })?;
        let mut kernel = ctx.span(names::PHASE_SFORK_KERNEL_STATE, |ctx| {
            self.program
                .kernel
                .sfork_clone(child_name.clone(), ctx.clock(), ctx.model())
        });
        // PID/USER namespaces keep getpid()/getuid()-derived state valid.
        ctx.span(names::PHASE_SFORK_NAMESPACES, |ctx| {
            ctx.charge(ctx.model().host.namespace_setup.saturating_mul(2));
        });
        // Child expands back to the full thread set (the single-thread merge
        // discipline is what makes this the fragile step: a fault here means
        // the template's merged thread state is corrupt).
        ctx.fault(InjectionPoint::SforkMerge)?;
        ctx.span(names::PHASE_SFORK_EXPAND_THREADS, |ctx| {
            kernel.sentry_threads.expand(ctx.clock(), ctx.model())
        })?;
        let cookie = ctx.span(names::PHASE_SFORK_ASLR, |ctx| {
            if config.aslr_rerandomize {
                ctx.charge(SimNanos::from_micros(80));
                self.layout_cookie = self.layout_cookie.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            }
            self.layout_cookie
        });

        self.forks += 1;
        Ok((
            WrappedProgram::from_restored(&self.profile, kernel, space),
            cookie,
        ))
    }

    /// Periodically refreshes the template (§6.8: "periodically updating
    /// func-images and template sandboxes" mitigates the ASLR concern of
    /// every child sharing one layout): regenerates the template offline
    /// with a fresh address-space layout cookie. Children forked before and
    /// after observe different layouts.
    ///
    /// # Errors
    ///
    /// Substrate errors from regeneration.
    pub fn refresh(&mut self, model: &CostModel) -> Result<(), SandboxError> {
        let forks = self.forks;
        let old_cookie = self.layout_cookie;
        let mut fresh = Template::generate(&self.profile, model)?;
        fresh.forks = forks;
        fresh.layout_cookie = old_cookie.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5;
        self.offline.charge(fresh.offline.now());
        self.program = fresh.program;
        self.layout_cookie = fresh.layout_cookie;
        Ok(())
    }

    /// Convenience: a full fork-boot outcome.
    ///
    /// # Errors
    ///
    /// Same as [`Template::sfork`].
    pub fn fork_boot(
        &mut self,
        config: &CatalyzerConfig,
        ctx: &mut BootCtx,
    ) -> Result<BootOutcome, SandboxError> {
        traced_boot("Catalyzer-sfork", ctx, |ctx| {
            let (program, _) = self.sfork(config, ctx)?;
            Ok(program)
        })
    }

    /// Direct access to the template's program (for tests probing template
    /// state; mutating it mutates what future children inherit).
    pub fn program_mut(&mut self) -> &mut WrappedProgram {
        &mut self.program
    }
}

impl fmt::Debug for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Template")
            .field("function", &self.profile.name)
            .field("forks", &self.forks)
            .finish()
    }
}

/// A per-language runtime template (§4.3): the language environment is
/// initialized, but no function is loaded. Serving a cold boot = `sfork` +
/// loading the function's own classes/modules.
pub struct LanguageTemplate {
    runtime: RuntimeKind,
    template: Template,
}

impl LanguageTemplate {
    /// The runtime-only pseudo-profile a language template initializes:
    /// the language's hello-world profile minus its function-specific
    /// quarter of units and heap.
    pub fn base_profile(runtime: RuntimeKind) -> AppProfile {
        let mut p = match runtime {
            RuntimeKind::C => AppProfile::c_hello(),
            RuntimeKind::Java => AppProfile::java_hello(),
            RuntimeKind::Python => AppProfile::python_hello(),
            RuntimeKind::Ruby => AppProfile::ruby_hello(),
            RuntimeKind::Node => AppProfile::node_hello(),
        };
        p.name = format!("{}-runtime-template", runtime.label());
        p.load_units = p.load_units * 3 / 4;
        p.init_heap_pages = p.init_heap_pages * 3 / 4;
        p.kernel_objects = p.kernel_objects * 3 / 4;
        p
    }

    /// Generates the template for `runtime` (offline).
    ///
    /// # Errors
    ///
    /// Same as [`Template::generate`].
    pub fn generate(
        runtime: RuntimeKind,
        model: &CostModel,
    ) -> Result<LanguageTemplate, SandboxError> {
        Ok(LanguageTemplate {
            runtime,
            template: Template::generate(&Self::base_profile(runtime), model)?,
        })
    }

    /// The language this template serves.
    pub fn runtime(&self) -> RuntimeKind {
        self.runtime
    }

    /// Cold-boots `profile` from the language template (Table 2): `sfork`
    /// the runtime, then load the function's own classes and heap.
    ///
    /// # Errors
    ///
    /// Substrate errors; the profile must use this template's runtime.
    pub fn boot_function(
        &mut self,
        profile: &AppProfile,
        config: &CatalyzerConfig,
        ctx: &mut BootCtx,
    ) -> Result<BootOutcome, SandboxError> {
        assert_eq!(profile.runtime, self.runtime, "language template mismatch");
        traced_boot("Catalyzer-JavaTemplate", ctx, |ctx| {
            let (mut program, _) = self.template.sfork(config, ctx)?;

            // Load the function's own classes/modules (the paper: "the major
            // overhead ... is caused by loading Java class files of requested
            // functions").
            ctx.span(names::PHASE_APP_LOAD_FUNCTION_UNITS, |ctx| {
                ctx.charge(
                    profile
                        .unit_cost
                        .saturating_mul(u64::from(profile.app_only_units())),
                );
            });
            // Extend the heap to the function's footprint, really filling the
            // delta pages so the handler finds its initialized state.
            ctx.span(names::PHASE_APP_FUNCTION_HEAP, |ctx| {
                let base = Self::base_profile(self.runtime);
                let from = base.heap_range().end;
                let to = profile.heap_range().end;
                if to > from {
                    let delta = memsim::VpnRange::new(from, to);
                    program.space.map_anonymous(
                        delta,
                        memsim::Perms::RW,
                        memsim::ShareMode::Private,
                        "function-heap",
                    )?;
                    for vpn in delta.iter() {
                        let b = heap_page_byte(vpn);
                        program
                            .space
                            .write(vpn, 0, &[b, b, b, b], ctx.clock(), ctx.model())?;
                    }
                }
                Ok::<_, SandboxError>(())
            })?;

            Ok(program)
        })
    }
}

impl fmt::Debug for LanguageTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LanguageTemplate")
            .field("runtime", &self.runtime)
            .field("forks", &self.template.forks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_kernel::threads::ThreadMode;

    fn model() -> CostModel {
        CostModel::experimental_machine()
    }

    #[test]
    fn c_hello_sfork_is_sub_millisecond() {
        let model = model();
        let mut t = Template::generate(&AppProfile::c_hello(), &model).unwrap();
        let clock = SimClock::new();
        let boot = t
            .fork_boot(&CatalyzerConfig::full(), &mut BootCtx::new(&clock, &model))
            .unwrap();
        // Paper §6.2: 0.97 ms for C-hello.
        let ms = boot.boot_latency.as_millis_f64();
        assert!(ms < 1.0, "sfork took {ms} ms");
        assert!(ms > 0.3, "suspiciously free sfork: {ms} ms");
        assert_eq!(boot.system, "Catalyzer-sfork");
    }

    #[test]
    fn specjbb_sfork_under_2ms() {
        let model = model();
        let mut t = Template::generate(&AppProfile::java_specjbb(), &model).unwrap();
        let clock = SimClock::new();
        let boot = t
            .fork_boot(&CatalyzerConfig::full(), &mut BootCtx::new(&clock, &model))
            .unwrap();
        // Paper abstract: <2 ms to boot Java SPECjbb.
        let ms = boot.boot_latency.as_millis_f64();
        assert!((0.8..2.0).contains(&ms), "sfork took {ms} ms");
    }

    #[test]
    fn children_inherit_state_and_serve() {
        let model = model();
        let clock = SimClock::new();
        let mut t = Template::generate(&AppProfile::c_hello(), &model).unwrap();
        let mut boot = t
            .fork_boot(&CatalyzerConfig::full(), &mut BootCtx::new(&clock, &model))
            .unwrap();
        let exec = boot.program.invoke_handler(&clock, &model).unwrap();
        assert!(exec.pages_touched > 0);
        // Children run multi-threaded; the template stays merged.
        assert_eq!(boot.program.kernel.sentry_threads.mode(), ThreadMode::Multi);
        assert_eq!(
            t.program_mut().kernel.sentry_threads.mode(),
            ThreadMode::TransientSingle
        );
    }

    #[test]
    fn fork_boot_is_scalable() {
        let model = model();
        let mut t = Template::generate(&AppProfile::c_hello(), &model).unwrap();
        let mut latencies = Vec::new();
        for _ in 0..50 {
            let mut ctx = BootCtx::fresh(&model);
            t.fork_boot(&CatalyzerConfig::full(), &mut ctx).unwrap();
            latencies.push(ctx.now());
        }
        assert_eq!(t.forks(), 50);
        // Sustainable hot boot: the 50th fork is as fast as the 1st.
        assert_eq!(latencies[0], latencies[49]);
    }

    #[test]
    fn siblings_do_not_alias_memory() {
        let model = model();
        let clock = SimClock::new();
        let mut t = Template::generate(&AppProfile::c_hello(), &model).unwrap();
        let cfg = CatalyzerConfig::full();
        let mut a = t
            .fork_boot(&cfg, &mut BootCtx::new(&clock, &model))
            .unwrap()
            .program;
        let mut b = t
            .fork_boot(&cfg, &mut BootCtx::new(&clock, &model))
            .unwrap()
            .program;
        let heap = AppProfile::c_hello().heap_range();
        a.space
            .write(heap.start, 0, b"AAAA", &clock, &model)
            .unwrap();
        let mut buf = [0u8; 4];
        b.space
            .read(heap.start, 0, &mut buf, &clock, &model)
            .unwrap();
        let expect = heap_page_byte(heap.start);
        assert_eq!(buf, [expect; 4], "sibling saw writer's bytes");
    }

    #[test]
    fn template_mode_blocks_denied_syscalls() {
        let model = model();
        let mut t = Template::generate(&AppProfile::c_hello(), &model).unwrap();
        let err = t
            .program_mut()
            .kernel
            .check_syscall(guest_kernel::syscalls::SyscallName::Ptrace)
            .unwrap_err();
        assert!(matches!(
            err,
            guest_kernel::KernelError::DeniedSyscall { .. }
        ));
    }

    #[test]
    fn periodic_refresh_changes_layout_and_keeps_serving() {
        let model = model();
        let mut t = Template::generate(&AppProfile::c_hello(), &model).unwrap();
        let clock = SimClock::new();
        let cfg = CatalyzerConfig::full();
        let before = t.layout_cookie();
        t.fork_boot(&cfg, &mut BootCtx::new(&clock, &model))
            .unwrap();
        t.refresh(&model).unwrap();
        assert_ne!(t.layout_cookie(), before, "refresh must re-randomize");
        assert_eq!(t.forks(), 1, "fork count survives the refresh");
        let mut boot = t
            .fork_boot(&cfg, &mut BootCtx::new(&clock, &model))
            .unwrap();
        boot.program.invoke_handler(&clock, &model).unwrap();
    }

    #[test]
    fn aslr_rerandomization_changes_layout_cookie() {
        let model = model();
        let mut t = Template::generate(&AppProfile::c_hello(), &model).unwrap();
        let mut ctx = BootCtx::fresh(&model);

        let fixed = CatalyzerConfig::full();
        let (_, c1) = t.sfork(&fixed, &mut ctx).unwrap();
        let (_, c2) = t.sfork(&fixed, &mut ctx).unwrap();
        assert_eq!(c1, c2, "without re-randomization the layout repeats");

        let rerand = CatalyzerConfig {
            aslr_rerandomize: true,
            ..fixed
        };
        let (_, c3) = t.sfork(&rerand, &mut ctx).unwrap();
        let (_, c4) = t.sfork(&rerand, &mut ctx).unwrap();
        assert_ne!(c3, c4, "re-randomization must change the layout");
    }

    #[test]
    fn java_language_template_cold_boot_near_table2() {
        let model = model();
        let mut lt = LanguageTemplate::generate(RuntimeKind::Java, &model).unwrap();
        let clock = SimClock::new();
        let boot = lt
            .boot_function(
                &AppProfile::java_hello(),
                &CatalyzerConfig::full(),
                &mut BootCtx::new(&clock, &model),
            )
            .unwrap();
        // Table 2: 29.3 ms (vs 659.1 ms gVisor cold boot).
        let ms = boot.boot_latency.as_millis_f64();
        assert!((20.0..45.0).contains(&ms), "template cold boot {ms} ms");
        assert_eq!(boot.system, "Catalyzer-JavaTemplate");
    }

    #[test]
    fn language_template_child_serves_function_heap() {
        let model = model();
        let clock = SimClock::new();
        let mut lt = LanguageTemplate::generate(RuntimeKind::Python, &model).unwrap();
        let mut boot = lt
            .boot_function(
                &AppProfile::python_hello(),
                &CatalyzerConfig::full(),
                &mut BootCtx::new(&clock, &model),
            )
            .unwrap();
        let exec = boot.program.invoke_handler(&clock, &model).unwrap();
        assert!(exec.pages_touched > 0);
    }

    #[test]
    #[should_panic(expected = "language template mismatch")]
    fn language_template_rejects_wrong_runtime() {
        let model = model();
        let mut lt = LanguageTemplate::generate(RuntimeKind::Java, &model).unwrap();
        let _ = lt.boot_function(
            &AppProfile::python_hello(),
            &CatalyzerConfig::full(),
            &mut BootCtx::fresh(&model),
        );
    }
}
