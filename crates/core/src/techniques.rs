//! The technique × boot-kind matrix of the paper's Figure 10.

use crate::BootMode;

/// Every technique/optimization Catalyzer applies, by pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Offline func-image compilation (§5).
    FuncImage,
    /// Offline language-runtime / template sandbox generation (§4.3).
    TemplateGeneration,
    /// Zygote preparation (§3.4).
    PrepareZygote,
    /// Overlay memory: Base/Private EPT over the mmap-ed image (§3.1).
    OverlayMemory,
    /// Separated state recovery (§3.2).
    SeparatedState,
    /// On-demand I/O reconnection + I/O cache (§3.3).
    OnDemandIo,
    /// The `sfork` primitive (§4).
    Sfork,
    /// Importing function binaries into a specialized sandbox (§3.4).
    ImportFunc,
    /// Stateless overlay rootFS (§4.2).
    StatelessOverlayFs,
    /// CoW inheritance of memory across `sfork` (§4).
    CowFromSfork,
    /// Fine-grained func-entry point (§6.7).
    FineGrainedEntryPoint,
    /// KVM allocation cache + disabled PML (§6.7).
    KvmCacheAndNoPml,
    /// Lazy `dup` in the gofer (§6.7).
    LazyDup,
}

/// Which techniques run for a given boot kind (Fig. 10's columns), split by
/// whether they run offline or on the startup critical path.
pub fn techniques_for(mode: BootMode) -> (Vec<Technique>, Vec<Technique>) {
    use Technique::*;
    match mode {
        BootMode::Cold => (
            vec![FuncImage],
            vec![
                OverlayMemory,
                SeparatedState,
                OnDemandIo,
                ImportFunc,
                FineGrainedEntryPoint,
                KvmCacheAndNoPml,
                LazyDup,
            ],
        ),
        BootMode::Warm => (
            vec![FuncImage, PrepareZygote],
            vec![
                OverlayMemory,
                SeparatedState,
                OnDemandIo,
                ImportFunc,
                FineGrainedEntryPoint,
                KvmCacheAndNoPml,
                LazyDup,
            ],
        ),
        BootMode::Fork => (
            vec![TemplateGeneration],
            vec![
                Sfork,
                StatelessOverlayFs,
                CowFromSfork,
                FineGrainedEntryPoint,
                KvmCacheAndNoPml,
                LazyDup,
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mode_has_offline_and_online_work() {
        for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
            let (offline, online) = techniques_for(mode);
            assert!(!offline.is_empty());
            assert!(!online.is_empty());
        }
    }

    #[test]
    fn fork_uses_sfork_and_restores_do_not() {
        let (_, fork) = techniques_for(BootMode::Fork);
        assert!(fork.contains(&Technique::Sfork));
        assert!(fork.contains(&Technique::StatelessOverlayFs));
        for mode in [BootMode::Cold, BootMode::Warm] {
            let (_, online) = techniques_for(mode);
            assert!(!online.contains(&Technique::Sfork));
            assert!(online.contains(&Technique::OverlayMemory));
        }
    }

    #[test]
    fn zygotes_are_warm_only_offline_prep() {
        let (cold_off, _) = techniques_for(BootMode::Cold);
        let (warm_off, _) = techniques_for(BootMode::Warm);
        assert!(!cold_off.contains(&Technique::PrepareZygote));
        assert!(warm_off.contains(&Technique::PrepareZygote));
    }
}
