//! The func-image store: offline compilation and caching of flat images.
//!
//! "A func-image is generated offline, which saves initialized state of a
//! serverless function" (paper §2.2, Fig. 5). The store runs the wrapped
//! program to its func-entry point once per function — on an *offline*
//! clock, never a boot's critical path — writes the flat image, and keeps
//! the mapped image plus the shared Base-EPT for warm boots.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use guest_kernel::gofer::FsServer;
use imagefmt::flat::{self, FlatImage};
use memsim::{EptLayer, MappedImage};
use runtimes::{AppProfile, WrappedProgram};
use sandbox::SandboxError;
use simtime::{CostModel, SimClock, SimNanos};

/// Everything the store keeps per function.
pub struct StoredFunction {
    /// Parsed handle over the mapped func-image.
    pub flat: FlatImage,
    /// The per-function FS server (shared by every instance).
    pub fs: Arc<FsServer>,
    /// The shared Base-EPT, built by the first cold boot (§3.1).
    pub base: Option<Arc<EptLayer>>,
    /// How many instances have booted from this image.
    pub boots: u64,
}

impl fmt::Debug for StoredFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoredFunction")
            .field("objects", &self.flat.object_count())
            .field("pages", &self.flat.app_page_count())
            .field("base_built", &self.base.is_some())
            .field("boots", &self.boots)
            .finish()
    }
}

/// Compiles and caches func-images (one per function).
#[derive(Debug, Default)]
pub struct FuncImageStore {
    functions: HashMap<String, StoredFunction>,
    offline: SimClock,
}

impl FuncImageStore {
    /// An empty store.
    pub fn new() -> FuncImageStore {
        FuncImageStore::default()
    }

    /// Virtual time spent on offline compilation so far.
    pub fn offline_time(&self) -> SimNanos {
        self.offline.now()
    }

    /// True if `function` has a compiled image.
    pub fn contains(&self, function: &str) -> bool {
        self.functions.contains_key(function)
    }

    /// Compiles the func-image for `profile` if not cached: runs the wrapped
    /// program to its entry point, captures the checkpoint, and writes the
    /// flat image (§5's "func-image compilation", fully offline).
    ///
    /// # Errors
    ///
    /// Substrate errors from the offline initialization run.
    pub fn ensure_compiled(
        &mut self,
        profile: &AppProfile,
        model: &CostModel,
    ) -> Result<&mut StoredFunction, SandboxError> {
        if !self.functions.contains_key(&profile.name) {
            let fs = profile.build_fs_server();
            let mut program =
                WrappedProgram::start_with(profile, Arc::clone(&fs), &self.offline, model)?;
            program.run_to_entry_point(&self.offline, model)?;
            let src = program.checkpoint_source(&self.offline, model)?;
            let bytes = flat::write(&src, &self.offline, model);
            let image = MappedImage::new(format!("{}.func", profile.name), bytes);
            let flat = FlatImage::parse(&image, &self.offline, model)?;
            self.functions.insert(
                profile.name.clone(),
                StoredFunction {
                    flat,
                    fs,
                    base: None,
                    boots: 0,
                },
            );
        }
        Ok(self
            .functions
            .get_mut(&profile.name)
            .expect("just inserted"))
    }

    /// Looks up a compiled function.
    pub fn get_mut(&mut self, function: &str) -> Option<&mut StoredFunction> {
        self.functions.get_mut(function)
    }

    /// Looks up a compiled function (shared).
    pub fn get(&self, function: &str) -> Option<&StoredFunction> {
        self.functions.get(function)
    }

    /// Number of compiled functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True if nothing is compiled.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_once_and_caches() {
        let model = CostModel::experimental_machine();
        let mut store = FuncImageStore::new();
        let profile = AppProfile::c_hello();
        store.ensure_compiled(&profile, &model).unwrap();
        let t1 = store.offline_time();
        assert!(t1 > SimNanos::ZERO);
        store.ensure_compiled(&profile, &model).unwrap();
        assert_eq!(store.offline_time(), t1, "second call must be cached");
        assert_eq!(store.len(), 1);
        assert!(store.contains("C-hello"));
    }

    #[test]
    fn stored_image_matches_profile_shape() {
        let model = CostModel::experimental_machine();
        let mut store = FuncImageStore::new();
        let profile = AppProfile::python_hello();
        let stored = store.ensure_compiled(&profile, &model).unwrap();
        // Object graph within 10 % of the calibrated size; every heap page
        // captured.
        let objs = stored.flat.object_count();
        assert!(
            objs.abs_diff(profile.kernel_objects) < profile.kernel_objects / 5,
            "{objs}"
        );
        assert!(stored.flat.app_page_count() >= profile.init_heap_pages);
        assert!(
            stored.base.is_none(),
            "base is built by the first cold boot"
        );
    }

    #[test]
    fn offline_compilation_includes_app_init() {
        let model = CostModel::experimental_machine();
        let mut store = FuncImageStore::new();
        store
            .ensure_compiled(&AppProfile::python_hello(), &model)
            .unwrap();
        // Offline time covers interpreter start (~84 ms) + capture + write.
        assert!(store.offline_time() > SimNanos::from_millis(84));
    }
}
