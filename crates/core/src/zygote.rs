//! Virtualization sandbox Zygotes (paper §3.4).
//!
//! Sandbox construction is hard to cache because it depends on
//! function-specific configuration and owns system resources. Catalyzer
//! splits a *base configuration* and *base rootfs* out of the bundle: a
//! **Zygote** is a generalized, function-independent sandbox (parsed base
//! config, allocated KVM resources, mounted base rootfs) that is
//! *specialized* at boot by importing the function's binaries and appending
//! its configuration delta.

use sandbox::config::OciConfig;
use sandbox::host::{HostTweaks, KvmDevice};
use sandbox::SandboxError;
use simtime::{CostModel, SimClock, SimNanos};

/// A pre-built, function-independent sandbox.
#[derive(Debug)]
pub struct Zygote {
    kvm: KvmDevice,
    base_mounts: u32,
}

impl Zygote {
    /// Constructs a Zygote from scratch: parse the base config, spawn the
    /// sandbox + gofer processes, allocate virtualization resources, and
    /// mount the base rootfs. Run offline when refilling the pool; runs on
    /// the boot clock only on a pool miss.
    pub fn construct(
        tweaks: HostTweaks,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<Zygote, SandboxError> {
        let base = OciConfig::for_function("zygote-base", 1).to_json();
        OciConfig::parse(&base, clock, model)?;
        clock.charge(model.host.process_spawn + model.host.gofer_spawn);
        let mut kvm = KvmDevice::create(tweaks, clock, model);
        kvm.create_vcpu(clock, model);
        kvm.kvcalloc(clock, model);
        kvm.kvcalloc(clock, model);
        kvm.set_memory_region(clock, model);
        clock.charge(model.host.mount_fs); // the base rootfs
        clock.charge(model.host.namespace_setup.saturating_mul(2));
        Ok(Zygote {
            kvm,
            base_mounts: 1,
        })
    }

    /// Specializes this Zygote for `function`: append the function-specific
    /// configuration and import its binaries/rootfs (§3.4). Cheap — the
    /// expensive construction already happened.
    pub fn specialize(
        mut self,
        function: &str,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<SpecializedSandbox, SandboxError> {
        // The function-specific config delta is small (no full re-parse).
        clock.charge(model.host.config_parse_base.scale(0.25));
        // Import function binaries: mount the app rootfs over the base.
        clock.charge(model.host.mount_fs);
        self.base_mounts += 1;
        // The app memory region is registered with KVM.
        self.kvm.set_memory_region(clock, model);
        Ok(SpecializedSandbox {
            function: function.to_string(),
            kvm: self.kvm,
        })
    }
}

/// A Zygote specialized to one function, ready for state restoration.
#[derive(Debug)]
pub struct SpecializedSandbox {
    /// The function this sandbox now belongs to.
    pub function: String,
    /// Its virtualization resources.
    pub kvm: KvmDevice,
}

/// A cache of ready Zygotes.
#[derive(Debug)]
pub struct ZygotePool {
    tweaks: HostTweaks,
    ready: Vec<Zygote>,
    offline: SimClock,
    misses: u64,
    hits: u64,
    suspect: bool,
}

impl ZygotePool {
    /// An empty pool.
    pub fn new(tweaks: HostTweaks) -> ZygotePool {
        ZygotePool {
            tweaks,
            ready: Vec::new(),
            offline: SimClock::new(),
            misses: 0,
            hits: 0,
            suspect: false,
        }
    }

    /// Refills the pool to `target` ready Zygotes, offline.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn refill(&mut self, target: usize, model: &CostModel) -> Result<(), SandboxError> {
        while self.ready.len() < target {
            let z = Zygote::construct(self.tweaks, &self.offline, model)?;
            self.ready.push(z);
        }
        Ok(())
    }

    /// Takes a Zygote: from the cache if available (hit: free), otherwise
    /// constructed on the caller's clock (miss: full construction cost).
    ///
    /// # Errors
    ///
    /// Propagates construction errors on a miss.
    pub fn take(&mut self, clock: &SimClock, model: &CostModel) -> Result<Zygote, SandboxError> {
        if let Some(z) = self.ready.pop() {
            self.hits += 1;
            return Ok(z);
        }
        self.misses += 1;
        Zygote::construct(self.tweaks, clock, model)
    }

    /// Discards every ready Zygote, returning how many were dropped. Used
    /// by quarantine when a poisoned specialization means the pooled bases
    /// can no longer be trusted; the next refill rebuilds them offline.
    pub fn drain(&mut self) -> usize {
        let dropped = self.ready.len();
        self.ready.clear();
        dropped
    }

    /// Flags the pooled bases as suspect after a poisoned specialization,
    /// *without* draining or rebuilding anything — the cheap half of
    /// deferred quarantine. A later [`ZygotePool::repair`] pays the rebuild
    /// off the request path.
    pub fn mark_suspect(&mut self) {
        self.suspect = true;
    }

    /// True when a poisoned specialization has implicated the pooled bases
    /// and [`ZygotePool::repair`] has not yet run.
    pub fn is_suspect(&self) -> bool {
        self.suspect
    }

    /// Repairs a suspect pool offline: evicts every (possibly corrupt)
    /// ready Zygote and reconstructs the same number — at least one — on
    /// the pool's offline clock. Returns `(evicted, virtual repair time)`;
    /// `(0, ZERO)` when the pool is not suspect.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the rebuild.
    pub fn repair(&mut self, model: &CostModel) -> Result<(usize, SimNanos), SandboxError> {
        if !self.suspect {
            return Ok((0, SimNanos::ZERO));
        }
        let target = self.ready.len().max(1);
        let evicted = self.drain();
        let before = self.offline.now();
        self.refill(target, model)?;
        self.suspect = false;
        Ok((evicted, self.offline.now().saturating_sub(before)))
    }

    /// Ready Zygotes available.
    pub fn available(&self) -> usize {
        self.ready.len()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Offline time spent refilling.
    pub fn offline_time(&self) -> SimNanos {
        self.offline.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::experimental_machine()
    }

    #[test]
    fn pool_hit_is_free_miss_is_not() {
        let model = model();
        let mut pool = ZygotePool::new(HostTweaks::catalyzer());
        pool.refill(2, &model).unwrap();
        assert!(pool.offline_time() > SimNanos::ZERO);

        let hit_clock = SimClock::new();
        pool.take(&hit_clock, &model).unwrap();
        assert_eq!(hit_clock.now(), SimNanos::ZERO, "hit must be free");

        pool.take(&SimClock::new(), &model).unwrap();
        let miss_clock = SimClock::new();
        pool.take(&miss_clock, &model).unwrap();
        assert!(
            miss_clock.now() > SimNanos::from_millis(2),
            "miss pays construction"
        );
        assert_eq!(pool.hits(), 2);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn repair_evicts_and_rebuilds_suspect_bases() {
        let model = model();
        let mut pool = ZygotePool::new(HostTweaks::catalyzer());
        pool.refill(3, &model).unwrap();
        // Not suspect: repair is free and touches nothing.
        assert_eq!(pool.repair(&model).unwrap(), (0, SimNanos::ZERO));
        assert_eq!(pool.available(), 3);

        pool.mark_suspect();
        assert!(pool.is_suspect());
        assert_eq!(pool.available(), 3, "marking is free — no drain yet");
        let (evicted, spent) = pool.repair(&model).unwrap();
        assert_eq!(evicted, 3);
        assert!(
            spent > SimNanos::from_millis(5),
            "3 rebuilds offline: {spent}"
        );
        assert!(!pool.is_suspect());
        assert_eq!(pool.available(), 3, "repair restores capacity");
    }

    #[test]
    fn specialization_is_cheap() {
        let model = model();
        let mut pool = ZygotePool::new(HostTweaks::catalyzer());
        pool.refill(1, &model).unwrap();
        let clock = SimClock::new();
        let z = pool.take(&clock, &model).unwrap();
        let sandbox = z.specialize("Java-hello", &clock, &model).unwrap();
        assert_eq!(sandbox.function, "Java-hello");
        // Zygote specialization ≈ 2–3 ms (the warm-boot sandbox cost).
        let ms = clock.now().as_millis_f64();
        assert!((1.0..4.0).contains(&ms), "specialize cost {ms} ms");
    }

    #[test]
    fn construction_is_several_ms() {
        let model = model();
        let clock = SimClock::new();
        Zygote::construct(HostTweaks::catalyzer(), &clock, &model).unwrap();
        let ms = clock.now().as_millis_f64();
        assert!((3.0..9.0).contains(&ms), "construct cost {ms} ms");
    }
}
