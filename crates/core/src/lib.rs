//! **Catalyzer**: init-less booting for serverless sandboxes.
//!
//! This crate is the paper's primary contribution, built on the substrate
//! crates (`memsim`, `imagefmt`, `guest-kernel`, `runtimes`, `sandbox`). It
//! implements the three boot kinds of Figure 7:
//!
//! - **Cold boot** — restore from a *func-image* with **on-demand restore**
//!   (§3): overlay memory (Base/Private EPT over the mmap-ed image),
//!   separated state recovery (arena + relation table, parallel pointer
//!   re-establishment), on-demand I/O reconnection with the I/O cache, and
//!   virtualization sandbox **Zygotes**.
//! - **Warm boot** — the same, sharing the already-mapped Base-EPT and hot
//!   page cache of running instances of the function (share-mapping).
//! - **Fork boot** — [`sfork`](Template::sfork): duplicate a running
//!   *template sandbox* directly (§4), with the transient single-thread
//!   protocol, stateless overlay rootFS, the shared-mapping CoW flag, and
//!   PID/USER namespace consistency. [`LanguageTemplate`] provides the §4.3
//!   per-language template for fast *cold* boot (Table 2).
//!
//! Every technique can be toggled through [`CatalyzerConfig`] to reproduce
//! the paper's ablation (Fig. 12) and optimization (Fig. 16) experiments.
//!
//! # Example
//!
//! ```
//! use catalyzer::{BootMode, Catalyzer};
//! use runtimes::AppProfile;
//! use sandbox::{BootCtx, BootEngine};
//! use simtime::CostModel;
//!
//! let model = CostModel::experimental_machine();
//! let mut catalyzer = Catalyzer::new();
//! let profile = AppProfile::c_hello();
//!
//! // Fork boot from a template sandbox: sub-millisecond startup.
//! catalyzer.ensure_template(&profile, &model)?;
//! let mut ctx = BootCtx::fresh(&model);
//! let boot = catalyzer.boot(BootMode::Fork, &profile, &mut ctx)?;
//! assert!(boot.boot_latency.as_millis_f64() < 1.0, "{}", boot.boot_latency);
//! // The boot emitted a nested span trace alongside the flat breakdown.
//! assert_eq!(boot.trace.name, sandbox::SPAN_BOOT);
//! # Ok::<(), sandbox::SandboxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod engine;
mod firecracker;
mod restore;
mod sfork;
mod store;
pub mod techniques;
mod zygote;

pub use config::CatalyzerConfig;
pub use engine::{BootMode, Catalyzer, CatalyzerEngine};
pub use firecracker::FirecrackerSnapshotEngine;
pub use sfork::{LanguageTemplate, Template};
pub use store::FuncImageStore;
pub use zygote::{Zygote, ZygotePool};
