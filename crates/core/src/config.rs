use sandbox::host::HostTweaks;

/// Feature toggles for Catalyzer's techniques.
///
/// The full configuration is the shipped system; the partial constructors
/// reproduce the Fig. 12 ablation ladder (each step adds one technique over
/// the gVisor-restore baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalyzerConfig {
    /// Overlay memory (§3.1): mmap the func-image into a shared Base-EPT
    /// instead of eagerly loading every page.
    pub overlay_memory: bool,
    /// Separated state recovery (§3.2): map partially-deserialized metadata
    /// and re-establish pointers in parallel, instead of one-by-one decode.
    pub separated_state: bool,
    /// On-demand I/O reconnection (§3.3): defer connections to first use.
    pub lazy_io: bool,
    /// The I/O cache (§3.3): eagerly replay the deterministic prefix of
    /// connections on warm boots. Only meaningful with `lazy_io`.
    pub io_cache: bool,
    /// Virtualization sandbox Zygotes (§3.4) for warm boot.
    pub zygotes: bool,
    /// Re-randomize the address-space layout on `sfork` (§6.8).
    pub aslr_rerandomize: bool,
    /// Host-level tweaks (§6.7).
    pub tweaks: HostTweaks,
}

impl CatalyzerConfig {
    /// The full system as shipped.
    pub fn full() -> CatalyzerConfig {
        CatalyzerConfig {
            overlay_memory: true,
            separated_state: true,
            lazy_io: true,
            io_cache: true,
            zygotes: true,
            aslr_rerandomize: false,
            tweaks: HostTweaks::catalyzer(),
        }
    }

    /// Fig. 12 step 1: only overlay memory over the gVisor-restore baseline.
    pub fn overlay_only() -> CatalyzerConfig {
        CatalyzerConfig {
            overlay_memory: true,
            separated_state: false,
            lazy_io: false,
            io_cache: false,
            zygotes: false,
            aslr_rerandomize: false,
            tweaks: HostTweaks::baseline(),
        }
    }

    /// Fig. 12 step 2: overlay memory + separated state recovery.
    pub fn overlay_and_separated() -> CatalyzerConfig {
        CatalyzerConfig {
            separated_state: true,
            ..CatalyzerConfig::overlay_only()
        }
    }

    /// Fig. 12 step 3: + lazy I/O reconnection (the full cold-boot ladder).
    pub fn overlay_separated_lazy() -> CatalyzerConfig {
        CatalyzerConfig {
            lazy_io: true,
            io_cache: true,
            ..CatalyzerConfig::overlay_and_separated()
        }
    }
}

impl Default for CatalyzerConfig {
    fn default() -> Self {
        CatalyzerConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_ladder_is_monotone() {
        let steps = [
            CatalyzerConfig::overlay_only(),
            CatalyzerConfig::overlay_and_separated(),
            CatalyzerConfig::overlay_separated_lazy(),
            CatalyzerConfig::full(),
        ];
        let on = |c: &CatalyzerConfig| {
            [
                c.overlay_memory,
                c.separated_state,
                c.lazy_io,
                c.io_cache,
                c.zygotes,
            ]
            .iter()
            .filter(|&&b| b)
            .count()
        };
        for pair in steps.windows(2) {
            assert!(on(&pair[0]) < on(&pair[1]));
        }
        assert!(steps[0].overlay_memory);
        assert!(!steps[0].separated_state);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(CatalyzerConfig::default(), CatalyzerConfig::full());
        assert!(CatalyzerConfig::full().tweaks.kvm_alloc_cache);
    }
}
