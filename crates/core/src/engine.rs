//! The Catalyzer facade: one object owning the func-image store, the Zygote
//! pool, and the template sandboxes, dispatching the three boot kinds of
//! Fig. 7.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;

use faultsim::InjectionPoint;
use runtimes::{AppProfile, RuntimeKind};
use sandbox::{BootCtx, BootEngine, BootOutcome, IsolationLevel, SandboxError};
use simtime::{CostModel, SimClock, SimNanos};

use crate::restore::restore_boot;
use crate::sfork::{LanguageTemplate, Template};
use crate::store::FuncImageStore;
use crate::zygote::ZygotePool;
use crate::CatalyzerConfig;

/// The three boot kinds (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BootMode {
    /// Restore from the func-image (map-file); builds the sandbox fresh.
    Cold,
    /// Restore sharing running instances' Base-EPT and a Zygote sandbox.
    Warm,
    /// `sfork` from a running template sandbox.
    Fork,
}

impl BootMode {
    /// Label as printed in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            BootMode::Cold => "Catalyzer-restore",
            BootMode::Warm => "Catalyzer-Zygote",
            BootMode::Fork => "Catalyzer-sfork",
        }
    }
}

/// The Catalyzer system: init-less booting with on-demand restore and sfork.
#[derive(Debug)]
pub struct Catalyzer {
    config: CatalyzerConfig,
    store: FuncImageStore,
    zygotes: ZygotePool,
    templates: HashMap<String, Template>,
    lang_templates: HashMap<RuntimeKind, LanguageTemplate>,
    suspect_templates: BTreeSet<String>,
}

impl Catalyzer {
    /// The full system.
    pub fn new() -> Catalyzer {
        Catalyzer::with_config(CatalyzerConfig::full())
    }

    /// A system with selected techniques (ablations, Fig. 12).
    pub fn with_config(config: CatalyzerConfig) -> Catalyzer {
        Catalyzer {
            config,
            store: FuncImageStore::new(),
            zygotes: ZygotePool::new(config.tweaks),
            templates: HashMap::new(),
            lang_templates: HashMap::new(),
            suspect_templates: BTreeSet::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CatalyzerConfig {
        &self.config
    }

    /// The func-image store (Table 3 sizes etc.).
    pub fn store(&self) -> &FuncImageStore {
        &self.store
    }

    /// Compiles the func-image for `profile` offline, if needed.
    ///
    /// # Errors
    ///
    /// Substrate errors from the offline run.
    pub fn prewarm_image(
        &mut self,
        profile: &AppProfile,
        model: &CostModel,
    ) -> Result<(), SandboxError> {
        self.store.ensure_compiled(profile, model)?;
        Ok(())
    }

    /// Generates (offline) the template sandbox that fork boot requires.
    ///
    /// # Errors
    ///
    /// Substrate errors from template generation.
    pub fn ensure_template(
        &mut self,
        profile: &AppProfile,
        model: &CostModel,
    ) -> Result<(), SandboxError> {
        if !self.templates.contains_key(&profile.name) {
            self.templates
                .insert(profile.name.clone(), Template::generate(profile, model)?);
        }
        Ok(())
    }

    /// Generates (offline) the per-language runtime template (§4.3).
    ///
    /// # Errors
    ///
    /// Substrate errors from template generation.
    pub fn ensure_language_template(
        &mut self,
        runtime: RuntimeKind,
        model: &CostModel,
    ) -> Result<(), SandboxError> {
        if let std::collections::hash_map::Entry::Vacant(e) = self.lang_templates.entry(runtime) {
            e.insert(LanguageTemplate::generate(runtime, model)?);
        }
        Ok(())
    }

    /// Performs the offline preparation `mode` requires: template
    /// generation for fork boot, a simulated pre-existing instance for warm
    /// boot, image compilation for cold boot.
    ///
    /// # Errors
    ///
    /// Substrate errors from template generation or the warm-up boot.
    pub fn warm_for(
        &mut self,
        mode: BootMode,
        profile: &AppProfile,
        model: &CostModel,
    ) -> Result<(), SandboxError> {
        match mode {
            BootMode::Fork => self.ensure_template(profile, model),
            BootMode::Warm => {
                if !self.store.contains(&profile.name) {
                    // Warm boot presumes running instances: simulate the
                    // pre-existing cold boot off the critical path.
                    self.prewarm_image(profile, model)?;
                    let mut warmup = BootCtx::fresh(model);
                    self.boot(BootMode::Cold, profile, &mut warmup)?;
                }
                Ok(())
            }
            BootMode::Cold => self.prewarm_image(profile, model),
        }
    }

    /// Boots one instance with the requested mode.
    ///
    /// Warm boot keeps the Zygote pool topped up offline (a background
    /// daemon in the real system); fork boot requires
    /// [`Catalyzer::ensure_template`] to have run.
    ///
    /// # Errors
    ///
    /// [`SandboxError::Config`] for fork boot without a template; substrate
    /// errors otherwise.
    pub fn boot(
        &mut self,
        mode: BootMode,
        profile: &AppProfile,
        ctx: &mut BootCtx,
    ) -> Result<BootOutcome, SandboxError> {
        match mode {
            BootMode::Cold => restore_boot(
                mode,
                &self.config,
                &mut self.store,
                &mut self.zygotes,
                profile,
                ctx,
            ),
            BootMode::Warm => {
                if self.config.zygotes {
                    self.zygotes.refill(1, ctx.model())?; // maintained offline
                }
                restore_boot(
                    mode,
                    &self.config,
                    &mut self.store,
                    &mut self.zygotes,
                    profile,
                    ctx,
                )
            }
            BootMode::Fork => {
                let template =
                    self.templates
                        .get_mut(&profile.name)
                        .ok_or_else(|| SandboxError::Config {
                            detail: format!("no template sandbox for '{}'", profile.name),
                        })?;
                template.fork_boot(&self.config, ctx)
            }
        }
    }

    /// Cold boot through the per-language runtime template (Table 2).
    ///
    /// # Errors
    ///
    /// [`SandboxError::Config`] if the language template is missing.
    pub fn language_template_boot(
        &mut self,
        profile: &AppProfile,
        ctx: &mut BootCtx,
    ) -> Result<BootOutcome, SandboxError> {
        let config = self.config;
        let lt = self
            .lang_templates
            .get_mut(&profile.runtime)
            .ok_or_else(|| SandboxError::Config {
                detail: format!("no language template for {}", profile.runtime),
            })?;
        lt.boot_function(profile, &config, ctx)
    }

    /// Table 3: per-function warm-boot memory costs, `(metadata bytes,
    /// I/O-cache bytes)`.
    ///
    /// # Errors
    ///
    /// [`SandboxError::Config`] if the func-image is not compiled yet.
    pub fn warm_memory_costs(
        &self,
        function: &str,
        model: &CostModel,
    ) -> Result<(u64, u64), SandboxError> {
        let stored = self
            .store
            .get(function)
            .ok_or_else(|| SandboxError::Config {
                detail: format!("func-image for '{function}' not compiled"),
            })?;
        let manifest = stored.flat.read_io_manifest(&SimClock::new(), model)?;
        let io_cache: u64 = manifest
            .iter()
            .filter(|c| c.used_immediately)
            .map(|c| c.wire_size() as u64)
            .sum();
        Ok((stored.flat.metadata_bytes(), io_cache))
    }

    /// Total offline virtual time spent (image compilation + zygote refills;
    /// template generation is tracked per template).
    pub fn offline_time(&self) -> SimNanos {
        self.store
            .offline_time()
            .saturating_add(self.zygotes.offline_time())
    }

    /// Quarantines the prepared state a poison fault at `point` corrupted,
    /// *and only that state*: a zygote-specialize poison discards the pooled
    /// Zygotes (they share the base the poisoned specialization came from),
    /// an sfork-merge poison regenerates `profile`'s template sandbox from
    /// scratch with the rebuild time charged to `clock` — quarantine is on
    /// the recovery critical path, unlike routine offline template work.
    /// Scoping the rebuild to the poisoned point matters on the fallback
    /// ladder: a zygote poison absorbed on the warm rung must not re-charge
    /// a template rebuild the fork rung already paid for.
    ///
    /// # Errors
    ///
    /// Substrate errors from template regeneration.
    pub fn quarantine(
        &mut self,
        profile: &AppProfile,
        point: InjectionPoint,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), SandboxError> {
        match point {
            InjectionPoint::ZygoteSpecialize => {
                self.zygotes.drain();
            }
            InjectionPoint::SforkMerge if self.templates.remove(&profile.name).is_some() => {
                let rebuilt = Template::generate(profile, model)?;
                clock.charge(rebuilt.offline_time());
                self.templates.insert(profile.name.clone(), rebuilt);
            }
            // Other points fault I/O or mappings, not prepared state.
            _ => {}
        }
        Ok(())
    }

    /// Records (for free) that the prepared state at `point` is suspect —
    /// the deferred-quarantine entry point. [`Catalyzer::repair_suspect`]
    /// later rebuilds everything recorded here, off the request path.
    pub fn mark_suspect(&mut self, profile: &AppProfile, point: InjectionPoint) {
        match point {
            InjectionPoint::ZygoteSpecialize => self.zygotes.mark_suspect(),
            InjectionPoint::SforkMerge => {
                self.suspect_templates.insert(profile.name.clone());
            }
            _ => {}
        }
    }

    /// True when any prepared state is awaiting repair.
    pub fn has_suspect_state(&self) -> bool {
        self.zygotes.is_suspect() || !self.suspect_templates.is_empty()
    }

    /// Rebuilds every suspect template and the zygote pool (when suspect)
    /// offline, returning the total virtual repair time. The asynchronous
    /// half of deferred quarantine: a background daemon pays this, not the
    /// request that tripped the poison.
    ///
    /// # Errors
    ///
    /// Substrate errors from the rebuilds.
    pub fn repair_suspect(&mut self, model: &CostModel) -> Result<SimNanos, SandboxError> {
        let mut spent = SimNanos::ZERO;
        let names = std::mem::take(&mut self.suspect_templates);
        for name in names {
            let Some(template) = self.templates.remove(&name) else {
                continue;
            };
            let profile = template.profile().clone();
            let rebuilt = Template::generate(&profile, model)?;
            spent = spent.saturating_add(rebuilt.offline_time());
            self.templates.insert(name, rebuilt);
        }
        let (_evicted, zygote_spent) = self.zygotes.repair(model)?;
        Ok(spent.saturating_add(zygote_spent))
    }
}

impl Default for Catalyzer {
    fn default() -> Self {
        Catalyzer::new()
    }
}

/// A [`BootEngine`] adapter preferring one [`BootMode`], so Catalyzer
/// variants slot into the same harnesses as the baseline engines.
///
/// The preferred mode is also the top of the engine's *fallback ladder*
/// (fork → warm → cold): [`BootEngine::degrade`] steps the active mode one
/// rung down after a failed boot, and [`BootEngine::reset_path`] restores
/// the preferred mode so one request's degradation is not permanent.
pub struct CatalyzerEngine {
    inner: Rc<RefCell<Catalyzer>>,
    preferred: BootMode,
    current: BootMode,
}

impl CatalyzerEngine {
    /// Wraps a shared Catalyzer with a preferred boot mode.
    pub fn new(inner: Rc<RefCell<Catalyzer>>, mode: BootMode) -> CatalyzerEngine {
        CatalyzerEngine {
            inner,
            preferred: mode,
            current: mode,
        }
    }

    /// Convenience: a standalone engine with its own Catalyzer instance.
    pub fn standalone(mode: BootMode) -> CatalyzerEngine {
        CatalyzerEngine::new(Rc::new(RefCell::new(Catalyzer::new())), mode)
    }

    /// The shared system.
    pub fn system(&self) -> Rc<RefCell<Catalyzer>> {
        Rc::clone(&self.inner)
    }

    /// The boot mode the next [`BootEngine::boot`] call will use (equal to
    /// the preferred mode unless [`BootEngine::degrade`] moved it).
    pub fn active_mode(&self) -> BootMode {
        self.current
    }
}

impl fmt::Debug for CatalyzerEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CatalyzerEngine")
            .field("preferred", &self.preferred)
            .field("current", &self.current)
            .finish()
    }
}

impl BootEngine for CatalyzerEngine {
    fn name(&self) -> &'static str {
        self.preferred.label()
    }

    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::High
    }

    fn warm(&mut self, profile: &AppProfile, model: &CostModel) -> Result<(), SandboxError> {
        // Single-statement borrow: the guard drops before the Result
        // propagates, so no `?` ever fires while the cell is held.
        self.inner
            .borrow_mut()
            .warm_for(self.current, profile, model)
    }

    fn boot(
        &mut self,
        profile: &AppProfile,
        ctx: &mut BootCtx,
    ) -> Result<BootOutcome, SandboxError> {
        self.warm(profile, ctx.model())?;
        let mut system = self.inner.borrow_mut();
        system.boot(self.current, profile, ctx)
    }

    fn degrade(&mut self) -> Option<&'static str> {
        let next = match self.current {
            BootMode::Fork => BootMode::Warm,
            BootMode::Warm => BootMode::Cold,
            BootMode::Cold => return None,
        };
        self.current = next;
        Some(match next {
            BootMode::Warm => "warm",
            _ => "cold",
        })
    }

    fn reset_path(&mut self) {
        self.current = self.preferred;
    }

    fn quarantine(
        &mut self,
        profile: &AppProfile,
        point: InjectionPoint,
        clock: &SimClock,
        model: &CostModel,
    ) -> Result<(), SandboxError> {
        self.inner
            .borrow_mut()
            .quarantine(profile, point, clock, model)
    }

    fn mark_suspect(&mut self, profile: &AppProfile, point: InjectionPoint) {
        self.inner.borrow_mut().mark_suspect(profile, point);
    }

    fn repair(
        &mut self,
        profile: &AppProfile,
        model: &CostModel,
    ) -> Result<SimNanos, SandboxError> {
        let _ = profile;
        self.inner.borrow_mut().repair_suspect(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::experimental_machine()
    }

    #[test]
    fn warm_beats_cold_beats_gvisor_restore() {
        let model = model();
        let profile = AppProfile::python_django();
        let mut cat = Catalyzer::new();

        let mut cold_ctx = BootCtx::fresh(&model);
        cat.boot(BootMode::Cold, &profile, &mut cold_ctx).unwrap();
        let mut warm_ctx = BootCtx::fresh(&model);
        cat.boot(BootMode::Warm, &profile, &mut warm_ctx).unwrap();

        assert!(warm_ctx.now() < cold_ctx.now());
        // Paper: restore ≈ zygote + ~30 ms.
        let gap = (cold_ctx.now() - warm_ctx.now()).as_millis_f64();
        assert!((15.0..45.0).contains(&gap), "cold-warm gap {gap} ms");
    }

    #[test]
    fn zygote_warm_boot_latencies_match_paper() {
        // Paper §6.2: warm (Zygote) boot ≈ C 5 / Java 14 / Python 9 /
        // Ruby 12 / Node 9 ms. Allow ±45 % bands.
        let model = model();
        let cases = [
            (AppProfile::c_hello(), 5.0),
            (AppProfile::java_hello(), 14.0),
            (AppProfile::python_hello(), 9.0),
            (AppProfile::ruby_hello(), 12.0),
            (AppProfile::node_hello(), 9.0),
        ];
        for (profile, expect_ms) in cases {
            let mut engine = CatalyzerEngine::standalone(BootMode::Warm);
            let mut ctx = BootCtx::fresh(&model);
            engine.boot(&profile, &mut ctx).unwrap();
            let ms = ctx.now().as_millis_f64();
            assert!(
                (expect_ms * 0.4..expect_ms * 1.6).contains(&ms),
                "{}: warm boot {ms} ms (paper {expect_ms})",
                profile.name
            );
        }
    }

    #[test]
    fn fork_requires_template() {
        let model = model();
        let mut cat = Catalyzer::new();
        let err = cat
            .boot(
                BootMode::Fork,
                &AppProfile::c_hello(),
                &mut BootCtx::fresh(&model),
            )
            .unwrap_err();
        assert!(matches!(err, SandboxError::Config { .. }));
        cat.ensure_template(&AppProfile::c_hello(), &model).unwrap();
        cat.boot(
            BootMode::Fork,
            &AppProfile::c_hello(),
            &mut BootCtx::fresh(&model),
        )
        .unwrap();
    }

    #[test]
    fn quarantine_scopes_rebuild_to_the_poisoned_point() {
        let model = model();
        let profile = AppProfile::c_hello();
        let mut cat = Catalyzer::new();
        cat.ensure_template(&profile, &model).unwrap();

        // A zygote poison drains the pooled bases but must not re-charge a
        // template rebuild: the request clock stays untouched.
        let clock = SimClock::new();
        cat.quarantine(&profile, InjectionPoint::ZygoteSpecialize, &clock, &model)
            .unwrap();
        assert_eq!(clock.now(), SimNanos::ZERO, "zygote drain is free");

        // A template poison pays the rebuild on the request clock.
        let clock = SimClock::new();
        cat.quarantine(&profile, InjectionPoint::SforkMerge, &clock, &model)
            .unwrap();
        assert!(clock.now() > SimNanos::from_millis(1), "rebuild is charged");

        // Non-prepared-state points quarantine nothing.
        let clock = SimClock::new();
        cat.quarantine(&profile, InjectionPoint::Relink, &clock, &model)
            .unwrap();
        assert_eq!(clock.now(), SimNanos::ZERO);
    }

    #[test]
    fn deferred_repair_runs_off_the_request_path() {
        let model = model();
        let profile = AppProfile::c_hello();
        let mut cat = Catalyzer::new();
        cat.ensure_template(&profile, &model).unwrap();

        cat.mark_suspect(&profile, InjectionPoint::SforkMerge);
        cat.mark_suspect(&profile, InjectionPoint::ZygoteSpecialize);
        assert!(cat.has_suspect_state());

        let spent = cat.repair_suspect(&model).unwrap();
        assert!(spent > SimNanos::from_millis(1), "repair did real work");
        assert!(!cat.has_suspect_state());
        // Repaired state still boots.
        cat.boot(BootMode::Fork, &profile, &mut BootCtx::fresh(&model))
            .unwrap();
        assert_eq!(cat.repair_suspect(&model).unwrap(), SimNanos::ZERO);
    }

    #[test]
    fn restored_instance_serves_correct_state() {
        let model = model();
        let mut ctx = BootCtx::fresh(&model);
        let mut cat = Catalyzer::new();
        let mut boot = cat
            .boot(BootMode::Cold, &AppProfile::c_nginx(), &mut ctx)
            .unwrap();
        // The handler's internal debug_assert verifies the restored heap
        // pattern byte-for-byte.
        let exec = boot.program.invoke_handler(ctx.clock(), &model).unwrap();
        assert!(exec.pages_touched > 0);
        assert!(exec.syscalls > 0);
    }

    #[test]
    fn warm_boots_share_base_ept() {
        let model = model();
        let profile = AppProfile::python_hello();
        let mut cat = Catalyzer::new();
        cat.boot(BootMode::Cold, &profile, &mut BootCtx::fresh(&model))
            .unwrap();

        let mut a = cat
            .boot(BootMode::Warm, &profile, &mut BootCtx::fresh(&model))
            .unwrap();
        let mut b = cat
            .boot(BootMode::Warm, &profile, &mut BootCtx::fresh(&model))
            .unwrap();
        let clock = SimClock::new();
        a.program.invoke_handler(&clock, &model).unwrap();
        b.program.invoke_handler(&clock, &model).unwrap();
        let usage = memsim::accounting::usage(&[&a.program.space, &b.program.space]);
        // Shared base pages make PSS strictly smaller than RSS.
        assert!(usage[0].pss_bytes < usage[0].rss_bytes);
    }

    #[test]
    fn table3_costs_are_kb_scale() {
        let model = model();
        let mut cat = Catalyzer::new();
        let profile = AppProfile::c_nginx();
        cat.prewarm_image(&profile, &model).unwrap();
        let (meta, io) = cat.warm_memory_costs(&profile.name, &model).unwrap();
        assert!(meta > 10 << 10, "metadata {meta} B");
        assert!(meta < 4 << 20, "metadata {meta} B");
        assert!(io > 0 && io < 8 << 10, "io cache {io} B");
        assert!(cat.warm_memory_costs("nope", &model).is_err());
    }

    #[test]
    fn ablation_ladder_improves_monotonically() {
        let model = model();
        let profile = AppProfile::java_specjbb();
        let mut latencies = Vec::new();
        for config in [
            CatalyzerConfig::overlay_only(),
            CatalyzerConfig::overlay_and_separated(),
            CatalyzerConfig::overlay_separated_lazy(),
        ] {
            let mut cat = Catalyzer::with_config(config);
            let mut ctx = BootCtx::fresh(&model);
            cat.boot(BootMode::Cold, &profile, &mut ctx).unwrap();
            latencies.push(ctx.now());
        }
        assert!(latencies[0] > latencies[1], "{latencies:?}");
        assert!(latencies[1] > latencies[2], "{latencies:?}");
    }
}
