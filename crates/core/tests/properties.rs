//! Property-based tests for Catalyzer's boot invariants over randomized
//! application profiles.

use catalyzer::{BootMode, Catalyzer, CatalyzerConfig, Template};
use proptest::prelude::*;
use runtimes::{heap_page_byte, AppProfile};
use sandbox::BootCtx;
use simtime::{CostModel, SimClock, SimNanos};

/// A randomized (small) application profile built on the C baseline.
fn arb_profile() -> impl Strategy<Value = AppProfile> {
    (
        8u64..96,     // heap pages
        200u64..1500, // kernel objects
        1u32..40,     // load units
        1u64..8,      // exec ms
    )
        .prop_map(|(heap, objects, units, exec_ms)| {
            let mut p = AppProfile::c_hello();
            p.name = format!("prop-{heap}-{objects}-{units}");
            p.init_heap_pages = heap;
            p.kernel_objects = objects;
            p.load_units = units;
            p.exec_time = SimNanos::from_millis(exec_ms);
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any profile: fork < warm < cold, and all three serve the same
    /// heap contents.
    #[test]
    fn boot_mode_ordering_and_fidelity(profile in arb_profile()) {
        let model = CostModel::experimental_machine();
        let mut cat = Catalyzer::new();
        cat.ensure_template(&profile, &model).unwrap();

        let mut latencies = Vec::new();
        for mode in [BootMode::Cold, BootMode::Warm, BootMode::Fork] {
            let mut ctx = BootCtx::fresh(&model);
            let mut outcome = cat.boot(mode, &profile, &mut ctx).unwrap();
            latencies.push(ctx.now());

            let probe = profile.heap_range().start + profile.init_heap_pages / 2;
            let mut buf = [0u8; 1];
            outcome.program.space.read(probe, 0, &mut buf, ctx.clock(), &model).unwrap();
            prop_assert_eq!(buf[0], heap_page_byte(probe), "{} heap corrupt", mode.label());
        }
        prop_assert!(latencies[2] < latencies[1], "fork !< warm: {latencies:?}");
        prop_assert!(latencies[1] < latencies[0], "warm !< cold: {latencies:?}");
    }

    /// The ablation ladder is monotone for any profile: each added technique
    /// never slows the cold boot down.
    #[test]
    fn ablation_monotone(profile in arb_profile()) {
        let model = CostModel::experimental_machine();
        let mut last = SimNanos::MAX;
        for config in [
            CatalyzerConfig::overlay_only(),
            CatalyzerConfig::overlay_and_separated(),
            CatalyzerConfig::overlay_separated_lazy(),
        ] {
            let mut cat = Catalyzer::with_config(config);
            let mut ctx = BootCtx::fresh(&model);
            cat.boot(BootMode::Cold, &profile, &mut ctx).unwrap();
            prop_assert!(ctx.now() <= last, "ladder regressed at {config:?}");
            last = ctx.now();
        }
    }

    /// Any number of sfork children share the template's bytes until they
    /// write, and each child's boot latency is identical (scalability).
    #[test]
    fn sfork_scalability_and_isolation(profile in arb_profile(), children in 2usize..6) {
        let model = CostModel::experimental_machine();
        let mut template = Template::generate(&profile, &model).unwrap();
        let clock = SimClock::new();

        let mut programs = Vec::new();
        let mut first_latency = None;
        for _ in 0..children {
            let mut boot_ctx = BootCtx::fresh(&model);
            let outcome = template
                .fork_boot(&CatalyzerConfig::full(), &mut boot_ctx)
                .unwrap();
            match first_latency {
                None => first_latency = Some(boot_ctx.now()),
                Some(expect) => prop_assert_eq!(boot_ctx.now(), expect),
            }
            programs.push(outcome.program);
        }

        // Child 0 scribbles over its whole heap; siblings stay pristine.
        let heap = profile.heap_range();
        for vpn in heap.iter() {
            programs[0].space.write(vpn, 0, &[0xEE], &clock, &model).unwrap();
        }
        for sibling in programs.iter_mut().skip(1) {
            let probe = heap.start + heap.len() - 1;
            let mut buf = [0u8; 1];
            sibling.space.read(probe, 0, &mut buf, &clock, &model).unwrap();
            prop_assert_eq!(buf[0], heap_page_byte(probe));
        }
    }
}
