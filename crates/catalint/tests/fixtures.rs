//! End-to-end checks against planted violations: the checker must catch a
//! wall-clock read anywhere and a panic site inside a parse module, and the
//! `catalint` binary must exit non-zero when findings exceed the baseline.

use std::process::Command;

use catalint::config::Config;
use catalint::passes::{PASS_DETERMINISM, PASS_HOTPATH, PASS_HYGIENE, PASS_PANIC};
use catalint::{analyze, SrcFile};

fn run(path: &str, content: &str) -> Vec<catalint::Violation> {
    let files = vec![SrcFile {
        path: path.into(),
        content: content.into(),
    }];
    analyze(&files, &Config::workspace_default())
}

#[test]
fn planted_systemtime_now_is_caught() {
    let v = run(
        "crates/core/src/restore.rs",
        r#"
pub fn boot_stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
"#,
    );
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_DETERMINISM && v.func == "boot_stamp"),
        "expected a determinism finding, got: {v:?}"
    );
}

#[test]
fn planted_instant_and_sleep_are_caught() {
    let v = run(
        "crates/sandbox/src/lib.rs",
        r#"
fn wait_for_boot() {
    let t0 = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = t0;
}
"#,
    );
    assert_eq!(
        v.iter().filter(|v| v.pass == PASS_DETERMINISM).count(),
        2,
        "expected Instant::now and thread::sleep findings, got: {v:?}"
    );
}

#[test]
fn simtime_may_define_time() {
    let v = run(
        "crates/simtime/src/clock.rs",
        "pub fn real_now() -> std::time::Instant { std::time::Instant::now() }",
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_DETERMINISM),
        "simtime is exempt from the determinism pass, got: {v:?}"
    );
}

#[test]
fn planted_unwrap_in_parse_module_is_caught() {
    let v = run(
        "crates/imagefmt/src/flat.rs",
        r#"
pub fn parse_header(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[0..4].try_into().unwrap())
}
"#,
    );
    // Both the slice indexing and the unwrap must be flagged.
    assert!(
        v.iter()
            .filter(|v| v.pass == PASS_PANIC && v.func == "parse_header")
            .count()
            >= 2,
        "expected indexing + unwrap findings, got: {v:?}"
    );
}

#[test]
fn unwrap_outside_parse_modules_is_not_a_panic_finding() {
    let v = run(
        "crates/workloads/src/lib.rs",
        "pub fn build() -> u32 { \"7\".parse().unwrap() }",
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_PANIC),
        "panic pass is scoped to parse modules, got: {v:?}"
    );
}

#[test]
fn lossy_cast_in_parse_module_is_caught() {
    let v = run(
        "crates/imagefmt/src/record.rs",
        "pub fn narrow(x: u64) -> u16 { x as u16 }",
    );
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_PANIC && v.what.contains("cast")),
        "expected a lossy-cast finding, got: {v:?}"
    );
}

#[test]
fn eager_copy_reachable_from_restore_root_is_caught() {
    let v = run(
        "crates/core/src/restore.rs",
        r#"
pub fn restore_boot(data: &[u8]) -> Vec<u8> {
    stage_one(data)
}
fn stage_one(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}
"#,
    );
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_HOTPATH && v.func == "stage_one"),
        "expected a hot-path copy finding via the call graph, got: {v:?}"
    );
}

#[test]
fn copy_behind_ensure_compiled_is_off_the_hot_path() {
    let v = run(
        "crates/core/src/store.rs",
        r#"
pub fn restore_boot(data: &[u8]) -> Vec<u8> {
    ensure_compiled(data)
}
fn ensure_compiled(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}
"#,
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_HOTPATH),
        "one-time image compilation may buffer freely, got: {v:?}"
    );
}

#[test]
fn box_dyn_error_in_public_library_fn_is_caught() {
    let v = run(
        "crates/platform/src/lib.rs",
        "pub fn start() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }",
    );
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_HYGIENE && v.func == "start"),
        "expected an error-hygiene finding, got: {v:?}"
    );
}

#[test]
fn allow_comment_suppresses_a_finding() {
    let v = run(
        "crates/core/src/restore.rs",
        r#"
pub fn boot_stamp() -> std::time::SystemTime {
    // catalint: allow(determinism)
    std::time::SystemTime::now()
}
"#,
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_DETERMINISM),
        "allow(determinism) on the line above must suppress, got: {v:?}"
    );
}

#[test]
fn binary_exits_zero_on_clean_tree_and_nonzero_on_violation() {
    // The workspace root is two levels up from this crate.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let bin = env!("CARGO_BIN_EXE_catalint");

    let clean = Command::new(bin)
        .args(["--root", root.to_str().expect("utf-8 root")])
        .output()
        .expect("run catalint");
    assert!(
        clean.status.success(),
        "catalint must pass on the checked-in tree:\n{}{}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );

    // Plant a violation in a scratch copy of the workspace layout: a parse
    // module with an unwrap, plus the real baseline.
    let scratch = std::env::temp_dir().join(format!("catalint-fixture-{}", std::process::id()));
    let parse_dir = scratch.join("crates/imagefmt/src");
    std::fs::create_dir_all(&parse_dir).expect("mkdir");
    std::fs::write(scratch.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::create_dir_all(scratch.join("crates")).expect("mkdir");
    std::fs::write(
        parse_dir.join("flat.rs"),
        "pub fn parse(b: &[u8]) -> u8 { *b.first().unwrap() }\n",
    )
    .expect("write fixture");

    let dirty = Command::new(bin)
        .args(["--root", scratch.to_str().expect("utf-8 scratch")])
        .output()
        .expect("run catalint");
    assert!(
        !dirty.status.success(),
        "catalint must fail on a planted unwrap in a parse module:\n{}{}",
        String::from_utf8_lossy(&dirty.stdout),
        String::from_utf8_lossy(&dirty.stderr)
    );

    std::fs::remove_dir_all(&scratch).ok();
}
