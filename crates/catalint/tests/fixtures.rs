//! End-to-end checks against planted violations: the checker must catch a
//! wall-clock read anywhere and a panic site inside a parse module, and the
//! `catalint` binary must exit non-zero when findings exceed the baseline.

use std::process::Command;

use catalint::config::Config;
use catalint::passes::{
    PASS_DETERMINISM, PASS_EVENTPROTO, PASS_GENARENA, PASS_HERMETIC, PASS_HOTPATH, PASS_HYGIENE,
    PASS_PANIC, PASS_SEAMCOVER, PASS_SIMARITH, PASS_SPANFLOW,
};
use catalint::{analyze, SrcFile};

fn run(path: &str, content: &str) -> Vec<catalint::Violation> {
    run_files(&[(path, content)])
}

fn run_files(files: &[(&str, &str)]) -> Vec<catalint::Violation> {
    run_files_cfg(files, &Config::workspace_default())
}

fn run_files_cfg(files: &[(&str, &str)], cfg: &Config) -> Vec<catalint::Violation> {
    let files: Vec<SrcFile> = files
        .iter()
        .map(|(p, c)| SrcFile {
            path: (*p).into(),
            content: (*c).into(),
        })
        .collect();
    analyze(&files, cfg)
}

#[test]
fn planted_systemtime_now_is_caught() {
    let v = run(
        "crates/core/src/restore.rs",
        r#"
pub fn boot_stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
"#,
    );
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_DETERMINISM && v.func == "boot_stamp"),
        "expected a determinism finding, got: {v:?}"
    );
}

#[test]
fn planted_instant_and_sleep_are_caught() {
    let v = run(
        "crates/sandbox/src/lib.rs",
        r#"
fn wait_for_boot() {
    let t0 = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = t0;
}
"#,
    );
    assert_eq!(
        v.iter().filter(|v| v.pass == PASS_DETERMINISM).count(),
        2,
        "expected Instant::now and thread::sleep findings, got: {v:?}"
    );
}

#[test]
fn simtime_may_define_time() {
    let v = run(
        "crates/simtime/src/clock.rs",
        "pub fn real_now() -> std::time::Instant { std::time::Instant::now() }",
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_DETERMINISM),
        "simtime is exempt from the determinism pass, got: {v:?}"
    );
}

#[test]
fn planted_unwrap_in_parse_module_is_caught() {
    let v = run(
        "crates/imagefmt/src/flat.rs",
        r#"
pub fn parse_header(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[0..4].try_into().unwrap())
}
"#,
    );
    // Both the slice indexing and the unwrap must be flagged.
    assert!(
        v.iter()
            .filter(|v| v.pass == PASS_PANIC && v.func == "parse_header")
            .count()
            >= 2,
        "expected indexing + unwrap findings, got: {v:?}"
    );
}

#[test]
fn unwrap_outside_parse_modules_is_not_a_panic_finding() {
    let v = run(
        "crates/workloads/src/lib.rs",
        "pub fn build() -> u32 { \"7\".parse().unwrap() }",
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_PANIC),
        "panic pass is scoped to parse modules, got: {v:?}"
    );
}

#[test]
fn lossy_cast_in_parse_module_is_caught() {
    let v = run(
        "crates/imagefmt/src/record.rs",
        "pub fn narrow(x: u64) -> u16 { x as u16 }",
    );
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_PANIC && v.what.contains("cast")),
        "expected a lossy-cast finding, got: {v:?}"
    );
}

#[test]
fn eager_copy_reachable_from_restore_root_is_caught() {
    let v = run(
        "crates/core/src/restore.rs",
        r#"
pub fn restore_boot(data: &[u8]) -> Vec<u8> {
    stage_one(data)
}
fn stage_one(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}
"#,
    );
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_HOTPATH && v.func == "stage_one"),
        "expected a hot-path copy finding via the call graph, got: {v:?}"
    );
}

#[test]
fn copy_behind_ensure_compiled_is_off_the_hot_path() {
    let v = run(
        "crates/core/src/store.rs",
        r#"
pub fn restore_boot(data: &[u8]) -> Vec<u8> {
    ensure_compiled(data)
}
fn ensure_compiled(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}
"#,
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_HOTPATH),
        "one-time image compilation may buffer freely, got: {v:?}"
    );
}

#[test]
fn box_dyn_error_in_public_library_fn_is_caught() {
    let v = run(
        "crates/platform/src/lib.rs",
        "pub fn start() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }",
    );
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_HYGIENE && v.func == "start"),
        "expected an error-hygiene finding, got: {v:?}"
    );
}

#[test]
fn allow_comment_suppresses_a_finding() {
    let v = run(
        "crates/core/src/restore.rs",
        r#"
pub fn boot_stamp() -> std::time::SystemTime {
    // catalint: allow(determinism)
    std::time::SystemTime::now()
}
"#,
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_DETERMINISM),
        "allow(determinism) on the line above must suppress, got: {v:?}"
    );
}

#[test]
fn binary_exits_zero_on_clean_tree_and_nonzero_on_violation() {
    // The workspace root is two levels up from this crate.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let bin = env!("CARGO_BIN_EXE_catalint");

    let clean = Command::new(bin)
        .args(["--root", root.to_str().expect("utf-8 root")])
        .output()
        .expect("run catalint");
    assert!(
        clean.status.success(),
        "catalint must pass on the checked-in tree:\n{}{}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );

    // Plant a violation in a scratch copy of the workspace layout: a parse
    // module with an unwrap, plus the real baseline.
    let scratch = std::env::temp_dir().join(format!("catalint-fixture-{}", std::process::id()));
    let parse_dir = scratch.join("crates/imagefmt/src");
    std::fs::create_dir_all(&parse_dir).expect("mkdir");
    std::fs::write(scratch.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::create_dir_all(scratch.join("crates")).expect("mkdir");
    std::fs::write(
        parse_dir.join("flat.rs"),
        "pub fn parse(b: &[u8]) -> u8 { *b.first().unwrap() }\n",
    )
    .expect("write fixture");

    let dirty = Command::new(bin)
        .args(["--root", scratch.to_str().expect("utf-8 scratch")])
        .output()
        .expect("run catalint");
    assert!(
        !dirty.status.success(),
        "catalint must fail on a planted unwrap in a parse module:\n{}{}",
        String::from_utf8_lossy(&dirty.stdout),
        String::from_utf8_lossy(&dirty.stderr)
    );

    std::fs::remove_dir_all(&scratch).ok();
}

// ---------------------------------------------------------------------------
// PR 6: the dataflow contract passes
// ---------------------------------------------------------------------------

/// A gVisor-style engine body with every seam consulted. The seamcover
/// acceptance test edits this: deleting one `ctx.fault(...)` line must
/// produce a finding at the now-unguarded operation.
const GUARDED_ENGINE: &str = r#"
pub fn boot(profile: &AppProfile, ctx: &mut BootCtx) -> Result<(), SandboxError> {
    ctx.fault(InjectionPoint::ArenaMap)?;
    let records = store.restore_metadata(ctx.clock(), ctx.model())?;
    ctx.fault(InjectionPoint::ImageMmap)?;
    let base = store.build_base_layer(ctx.clock(), ctx.model())?;
    Ok(())
}
"#;

#[test]
fn guarded_engine_is_clean() {
    let v = run("crates/core/src/scratch_engine.rs", GUARDED_ENGINE);
    assert!(
        v.iter().all(|v| v.pass != PASS_SEAMCOVER),
        "every seam op sits behind its consult, got: {v:?}"
    );
}

#[test]
fn deleting_a_fault_consult_is_caught() {
    // Exactly GUARDED_ENGINE minus the ArenaMap consult: the
    // restore_metadata call is now unguarded and must be flagged.
    let stripped: String = GUARDED_ENGINE
        .lines()
        .filter(|l| !l.contains("InjectionPoint::ArenaMap"))
        .collect::<Vec<_>>()
        .join("\n");
    let v = run("crates/core/src/scratch_engine.rs", &stripped);
    assert!(
        v.iter().any(|v| v.pass == PASS_SEAMCOVER
            && v.func == "boot"
            && v.what.contains("restore_metadata")
            && v.what.contains("InjectionPoint::ArenaMap")),
        "deleting a ctx.fault(...) must produce a seamcover finding, got: {v:?}"
    );
    // The still-guarded build_base_layer stays clean.
    assert!(
        v.iter()
            .all(|v| v.pass != PASS_SEAMCOVER || !v.what.contains("build_base_layer")),
        "the ImageMmap consult still guards build_base_layer, got: {v:?}"
    );
}

#[test]
fn consult_through_a_precise_helper_counts() {
    // The consult may live in a same-file helper called before the
    // operation — the fixpoint summary carries it to the caller.
    let v = run(
        "crates/core/src/scratch_engine.rs",
        r#"
fn arm_seams(ctx: &mut BootCtx) -> Result<(), SandboxError> {
    ctx.fault(InjectionPoint::ArenaMap)?;
    Ok(())
}
pub fn boot(profile: &AppProfile, ctx: &mut BootCtx) -> Result<(), SandboxError> {
    arm_seams(ctx)?;
    let records = store.restore_metadata(ctx.clock(), ctx.model())?;
    Ok(())
}
"#,
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_SEAMCOVER),
        "a precise callee's consult covers the caller, got: {v:?}"
    );
}

#[test]
fn unconsulted_enum_variant_is_caught() {
    // Variant coverage: the enum declaration is parsed from source, and a
    // variant no boot-reachable function consults is flagged at its line.
    let v = run_files(&[
        (
            "crates/faultsim/src/point.rs",
            "pub enum InjectionPoint {\n    ArenaMap,\n    GhostSeam,\n}\n",
        ),
        (
            "crates/core/src/scratch_engine.rs",
            "pub fn boot(ctx: &mut BootCtx) -> Result<(), E> {\n    \
             ctx.fault(InjectionPoint::ArenaMap)?;\n    Ok(())\n}\n",
        ),
    ]);
    assert!(
        v.iter().any(|v| v.pass == PASS_SEAMCOVER
            && v.file == "crates/faultsim/src/point.rs"
            && v.line == 3
            && v.what.contains("GhostSeam")),
        "expected a variant-coverage finding for GhostSeam, got: {v:?}"
    );
    assert!(
        v.iter().all(|v| !v
            .what
            .contains("`InjectionPoint::ArenaMap` is never consulted")),
        "the consulted variant is covered, got: {v:?}"
    );
}

#[test]
fn span_guard_leak_across_try_is_caught() {
    let v = run(
        "crates/platform/src/scratch_gw.rs",
        r#"
pub fn measure(&mut self) -> Result<(), PlatformError> {
    let h = self.tracer_mut().begin("queue-wait");
    self.step()?;
    self.tracer_mut().end(h);
    Ok(())
}
"#,
    );
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_SPANFLOW && v.func == "measure" && v.line == 4),
        "expected a span-leak finding at the `?`, got: {v:?}"
    );
}

#[test]
fn balanced_span_guard_is_clean() {
    let v = run(
        "crates/platform/src/scratch_gw.rs",
        r#"
pub fn measure(&mut self) -> Result<(), PlatformError> {
    let h = self.tracer_mut().begin("queue-wait");
    let step = self.step();
    self.tracer_mut().end(h);
    step?;
    Ok(())
}
"#,
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_SPANFLOW),
        "the span closes before the `?`, got: {v:?}"
    );
}

#[test]
fn unreferenced_registry_entry_is_caught() {
    let v = run_files(&[
        (
            "crates/simtime/src/names.rs",
            "pub const BOOT_TOTAL: &str = \"boot.total\";\n\
             pub const GHOST_METRIC: &str = \"boot.ghost\";\n",
        ),
        (
            "crates/platform/src/scratch_gw.rs",
            "pub fn emit(m: &Metrics) {\n    m.observe(names::BOOT_TOTAL, 1);\n}\n",
        ),
    ]);
    assert!(
        v.iter().any(|v| v.pass == PASS_SPANFLOW
            && v.file == "crates/simtime/src/names.rs"
            && v.what.contains("GHOST_METRIC")),
        "expected an unreferenced-registry finding, got: {v:?}"
    );
    assert!(
        v.iter().all(|v| !v.what.contains("BOOT_TOTAL")),
        "the referenced entry is balanced, got: {v:?}"
    );
}

#[test]
fn unchecked_duration_arithmetic_is_caught_and_saturating_is_clean() {
    let v = run(
        "crates/core/src/scratch_acct.rs",
        "pub fn restore_boot(spent: SimNanos, extra: SimNanos) -> SimNanos {\n    \
         spent + extra\n}\n",
    );
    assert!(
        v.iter().any(|v| v.pass == PASS_SIMARITH
            && v.func == "restore_boot"
            && v.what.contains("saturating_add")),
        "expected an unchecked-add finding, got: {v:?}"
    );

    let v = run(
        "crates/core/src/scratch_acct.rs",
        "pub fn restore_boot(spent: SimNanos, extra: SimNanos) -> SimNanos {\n    \
         spent.saturating_add(extra)\n}\n",
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_SIMARITH),
        "the saturating form is the fix, got: {v:?}"
    );
}

#[test]
fn integer_arithmetic_off_the_duration_flow_is_clean() {
    // Plain counters next to duration code must not be flagged: `.len()`
    // of a Vec<SimNanos> field is a count, and u64 offsets stay u64.
    let v = run(
        "crates/platform/src/scratch_adm.rs",
        r#"
pub struct State {
    completions: Vec<SimNanos>,
}
pub fn run_admitted(state: &State, limit: usize) -> usize {
    let in_flight = state.completions.len();
    let waiting = in_flight - limit + 1;
    waiting
}
"#,
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_SIMARITH),
        "counter arithmetic is not duration arithmetic, got: {v:?}"
    );
}

#[test]
fn finding_order_is_deterministic_and_sorted() {
    // Satellite: the JSON consumers (CI artifacts, the schema gate) rely
    // on findings arriving sorted by (file, line, pass) regardless of
    // input order. Feed files in reverse order and mix passes per file.
    let files = [
        (
            "crates/platform/src/scratch_z.rs",
            "pub fn run_admitted(spent: SimNanos, extra: SimNanos) -> SimNanos {\n    \
             let x = spent + extra;\n    let y = spent - extra;\n    x\n}\n",
        ),
        (
            "crates/core/src/scratch_a.rs",
            "pub fn restore_boot(spent: SimNanos, extra: SimNanos) -> SimNanos {\n    \
             spent * 2 + extra\n}\n",
        ),
    ];
    let mut reversed = files;
    reversed.reverse();
    let a = run_files(&files);
    let b = run_files(&reversed);
    assert_eq!(a, b, "finding order must not depend on input order");
    let keys: Vec<(&str, u32, &str)> = a
        .iter()
        .map(|v| (v.file.as_str(), v.line, v.pass))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "findings must be sorted by (file, line, pass)"
    );
    assert!(
        keys.len() >= 3,
        "fixture must produce findings in both files, got: {a:?}"
    );
}

// ---------------------------------------------------------------------------
// PR 10: the hermeticity certificate passes
// ---------------------------------------------------------------------------

#[test]
fn hermetic_taint_reaches_through_helpers_with_chain() {
    // The wall-clock read sits two hops below a sim root; the hermetic
    // pass must follow the call graph there and carry the chain.
    let v = run(
        "crates/platform/src/scratch_gw.rs",
        r#"
pub fn invoke(&mut self) {
    stage();
}
fn stage() {
    finish();
}
fn finish() {
    let _t0 = std::time::Instant::now();
}
"#,
    );
    let hit = v
        .iter()
        .find(|v| v.pass == PASS_HERMETIC && v.func == "finish")
        .unwrap_or_else(|| panic!("expected a hermetic finding in `finish`, got: {v:?}"));
    assert_eq!(
        hit.chain,
        vec!["invoke", "stage", "finish"],
        "the finding must carry the root-to-sink chain"
    );
}

#[test]
fn hermetic_flags_entropy_env_and_process_spawn() {
    let v = run(
        "crates/platform/src/scratch_gw.rs",
        r#"
pub fn run_fleet(&mut self) {
    let mut rng = thread_rng();
    let _home = std::env::var("HOME");
    let _out = std::process::Command::new("date").output();
}
"#,
    );
    let hermetic: Vec<&catalint::Violation> =
        v.iter().filter(|v| v.pass == PASS_HERMETIC).collect();
    assert!(
        hermetic.iter().any(|v| v.what.contains("thread_rng"))
            && hermetic.iter().any(|v| v.what.contains("env::var"))
            && hermetic.iter().any(|v| v.what.contains("std::process")),
        "expected entropy + env + process findings, got: {v:?}"
    );
}

#[test]
fn unreachable_wall_clock_is_not_a_hermetic_finding() {
    // No sim root reaches `offline_report`: the determinism pass still
    // flags the raw read, but the hermetic certificate is about the
    // simulation's transitive closure only.
    let v = run(
        "crates/platform/src/scratch_gw.rs",
        "pub fn offline_report() { let _t = std::time::Instant::now(); }\n",
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_HERMETIC),
        "hermetic is scoped to sim-reachable code, got: {v:?}"
    );
    assert!(
        v.iter().any(|v| v.pass == PASS_DETERMINISM),
        "the raw read itself is still a determinism finding, got: {v:?}"
    );
}

#[test]
fn clock_seam_registration_stops_the_taint() {
    // The dual-clock boundary: a function registered under [[clock_seam]]
    // may read the wall clock, and the taint does not cross into it.
    let files = [(
        "crates/platform/src/scratch_gw.rs",
        r#"
pub fn invoke(&mut self) {
    let _t = realtime_now();
}
fn realtime_now() -> std::time::Instant {
    std::time::Instant::now()
}
"#,
    )];
    let unsealed = run_files(&files);
    assert!(
        unsealed
            .iter()
            .any(|v| v.pass == PASS_HERMETIC && v.func == "realtime_now"),
        "without the registry entry the read is a finding, got: {unsealed:?}"
    );

    let mut cfg = Config::workspace_default();
    cfg.clock_seam.push("realtime_now".into());
    let sealed = run_files_cfg(&files, &cfg);
    assert!(
        sealed.iter().all(|v| v.pass != PASS_HERMETIC),
        "a registered clock seam is a sanctioned boundary, got: {sealed:?}"
    );
}

/// A minimal conforming events file + run loop: two variants, every
/// payload field bound by a tie-break key, both variants scheduled and
/// handled non-emptily. The eventproto tests below each break exactly one
/// clause of this contract.
const EVENTS_OK: &str = r#"
pub enum Event {
    Arrive { request: u64 },
    Done { request: u64, instance: Option<InstanceId> },
}
impl Event {
    fn class(&self) -> u8 {
        match self {
            Event::Arrive { .. } => 0,
            Event::Done { .. } => 1,
        }
    }
    fn key(&self) -> u64 {
        match self {
            Event::Arrive { request } => *request,
            Event::Done { request, .. } => *request,
        }
    }
    fn subkey(&self) -> u64 {
        match self {
            Event::Done { instance, .. } => instance.map_or(0, |i| i.key()),
            Event::Arrive { .. } => 0,
        }
    }
}
"#;

const LOOP_OK: &str = r#"
pub fn run_fleet(&mut self) {
    self.queue.schedule(t0, Event::Arrive { request: 1 });
    match ev {
        Event::Arrive { request } => {
            self.queue.schedule(t1, Event::Done { request, instance: None });
        }
        Event::Done { request, instance } => {
            self.finish(request, instance);
        }
    }
}
"#;

const EVENTS_PATH: &str = "crates/platform/src/simulate/events.rs";
const LOOP_PATH: &str = "crates/platform/src/simulate/scratch_loop.rs";

#[test]
fn conforming_event_protocol_is_clean() {
    let v = run_files(&[(EVENTS_PATH, EVENTS_OK), (LOOP_PATH, LOOP_OK)]);
    assert!(
        v.iter().all(|v| v.pass != PASS_EVENTPROTO),
        "the conforming fixture must be clean, got: {v:?}"
    );
}

#[test]
fn tie_break_blind_spot_is_caught() {
    // Drop the `instance` binding from subkey: two `Done` events differing
    // only in `instance` now compare equal, and insertion order leaks.
    let blinded = EVENTS_OK.replace(
        "Event::Done { instance, .. } => instance.map_or(0, |i| i.key()),",
        "Event::Done { .. } => 0,",
    );
    let v = run_files(&[(EVENTS_PATH, &blinded), (LOOP_PATH, LOOP_OK)]);
    assert!(
        v.iter().any(|v| v.pass == PASS_EVENTPROTO
            && v.file == EVENTS_PATH
            && v.what.contains("tie-break blind spot")
            && v.what.contains("`instance`")),
        "expected a blind-spot finding for `instance`, got: {v:?}"
    );
}

#[test]
fn scheduled_but_unhandled_variant_is_caught() {
    // Delete the `Done` arm: the loop still schedules the variant but can
    // never consume it.
    let broken: String = LOOP_OK
        .lines()
        .filter(|l| !l.contains("Event::Done { request, instance } =>"))
        .filter(|l| !l.contains("self.finish"))
        .collect::<Vec<_>>()
        .join("\n")
        // Drop the now-orphaned closing brace of the deleted arm.
        .replacen("        }\n    }\n}", "    }\n}", 1);
    let v = run_files(&[(EVENTS_PATH, EVENTS_OK), (LOOP_PATH, &broken)]);
    assert!(
        v.iter().any(|v| v.pass == PASS_EVENTPROTO
            && v.func == "run_fleet"
            && v.what.contains("no handler arm")
            && v.what.contains("Done")),
        "expected a schedules-but-never-handles finding, got: {v:?}"
    );
}

#[test]
fn wildcard_arm_in_a_run_loop_is_caught() {
    let lazy = LOOP_OK.replace("Event::Done { request, instance } =>", "_ =>");
    let v = run_files(&[(EVENTS_PATH, EVENTS_OK), (LOOP_PATH, &lazy)]);
    assert!(
        v.iter().any(|v| v.pass == PASS_EVENTPROTO
            && v.func == "run_fleet"
            && v.what.contains("wildcard")),
        "expected a wildcard-arm finding, got: {v:?}"
    );
}

#[test]
fn ghost_variant_is_caught() {
    // Declare a variant nothing schedules or handles. The tie-break keys
    // cover it so the only findings are the ghost ones (plus the loop's
    // missing-arm conformance finding).
    let ghosted = EVENTS_OK
        .replace(
            "    Done { request: u64, instance: Option<InstanceId> },",
            "    Done { request: u64, instance: Option<InstanceId> },\n    Phantom { request: u64 },",
        )
        .replace(
            "            Event::Arrive { request } => *request,",
            "            Event::Arrive { request } | Event::Phantom { request } => *request,",
        );
    let v = run_files(&[(EVENTS_PATH, &ghosted), (LOOP_PATH, LOOP_OK)]);
    assert!(
        v.iter().any(|v| v.pass == PASS_EVENTPROTO
            && v.file == EVENTS_PATH
            && v.what.contains("Phantom")
            && v.what.contains("never constructed")),
        "expected a never-scheduled ghost finding, got: {v:?}"
    );
    assert!(
        v.iter().any(|v| v.pass == PASS_EVENTPROTO
            && v.file == EVENTS_PATH
            && v.what.contains("Phantom")
            && v.what.contains("handler arm in no run loop")),
        "expected a handled-nowhere ghost finding, got: {v:?}"
    );
}

#[test]
fn raw_index_read_off_a_generational_id_is_caught() {
    let v = run_files(&[
        (EVENTS_PATH, EVENTS_OK),
        (
            "crates/platform/src/simulate/scratch_fleet.rs",
            r#"
pub fn complete(&mut self, instance: InstanceId) {
    let slot = instance.index();
    self.touch(slot);
}
"#,
        ),
    ]);
    assert!(
        v.iter().any(|v| v.pass == PASS_GENARENA
            && v.func == "complete"
            && v.what.contains(".index()")
            && v.what.contains("instance")),
        "expected a raw-index finding on the InstanceId param, got: {v:?}"
    );
}

#[test]
fn event_payload_binding_is_tracked_into_the_arm() {
    // `instance` is declared `Option<InstanceId>` in the events file; a
    // match arm binding it by field name holds a generational id even
    // with no ascription in sight.
    let v = run_files(&[
        (EVENTS_PATH, EVENTS_OK),
        (
            "crates/platform/src/simulate/scratch_fleet.rs",
            r#"
pub fn drain(&mut self) {
    match ev {
        Event::Done { request, instance } => {
            let raw = instance.unwrap().index();
            self.touch(request, raw);
        }
    }
}
"#,
        ),
    ]);
    assert!(
        v.iter()
            .any(|v| v.pass == PASS_GENARENA && v.func == "drain"),
        "expected a raw-index finding on the bound payload field, got: {v:?}"
    );
}

#[test]
fn raw_slots_indexing_is_caught_and_arena_is_exempt() {
    let body = r#"
pub fn peek(&self) -> u64 {
    let hot = self.arena.slots[3];
    hot.request
}
"#;
    let outside = run("crates/platform/src/simulate/scratch_fleet.rs", body);
    assert!(
        outside
            .iter()
            .any(|v| v.pass == PASS_GENARENA && v.what.contains("slots")),
        "expected a raw-slots finding outside the arena, got: {outside:?}"
    );
    let inside = run("crates/platform/src/simulate/arena.rs", body);
    assert!(
        inside.iter().all(|v| v.pass != PASS_GENARENA),
        "arena.rs owns the slab and indexes it freely, got: {inside:?}"
    );
}

#[test]
fn untracked_receiver_index_is_not_a_genarena_finding() {
    // `.index()` on something that never flowed from an InstanceId is
    // someone else's method; flagging it would make the pass unusable.
    let v = run(
        "crates/platform/src/simulate/scratch_fleet.rs",
        r#"
pub fn column(&self) -> usize {
    self.header.index()
}
"#,
    );
    assert!(
        v.iter().all(|v| v.pass != PASS_GENARENA),
        "untracked receivers are out of scope, got: {v:?}"
    );
}
