//! Property tests for the lexer: it must never panic, and the line numbers
//! it stamps on tokens must be monotone in source order. The second
//! property is the load-bearing one — a desynchronized line counter (e.g.
//! from mis-lexing a `'"'` char literal as a string opener) silently
//! shifts every subsequent finding's location.

use catalint::lexer::{lex, Tok};
use proptest::prelude::*;

/// Flattens a token tree depth-first in source order, yielding each
/// token's line. A group contributes its opening-delimiter line, then its
/// children.
fn lines_in_order(toks: &[Tok], out: &mut Vec<u32>) {
    for t in toks {
        out.push(t.line());
        if let Tok::Group(_, inner, _) = t {
            lines_in_order(inner, out);
        }
    }
}

fn assert_monotone(src: &str) {
    let lexed = lex(src);
    let mut lines = Vec::new();
    lines_in_order(&lexed.toks, &mut lines);
    for w in lines.windows(2) {
        assert!(
            w[0] <= w[1],
            "line numbers went backwards ({} then {}) lexing {src:?}",
            w[0],
            w[1]
        );
    }
    let total = u32::try_from(src.lines().count().max(1)).unwrap_or(u32::MAX);
    for &l in &lines {
        assert!(
            l >= 1 && l <= total,
            "token line {l} outside 1..={total} lexing {src:?}"
        );
    }
}

/// Source fragments that exercise the lexer's tricky states: string and
/// raw-string openers, char literals (alphanumeric, escaped, punctuation —
/// including the `'"'` case that once desynced the line counter),
/// lifetimes, comments, and unbalanced delimiters.
const FRAGMENTS: [&str; 17] = [
    "fn f() {}",
    "\"str with \\\" escape\"",
    "r#\"raw \" string\"#",
    "'a'",
    "'\\n'",
    "'\"'",
    "'.'",
    "&'static str",
    "// comment\n",
    "/* block\n comment */",
    "\n",
    "{ ( [",
    "] ) }",
    "x.unwrap()",
    "\"unterminated",
    "'",
    "ident_0 1234 += ;",
];

fn fragment() -> impl Strategy<Value = &'static str> {
    (0usize..FRAGMENTS.len()).prop_map(|i| FRAGMENTS[i])
}

/// Arbitrary (mostly printable, occasionally arbitrary-byte) strings.
fn arb_source() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..256)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the lexer and never produces
    /// out-of-order line numbers.
    #[test]
    fn lex_arbitrary_never_panics(src in arb_source()) {
        assert_monotone(&src);
    }

    /// Concatenations of adversarial fragments — quotes, char literals,
    /// comments, unbalanced delimiters — keep lines monotone.
    #[test]
    fn lex_fragment_soup_keeps_lines_monotone(
        parts in proptest::collection::vec(fragment(), 0..24)
    ) {
        let src: String = parts.concat();
        assert_monotone(&src);
    }
}

/// The regression that motivated the monotone property: a `'"'` char
/// literal in a match arm must not open a string and swallow the rest of
/// the file.
#[test]
fn double_quote_char_literal_does_not_desync() {
    let src = "fn f(c: char) -> bool {\n    match c {\n        '\"' => true,\n        _ => false,\n    }\n}\nfn g() {}\n";
    let lexed = lex(src);
    // `fn g` sits on line 7; if the `'"'` opened a string the second fn
    // would be swallowed or mis-lined.
    let idents: Vec<(String, u32)> = flatten_idents(&lexed.toks);
    assert!(
        idents.iter().any(|(w, l)| w == "g" && *l == 7),
        "fn g not found at line 7: {idents:?}"
    );
}

fn flatten_idents(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for t in toks {
        if let Tok::Ident(w, l) = t {
            out.push((w.clone(), *l));
        }
        if let Tok::Group(_, inner, _) = t {
            out.extend(flatten_idents(inner));
        }
    }
    out
}
