//! Property tests for the incremental cache and the `--jobs` worker
//! pool: a cached rescan and a parallel scan must be *indistinguishable*
//! from a cold serial scan by their findings, and a one-byte edit must
//! invalidate exactly the edited file's entry. The cache and the pool
//! are pure plumbing — any observable difference is a bug here, not in
//! the passes.

use catalint::cache::AnalysisCache;
use catalint::config::Config;
use catalint::{analyze, analyze_with_cache, analyze_with_cache_jobs, SrcFile};
use proptest::prelude::*;

/// A small synthetic workspace: each file gets a distinct crate so the
/// call graph stays simple, and roughly half the files carry a planted
/// defect (an unchecked SimNanos add under a boot root) so findings are
/// non-trivial.
fn arb_workspace() -> impl Strategy<Value = Vec<SrcFile>> {
    proptest::collection::vec(any::<bool>(), 2..6).prop_map(|dirty| {
        dirty
            .iter()
            .enumerate()
            .map(|(i, dirty)| {
                let body = if *dirty {
                    "pub fn restore_boot(a: SimNanos, b: SimNanos) -> SimNanos {\n    a + b\n}\n"
                } else {
                    "pub fn restore_boot(a: SimNanos, b: SimNanos) -> SimNanos {\n    \
                     a.saturating_add(b)\n}\n"
                };
                SrcFile {
                    path: format!("crates/gen{i}/src/lib.rs"),
                    content: body.to_string(),
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Warm rescans and parallel scans agree with the cold serial scan
    /// finding-for-finding, for every jobs count.
    #[test]
    fn cached_and_parallel_scans_match_cold(files in arb_workspace(), jobs in 1usize..5) {
        let cfg = Config::workspace_default();
        let cold = analyze(&files, &cfg);

        let mut cache = AnalysisCache::new();
        let first = analyze_with_cache(&files, &cfg, &mut cache);
        let warm = analyze_with_cache(&files, &cfg, &mut cache);
        prop_assert_eq!(&cold, &first, "a fresh cache must not change findings");
        prop_assert_eq!(&cold, &warm, "a warm rescan must not change findings");
        prop_assert_eq!(
            cache.misses,
            u64::try_from(files.len()).expect("file count fits u64"),
            "second scan must be all hits"
        );

        let mut pcache = AnalysisCache::new();
        let parallel = analyze_with_cache_jobs(&files, &cfg, &mut pcache, jobs);
        prop_assert_eq!(&cold, &parallel, "jobs={} must not change findings", jobs);
    }

    /// Editing one byte of one file invalidates exactly that entry: the
    /// rescan re-parses the edited file and serves every other file from
    /// cache — and flips that file's findings to the edited content's.
    #[test]
    fn one_byte_edit_invalidates_exactly_one_entry(
        files in arb_workspace(),
        pick in 0usize..64,
    ) {
        let cfg = Config::workspace_default();
        let mut cache = AnalysisCache::new();
        let _ = analyze_with_cache(&files, &cfg, &mut cache);
        let (h0, m0) = (cache.hits, cache.misses);

        // Append exactly one byte to one file: a trailing newline, which
        // changes the content hash but not the semantics.
        let ix = pick % files.len();
        let mut edited = files.clone();
        edited[ix].content.push('\n');

        let rescan = analyze_with_cache(&edited, &cfg, &mut cache);
        prop_assert_eq!(
            cache.misses, m0 + 1,
            "exactly the edited file re-parses"
        );
        prop_assert_eq!(
            cache.hits, h0 + (files.len() as u64 - 1),
            "every other file is served from cache"
        );
        prop_assert_eq!(
            &rescan,
            &analyze(&edited, &cfg),
            "the cached rescan must equal a cold scan of the edited tree"
        );
        prop_assert_eq!(
            &rescan,
            &analyze(&files, &cfg),
            "a semantically inert byte must not change findings"
        );
    }
}
