//! Golden tests: one fixture per pass, pinning the exact rendered finding
//! — location, pass tag, root→sink chain (for the interprocedural
//! passes), and message. A format drift here breaks `--emit text`
//! consumers and the CI gate's diff output, so these are full-string
//! comparisons, not substring probes.

use catalint::config::Config;
use catalint::{analyze, SrcFile};

fn render(files: &[(&str, &str)]) -> Vec<String> {
    let files: Vec<SrcFile> = files
        .iter()
        .map(|(p, c)| SrcFile {
            path: (*p).into(),
            content: (*c).into(),
        })
        .collect();
    analyze(&files, &Config::workspace_default())
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn golden_determinism() {
    let got = render(&[(
        "crates/core/src/clockuse.rs",
        "pub fn stamp() {\n    let t = std::time::Instant::now();\n}\n",
    )]);
    assert_eq!(
        got,
        ["crates/core/src/clockuse.rs:2 [determinism] fn stamp: \
          wall-clock `Instant::now()`; use simtime::SimClock"]
    );
}

#[test]
fn golden_panic_interprocedural_chain() {
    // A parse-module function calling a panicking helper in a non-parse
    // file of the same crate: the finding lands on the parse function,
    // carries the root→sink chain, and names the helper's file.
    let got = render(&[
        (
            "crates/imagefmt/src/flat.rs",
            "pub fn decode_widget(buf: &[u8]) -> usize {\n    widget_len(buf)\n}\n",
        ),
        (
            "crates/imagefmt/src/util.rs",
            "pub fn widget_len(buf: &[u8]) -> usize {\n    buf.first().copied().unwrap().into()\n}\n",
        ),
    ]);
    assert_eq!(
        got,
        [
            "crates/imagefmt/src/flat.rs:2 [panic] decode_widget → widget_len: \
          calls `widget_len` (crates/imagefmt/src/util.rs) which can panic: .unwrap()"
        ]
    );
}

#[test]
fn golden_panic_intraprocedural() {
    let got = render(&[(
        "crates/imagefmt/src/flat.rs",
        "pub fn parse_len(buf: &[u8]) -> usize {\n    buf.len() as usize\n}\n",
    )]);
    assert_eq!(
        got,
        ["crates/imagefmt/src/flat.rs:2 [panic] fn parse_len: \
          unchecked `as usize` cast; use try_into/From"]
    );
}

#[test]
fn golden_hotpath_chain() {
    // The copy sits two hops below the configured restore root; the
    // finding is attributed to the sink but carries the full chain.
    let got = render(&[(
        "crates/core/src/restore.rs",
        "pub fn restore_boot(src: &[u8]) -> Vec<u8> {\n    \
             stage(src)\n\
         }\n\
         fn stage(src: &[u8]) -> Vec<u8> {\n    \
             src.to_vec()\n\
         }\n",
    )]);
    assert_eq!(
        got,
        [
            "crates/core/src/restore.rs:5 [hotpath] restore_boot → stage: \
          eager `to_vec()` buffer copy on the restore path; slice/share instead"
        ]
    );
}

#[test]
fn golden_borrowcell() {
    let got = render(&[(
        "crates/platform/src/celluse.rs",
        "pub fn warm(cell: &RefCell<u32>) -> Result<u32, PlatformError> {\n    \
             let mut guard = cell.borrow_mut();\n    \
             let v = fetch()?;\n    \
             *guard += v;\n    \
             Ok(*guard)\n\
         }\n",
    )]);
    assert_eq!(
        got,
        ["crates/platform/src/celluse.rs:3 [borrowcell] fn warm: \
          guard `guard` from `cell.borrow_mut()` (line 2) held across `?`; \
          end the borrow before propagating errors"]
    );
}

#[test]
fn golden_namereg() {
    let got = render(&[(
        "crates/platform/src/emit.rs",
        "pub fn note(m: &mut MetricsRegistry) {\n    m.inc(\"pool.reuse\");\n}\n",
    )]);
    assert_eq!(
        got,
        ["crates/platform/src/emit.rs:2 [namereg] fn note: \
          metric/span name literal \"pool.reuse\" (registry prefix `pool.`); \
          use the simtime::names constant or helper"]
    );
}

#[test]
fn golden_hashorder() {
    let got = render(&[(
        "crates/platform/src/order.rs",
        "pub fn dump(merged: HashSet<u64>) -> Vec<u64> {\n    \
             let mut out = Vec::new();\n    \
             for vpn in &merged {\n        \
                 out.push(*vpn);\n    \
             }\n    \
             out\n\
         }\n",
    )]);
    assert_eq!(
        got,
        ["crates/platform/src/order.rs:3 [hashorder] fn dump: \
          HashMap/HashSet iteration leaks hash order; \
          use BTreeMap/BTreeSet, sort first, or reduce order-insensitively"]
    );
}

#[test]
fn golden_hygiene() {
    let got = render(&[(
        "crates/alpha/src/lib.rs",
        "pub fn load() -> Result<(), Box<dyn std::error::Error>> {\n    Ok(())\n}\n",
    )]);
    assert_eq!(
        got,
        ["crates/alpha/src/lib.rs:1 [hygiene] fn load: \
          public fn returns `Box<dyn Error>`; return the crate error type"]
    );
}

#[test]
fn golden_seamcover_unguarded_operation() {
    let got = render(&[(
        "crates/core/src/scratch_engine.rs",
        "pub fn boot(profile: &AppProfile, ctx: &mut BootCtx) -> Result<(), SandboxError> {\n    \
         let records = store.restore_metadata(ctx.clock(), ctx.model())?;\n    Ok(())\n}\n",
    )]);
    assert_eq!(
        got,
        [
            "crates/core/src/scratch_engine.rs:2 [seamcover] fn boot: seam operation \
          `restore_metadata` runs without consulting `ctx.fault(InjectionPoint::ArenaMap)` \
          first; every boot-path `restore_metadata` must sit behind its fault seam"
        ]
    );
}

#[test]
fn golden_spanflow_guard_leak() {
    let got = render(&[(
        "crates/platform/src/scratch_gw.rs",
        "pub fn measure(&mut self) -> Result<(), PlatformError> {\n    \
         let h = self.tracer_mut().begin(\"queue-wait\");\n    \
         self.step()?;\n    \
         self.tracer_mut().end(h);\n    Ok(())\n}\n",
    )]);
    assert_eq!(
        got,
        [
            "crates/platform/src/scratch_gw.rs:3 [spanflow] fn measure: span guard opened by \
          raw `tracer begin` on line 2 leaks across `?` before any `end()`; close the span \
          on every path or use the closure-scoped `ctx.span(..)`"
        ]
    );
}

#[test]
fn golden_simarith_interprocedural_chain() {
    // The unchecked add sits in a helper; the finding lands there and
    // carries the boot-root chain.
    let got = render(&[(
        "crates/core/src/scratch_acct.rs",
        "pub fn restore_boot(spent: SimNanos, extra: SimNanos) -> SimNanos {\n    \
         tally(spent, extra)\n}\n\
         fn tally(spent: SimNanos, extra: SimNanos) -> SimNanos {\n    \
         spent + extra\n}\n",
    )]);
    assert_eq!(
        got,
        [
            "crates/core/src/scratch_acct.rs:5 [simarith] restore_boot → tally: unchecked `+` \
          on a SimNanos/duration value on a boot-reachable path; use `saturating_add` (or \
          the checked_* form)"
        ]
    );
}

#[test]
fn golden_hermetic_chain() {
    // The wall clock read in the helper produces two findings at the same
    // site: the flat determinism one, and the hermetic one carrying the
    // sim-root chain.
    let got = render(&[(
        "crates/platform/src/scratch_gw.rs",
        "pub fn invoke(&mut self) {\n    \
             stamp();\n\
         }\n\
         fn stamp() {\n    \
             let _t0 = std::time::Instant::now();\n\
         }\n",
    )]);
    assert_eq!(
        got,
        [
            "crates/platform/src/scratch_gw.rs:5 [determinism] fn stamp: \
          wall-clock `Instant::now()`; use simtime::SimClock",
            "crates/platform/src/scratch_gw.rs:5 [hermetic] invoke → stamp: \
          wall-clock `Instant::now()` on a sim-reachable path; read the virtual clock \
          (or register the function under [[clock_seam]])"
        ]
    );
}

#[test]
fn golden_eventproto_tie_break_blind_spot() {
    let got = render(&[
        (
            "crates/platform/src/simulate/events.rs",
            "pub enum Event {\n    \
                 Arrive { request: u64 },\n    \
                 Done { request: u64, instance: u64 },\n\
             }\n\
             impl Event {\n    \
                 fn class(&self) -> u8 {\n        \
                     match self {\n            \
                         Event::Arrive { .. } => 0,\n            \
                         Event::Done { .. } => 1,\n        \
                     }\n    \
                 }\n    \
                 fn key(&self) -> u64 {\n        \
                     match self {\n            \
                         Event::Arrive { request } => *request,\n            \
                         Event::Done { request, .. } => *request,\n        \
                     }\n    \
                 }\n\
             }\n",
        ),
        (
            "crates/platform/src/simulate/scratch_loop.rs",
            "pub fn run_fleet(&mut self) {\n    \
                 self.queue.schedule(t0, Event::Arrive { request: 1 });\n    \
                 match ev {\n        \
                     Event::Arrive { request } => {\n            \
                         self.queue.schedule(t1, Event::Done { request, instance: 0 });\n        \
                     }\n        \
                     Event::Done { request, instance } => {\n            \
                         self.finish(request, instance);\n        \
                     }\n    \
                 }\n\
             }\n",
        ),
    ]);
    assert_eq!(
        got,
        [
            "crates/platform/src/simulate/events.rs:3 [eventproto] fn <module>: \
          tie-break blind spot: `Event::Done` field `instance` is bound by none of the \
          tie-break keys (class/key/subkey); two events differing only in `instance` \
          compare equal and pop in insertion order"
        ]
    );
}

#[test]
fn golden_genarena_raw_index() {
    let got = render(&[(
        "crates/platform/src/simulate/scratch_fleet.rs",
        "pub fn complete(&mut self, instance: InstanceId) {\n    \
             let slot = instance.index();\n    \
             self.touch(slot);\n\
         }\n",
    )]);
    assert_eq!(
        got,
        [
            "crates/platform/src/simulate/scratch_fleet.rs:2 [genarena] fn complete: \
          raw `.index()` read off a generational id `instance`; the generation is \
          stripped, so a stale id aliases whoever reused the slot — go through the \
          generation-checked `Arena::get(InstanceId)`"
        ]
    );
}
