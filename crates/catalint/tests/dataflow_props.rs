//! Property tests for the dataflow contract passes: an *injected* defect
//! (a seam op with its `ctx.fault` deleted, a span guard leaking across
//! `?`, an unchecked add on a duration) must be flagged no matter what
//! benign code surrounds it, and the corresponding clean shape must never
//! be — regardless of identifier spelling or padding statements. The
//! fixture tests pin single examples; these pin the *rule*.

use catalint::config::Config;
use catalint::passes::{PASS_SEAMCOVER, PASS_SIMARITH, PASS_SPANFLOW};
use catalint::{analyze, SrcFile, Violation};
use proptest::prelude::*;

fn run(path: &str, content: &str) -> Vec<Violation> {
    let files = vec![SrcFile {
        path: path.into(),
        content: content.into(),
    }];
    analyze(&files, &Config::workspace_default())
}

/// A lowercase identifier that is never a keyword and never collides with
/// the fixed names the fixtures use (`v` prefix).
fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 1..8).prop_map(|v| {
        let tail: String = v.iter().map(|b| char::from(b'a' + (b % 26))).collect();
        format!("v{tail}")
    })
}

/// Benign filler statements: integer lets that touch no duration.
fn padding(n: usize) -> String {
    (0..n)
        .map(|i| format!("    let pad{i} = {i} * 3;\n"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn injected_seam_skip_is_always_flagged(name in ident(), pad in 0usize..4) {
        let pads = padding(pad);
        let skipped = format!(
            "pub fn boot({name}: &Store, ctx: &mut BootCtx) -> Result<(), E> {{\n\
             {pads}    let out = {name}.restore_metadata(ctx.clock(), ctx.model())?;\n    Ok(())\n}}\n"
        );
        let v = run("crates/core/src/scratch_gen.rs", &skipped);
        prop_assert!(
            v.iter().any(|v| v.pass == PASS_SEAMCOVER && v.what.contains("restore_metadata")),
            "seam skip must be flagged, got: {v:?}"
        );

        let guarded = format!(
            "pub fn boot({name}: &Store, ctx: &mut BootCtx) -> Result<(), E> {{\n\
             {pads}    ctx.fault(InjectionPoint::ArenaMap)?;\n\
             \x20   let out = {name}.restore_metadata(ctx.clock(), ctx.model())?;\n    Ok(())\n}}\n"
        );
        let v = run("crates/core/src/scratch_gen.rs", &guarded);
        prop_assert!(
            v.iter().all(|v| v.pass != PASS_SEAMCOVER),
            "a consulted seam must never be flagged, got: {v:?}"
        );
    }

    #[test]
    fn injected_span_leak_is_always_flagged(name in ident(), pad in 0usize..4) {
        let pads = padding(pad);
        let leaking = format!(
            "pub fn measure(&mut self) -> Result<(), E> {{\n\
             {pads}    let {name} = self.tracer_mut().begin(\"queue-wait\");\n\
             \x20   self.step()?;\n\
             \x20   self.tracer_mut().end({name});\n    Ok(())\n}}\n"
        );
        let v = run("crates/platform/src/scratch_gen.rs", &leaking);
        prop_assert!(
            v.iter().any(|v| v.pass == PASS_SPANFLOW),
            "a `?` between begin and end must be flagged, got: {v:?}"
        );

        let balanced = format!(
            "pub fn measure(&mut self) -> Result<(), E> {{\n\
             {pads}    let {name} = self.tracer_mut().begin(\"queue-wait\");\n\
             \x20   let step = self.step();\n\
             \x20   self.tracer_mut().end({name});\n    step?;\n    Ok(())\n}}\n"
        );
        let v = run("crates/platform/src/scratch_gen.rs", &balanced);
        prop_assert!(
            v.iter().all(|v| v.pass != PASS_SPANFLOW),
            "a span closed before the `?` must never be flagged, got: {v:?}"
        );
    }

    #[test]
    fn injected_unchecked_add_is_always_flagged(name in ident(), pad in 0usize..4) {
        let pads = padding(pad);
        let unchecked = format!(
            "pub fn restore_boot({name}: SimNanos, extra: SimNanos) -> SimNanos {{\n\
             {pads}    {name} + extra\n}}\n"
        );
        let v = run("crates/core/src/scratch_gen.rs", &unchecked);
        prop_assert!(
            v.iter().any(|v| v.pass == PASS_SIMARITH && v.what.contains("saturating_add")),
            "an unchecked add on SimNanos params must be flagged, got: {v:?}"
        );

        let checked = format!(
            "pub fn restore_boot({name}: SimNanos, extra: SimNanos) -> SimNanos {{\n\
             {pads}    {name}.saturating_add(extra)\n}}\n"
        );
        let v = run("crates/core/src/scratch_gen.rs", &checked);
        prop_assert!(
            v.iter().all(|v| v.pass != PASS_SIMARITH),
            "the saturating form must never be flagged, got: {v:?}"
        );

        // Integer-only arithmetic with the same shape stays clean: the
        // taint comes from the SimNanos annotation, not the op.
        let integers = format!(
            "pub fn restore_boot({name}: u64, extra: u64) -> u64 {{\n\
             {pads}    {name} + extra\n}}\n"
        );
        let v = run("crates/core/src/scratch_gen.rs", &integers);
        prop_assert!(
            v.iter().all(|v| v.pass != PASS_SIMARITH),
            "u64 arithmetic must never be flagged, got: {v:?}"
        );
    }
}
