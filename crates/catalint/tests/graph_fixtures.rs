//! Fixture tests for the approximate call graph: name resolution under
//! shadowing, method-call resolution, cross-crate edges and their
//! confidence grades, and chain reconstruction.

use std::rc::Rc;

use catalint::graph::{CallGraph, EdgeKind};
use catalint::lexer::lex;
use catalint::segment::segment;
use catalint::ParsedFile;

fn parse(path: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    ParsedFile {
        path: path.into(),
        items: segment(&lexed.toks),
        allows: lexed.allows,
    }
}

fn build(files: &[(&str, &str)]) -> Vec<Rc<ParsedFile>> {
    files.iter().map(|(p, s)| Rc::new(parse(p, s))).collect()
}

/// Node index of the only function named `name` in `file`.
fn node(g: &CallGraph<'_>, file: &str, name: &str) -> usize {
    let hits: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.file == file && n.name == name)
        .map(|(ix, _)| ix)
        .collect();
    assert_eq!(hits.len(), 1, "expected one `{name}` in {file}");
    hits[0]
}

/// All `(target, kind)` edges out of `caller` through call sites named
/// `callee`.
fn edges(g: &CallGraph<'_>, caller: usize, callee: &str) -> Vec<(usize, EdgeKind)> {
    g.calls[caller]
        .iter()
        .filter(|site| site.bare == callee)
        .flat_map(|site| site.targets.iter().copied())
        .collect()
}

#[test]
fn shadowed_names_resolve_to_the_same_file() {
    // `helper` exists in both files; the bare call in a.rs must bind to
    // a.rs's definition only, with a precise edge.
    let parsed = build(&[
        (
            "crates/alpha/src/a.rs",
            "fn caller() { helper(); }\nfn helper() {}\n",
        ),
        ("crates/beta/src/b.rs", "fn helper() {}\n"),
    ]);
    let g = CallGraph::build(&parsed, |_| false);
    let caller = node(&g, "crates/alpha/src/a.rs", "caller");
    let local = node(&g, "crates/alpha/src/a.rs", "helper");
    let foreign = node(&g, "crates/beta/src/b.rs", "helper");
    let e = edges(&g, caller, "helper");
    assert_eq!(e, vec![(local, EdgeKind::Precise)]);
    assert!(!e.iter().any(|&(t, _)| t == foreign));
}

#[test]
fn same_crate_bare_call_is_precise_cross_file() {
    let parsed = build(&[
        ("crates/alpha/src/a.rs", "fn caller() { helper(); }\n"),
        ("crates/alpha/src/b.rs", "fn helper() {}\n"),
    ]);
    let g = CallGraph::build(&parsed, |_| false);
    let caller = node(&g, "crates/alpha/src/a.rs", "caller");
    let target = node(&g, "crates/alpha/src/b.rs", "helper");
    assert_eq!(
        edges(&g, caller, "helper"),
        vec![(target, EdgeKind::Precise)]
    );
}

#[test]
fn cross_crate_bare_call_is_fuzzy() {
    let parsed = build(&[
        ("crates/alpha/src/a.rs", "fn caller() { helper(); }\n"),
        ("crates/beta/src/b.rs", "fn helper() {}\n"),
    ]);
    let g = CallGraph::build(&parsed, |_| false);
    let caller = node(&g, "crates/alpha/src/a.rs", "caller");
    let target = node(&g, "crates/beta/src/b.rs", "helper");
    assert_eq!(edges(&g, caller, "helper"), vec![(target, EdgeKind::Fuzzy)]);
}

#[test]
fn module_qualified_call_is_precise_across_crates() {
    // `lz::decode()` resolves by file stem even across a crate boundary.
    let parsed = build(&[
        ("crates/alpha/src/a.rs", "fn caller() { lz::decode(); }\n"),
        ("crates/beta/src/lz.rs", "pub fn decode() {}\n"),
    ]);
    let g = CallGraph::build(&parsed, |_| false);
    let caller = node(&g, "crates/alpha/src/a.rs", "caller");
    let target = node(&g, "crates/beta/src/lz.rs", "decode");
    assert_eq!(
        edges(&g, caller, "decode"),
        vec![(target, EdgeKind::Precise)]
    );
}

#[test]
fn self_method_call_resolves_to_the_impl_type() {
    // `self.step()` inside `impl Widget` binds to `Widget::step`, not to
    // the other type's method of the same name.
    let src = "struct Widget;\n\
               impl Widget {\n\
               \tfn run(&self) { self.step(); }\n\
               \tfn step(&self) {}\n\
               }\n\
               struct Other;\n\
               impl Other {\n\
               \tfn step(&self) {}\n\
               }\n";
    let parsed = build(&[("crates/alpha/src/a.rs", src)]);
    let g = CallGraph::build(&parsed, |_| false);
    let run = node(&g, "crates/alpha/src/a.rs", "run");
    let e = edges(&g, run, "step");
    assert_eq!(e.len(), 1, "expected exactly one target: {e:?}");
    let (t, kind) = e[0];
    assert_eq!(g.nodes[t].qualified.as_deref(), Some("Widget::step"));
    assert_eq!(kind, EdgeKind::Precise);
}

#[test]
fn type_qualified_call_is_precise() {
    let parsed = build(&[
        ("crates/alpha/src/a.rs", "fn caller() { Widget::make(); }\n"),
        (
            "crates/beta/src/w.rs",
            "struct Widget;\nimpl Widget {\n\tfn make() {}\n}\n",
        ),
    ]);
    let g = CallGraph::build(&parsed, |_| false);
    let caller = node(&g, "crates/alpha/src/a.rs", "caller");
    let target = node(&g, "crates/beta/src/w.rs", "make");
    assert_eq!(edges(&g, caller, "make"), vec![(target, EdgeKind::Precise)]);
}

#[test]
fn method_on_unknown_receiver_is_fuzzy_and_stop_edges_drop() {
    let parsed = build(&[
        (
            "crates/alpha/src/a.rs",
            "fn caller(w: Widget) { w.step(); w.get(0); }\n",
        ),
        (
            "crates/beta/src/w.rs",
            "impl Widget {\n\tfn step(&self) {}\n\tfn get(&self, i: usize) {}\n}\n",
        ),
    ]);
    let g = CallGraph::build(&parsed, |_| false);
    let caller = node(&g, "crates/alpha/src/a.rs", "caller");
    let step = node(&g, "crates/beta/src/w.rs", "step");
    // Unknown receiver: matched by bare name, graded fuzzy.
    assert_eq!(edges(&g, caller, "step"), vec![(step, EdgeKind::Fuzzy)]);
    // `get` is on the stop list: no fuzzy edge at all.
    assert_eq!(edges(&g, caller, "get"), vec![]);
}

#[test]
fn test_and_bench_files_never_join_the_graph() {
    let parsed = build(&[
        ("crates/alpha/src/a.rs", "fn real() {}\n"),
        ("crates/alpha/tests/t.rs", "fn fake() { real(); }\n"),
    ]);
    let g = CallGraph::build(&parsed, |p| p.contains("/tests/"));
    assert_eq!(g.nodes.len(), 1);
    assert_eq!(g.nodes[0].name, "real");
}

#[test]
fn reach_and_chain_reconstruct_the_shortest_path() {
    let src = "fn root() { mid(); }\nfn mid() { sink(); }\nfn sink() {}\nfn unrelated() {}\n";
    let parsed = build(&[("crates/alpha/src/a.rs", src)]);
    let g = CallGraph::build(&parsed, |_| false);
    let root = node(&g, "crates/alpha/src/a.rs", "root");
    let sink = node(&g, "crates/alpha/src/a.rs", "sink");
    let unrelated = node(&g, "crates/alpha/src/a.rs", "unrelated");
    let reach = g.reach(&[root], |_, _| true);
    assert!(reach.seen[sink]);
    assert!(!reach.seen[unrelated]);
    assert_eq!(g.chain(&reach, sink), vec!["root", "mid", "sink"]);
    // Roots have no parent: their chain is just themselves.
    assert_eq!(g.chain(&reach, root), vec!["root"]);
}

#[test]
fn reach_respects_the_follow_predicate() {
    let src = "fn root() { mid(); }\nfn mid() { sink(); }\nfn sink() {}\n";
    let parsed = build(&[("crates/alpha/src/a.rs", src)]);
    let g = CallGraph::build(&parsed, |_| false);
    let root = node(&g, "crates/alpha/src/a.rs", "root");
    let mid = node(&g, "crates/alpha/src/a.rs", "mid");
    let sink = node(&g, "crates/alpha/src/a.rs", "sink");
    // Cut the graph at `mid`: the BFS must stop there.
    let reach = g.reach(&[root], |site, _| site.bare != "sink");
    assert!(reach.seen[mid]);
    assert!(!reach.seen[sink]);
}
