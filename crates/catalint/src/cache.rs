//! Content-hash incremental cache for per-file analysis results.
//!
//! Lexing and segmentation dominate a workspace scan, and both are pure
//! functions of one file's bytes. The cache keys each path to an FNV-1a
//! hash of its content and the [`ParsedFile`] produced from it; a rescan
//! where the content hash matches reuses the parsed result via
//! `Rc::clone` instead of re-lexing. The cross-file call graph is *not*
//! cached — name resolution is global, so it is rebuilt from the (mostly
//! cached) per-file items on every scan.
//!
//! The cache is in-process only (no on-disk state): it exists for
//! long-lived embedders — `analyzerbench`'s warm rescans, future
//! watch-mode runs — and deliberately has no invalidation story beyond
//! the content hash. One-shot `cargo run -p catalint` invocations pay
//! the cold cost once, like before.

use std::collections::HashMap;
use std::rc::Rc;

use crate::lexer::lex;
use crate::segment::segment;
use crate::{ParsedFile, SrcFile};

/// 64-bit FNV-1a. Dependency-free, stable across platforms, and good
/// enough for content fingerprinting where an adversarial collision is
/// not in the threat model (the input is this repo's own source).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Lexes and segments one file. Pure, `Send`-friendly (no `Rc`), and the
/// unit of work the `--jobs` worker pool farms out; the cache wraps the
/// result in `Rc` on the coordinating thread.
pub fn parse_source(file: &SrcFile) -> ParsedFile {
    let lexed = lex(&file.content);
    ParsedFile {
        path: file.path.clone(),
        items: segment(&lexed.toks),
        allows: lexed.allows,
    }
}

/// Per-file parse cache keyed by path, validated by content hash.
#[derive(Default)]
pub struct AnalysisCache {
    entries: HashMap<String, (u64, Rc<ParsedFile>)>,
    /// Files served from cache since construction.
    pub hits: u64,
    /// Files lexed and segmented since construction.
    pub misses: u64,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Cache probe for a precomputed content hash: a hit bumps the
    /// counter and shares the stored parse; a miss reserves nothing (the
    /// caller parses — possibly on a worker thread — and stores the
    /// result via [`AnalysisCache::insert_parsed`]).
    pub fn lookup(&mut self, path: &str, hash: u64) -> Option<Rc<ParsedFile>> {
        if let Some((stored, parsed)) = self.entries.get(path) {
            if *stored == hash {
                self.hits += 1;
                return Some(Rc::clone(parsed));
            }
        }
        None
    }

    /// Stores a freshly parsed file under its content hash and returns
    /// the shared handle.
    pub fn insert_parsed(&mut self, hash: u64, parsed: ParsedFile) -> Rc<ParsedFile> {
        self.misses += 1;
        let parsed = Rc::new(parsed);
        self.entries
            .insert(parsed.path.clone(), (hash, Rc::clone(&parsed)));
        parsed
    }

    /// Returns the parsed form of `file`, reusing the cached result when
    /// the content hash matches the last scan.
    pub fn parse(&mut self, file: &SrcFile) -> Rc<ParsedFile> {
        let hash = fnv1a(file.content.as_bytes());
        if let Some(parsed) = self.lookup(&file.path, hash) {
            return parsed;
        }
        self.insert_parsed(hash, parse_source(file))
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, content: &str) -> SrcFile {
        SrcFile {
            path: path.to_string(),
            content: content.to_string(),
        }
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn unchanged_content_hits_changed_content_misses() {
        let mut cache = AnalysisCache::new();
        let a = cache.parse(&src("crates/x/src/lib.rs", "fn f() {}"));
        let b = cache.parse(&src("crates/x/src/lib.rs", "fn f() {}"));
        assert!(Rc::ptr_eq(&a, &b), "identical content must be shared");
        assert_eq!((cache.hits, cache.misses), (1, 1));

        let c = cache.parse(&src("crates/x/src/lib.rs", "fn g() {}"));
        assert!(!Rc::ptr_eq(&a, &c), "edited content must re-parse");
        assert_eq!((cache.hits, cache.misses), (1, 2));
        assert_eq!(cache.len(), 1);
        assert_eq!(c.items.fns[0].name, "g");
    }
}
