//! catalint — the workspace invariant checker.
//!
//! The Catalyzer reproduction rests on properties that rustc cannot
//! enforce and that regress silently under ordinary refactoring:
//!
//! 1. **Determinism.** Every latency figure is simulated (`simtime`);
//!    one `Instant::now()` or ambient RNG makes runs non-reproducible.
//! 2. **Panic-free parsing.** Func-images and checkpoints are untrusted
//!    input to the restore path; parsers must return `ImageError`-style
//!    results, never panic — including through the helpers they call.
//! 3. **Hot-path copy discipline.** Overlay memory (paper §3.1) exists so
//!    Base-EPT pages are *shared*; an eager full-buffer copy anywhere
//!    reachable from a restore root quietly re-introduces the cost the
//!    design removes.
//! 4. **Borrow discipline.** A `RefCell` guard held across `?` (or a
//!    re-entrant `borrow_mut` through a call chain) turns an error return
//!    into a runtime borrow panic.
//!
//! Plus three conventions: metric/span name literals come from the
//! `simtime::names` registry (`namereg`), results never depend on
//! `HashMap`/`HashSet` iteration order (`hashorder`), and public library
//! functions return crate error types, not `Box<dyn Error>` (`hygiene`).
//!
//! Plus three dataflow-backed contracts (PR 6): every `InjectionPoint`
//! fault seam is consulted on the boot paths (`seamcover`), span guards
//! and the name registry balance (`spanflow`), and `SimNanos` arithmetic
//! on boot-reachable paths is saturating/checked (`simarith`).
//!
//! Plus the hermeticity certificate (PR 10): no nondeterminism source is
//! reachable from the sim roots outside the `[[clock_seam]]` registry
//! (`hermetic`), the DES event protocol is conformant — handler coverage,
//! schedule discipline, a total tie-break (`eventproto`) — and instance
//! slabs are only read through generation-checked access (`genarena`).
//!
//! The checker lexes the workspace (no rustc, no dependencies), segments
//! it into functions, builds an approximate call graph plus def-use
//! dataflow summaries, and runs thirteen passes; the interprocedural ones
//! (`panic`, `hotpath`, `borrowcell`, `seamcover`, `simarith`, `hermetic`)
//! attach the root → sink call chain to each finding. Findings are diffed
//! against `catalint.toml`, which is intentionally empty: the workspace
//! carries zero lint debt, and any finding fails the build. Run it as
//! `cargo run -p catalint` (`--emit json` for machine-readable output,
//! `--explain <pass>` for rationale, `--jobs N` to parse in parallel); it
//! also runs inside the tier-1 test suite.

pub mod baseline;
pub mod cache;
pub mod config;
pub mod dataflow;
pub mod graph;
pub mod lexer;
pub mod passes;
pub mod segment;

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use baseline::{diff, parse_document, Diff};
use cache::{fnv1a, parse_source, AnalysisCache};
use config::Config;
use lexer::Allow;
use segment::FileItems;

/// One source file presented to the checker. Paths are workspace-relative
/// with `/` separators (`crates/imagefmt/src/flat.rs`).
#[derive(Debug, Clone)]
pub struct SrcFile {
    /// Workspace-relative path.
    pub path: String,
    /// Full file contents.
    pub content: String,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which pass produced it (see [`passes::ALL_PASSES`]).
    pub pass: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// Enclosing function, or `<module>`.
    pub func: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub what: String,
    /// Root→sink call chain for interprocedural findings (bare function
    /// names, the sink last). Empty for intra-function findings.
    pub chain: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.chain.len() > 1 {
            write!(
                f,
                "{}:{} [{}] {}: {}",
                self.file,
                self.line,
                self.pass,
                self.chain.join(" → "),
                self.what
            )
        } else {
            write!(
                f,
                "{}:{} [{}] fn {}: {}",
                self.file, self.line, self.pass, self.func, self.what
            )
        }
    }
}

/// Checker errors (I/O and baseline syntax).
#[derive(Debug)]
pub enum CatalintError {
    /// Reading a file or directory failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// `catalint.toml` did not parse.
    Baseline(String),
}

impl fmt::Display for CatalintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalintError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            CatalintError::Baseline(msg) => write!(f, "catalint.toml: {msg}"),
        }
    }
}

impl std::error::Error for CatalintError {}

/// A lexed and segmented file, shared by all passes.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub path: String,
    /// Function items and loose tokens.
    pub items: FileItems,
    /// Suppression directives found in comments.
    pub allows: Vec<Allow>,
}

/// Runs all thirteen passes over the given files and returns findings
/// sorted by `(file, line, pass)`, with `catalint: allow(...)`
/// suppressions already applied. One-shot entry point: parses into a
/// throwaway cache.
pub fn analyze(files: &[SrcFile], cfg: &Config) -> Vec<Violation> {
    let mut cache = AnalysisCache::new();
    analyze_with_cache(files, cfg, &mut cache)
}

/// Like [`analyze`], but reuses per-file lex/segment results from `cache`
/// when content hashes match — the entry point for long-lived embedders
/// (warm rescans in `analyzerbench`, future watch modes).
pub fn analyze_with_cache(
    files: &[SrcFile],
    cfg: &Config,
    cache: &mut AnalysisCache,
) -> Vec<Violation> {
    analyze_with_cache_jobs(files, cfg, cache, 1)
}

/// Like [`analyze_with_cache`], with lexing and segmentation of cache
/// misses fanned out over `jobs` worker threads. The passes themselves
/// stay single-threaded (they share the `Rc` graph); parsing dominates a
/// cold scan, so that is where the parallelism pays. Findings are
/// byte-identical to the serial path for every `jobs` value: workers
/// return plain [`ParsedFile`]s tagged with their input index, and the
/// coordinating thread re-assembles them in input order before anything
/// order-sensitive happens.
pub fn analyze_with_cache_jobs(
    files: &[SrcFile],
    cfg: &Config,
    cache: &mut AnalysisCache,
    jobs: usize,
) -> Vec<Violation> {
    let scanned: Vec<&SrcFile> = files
        .iter()
        .filter(|f| !cfg.is_scan_exempt(&f.path))
        .collect();
    let parsed = parse_files(&scanned, cache, jobs);

    // One call graph over library code, shared by the interprocedural
    // passes. Tests, benches, and binaries never join the graph.
    let graph = graph::CallGraph::build(&parsed, |p| cfg.is_non_library_path(p));
    // Dataflow summaries for the contract passes.
    let sums = dataflow::Summaries::compute(&graph);

    let mut out = Vec::new();
    passes::determinism(&parsed, cfg, &mut out);
    passes::panic_freedom(&parsed, cfg, &graph, &mut out);
    passes::hygiene(&parsed, cfg, &mut out);
    passes::hotpath(cfg, &graph, &mut out);
    passes::borrowcell(cfg, &graph, &mut out);
    passes::namereg(&parsed, cfg, &mut out);
    passes::hashorder(&parsed, cfg, &mut out);
    passes::seamcover(&parsed, cfg, &graph, &sums, &mut out);
    passes::spanflow(&parsed, cfg, &mut out);
    passes::simarith(&parsed, cfg, &graph, &sums, &mut out);
    passes::hermetic(cfg, &graph, &mut out);
    passes::eventproto(&parsed, cfg, &graph, &mut out);
    passes::genarena(&parsed, cfg, &mut out);

    let allows: HashMap<&str, &[Allow]> = parsed
        .iter()
        .map(|p| (p.path.as_str(), p.allows.as_slice()))
        .collect();
    out.retain(|v| !is_suppressed(v, &allows));
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.pass).cmp(&(b.file.as_str(), b.line, b.pass)));
    out
}

/// Parses `files` through the cache, optionally fanning cache misses out
/// over a worker pool. Output order always matches input order, so every
/// downstream consumer (the call graph's node numbering in particular) is
/// oblivious to how many workers ran.
fn parse_files(files: &[&SrcFile], cache: &mut AnalysisCache, jobs: usize) -> Vec<Rc<ParsedFile>> {
    let mut out: Vec<Option<Rc<ParsedFile>>> = vec![None; files.len()];
    let mut misses: Vec<(usize, &SrcFile, u64)> = Vec::new();
    for (ix, f) in files.iter().enumerate() {
        let hash = fnv1a(f.content.as_bytes());
        match cache.lookup(&f.path, hash) {
            Some(parsed) => out[ix] = Some(parsed),
            None => misses.push((ix, f, hash)),
        }
    }
    let workers = jobs.min(misses.len());
    if workers <= 1 {
        for (ix, f, hash) in misses {
            out[ix] = Some(cache.insert_parsed(hash, parse_source(f)));
        }
    } else {
        // `Rc<ParsedFile>` is not `Send`, so workers produce plain
        // `ParsedFile`s; the coordinating thread owns the cache and wraps
        // results as they arrive. Work is claimed off a shared counter so
        // an unlucky worker stuck on the largest file cannot serialize
        // the rest of the queue behind it.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, u64, ParsedFile)>();
        let misses = &misses;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let claim = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(ix, f, hash)) = misses.get(claim) else {
                        break;
                    };
                    if tx.send((ix, hash, parse_source(f))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (ix, hash, parsed) in rx {
                out[ix] = Some(cache.insert_parsed(hash, parsed));
            }
        });
    }
    out.into_iter().flatten().collect()
}

/// A finding is suppressed by `catalint: allow(<pass>)` (or `allow(all)`)
/// in a comment on the same line or the line above.
fn is_suppressed(v: &Violation, allows: &HashMap<&str, &[Allow]>) -> bool {
    allows.get(v.file.as_str()).is_some_and(|list| {
        list.iter().any(|a| {
            (a.pass == v.pass || a.pass == "all") && (a.line == v.line || a.line + 1 == v.line)
        })
    })
}

/// Full check result for a workspace on disk.
#[derive(Debug)]
pub struct CheckOutcome {
    /// All findings (baselined ones included).
    pub violations: Vec<Violation>,
    /// The findings diffed against `catalint.toml`.
    pub diff: Diff,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Collects, analyzes, and diffs the workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> Result<CheckOutcome, CatalintError> {
    check_workspace_jobs(root, 1)
}

/// Like [`check_workspace`], parsing with `jobs` worker threads. The
/// baseline document is read *before* analysis: its `[[clock_seam]]`
/// registry feeds the `hermetic` pass's traversal boundary, so a seam
/// declared in `catalint.toml` is honoured in the same run that reads it.
pub fn check_workspace_jobs(root: &Path, jobs: usize) -> Result<CheckOutcome, CatalintError> {
    let files = collect_workspace(root)?;
    let mut cfg = Config::workspace_default();
    let baseline_path = root.join("catalint.toml");
    let doc = if baseline_path.exists() {
        let text = fs::read_to_string(&baseline_path).map_err(|err| CatalintError::Io {
            path: baseline_path,
            err,
        })?;
        parse_document(&text).map_err(CatalintError::Baseline)?
    } else {
        baseline::BaselineDoc::default()
    };
    cfg.clock_seam
        .extend(doc.clock_seam.iter().map(|e| e.function.clone()));
    let mut cache = AnalysisCache::new();
    let violations = analyze_with_cache_jobs(&files, &cfg, &mut cache, jobs);
    Ok(CheckOutcome {
        diff: diff(&violations, &doc.allows),
        files_scanned: files.len(),
        violations,
    })
}

/// Reads every `.rs` file under the workspace's source directories, in a
/// stable order. `third_party/` and `target/` are never entered.
pub fn collect_workspace(root: &Path) -> Result<Vec<SrcFile>, CatalintError> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_dir(root, &dir, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SrcFile>) -> Result<(), CatalintError> {
    let entries = fs::read_dir(dir).map_err(|err| CatalintError::Io {
        path: dir.to_path_buf(),
        err,
    })?;
    for entry in entries {
        let entry = entry.map_err(|err| CatalintError::Io {
            path: dir.to_path_buf(),
            err,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "third_party" || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let content = fs::read_to_string(&path).map_err(|err| CatalintError::Io {
                path: path.clone(),
                err,
            })?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SrcFile { path: rel, content });
        }
    }
    Ok(())
}

/// Walks upward from `start` to the workspace root (the directory holding
/// `catalint.toml`, or failing that `Cargo.toml` plus a `crates/` dir).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("catalint.toml").is_file()
            || (dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir())
        {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}
