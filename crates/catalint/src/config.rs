//! Checker configuration.
//!
//! The *baseline* (pre-existing, tolerated debt) lives in `catalint.toml`
//! at the workspace root and is meant to be edited. The *policy* — which
//! files are parse modules, which functions root the restore hot path —
//! lives here, in code, because changing policy should look like a code
//! change and go through review.

/// Which files each pass applies to, and where the restore path starts.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes excluded from scanning entirely (vendored stand-ins,
    /// build output).
    pub scan_exempt: Vec<String>,
    /// Path prefixes exempt from the determinism pass. `simtime` is the
    /// one place allowed to define time; everyone else must consume it.
    pub determinism_exempt: Vec<String>,
    /// Files that parse untrusted bytes (func-images, checkpoints). The
    /// panic-freedom pass applies only here.
    pub parse_files: Vec<String>,
    /// Bare names of the functions that root the restore critical path.
    /// Everything name-reachable from these is held to hot-path discipline.
    pub hot_roots: Vec<String>,
    /// Bare names where hot-path traversal stops: work that is off the
    /// restore critical path even though the restore entry points call it
    /// (one-time image compilation).
    pub hot_stops: Vec<String>,
    /// Path prefixes exempt from the namereg pass: the registry itself
    /// (where the names are defined) and the checker (which defines the
    /// grammar it polices).
    pub namereg_exempt: Vec<String>,
    /// Bare names of the engine boot entry points. Everything reachable
    /// from these is the seam-coverage (`seamcover`) and duration-
    /// arithmetic (`simarith`) scope.
    pub seam_roots: Vec<String>,
    /// Additional roots for the simarith pass: the platform-facing
    /// invocation paths where latency accounting happens.
    pub sim_roots: Vec<String>,
    /// The seam registry: each `InjectionPoint` variant mapped to the
    /// bare names of the operations it guards in `core`/`sandbox`. A
    /// boot-path function calling one of these operations must consult
    /// `ctx.fault(<point>)` first.
    pub seam_ops: Vec<(String, Vec<String>)>,
    /// Path prefixes exempt from the simarith pass: `simtime` itself
    /// implements the arithmetic being policed.
    pub simarith_exempt: Vec<String>,
    /// Path prefixes exempt from the spanflow guard scan: `simtime`
    /// implements the tracer whose raw begin/end the pass polices.
    pub spanflow_exempt: Vec<String>,
    /// The span/metric name registry file. The spanflow pass checks that
    /// every public entry in it is emitted somewhere in the workspace
    /// (namereg checks the other direction: every literal is registered).
    pub registry_file: String,
    /// Bare names of the sanctioned nondeterminism boundary: functions the
    /// hermetic pass does not traverse *into* or scan. Policy keeps this
    /// empty; entries come from the `[[clock_seam]]` registry in
    /// `catalint.toml`, so the dual-clock PR flips them on in review.
    pub clock_seam: Vec<String>,
    /// The DES event-protocol file: where the `Event` enum and its
    /// tie-break key functions live.
    pub events_file: String,
    /// Name of the DES event enum.
    pub event_enum: String,
    /// The tie-break key functions on the event enum. Together they must
    /// bind every payload field, or insertion order leaks into pop order.
    pub tiebreak_fns: Vec<String>,
    /// Bare names of the open-loop run loops whose event matches the
    /// eventproto pass holds to full variant coverage.
    pub event_loops: Vec<String>,
    /// The generational-arena module. Raw slab access is legal only here;
    /// everyone else goes through the generation-checked `get`.
    pub arena_file: String,
}

impl Config {
    /// The policy for this workspace.
    pub fn workspace_default() -> Config {
        Config {
            scan_exempt: vec!["third_party/".into(), "target/".into()],
            determinism_exempt: vec!["crates/simtime/".into()],
            parse_files: vec![
                "crates/imagefmt/src/flat.rs".into(),
                "crates/imagefmt/src/classic.rs".into(),
                "crates/imagefmt/src/varint.rs".into(),
                "crates/imagefmt/src/lz.rs".into(),
                "crates/imagefmt/src/record.rs".into(),
                "crates/memsim/src/image.rs".into(),
                "crates/guest-kernel/src/checkpoint.rs".into(),
            ],
            hot_roots: vec![
                // Catalyzer restore (paper §3: separated state recovery,
                // overlay memory, on-demand I/O).
                "restore_boot".into(),
                "restore_metadata".into(),
                "build_base_layer".into(),
                "app_mem_index".into(),
                "read_io_manifest".into(),
                // Overlay-memory demand paging.
                "attach_base".into(),
                "load_page".into(),
                "load_range".into(),
            ],
            hot_stops: vec![
                // One-time image preparation (checkpoint side). The paper
                // measures restore with images already built; the builders
                // may buffer and copy freely.
                "ensure_compiled".into(),
            ],
            namereg_exempt: vec![
                "crates/simtime/src/names.rs".into(),
                "crates/catalint/".into(),
            ],
            seam_roots: vec![
                // Every `BootEngine::boot` implementation plus the
                // Catalyzer-specific entry points that bypass the trait.
                "boot".into(),
                "restore_boot".into(),
                "sfork".into(),
                "fork_boot".into(),
                "boot_function".into(),
            ],
            sim_roots: vec![
                // Latency accounting happens where boots are driven:
                // the gateway/pool invocation paths and the resilience
                // ladder, on top of the seam roots above.
                "invoke".into(),
                "invoke_detailed".into(),
                "invoke_at".into(),
                "call".into(),
                "run_admitted".into(),
                "run_closed".into(),
                "run_fleet".into(),
                // The cluster layer: the open-loop cluster engine and the
                // closed-loop scheduler's routing decision.
                "run_cluster".into(),
                // The chaos engine: node faults, failover, hedged
                // transfers — all SimNanos arithmetic on the hot path.
                "run_chaos".into(),
                "route".into(),
                "resilient_boot".into(),
            ],
            seam_ops: vec![
                // Paper §3: each restore mechanism sits behind its fault
                // seam. The operation names are the `core`/`sandbox`
                // functions that *perform* the seam's work.
                (
                    "ImageMmap".into(),
                    vec!["build_base_layer".into(), "attach_base".into()],
                ),
                ("ArenaMap".into(), vec!["restore_metadata".into()]),
                ("Relink".into(), vec!["restore_from_records".into()]),
                (
                    "IoReconnect".into(),
                    vec!["read_io_manifest".into(), "ensure_connected".into()],
                ),
                ("ZygoteSpecialize".into(), vec!["specialize".into()]),
                ("SforkMerge".into(), vec!["expand".into()]),
                // The cluster's remote-sfork rung: the cross-node template
                // transfer (platform::cluster) behind its own seam.
                ("TemplateTransfer".into(), vec!["transfer_template".into()]),
            ],
            simarith_exempt: vec!["crates/simtime/".into()],
            spanflow_exempt: vec!["crates/simtime/".into()],
            registry_file: "crates/simtime/src/names.rs".into(),
            // Empty on purpose: the workspace is fully hermetic today.
            // The dual-clock PR registers its `Realtime` boundary in
            // catalint.toml's `[[clock_seam]]` tables, not here.
            clock_seam: vec![],
            events_file: "crates/platform/src/simulate/events.rs".into(),
            event_enum: "Event".into(),
            tiebreak_fns: vec!["class".into(), "key".into(), "subkey".into()],
            event_loops: vec![
                "run_closed".into(),
                "run_fleet".into(),
                "run_cluster".into(),
                "run_chaos".into(),
            ],
            arena_file: "crates/platform/src/simulate/arena.rs".into(),
        }
    }

    /// True when the path is excluded from all scanning.
    pub fn is_scan_exempt(&self, path: &str) -> bool {
        self.scan_exempt.iter().any(|p| path.starts_with(p))
    }

    /// True when the path is exempt from the determinism pass.
    pub fn is_determinism_exempt(&self, path: &str) -> bool {
        self.determinism_exempt.iter().any(|p| path.starts_with(p))
    }

    /// True when the path is one of the configured parse modules.
    pub fn is_parse_file(&self, path: &str) -> bool {
        self.parse_files.iter().any(|p| p == path)
    }

    /// True when the path is exempt from the namereg pass.
    pub fn is_namereg_exempt(&self, path: &str) -> bool {
        self.namereg_exempt.iter().any(|p| path.starts_with(p))
    }

    /// The `InjectionPoint` variant guarding `op`, per the seam registry.
    pub fn seam_point_for(&self, op: &str) -> Option<&str> {
        self.seam_ops
            .iter()
            .find(|(_, ops)| ops.iter().any(|o| o == op))
            .map(|(point, _)| point.as_str())
    }

    /// True when the path is exempt from the simarith pass.
    pub fn is_simarith_exempt(&self, path: &str) -> bool {
        self.simarith_exempt.iter().any(|p| path.starts_with(p))
    }

    /// True when the path is exempt from the spanflow guard scan.
    pub fn is_spanflow_exempt(&self, path: &str) -> bool {
        self.spanflow_exempt.iter().any(|p| path.starts_with(p))
    }

    /// True for test, bench, example, and binary targets — code that never
    /// ships on the restore path and is allowed its own conventions.
    pub fn is_non_library_path(&self, path: &str) -> bool {
        const MARKERS: [&str; 4] = ["tests/", "examples/", "benches/", "bin/"];
        MARKERS
            .iter()
            .any(|m| path.starts_with(m) || path.contains(&format!("/{m}")))
            || path.ends_with("/main.rs")
            || path == "src/main.rs"
    }
}

#[cfg(test)]
mod tests {
    use super::Config;

    #[test]
    fn path_classification() {
        let c = Config::workspace_default();
        assert!(c.is_scan_exempt("third_party/rand/src/lib.rs"));
        assert!(!c.is_scan_exempt("crates/imagefmt/src/flat.rs"));
        assert!(c.is_determinism_exempt("crates/simtime/src/clock.rs"));
        assert!(c.is_parse_file("crates/imagefmt/src/flat.rs"));
        assert!(!c.is_parse_file("crates/imagefmt/src/lib.rs"));
        assert!(c.is_non_library_path("crates/imagefmt/tests/properties.rs"));
        assert!(c.is_non_library_path("tests/determinism.rs"));
        assert!(c.is_non_library_path("crates/bench/src/bin/repro.rs"));
        assert!(c.is_non_library_path("examples/quickstart.rs"));
        assert!(!c.is_non_library_path("crates/core/src/restore.rs"));
    }

    #[test]
    fn seam_registry_lookup() {
        let c = Config::workspace_default();
        assert_eq!(c.seam_point_for("restore_metadata"), Some("ArenaMap"));
        assert_eq!(c.seam_point_for("ensure_connected"), Some("IoReconnect"));
        assert_eq!(c.seam_point_for("specialize"), Some("ZygoteSpecialize"));
        assert_eq!(
            c.seam_point_for("transfer_template"),
            Some("TemplateTransfer")
        );
        assert_eq!(c.seam_point_for("unrelated_op"), None);
        assert!(c.is_simarith_exempt("crates/simtime/src/duration.rs"));
        assert!(!c.is_simarith_exempt("crates/platform/src/gateway.rs"));
        assert!(c.is_spanflow_exempt("crates/simtime/src/trace.rs"));
    }

    #[test]
    fn hermeticity_policy() {
        let c = Config::workspace_default();
        // The clock seam ships empty: full hermeticity is certified until
        // the dual-clock PR registers its boundary in catalint.toml.
        assert!(c.clock_seam.is_empty());
        assert_eq!(c.events_file, "crates/platform/src/simulate/events.rs");
        assert_eq!(c.event_enum, "Event");
        assert_eq!(c.tiebreak_fns, ["class", "key", "subkey"]);
        assert!(c.event_loops.iter().any(|l| l == "run_chaos"));
        assert_eq!(c.arena_file, "crates/platform/src/simulate/arena.rs");
    }
}
