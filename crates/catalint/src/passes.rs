//! The thirteen invariant passes.
//!
//! Each pass is a pattern scan over token trees (see [`crate::lexer`]);
//! the interprocedural ones additionally consult the approximate call
//! graph (see [`crate::graph`]). None of them type-check. They are tuned
//! so that false positives stay rare enough to fix on the spot — the
//! baseline is empty and must stay empty — while regressions on the
//! invariants the paper's numbers depend on fail loudly:
//!
//! - **determinism** — simulated time and seeded randomness only. A stray
//!   `Instant::now()` silently turns reproducible latency figures into
//!   noise.
//! - **panic** — image parsing must return [`imagefmt::ImageError`]-style
//!   errors, never panic: a func-image is untrusted input to the restore
//!   path. Interprocedural: a checked parse function calling a panicking
//!   helper *outside* the hand-listed parse files is flagged with the full
//!   call chain.
//! - **hotpath** — functions graph-reachable from the restore roots must
//!   not eagerly copy full buffers; overlay memory exists precisely so
//!   that Base-EPT pages are shared, not copied. Findings carry their
//!   root→sink call chain.
//! - **borrowcell** — a `RefCell::borrow_mut()` guard held across `?` or
//!   across a call that can re-enter a cell is one refactor away from a
//!   runtime double-borrow panic.
//! - **namereg** — metric/span name literals must come from the
//!   `simtime::names` registry so emitters and bench validators cannot
//!   drift apart.
//! - **hashorder** — iterating a `HashMap`/`HashSet` leaks hash order into
//!   whatever consumes the loop; exported output must use ordered
//!   collections or sort first.
//! - **hygiene** — public library functions return crate error types, not
//!   `Box<dyn Error>`, so callers can match on failure modes.
//!
//! The contract passes (PR 6) add a def-use dataflow layer (see
//! [`crate::dataflow`]) on top of the graph:
//!
//! - **seamcover** — every `InjectionPoint` variant must be consulted via
//!   `ctx.fault(...)` somewhere reachable from the engine boot roots, and
//!   every boot-path function performing a seam-class operation (per the
//!   seam registry in [`Config`]) must consult its point first. A boot
//!   path that skips a seam silently deflates the availability numbers
//!   faultsim exists to produce.
//! - **spanflow** — raw `tracer begin()` guards must not leak across
//!   `?`/`return` before a matching `end()`, and the `simtime::names`
//!   registry must balance in both directions (namereg checks literals →
//!   registry; spanflow checks registry → emission sites).
//! - **simarith** — unchecked `+`/`-`/`*` on `SimNanos`/duration values
//!   in functions reachable from the boot/simulate roots must use the
//!   saturating/checked forms; a latency underflow panics or wraps into
//!   a 500-year duration, either of which corrupts exported figures.
//!
//! The hermeticity-certification passes (PR 10) close the loop on the
//! determinism contract ahead of the dual-clock refactor (ROADMAP item 2):
//!
//! - **hermetic** — taint analysis over the call graph: no nondeterminism
//!   source (`Instant::now`, `SystemTime`, ambient RNG, `env::var`,
//!   OS sleep, `std::process`, `.elapsed()`-style reads) may be reachable
//!   from the simulation roots. The only allowed boundary is the
//!   `[[clock_seam]]` registry in `catalint.toml` — empty today — so the
//!   future `ClockInner::Realtime` seam flips entries on instead of
//!   weakening the pass.
//! - **eventproto** — DES event-protocol conformance: every `Event`
//!   variant parsed from the enum has a handler arm in each run loop,
//!   every scheduled variant lands in a non-empty arm, and the
//!   `(time, class, key, subkey)` tie-break binds every payload field so
//!   insertion order can never leak into pop order.
//! - **genarena** — generational-arena access discipline: instance-slab
//!   reads outside the arena module go through the generation-checked
//!   `Arena::get(InstanceId)`; raw `.index()` reads off a generational id
//!   and raw `slots` indexing are findings.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use crate::config::Config;
use crate::dataflow::{self, Summaries};
use crate::graph::{CallGraph, EdgeKind};
use crate::lexer::{Delim, Tok};
use crate::segment::is_keyword;
use crate::{ParsedFile, Violation};

/// Pass name: simulated-time / seeded-randomness discipline.
pub const PASS_DETERMINISM: &str = "determinism";
/// Pass name: panic-freedom in (and reachable from) image-parsing modules.
pub const PASS_PANIC: &str = "panic";
/// Pass name: no eager copies on the restore hot path.
pub const PASS_HOTPATH: &str = "hotpath";
/// Pass name: `RefCell` guard discipline.
pub const PASS_BORROWCELL: &str = "borrowcell";
/// Pass name: metric/span names come from the `simtime::names` registry.
pub const PASS_NAMEREG: &str = "namereg";
/// Pass name: no hash-order leaks into consumed iteration.
pub const PASS_HASHORDER: &str = "hashorder";
/// Pass name: public API error hygiene.
pub const PASS_HYGIENE: &str = "hygiene";
/// Pass name: fault-seam exhaustiveness (every `InjectionPoint` variant
/// consulted; every boot-path seam operation behind its consult).
pub const PASS_SEAMCOVER: &str = "seamcover";
/// Pass name: span-guard leak discipline and registry balance.
pub const PASS_SPANFLOW: &str = "spanflow";
/// Pass name: checked/saturating `SimNanos` arithmetic on boot paths.
pub const PASS_SIMARITH: &str = "simarith";
/// Pass name: no nondeterminism source reachable from the sim roots
/// outside the declared clock seam.
pub const PASS_HERMETIC: &str = "hermetic";
/// Pass name: DES event-protocol conformance (handler coverage, schedule
/// discipline, total tie-break).
pub const PASS_EVENTPROTO: &str = "eventproto";
/// Pass name: generation-checked instance-slab access discipline.
pub const PASS_GENARENA: &str = "genarena";

/// All pass names, for validating baselines and allow directives.
pub const ALL_PASSES: [&str; 13] = [
    PASS_DETERMINISM,
    PASS_PANIC,
    PASS_HOTPATH,
    PASS_BORROWCELL,
    PASS_NAMEREG,
    PASS_HASHORDER,
    PASS_HYGIENE,
    PASS_SEAMCOVER,
    PASS_SPANFLOW,
    PASS_SIMARITH,
    PASS_HERMETIC,
    PASS_EVENTPROTO,
    PASS_GENARENA,
];

/// Severity of a pass's findings, for machine-readable output. `error`
/// passes guard properties whose violation breaks the paper's claims or
/// panics at runtime; `warning` passes guard conventions. Both gate.
pub fn severity(pass: &str) -> &'static str {
    match pass {
        PASS_DETERMINISM | PASS_PANIC | PASS_HOTPATH | PASS_BORROWCELL | PASS_SEAMCOVER
        | PASS_SIMARITH | PASS_HERMETIC | PASS_EVENTPROTO | PASS_GENARENA => "error",
        _ => "warning",
    }
}

/// One-line description of each pass, for `--emit json` (schema v3) and
/// the SARIF rule metadata. Kept to a single sentence; `--explain` has
/// the long form.
pub fn describe(pass: &str) -> &'static str {
    match pass {
        PASS_DETERMINISM => {
            "Simulated time and seeded randomness only; no ambient clocks or entropy."
        }
        PASS_PANIC => "Image parsing returns typed errors; no panic reachable from parse modules.",
        PASS_HOTPATH => "No eager full-buffer copies reachable from the restore roots.",
        PASS_BORROWCELL => {
            "RefCell borrow guards stay short-lived; no cross-`?` or re-entrant holds."
        }
        PASS_NAMEREG => "Metric/span name literals come from the simtime::names registry.",
        PASS_HASHORDER => "No HashMap/HashSet iteration order leaks into consumed output.",
        PASS_HYGIENE => "Public library functions return crate error types, not Box<dyn Error>.",
        PASS_SEAMCOVER => "Every fault-injection seam is consulted on the boot paths.",
        PASS_SPANFLOW => "Span guards close on every path; the name registry balances both ways.",
        PASS_SIMARITH => "SimNanos arithmetic on boot-reachable paths is saturating or checked.",
        PASS_HERMETIC => {
            "No nondeterminism source reachable from the sim roots outside the clock seam."
        }
        PASS_EVENTPROTO => {
            "DES event protocol: handler coverage, schedule discipline, total tie-break."
        }
        PASS_GENARENA => {
            "Instance-slab reads go through generation-checked Arena::get, never raw indices."
        }
        _ => "",
    }
}

/// Function name used for findings in top-level (non-fn) tokens.
pub const MODULE_SCOPE: &str = "<module>";

fn push(
    out: &mut Vec<Violation>,
    pass: &'static str,
    file: &str,
    func: &str,
    line: u32,
    what: String,
) {
    out.push(Violation {
        pass,
        file: file.to_string(),
        func: func.to_string(),
        line,
        what,
        chain: Vec::new(),
    });
}

fn next_is_paren(toks: &[Tok], i: usize) -> bool {
    matches!(toks.get(i + 1), Some(Tok::Group(Delim::Paren, _, _)))
}

fn is_path_to(toks: &[Tok], i: usize, target: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && matches!(toks.get(i + 3), Some(Tok::Ident(w, _)) if w == target)
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

/// Flags ambient time and entropy sources outside `simtime`.
pub(crate) fn determinism(parsed: &[Rc<ParsedFile>], cfg: &Config, out: &mut Vec<Violation>) {
    for pf in parsed {
        if cfg.is_determinism_exempt(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            scan_det(&f.body, &pf.path, &f.name, out);
        }
        scan_det(&pf.items.loose, &pf.path, MODULE_SCOPE, out);
    }
}

fn scan_det(toks: &[Tok], file: &str, func: &str, out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if let Tok::Ident(w, line) = &toks[i] {
            match w.as_str() {
                "SystemTime" | "Instant" if is_path_to(toks, i, "now") => push(
                    out,
                    PASS_DETERMINISM,
                    file,
                    func,
                    *line,
                    format!("wall-clock `{w}::now()`; use simtime::SimClock"),
                ),
                "thread" if is_path_to(toks, i, "sleep") => push(
                    out,
                    PASS_DETERMINISM,
                    file,
                    func,
                    *line,
                    "real `thread::sleep`; charge simulated time instead".to_string(),
                ),
                "sleep" if next_is_paren(toks, i) && !prev_blocks_bare_sleep(toks, i) => push(
                    out,
                    PASS_DETERMINISM,
                    file,
                    func,
                    *line,
                    "bare `sleep()` call; charge simulated time instead".to_string(),
                ),
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => push(
                    out,
                    PASS_DETERMINISM,
                    file,
                    func,
                    *line,
                    format!("ambient entropy `{w}`; seed an StdRng explicitly"),
                ),
                _ => {}
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            scan_det(inner, file, func, out);
        }
    }
}

/// `.sleep(…)` method calls, `fn sleep(…)` definitions, and the tail of a
/// `thread::sleep` path (already reported) are not bare sleeps.
fn prev_blocks_bare_sleep(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &toks[i - 1] {
        Tok::Punct('.', _) | Tok::Punct(':', _) => true,
        Tok::Ident(w, _) => w == "fn",
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// panic
// ---------------------------------------------------------------------------

/// Flags panic sources in the configured parse modules, plus — via the
/// call graph — parse functions whose precise call chains reach a
/// hard-panicking helper outside the parse set.
pub(crate) fn panic_freedom(
    parsed: &[Rc<ParsedFile>],
    cfg: &Config,
    graph: &CallGraph<'_>,
    out: &mut Vec<Violation>,
) {
    for pf in parsed {
        if !cfg.is_parse_file(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            scan_panic(&f.body, &pf.path, &f.name, out);
        }
        scan_panic(&pf.items.loose, &pf.path, MODULE_SCOPE, out);
    }
    panic_interprocedural(cfg, graph, out);
}

/// Maximum chain length followed from a parse function. Beyond this the
/// chain is too indirect to act on and too fuzzy to trust.
const PANIC_CHAIN_DEPTH: usize = 5;

fn panic_interprocedural(cfg: &Config, graph: &CallGraph<'_>, out: &mut Vec<Violation>) {
    // Hard-panic sites (unwrap/expect/panic!/…) per node. Lossy casts and
    // indexing are *not* propagated interprocedurally: they are style
    // requirements for parse modules themselves, and following them across
    // the workspace would flag nearly every helper.
    let hard: Vec<Vec<(u32, String)>> = graph
        .items
        .iter()
        .map(|f| {
            let mut sites = Vec::new();
            scan_hard_panics(&f.body, &mut sites);
            sites
        })
        .collect();

    for root in 0..graph.nodes.len() {
        if !cfg.is_parse_file(&graph.nodes[root].file) {
            continue;
        }
        // Depth-capped BFS over precise edges only: a fuzzy panic edge
        // would tie every parser to every `get` in the workspace.
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.nodes.len()];
        let mut depth = vec![0usize; graph.nodes.len()];
        let mut seen = vec![false; graph.nodes.len()];
        seen[root] = true;
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(root);
        while let Some(ix) = queue.pop_front() {
            if depth[ix] >= PANIC_CHAIN_DEPTH {
                continue;
            }
            for site in &graph.calls[ix] {
                for &(t, kind) in &site.targets {
                    if kind != EdgeKind::Precise || seen[t] {
                        continue;
                    }
                    seen[t] = true;
                    parent[t] = Some((ix, site.line));
                    depth[t] = depth[ix] + 1;
                    queue.push_back(t);
                }
            }
        }
        for ix in 0..graph.nodes.len() {
            if !seen[ix] || ix == root || cfg.is_parse_file(&graph.nodes[ix].file) {
                continue;
            }
            let Some((_, first_panic)) = hard[ix].first().map(|(l, w)| (l, w.clone())) else {
                continue;
            };
            // Reconstruct root→sink chain and the call-site line in `root`.
            let mut rev = vec![graph.nodes[ix].name.clone()];
            let mut cur = ix;
            let mut call_line = graph.nodes[root].line;
            while let Some((p, line)) = parent[cur] {
                if p == root {
                    call_line = line;
                }
                rev.push(graph.nodes[p].name.clone());
                cur = p;
            }
            rev.reverse();
            out.push(Violation {
                pass: PASS_PANIC,
                file: graph.nodes[root].file.clone(),
                func: graph.nodes[root].name.clone(),
                line: call_line,
                what: format!(
                    "calls `{}` ({}) which can panic: {first_panic}",
                    graph.nodes[ix].name, graph.nodes[ix].file,
                ),
                chain: rev,
            });
        }
    }
}

/// Collects genuine panic constructs (not casts or indexing).
fn scan_hard_panics(toks: &[Tok], out: &mut Vec<(u32, String)>) {
    for i in 0..toks.len() {
        match &toks[i] {
            Tok::Ident(w, line)
                if (w == "unwrap" || w == "expect")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && next_is_paren(toks, i) =>
            {
                out.push((*line, format!(".{w}()")));
            }
            Tok::Ident(w, line)
                if matches!(
                    w.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                out.push((*line, format!("{w}!")));
            }
            _ => {}
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            scan_hard_panics(inner, out);
        }
    }
}

fn numeric_type(s: &str) -> bool {
    matches!(
        s,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
    )
}

fn scan_panic(toks: &[Tok], file: &str, func: &str, out: &mut Vec<Violation>) {
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            // `use foo::bar as baz;` inside a body is not a cast.
            Tok::Ident(w, _) if w == "use" => {
                while i < toks.len() && !matches!(&toks[i], Tok::Punct(';', _)) {
                    i += 1;
                }
            }
            Tok::Ident(w, line)
                if (w == "unwrap" || w == "expect")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && next_is_paren(toks, i) =>
            {
                push(
                    out,
                    PASS_PANIC,
                    file,
                    func,
                    *line,
                    format!(".{w}() in an image-parsing module"),
                );
            }
            Tok::Ident(w, line)
                if matches!(
                    w.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                push(
                    out,
                    PASS_PANIC,
                    file,
                    func,
                    *line,
                    format!("{w}! in an image-parsing module"),
                );
            }
            Tok::Ident(w, line)
                if w == "as"
                    && matches!(toks.get(i + 1), Some(Tok::Ident(t, _)) if numeric_type(t)) =>
            {
                let ty = toks[i + 1].ident().unwrap_or("?");
                push(
                    out,
                    PASS_PANIC,
                    file,
                    func,
                    *line,
                    format!("unchecked `as {ty}` cast; use try_into/From"),
                );
            }
            Tok::Group(Delim::Bracket, inner, line)
                if prev_is_indexable(toks, i) && !is_full_range(inner) =>
            {
                push(
                    out,
                    PASS_PANIC,
                    file,
                    func,
                    *line,
                    "unchecked slice/array indexing; use get()/split-based parsing".to_string(),
                );
            }
            _ => {}
        }
        if let Some(Tok::Group(_, inner, _)) = toks.get(i) {
            scan_panic(inner, file, func, out);
        }
        i += 1;
    }
}

fn prev_is_indexable(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &toks[i - 1] {
        Tok::Ident(w, _) => !is_keyword(w),
        Tok::Group(Delim::Paren | Delim::Bracket, _, _) => true,
        Tok::Punct('?', _) => true,
        _ => false,
    }
}

/// `[..]` — a full-range slice, which cannot panic.
fn is_full_range(inner: &[Tok]) -> bool {
    matches!(inner, [Tok::Punct('.', _), Tok::Punct('.', _)])
}

// ---------------------------------------------------------------------------
// hygiene
// ---------------------------------------------------------------------------

/// Flags public library functions returning `Box<dyn …Error…>`.
pub(crate) fn hygiene(parsed: &[Rc<ParsedFile>], cfg: &Config, out: &mut Vec<Violation>) {
    for pf in parsed {
        if cfg.is_non_library_path(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            if f.is_pub && ret_has_boxed_dyn_error(&f.sig) {
                push(
                    out,
                    PASS_HYGIENE,
                    &pf.path,
                    &f.name,
                    f.line,
                    "public fn returns `Box<dyn Error>`; return the crate error type".to_string(),
                );
            }
        }
    }
}

fn ret_has_boxed_dyn_error(sig: &[Tok]) -> bool {
    for i in 0..sig.len().saturating_sub(1) {
        if sig[i].is_punct('-') && sig[i + 1].is_punct('>') {
            let mut has_dyn = false;
            let mut has_error = false;
            dyn_error_scan(&sig[i + 2..], &mut has_dyn, &mut has_error);
            return has_dyn && has_error;
        }
    }
    false
}

fn dyn_error_scan(toks: &[Tok], has_dyn: &mut bool, has_error: &mut bool) {
    for t in toks {
        match t {
            Tok::Ident(w, _) if w == "dyn" => *has_dyn = true,
            Tok::Ident(w, _) if w.contains("Error") => *has_error = true,
            Tok::Group(_, inner, _) => dyn_error_scan(inner, has_dyn, has_error),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// hotpath
// ---------------------------------------------------------------------------

/// Flags eager full-buffer copies in functions graph-reachable from the
/// configured restore roots. Every finding carries its root→sink chain.
pub(crate) fn hotpath(cfg: &Config, graph: &CallGraph<'_>, out: &mut Vec<Violation>) {
    let mut roots: Vec<usize> = Vec::new();
    for name in &cfg.hot_roots {
        roots.extend(graph.by_name(name));
    }
    // Missing a copy on the restore path is worse than over-reporting, so
    // reachability follows fuzzy edges too; the stop list in graph.rs
    // already prunes the meaningless ones.
    let reach = graph.reach(&roots, |site, _| {
        !cfg.hot_stops.iter().any(|s| s == &site.bare)
    });
    for ix in 0..graph.nodes.len() {
        if !reach.seen[ix] {
            continue;
        }
        let chain = graph.chain(&reach, ix);
        let node = &graph.nodes[ix];
        let mut found = Vec::new();
        scan_copies(&graph.items[ix].body, &node.file, &node.name, &mut found);
        for mut v in found {
            v.chain.clone_from(&chain);
            out.push(v);
        }
    }
}

/// Receiver names treated as page/payload buffers for the `.clone()` check.
const BUFFER_RECEIVERS: [&str; 2] = ["data", "page_data"];

fn scan_copies(toks: &[Tok], file: &str, func: &str, out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if let Tok::Ident(w, line) = &toks[i] {
            let method = i > 0 && toks[i - 1].is_punct('.') && next_is_paren(toks, i);
            let associated = i >= 2
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && next_is_paren(toks, i);
            match w.as_str() {
                "to_vec" | "to_owned" if method => push(
                    out,
                    PASS_HOTPATH,
                    file,
                    func,
                    *line,
                    format!("eager `{w}()` buffer copy on the restore path; slice/share instead"),
                ),
                "extend_from_slice" if method => push(
                    out,
                    PASS_HOTPATH,
                    file,
                    func,
                    *line,
                    "`extend_from_slice` bulk append on the restore path".to_string(),
                ),
                "copy_from_slice" if associated => push(
                    out,
                    PASS_HOTPATH,
                    file,
                    func,
                    *line,
                    "allocating `copy_from_slice` constructor on the restore path".to_string(),
                ),
                "clone"
                    if method
                        && i >= 2
                        && matches!(&toks[i - 2], Tok::Ident(r, _)
                            if BUFFER_RECEIVERS.contains(&r.as_str())) =>
                {
                    push(
                        out,
                        PASS_HOTPATH,
                        file,
                        func,
                        *line,
                        "clone of a page/payload buffer on the restore path".to_string(),
                    )
                }
                _ => {}
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            scan_copies(inner, file, func, out);
        }
    }
}

// ---------------------------------------------------------------------------
// borrowcell
// ---------------------------------------------------------------------------

/// Flags `RefCell` borrow guards held too long: across a `?` (early return
/// with the cell still locked) or across a call that can — via precise
/// edges — reach another `borrow_mut()` (a latent double-borrow panic).
pub(crate) fn borrowcell(_cfg: &Config, graph: &CallGraph<'_>, out: &mut Vec<Violation>) {
    // Which nodes can reach a `.borrow_mut()` through precise edges.
    let mut reaches_borrow: Vec<bool> = graph
        .items
        .iter()
        .map(|f| body_has_borrow_mut(&f.body))
        .collect();
    // Fixpoint propagation backwards over precise edges. The graph is
    // small; the loop terminates once no new node flips.
    loop {
        let mut changed = false;
        for ix in 0..graph.nodes.len() {
            if reaches_borrow[ix] {
                continue;
            }
            let hit = graph.calls[ix].iter().any(|site| {
                site.targets
                    .iter()
                    .any(|&(t, k)| k == EdgeKind::Precise && reaches_borrow[t])
            });
            if hit {
                reaches_borrow[ix] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for ix in 0..graph.nodes.len() {
        let node = &graph.nodes[ix];
        scan_borrow_scope(
            &graph.items[ix].body,
            ix,
            graph,
            &reaches_borrow,
            &node.file,
            &node.name,
            out,
        );
    }
}

fn body_has_borrow_mut(toks: &[Tok]) -> bool {
    for i in 0..toks.len() {
        if let Tok::Ident(w, _) = &toks[i] {
            if w == "borrow_mut" && i > 0 && toks[i - 1].is_punct('.') && next_is_paren(toks, i) {
                return true;
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            if body_has_borrow_mut(inner) {
                return true;
            }
        }
    }
    false
}

/// Scans one brace-scope's tokens; recurses into nested scopes.
#[allow(clippy::too_many_arguments)]
fn scan_borrow_scope(
    toks: &[Tok],
    node_ix: usize,
    graph: &CallGraph<'_>,
    reaches_borrow: &[bool],
    file: &str,
    func: &str,
    out: &mut Vec<Violation>,
) {
    let mut i = 0usize;
    while i < toks.len() {
        // Statement bounds at this level.
        let stmt_end = toks[i..]
            .iter()
            .position(|t| t.is_punct(';'))
            .map_or(toks.len(), |p| i + p);
        let stmt = &toks[i..stmt_end];

        if let Some((name, recv, line)) = named_guard(stmt) {
            // Guard lives until `drop(name)` at this level or scope end.
            let after = stmt_end.saturating_add(1).min(toks.len());
            let live_end = find_drop(&toks[after..], &name).map_or(toks.len(), |p| after + p);
            check_live_range(
                &toks[after..live_end],
                &recv,
                &format!("guard `{name}`"),
                line,
                node_ix,
                graph,
                reaches_borrow,
                file,
                func,
                out,
            );
        } else {
            // Temporary borrows: the guard lives to the statement's end.
            for (off, recv, line) in temp_borrows(stmt) {
                check_live_range(
                    &stmt[off..],
                    &recv,
                    "temporary guard",
                    line,
                    node_ix,
                    graph,
                    reaches_borrow,
                    file,
                    func,
                    out,
                );
            }
        }

        // Recurse into nested scopes inside this statement.
        for t in stmt {
            if let Tok::Group(_, inner, _) = t {
                scan_borrow_scope(inner, node_ix, graph, reaches_borrow, file, func, out);
            }
        }
        i = stmt_end.saturating_add(1);
    }
}

/// Matches exactly `let [mut] name = <recv-chain>.borrow_mut();` — the
/// binding *is* the guard. Returns (name, receiver text, line).
fn named_guard(stmt: &[Tok]) -> Option<(String, String, u32)> {
    let mut i = 0;
    if stmt.first()?.ident()? != "let" {
        return None;
    }
    i += 1;
    if stmt.get(i)?.ident() == Some("mut") {
        i += 1;
    }
    let name = stmt.get(i)?.ident()?.to_string();
    i += 1;
    if !stmt.get(i)?.is_punct('=') {
        return None;
    }
    i += 1;
    // Receiver chain: idents and dots up to `borrow_mut`.
    let recv_start = i;
    while let Some(t) = stmt.get(i) {
        match t {
            Tok::Ident(w, line) if w == "borrow_mut" => {
                // Must be `.borrow_mut()` and the final expression.
                let dotted = i > recv_start && stmt[i - 1].is_punct('.');
                let call = matches!(stmt.get(i + 1), Some(Tok::Group(Delim::Paren, _, _)));
                let last = i + 2 == stmt.len();
                if dotted && call && last {
                    let recv = render_chain(&stmt[recv_start..i - 1]);
                    return Some((name, recv, *line));
                }
                return None;
            }
            Tok::Ident(_, _) | Tok::Punct('.', _) => i += 1,
            _ => return None,
        }
    }
    None
}

/// Finds `drop ( name )` at this token level.
fn find_drop(toks: &[Tok], name: &str) -> Option<usize> {
    for i in 0..toks.len() {
        if toks[i].ident() == Some("drop") {
            if let Some(Tok::Group(Delim::Paren, inner, _)) = toks.get(i + 1) {
                if matches!(inner.as_slice(), [Tok::Ident(n, _)] if n == name) {
                    return Some(i);
                }
            }
        }
    }
    None
}

/// `.borrow_mut()` calls at this statement level that are *not* the final
/// expression of a `let` guard; returns (index after the call, receiver,
/// line) for each.
fn temp_borrows(stmt: &[Tok]) -> Vec<(usize, String, u32)> {
    let mut found = Vec::new();
    for i in 0..stmt.len() {
        if let Tok::Ident(w, line) = &stmt[i] {
            if w == "borrow_mut" && i > 0 && stmt[i - 1].is_punct('.') && next_is_paren(stmt, i) {
                let recv_start = chain_start(stmt, i - 1);
                let recv = render_chain(&stmt[recv_start..i - 1]);
                found.push((i + 2, recv, *line));
            }
        }
    }
    found
}

/// Walks backwards over `ident . ident . …` to the start of the receiver.
fn chain_start(toks: &[Tok], dot: usize) -> usize {
    let mut i = dot;
    while i > 0 {
        match &toks[i - 1] {
            Tok::Ident(_, _) | Tok::Punct('.', _) => i -= 1,
            _ => break,
        }
    }
    i
}

fn render_chain(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        match t {
            Tok::Ident(w, _) => s.push_str(w),
            Tok::Punct('.', _) => s.push('.'),
            _ => {}
        }
    }
    s
}

/// Scans a live range (recursively, nested groups included) for hazards
/// while a `borrow_mut` guard on `recv` is held.
#[allow(clippy::too_many_arguments)]
fn check_live_range(
    toks: &[Tok],
    recv: &str,
    guard_desc: &str,
    guard_line: u32,
    node_ix: usize,
    graph: &CallGraph<'_>,
    reaches_borrow: &[bool],
    file: &str,
    func: &str,
    out: &mut Vec<Violation>,
) {
    for i in 0..toks.len() {
        match &toks[i] {
            Tok::Punct('?', line) => {
                push(
                    out,
                    PASS_BORROWCELL,
                    file,
                    func,
                    *line,
                    format!(
                        "{guard_desc} from `{recv}.borrow_mut()` (line {guard_line}) held \
                         across `?`; end the borrow before propagating errors"
                    ),
                );
                // One finding per guard is enough.
                return;
            }
            Tok::Ident(w, line)
                if (w == "borrow" || w == "borrow_mut")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && next_is_paren(toks, i) =>
            {
                let rs = chain_start(toks, i - 1);
                if render_chain(&toks[rs..i - 1]) == recv {
                    push(
                        out,
                        PASS_BORROWCELL,
                        file,
                        func,
                        *line,
                        format!(
                            "`{recv}.{w}()` while {guard_desc} from `{recv}.borrow_mut()` \
                             (line {guard_line}) is live — guaranteed double-borrow panic"
                        ),
                    );
                    return;
                }
            }
            Tok::Ident(w, line) if !is_keyword(w) && next_is_paren(toks, i) => {
                // A call that can re-enter a RefCell. Only precise edges:
                // a fuzzy match would tie every method name to every cell.
                let reenters = graph.calls[node_ix].iter().any(|site| {
                    site.line == *line
                        && site.bare == *w
                        && site
                            .targets
                            .iter()
                            .any(|&(t, k)| k == EdgeKind::Precise && reaches_borrow[t])
                });
                if reenters {
                    push(
                        out,
                        PASS_BORROWCELL,
                        file,
                        func,
                        *line,
                        format!(
                            "call to `{w}` while {guard_desc} from `{recv}.borrow_mut()` \
                             (line {guard_line}) is live; `{w}` can reach another \
                             `borrow_mut()`"
                        ),
                    );
                    return;
                }
            }
            _ => {}
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            check_live_range(
                inner,
                recv,
                guard_desc,
                guard_line,
                node_ix,
                graph,
                reaches_borrow,
                file,
                func,
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// namereg
// ---------------------------------------------------------------------------

/// Metric/span name prefixes owned by the `simtime::names` registry. A
/// string literal starting with one of these, anywhere in library code
/// outside the registry itself, must be replaced by the registry constant
/// (or helper) so emitters and bench validators cannot drift.
pub const NAME_PREFIXES: [&str; 25] = [
    "boot.",
    "chaos.",
    "cluster.",
    "hedge:",
    "exec.",
    "invoke.",
    "invoke:",
    "fault.",
    "fault:",
    "pool.",
    "breaker.",
    "admit.",
    "shed.",
    "fallback.",
    "quarantine.",
    "scaling.",
    "warm.",
    "sandbox:",
    "sfork:",
    "app:",
    "restore:",
    "map-file:",
    "mem:",
    "io:",
    "transfer:",
];

/// Flags registry-grammar string literals outside `simtime::names`.
pub(crate) fn namereg(parsed: &[Rc<ParsedFile>], cfg: &Config, out: &mut Vec<Violation>) {
    for pf in parsed {
        if cfg.is_non_library_path(&pf.path) || cfg.is_namereg_exempt(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            scan_names(&f.body, &pf.path, &f.name, out);
        }
        scan_names(&pf.items.loose, &pf.path, MODULE_SCOPE, out);
    }
}

fn scan_names(toks: &[Tok], file: &str, func: &str, out: &mut Vec<Violation>) {
    for t in toks {
        match t {
            Tok::Str(s, line) => {
                // Metric/span names never contain spaces; a literal with one
                // is prose (an error message) that merely shares a prefix.
                if s.contains(' ') {
                    continue;
                }
                if let Some(prefix) = NAME_PREFIXES.iter().find(|p| s.starts_with(*p)) {
                    push(
                        out,
                        PASS_NAMEREG,
                        file,
                        func,
                        *line,
                        format!(
                            "metric/span name literal \"{s}\" (registry prefix `{prefix}`); \
                             use the simtime::names constant or helper"
                        ),
                    );
                }
            }
            Tok::Group(_, inner, _) => scan_names(inner, file, func, out),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// hashorder
// ---------------------------------------------------------------------------

/// Names of order-insensitive reductions: iterating a hash collection into
/// one of these cannot leak hash order into output.
const ORDER_FREE: [&str; 8] = [
    "sum", "count", "any", "all", "max", "min", "contains", "fold",
];

/// Names that impose an order before the iteration escapes.
const ORDERERS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "BTreeMap",
    "BTreeSet",
];

/// Flags iteration over `HashMap`/`HashSet` locals, params, and same-file
/// struct fields, unless the statement reduces order-insensitively or
/// re-orders (sort / BTree collect).
pub(crate) fn hashorder(parsed: &[Rc<ParsedFile>], cfg: &Config, out: &mut Vec<Violation>) {
    for pf in parsed {
        if cfg.is_non_library_path(&pf.path) {
            continue;
        }
        // Struct fields of hash-collection type anywhere in this file.
        let mut fields: Vec<String> = Vec::new();
        collect_hash_fields(&pf.items.loose, &mut fields);
        for f in &pf.items.fns {
            let mut tracked = fields.clone();
            collect_hash_params(&f.sig, &mut tracked);
            scan_hash_iter(&f.body, &mut tracked, &pf.path, &f.name, out);
        }
    }
}

/// Field declarations `name: …HashMap…,` inside struct brace groups.
fn collect_hash_fields(toks: &[Tok], out: &mut Vec<String>) {
    for i in 0..toks.len() {
        if toks[i].ident() == Some("struct") {
            if let Some(Tok::Group(Delim::Brace, inner, _)) = toks
                .iter()
                .skip(i + 1)
                .find(|t| matches!(t, Tok::Group(Delim::Brace, _, _) | Tok::Punct(';', _)))
            {
                collect_typed_names(inner, out);
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_hash_fields(inner, out);
        }
    }
}

/// `name: …Hash{Map,Set}…` declarations up to the next `,` at this level.
fn collect_typed_names(toks: &[Tok], out: &mut Vec<String>) {
    let mut i = 0usize;
    while i < toks.len() {
        if let (Some(Tok::Ident(name, _)), Some(t)) = (toks.get(i), toks.get(i + 1)) {
            if t.is_punct(':') && !is_keyword(name) {
                let end = toks[i + 2..]
                    .iter()
                    .position(|t| t.is_punct(','))
                    .map_or(toks.len(), |p| i + 2 + p);
                let is_hash = toks[i + 2..end]
                    .iter()
                    .any(|t| matches!(t.ident(), Some("HashMap" | "HashSet")));
                if is_hash {
                    out.push(name.clone());
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
}

fn collect_hash_params(sig: &[Tok], out: &mut Vec<String>) {
    if let Some(Tok::Group(Delim::Paren, inner, _)) = sig.first() {
        collect_typed_names(inner, out);
    }
}

fn scan_hash_iter(
    toks: &[Tok],
    tracked: &mut Vec<String>,
    file: &str,
    func: &str,
    out: &mut Vec<Violation>,
) {
    let mut i = 0usize;
    while i < toks.len() {
        let stmt_end = toks[i..]
            .iter()
            .position(|t| t.is_punct(';'))
            .map_or(toks.len(), |p| i + p);
        let stmt = &toks[i..stmt_end];

        // `let [mut] name` whose statement mentions HashMap/HashSet.
        if stmt.first().and_then(Tok::ident) == Some("let") {
            let mut j = 1;
            if stmt.get(j).and_then(Tok::ident) == Some("mut") {
                j += 1;
            }
            if let Some(Tok::Ident(name, _)) = stmt.get(j) {
                let mentions_hash = stmt
                    .iter()
                    .any(|t| flat_has(t, &["HashMap", "HashSet"][..]));
                if mentions_hash {
                    tracked.push(name.clone());
                }
            }
        }

        check_hash_stmt(stmt, tracked, file, func, out);

        for t in stmt {
            if let Tok::Group(_, inner, _) = t {
                scan_hash_iter(inner, tracked, file, func, out);
            }
        }
        i = stmt_end.saturating_add(1);
    }
}

fn flat_has(t: &Tok, names: &[&str]) -> bool {
    match t {
        Tok::Ident(w, _) => names.contains(&w.as_str()),
        Tok::Group(_, inner, _) => inner.iter().any(|t| flat_has(t, names)),
        _ => false,
    }
}

/// Iteration methods whose results carry hash order.
const ITER_METHODS: [&str; 5] = ["iter", "keys", "values", "drain", "into_iter"];

fn check_hash_stmt(
    stmt: &[Tok],
    tracked: &[String],
    file: &str,
    func: &str,
    out: &mut Vec<Violation>,
) {
    for i in 0..stmt.len() {
        let Tok::Ident(w, line) = &stmt[i] else {
            continue;
        };
        // `name.iter()` / `self.field.keys()` / …
        let method_on_tracked = ITER_METHODS.contains(&w.as_str())
            && i > 0
            && stmt[i - 1].is_punct('.')
            && next_is_paren(stmt, i)
            && receiver_is_tracked(stmt, i - 1, tracked);
        // `for x in name` / `for x in &name`.
        let for_over_tracked = w == "in"
            && stmt.iter().take(i).any(|t| t.ident() == Some("for"))
            && matches!(
                next_non_amp(stmt, i + 1),
                Some(Tok::Ident(n, _)) if tracked.contains(n)
                    || (n == "self" && self_field_tracked(stmt, i + 1, tracked))
            );
        if !(method_on_tracked || for_over_tracked) {
            continue;
        }
        // Order-insensitive or re-ordered in the same statement?
        let rest = &stmt[i..];
        let excused = rest.iter().any(|t| flat_has(t, &ORDER_FREE[..]))
            || stmt.iter().any(|t| flat_has(t, &ORDERERS[..]));
        if excused {
            continue;
        }
        push(
            out,
            PASS_HASHORDER,
            file,
            func,
            *line,
            "HashMap/HashSet iteration leaks hash order; use BTreeMap/BTreeSet, \
             sort first, or reduce order-insensitively"
                .to_string(),
        );
    }
}

/// The receiver chain before `dot` ends in a tracked name (`counts` or
/// `self.counts`).
fn receiver_is_tracked(stmt: &[Tok], dot: usize, tracked: &[String]) -> bool {
    let start = chain_start(stmt, dot);
    let chain = render_chain(&stmt[start..dot]);
    let last = chain.rsplit('.').next().unwrap_or(&chain);
    tracked.iter().any(|t| t == last)
}

fn next_non_amp(stmt: &[Tok], mut i: usize) -> Option<&Tok> {
    while stmt
        .get(i)
        .is_some_and(|t| t.is_punct('&') || matches!(t.ident(), Some("mut")))
    {
        i += 1;
    }
    stmt.get(i)
}

/// `for x in self.field` / `for x in &self.field` with `field` tracked.
fn self_field_tracked(stmt: &[Tok], from: usize, tracked: &[String]) -> bool {
    // Find `self` then `. field`.
    let mut i = from;
    while stmt
        .get(i)
        .is_some_and(|t| t.is_punct('&') || matches!(t.ident(), Some("mut")))
    {
        i += 1;
    }
    if stmt.get(i).and_then(Tok::ident) != Some("self") {
        return false;
    }
    if !stmt.get(i + 1).is_some_and(|t| t.is_punct('.')) {
        return false;
    }
    matches!(stmt.get(i + 2), Some(Tok::Ident(f, _)) if tracked.iter().any(|t| t == f))
}

// ---------------------------------------------------------------------------
// seamcover
// ---------------------------------------------------------------------------

/// Fault-seam exhaustiveness, in two directions.
///
/// (a) *Variant coverage*: the `InjectionPoint` enum is discovered by
/// parsing its declaration (so new variants are policed without touching
/// the checker), and every variant must be consulted via
/// `ctx.fault(InjectionPoint::V)` in some function reachable from the
/// boot roots.
///
/// (b) *Operation coverage*: a boot-reachable function whose signature
/// carries a `BootCtx` and which calls a seam-class operation (per the
/// seam registry) must consult that operation's point first — directly at
/// an earlier line, or through an earlier call whose precise callee's
/// summary consults it. Functions without a `BootCtx` in their signature
/// (guest-kernel internals doing on-demand work, cost estimators) are out
/// of scope: they *cannot* consult a seam and are reached behind one.
pub(crate) fn seamcover(
    parsed: &[Rc<ParsedFile>],
    cfg: &Config,
    graph: &CallGraph<'_>,
    sums: &Summaries,
    out: &mut Vec<Violation>,
) {
    let mut variants: Vec<(String, String, u32)> = Vec::new();
    for pf in parsed.iter() {
        if cfg.is_non_library_path(&pf.path) {
            continue;
        }
        collect_injection_variants(&pf.items.loose, &pf.path, &mut variants);
    }

    let roots: Vec<usize> = cfg
        .seam_roots
        .iter()
        .flat_map(|n| graph.by_name(n))
        .collect();
    let reach = graph.reach(&roots, |site, _| {
        !cfg.hot_stops.iter().any(|s| s == &site.bare)
    });

    // (a) Every declared variant is consulted on some boot path.
    let mut consulted: BTreeSet<&str> = BTreeSet::new();
    for ix in 0..graph.nodes.len() {
        if reach.seen[ix] {
            for v in &sums.direct_consults[ix] {
                consulted.insert(v);
            }
        }
    }
    for (file, variant, line) in &variants {
        if !consulted.contains(variant.as_str()) {
            push(
                out,
                PASS_SEAMCOVER,
                file,
                MODULE_SCOPE,
                *line,
                format!(
                    "fault seam `InjectionPoint::{variant}` is never consulted: no function \
                     reachable from the boot roots calls `ctx.fault(InjectionPoint::{variant})`"
                ),
            );
        }
    }

    // (b) Every boot-path seam operation sits behind its consult.
    for ix in 0..graph.nodes.len() {
        if !reach.seen[ix] {
            continue;
        }
        let item = graph.items[ix];
        if !item.sig.iter().any(|t| dataflow::mentions(t, "BootCtx")) {
            continue;
        }
        let node = &graph.nodes[ix];
        let direct = dataflow::consult_sites(&item.body);
        for site in &graph.calls[ix] {
            let Some(point) = cfg.seam_point_for(&site.bare) else {
                continue;
            };
            // The operation's own (wrapper) definition is not a use site.
            if node.name == site.bare {
                continue;
            }
            let consulted_here = direct.iter().any(|(v, l)| v == point && *l <= site.line);
            let consulted_via_helper = graph.calls[ix].iter().any(|s| {
                s.line <= site.line
                    && s.targets.iter().any(|&(t, kind)| {
                        kind == EdgeKind::Precise && sums.consults[t].contains(point)
                    })
            });
            if !(consulted_here || consulted_via_helper) {
                out.push(Violation {
                    pass: PASS_SEAMCOVER,
                    file: node.file.clone(),
                    func: node.name.clone(),
                    line: site.line,
                    what: format!(
                        "seam operation `{}` runs without consulting \
                         `ctx.fault(InjectionPoint::{point})` first; every boot-path `{}` \
                         must sit behind its fault seam",
                        site.bare, site.bare
                    ),
                    chain: graph.chain(&reach, ix),
                });
            }
        }
    }
}

/// Parses `enum InjectionPoint { … }` declarations, collecting each
/// variant's name and line. Attributes and payload groups are skipped;
/// doc comments never produce tokens.
fn collect_injection_variants(toks: &[Tok], file: &str, out: &mut Vec<(String, String, u32)>) {
    for i in 0..toks.len() {
        if toks[i].ident() == Some("enum")
            && matches!(toks.get(i + 1), Some(Tok::Ident(w, _)) if w == "InjectionPoint")
        {
            if let Some(Tok::Group(Delim::Brace, inner, _)) = toks
                .iter()
                .skip(i + 2)
                .find(|t| matches!(t, Tok::Group(Delim::Brace, _, _)))
            {
                let mut expect = true;
                for t in inner {
                    match t {
                        Tok::Punct(',', _) => expect = true,
                        Tok::Punct('#', _) | Tok::Group(..) => {}
                        Tok::Ident(w, line) if expect => {
                            out.push((file.to_string(), w.clone(), *line));
                            expect = false;
                        }
                        _ => expect = false,
                    }
                }
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_injection_variants(inner, file, out);
        }
    }
}

// ---------------------------------------------------------------------------
// spanflow
// ---------------------------------------------------------------------------

/// Span-guard leak discipline plus registry balance.
///
/// A raw `tracer_mut().begin(…)` opens a span that only `end()` closes;
/// a `?` or `return` before any `end()` leaks the open span into the
/// caller's trace (the closure-scoped `ctx.span(…)` API cannot leak and
/// is never flagged). Events are compared in flattened source order — an
/// `end()` in an early-return arm counts for the hazards after it, which
/// trades path-sensitivity for zero false positives on the match-heavy
/// gateway/pool code.
///
/// Registry balance: namereg checks that emitted literals are registered;
/// this direction checks that every public `simtime::names` entry is
/// emitted (or referenced) somewhere outside the registry file.
pub(crate) fn spanflow(parsed: &[Rc<ParsedFile>], cfg: &Config, out: &mut Vec<Violation>) {
    for pf in parsed.iter() {
        if cfg.is_non_library_path(&pf.path) || cfg.is_spanflow_exempt(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            scan_span_guards(&f.body, &pf.path, &f.name, out);
        }
    }
    registry_balance(parsed, cfg, out);
}

enum SpanEvent {
    End,
    Hazard(&'static str, u32),
}

fn scan_span_guards(toks: &[Tok], file: &str, func: &str, out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if let Tok::Ident(w, line) = &toks[i] {
            if w == "begin"
                && i > 0
                && toks[i - 1].is_punct('.')
                && next_is_paren(toks, i)
                && tracer_receiver(toks, i - 1)
            {
                let mut events: Vec<SpanEvent> = Vec::new();
                flatten_span_events(&toks[i + 2..], &mut events);
                // Only the first event matters: an `End` first means the
                // guard closes before any hazard; a `Hazard` first is the
                // leak.
                if let Some(SpanEvent::Hazard(kind, hline)) = events.first() {
                    push(
                        out,
                        PASS_SPANFLOW,
                        file,
                        func,
                        *hline,
                        format!(
                            "span guard opened by raw `tracer begin` on line {line} \
                             leaks across {kind} before any `end()`; close the span on \
                             every path or use the closure-scoped `ctx.span(..)`"
                        ),
                    );
                }
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            scan_span_guards(inner, file, func, out);
        }
    }
}

/// Depth-first, source-order flattening of span events after a `begin`.
fn flatten_span_events(toks: &[Tok], out: &mut Vec<SpanEvent>) {
    for i in 0..toks.len() {
        match &toks[i] {
            Tok::Ident(w, line) => {
                if w == "end"
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && next_is_paren(toks, i)
                    && tracer_receiver(toks, i - 1)
                {
                    out.push(SpanEvent::End);
                } else if w == "return" {
                    out.push(SpanEvent::Hazard("`return`", *line));
                }
            }
            Tok::Punct('?', line) => out.push(SpanEvent::Hazard("`?`", *line)),
            Tok::Group(_, inner, _) => flatten_span_events(inner, out),
            _ => {}
        }
    }
}

/// The receiver chain before `dot` runs through a `tracer`/`tracer_mut`
/// access (`ctx.tracer_mut().begin`, `self.tracer.end`).
fn tracer_receiver(toks: &[Tok], dot: usize) -> bool {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match &toks[j] {
            Tok::Ident(w, _) => {
                if w == "tracer" || w == "tracer_mut" {
                    return true;
                }
                if is_keyword(w) && w != "self" {
                    return false;
                }
            }
            Tok::Punct('.', _) => {}
            Tok::Group(Delim::Paren, _, _) => {}
            _ => return false,
        }
    }
    false
}

/// Every public const and fn in the registry file must be referenced
/// somewhere outside it. `use` re-exports are dropped during
/// segmentation, so a re-export alone does not count as an emission.
fn registry_balance(parsed: &[Rc<ParsedFile>], cfg: &Config, out: &mut Vec<Violation>) {
    let Some(reg) = parsed.iter().find(|p| p.path == cfg.registry_file) else {
        return;
    };
    let mut declared: Vec<(String, u32)> = Vec::new();
    collect_pub_consts(&reg.items.loose, &mut declared);
    for f in &reg.items.fns {
        if f.is_pub {
            declared.push((f.name.clone(), f.line));
        }
    }

    let mut used: BTreeSet<&str> = BTreeSet::new();
    for pf in parsed.iter() {
        if pf.path == cfg.registry_file {
            continue;
        }
        collect_used_idents(&pf.items.loose, &mut used);
        for f in &pf.items.fns {
            collect_used_idents(&f.sig, &mut used);
            collect_used_idents(&f.body, &mut used);
        }
    }

    for (name, line) in &declared {
        if !used.contains(name.as_str()) {
            push(
                out,
                PASS_SPANFLOW,
                &cfg.registry_file,
                MODULE_SCOPE,
                *line,
                format!(
                    "registry entry `{name}` has no emission site outside the registry; every \
                     `simtime::names` entry must be emitted somewhere (or retired)"
                ),
            );
        }
    }
}

/// `pub const NAME` / `pub(crate) const NAME` declarations.
fn collect_pub_consts(toks: &[Tok], out: &mut Vec<(String, u32)>) {
    for i in 0..toks.len() {
        if toks[i].ident() == Some("const") {
            let vis = i >= 1 && toks[i - 1].ident() == Some("pub")
                || i >= 2
                    && matches!(toks.get(i - 1), Some(Tok::Group(Delim::Paren, _, _)))
                    && toks[i - 2].ident() == Some("pub");
            if vis {
                if let Some(Tok::Ident(name, line)) = toks.get(i + 1) {
                    out.push((name.clone(), *line));
                }
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_pub_consts(inner, out);
        }
    }
}

fn collect_used_idents<'a>(toks: &'a [Tok], out: &mut BTreeSet<&'a str>) {
    for t in toks {
        match t {
            Tok::Ident(w, _) => {
                out.insert(w.as_str());
            }
            Tok::Group(_, inner, _) => collect_used_idents(inner, out),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// simarith
// ---------------------------------------------------------------------------

/// Unchecked `+`/`-`/`*` (and `+=`/`-=`) on `SimNanos`/duration values in
/// functions reachable from the boot/simulate roots. The operator impls
/// panic on overflow in debug builds and wrap in release; on an
/// accounting path either silently corrupts exported latency figures.
/// Findings carry the root → sink chain like the other graph passes.
pub(crate) fn simarith(
    parsed: &[Rc<ParsedFile>],
    cfg: &Config,
    graph: &CallGraph<'_>,
    sums: &Summaries,
    out: &mut Vec<Violation>,
) {
    let roots: Vec<usize> = cfg
        .seam_roots
        .iter()
        .chain(cfg.sim_roots.iter())
        .flat_map(|n| graph.by_name(n))
        .collect();
    let reach = graph.reach(&roots, |site, _| {
        !cfg.hot_stops.iter().any(|s| s == &site.bare)
    });

    // Same-file `SimNanos` struct fields, by path.
    let mut fields: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for pf in parsed.iter() {
        let mut set = BTreeSet::new();
        dataflow::collect_duration_fields(&pf.items.loose, &mut set);
        fields.insert(pf.path.as_str(), set);
    }
    let empty = BTreeSet::new();

    for ix in 0..graph.nodes.len() {
        if !reach.seen[ix] {
            continue;
        }
        let node = &graph.nodes[ix];
        if cfg.is_simarith_exempt(&node.file) {
            continue;
        }
        let item = graph.items[ix];
        let file_fields = fields.get(node.file.as_str()).unwrap_or(&empty);
        let taint = dataflow::duration_taint(item, file_fields, &sums.duration_fns);
        let mut sites: BTreeMap<u32, (&'static str, &'static str)> = BTreeMap::new();
        scan_unchecked_arith(&item.body, &taint, &sums.duration_fns, &mut sites);
        for (line, (op, fix)) in sites {
            out.push(Violation {
                pass: PASS_SIMARITH,
                file: node.file.clone(),
                func: node.name.clone(),
                line,
                what: format!(
                    "unchecked `{op}` on a SimNanos/duration value on a boot-reachable path; \
                     use `{fix}` (or the checked_* form)"
                ),
                chain: graph.chain(&reach, ix),
            });
        }
    }
}

/// Flags binary `+`/`-`/`*` (and compound `+=`/`-=`) where either operand
/// carries a duration, deduplicated per line.
fn scan_unchecked_arith(
    toks: &[Tok],
    taint: &BTreeSet<String>,
    duration_fns: &BTreeSet<String>,
    out: &mut BTreeMap<u32, (&'static str, &'static str)>,
) {
    for i in 0..toks.len() {
        if let Tok::Punct(op @ ('+' | '-' | '*'), line) = &toks[i] {
            // `->` return-type arrows.
            if *op == '-' && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
                continue;
            }
            if i == 0 {
                continue;
            }
            // Binary operators follow an operand; unary minus/deref/ref
            // follow another operator or a delimiter and are skipped.
            let prev_is_operand = match &toks[i - 1] {
                Tok::Ident(w, _) => !is_keyword(w),
                Tok::Lit(_) => true,
                Tok::Group(Delim::Paren | Delim::Bracket, _, _) => true,
                Tok::Punct('?', _) => true,
                _ => false,
            };
            if !prev_is_operand {
                continue;
            }
            let mut k = i + 1;
            let compound = toks.get(k).is_some_and(|t| t.is_punct('='));
            if compound {
                k += 1;
            }
            let tainted = dataflow::left_operand_tainted(toks, i - 1, duration_fns, taint)
                || dataflow::right_operand_tainted(toks, k, duration_fns, taint);
            if tainted {
                let (op_str, fix) = match (*op, compound) {
                    ('+', false) => ("+", "saturating_add"),
                    ('+', true) => ("+=", "saturating_add"),
                    ('-', false) => ("-", "saturating_sub"),
                    ('-', true) => ("-=", "saturating_sub"),
                    ('*', _) => ("*", "saturating_mul"),
                    _ => unreachable!(),
                };
                out.entry(*line).or_insert((op_str, fix));
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            scan_unchecked_arith(inner, taint, duration_fns, out);
        }
    }
}

// ---------------------------------------------------------------------------
// hermetic
// ---------------------------------------------------------------------------

/// Nondeterminism-source taint from the simulation roots.
///
/// The determinism pass flags ambient time/entropy *everywhere*; this pass
/// proves the stronger property the dual-clock refactor (ROADMAP item 2)
/// needs: nothing *reachable from the simulation and boot roots* reads a
/// wall clock, ambient entropy, the environment, the OS scheduler, or a
/// child process. Reachability follows both edge kinds (missing a source
/// is worse than over-reporting) and stops only at the `[[clock_seam]]`
/// registry in `catalint.toml` — the sanctioned boundary behind which the
/// future `ClockInner::Realtime` arm will live. The registry is empty
/// today, so the pass certifies full hermeticity; the dual-clock PR flips
/// entries on instead of weakening the analysis. Findings carry their
/// root → sink call chain.
pub(crate) fn hermetic(cfg: &Config, graph: &CallGraph<'_>, out: &mut Vec<Violation>) {
    let roots: Vec<usize> = cfg
        .sim_roots
        .iter()
        .chain(cfg.seam_roots.iter())
        .flat_map(|n| graph.by_name(n))
        .collect();
    let reach = graph.reach(&roots, |site, _| {
        !cfg.clock_seam.iter().any(|s| s == &site.bare)
    });
    for ix in 0..graph.nodes.len() {
        if !reach.seen[ix] {
            continue;
        }
        let node = &graph.nodes[ix];
        // A seam function reached as a root (by name collision) is still
        // sanctioned: the registry names the boundary itself.
        if cfg.clock_seam.iter().any(|s| s == &node.name) {
            continue;
        }
        let mut sites: Vec<(u32, String)> = Vec::new();
        scan_hermetic(&graph.items[ix].body, &mut sites);
        if sites.is_empty() {
            continue;
        }
        let chain = graph.chain(&reach, ix);
        for (line, what) in sites {
            out.push(Violation {
                pass: PASS_HERMETIC,
                file: node.file.clone(),
                func: node.name.clone(),
                line,
                what,
                chain: chain.clone(),
            });
        }
    }
}

/// Collects nondeterminism sources in one body: wall clocks, ambient
/// entropy, environment reads, OS sleeps, process spawns, and
/// elapsed-time method reads.
fn scan_hermetic(toks: &[Tok], out: &mut Vec<(u32, String)>) {
    for i in 0..toks.len() {
        if let Tok::Ident(w, line) = &toks[i] {
            let method = i > 0 && toks[i - 1].is_punct('.') && next_is_paren(toks, i);
            match w.as_str() {
                "SystemTime" | "Instant" if is_path_to(toks, i, "now") => out.push((
                    *line,
                    format!("wall-clock `{w}::now()` on a sim-reachable path; read the virtual clock (or register the function under [[clock_seam]])"),
                )),
                "thread" if is_path_to(toks, i, "sleep") => out.push((
                    *line,
                    "OS `thread::sleep` on a sim-reachable path; charge simulated time".to_string(),
                )),
                "sleep" if next_is_paren(toks, i) && !prev_blocks_bare_sleep(toks, i) => out.push((
                    *line,
                    "bare `sleep()` on a sim-reachable path; charge simulated time".to_string(),
                )),
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => out.push((
                    *line,
                    format!("ambient entropy `{w}` on a sim-reachable path; seed an StdRng explicitly"),
                )),
                "env"
                    if is_path_to(toks, i, "var")
                        || is_path_to(toks, i, "var_os")
                        || is_path_to(toks, i, "vars") =>
                {
                    out.push((
                        *line,
                        "environment read (`env::var`-family) on a sim-reachable path; results must not depend on ambient configuration".to_string(),
                    ));
                }
                "process"
                    if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(':')) =>
                {
                    out.push((
                        *line,
                        "`std::process` use on a sim-reachable path; child processes are outside the simulation".to_string(),
                    ));
                }
                "elapsed" | "duration_since" if method => out.push((
                    *line,
                    format!("ambient `.{w}()` read on a sim-reachable path; durations come from the virtual clock"),
                )),
                _ => {}
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            scan_hermetic(inner, out);
        }
    }
}

// ---------------------------------------------------------------------------
// eventproto
// ---------------------------------------------------------------------------

/// One `Event` variant parsed from the enum declaration.
struct EventVariant {
    name: String,
    /// Declared payload field names (struct variants; tuple variants are
    /// not used by the engine and contribute no fields).
    fields: Vec<String>,
    line: u32,
}

/// DES event-protocol conformance, in three directions.
///
/// (a) *Tie-break totality*: the `Event` enum is parsed from the
/// configured events file, and every declared payload field must be bound
/// by at least one of the tie-break key functions (`class`/`key`/
/// `subkey`). A field hidden behind `..` in all of them means two
/// distinct events can compare equal at one instant — and then the
/// sequence number (insertion order) decides pop order, which is exactly
/// the leak the PR 7 queue design forbids.
///
/// (b) *Per-loop conformance*: each configured run-loop function must
/// match every variant (no `_` wildcard hiding future ones), and every
/// variant it schedules must land in a non-empty arm of its own match —
/// an event constructed and then dropped in an empty arm is dead state
/// transition the engine silently loses.
///
/// (c) *Ghost variants*: every declared variant must be constructed at
/// some schedule site and handled non-emptily in at least one loop;
/// anything else is protocol surface that exists only on paper.
pub(crate) fn eventproto(
    parsed: &[Rc<ParsedFile>],
    cfg: &Config,
    graph: &CallGraph<'_>,
    out: &mut Vec<Violation>,
) {
    let Some(events) = parsed.iter().find(|p| p.path == cfg.events_file) else {
        return;
    };
    let mut variants: Vec<EventVariant> = Vec::new();
    collect_event_variants(&events.items.loose, &cfg.event_enum, &mut variants);
    if variants.is_empty() {
        return;
    }

    // (a) Tie-break field coverage, unioned across the key functions.
    let mut bound: BTreeMap<String, BTreeSet<String>> = variants
        .iter()
        .map(|v| (v.name.clone(), BTreeSet::new()))
        .collect();
    let mut saw_tiebreak = false;
    for f in &events.items.fns {
        if cfg.tiebreak_fns.iter().any(|n| n == &f.name) {
            saw_tiebreak = true;
            collect_bound_fields(&f.body, &cfg.event_enum, &mut bound);
        }
    }
    if saw_tiebreak {
        for v in &variants {
            let covered = &bound[&v.name];
            for field in &v.fields {
                if !covered.contains(field) {
                    push(
                        out,
                        PASS_EVENTPROTO,
                        &cfg.events_file,
                        MODULE_SCOPE,
                        v.line,
                        format!(
                            "tie-break blind spot: `{}::{}` field `{field}` is bound by none of \
                             the tie-break keys ({}); two events differing only in `{field}` \
                             compare equal and pop in insertion order",
                            cfg.event_enum,
                            v.name,
                            cfg.tiebreak_fns.join("/"),
                        ),
                    );
                }
            }
        }
    }

    // Schedule sites across all library code (for the ghost check).
    let mut scheduled_anywhere: BTreeSet<String> = BTreeSet::new();
    for pf in parsed.iter() {
        if cfg.is_non_library_path(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            collect_schedule_variants(&f.body, &cfg.event_enum, &mut |v, _| {
                scheduled_anywhere.insert(v.to_string());
            });
        }
    }

    // (b) Per-loop conformance.
    let mut handled_somewhere: BTreeSet<String> = BTreeSet::new();
    let mut saw_loop = false;
    for loop_name in &cfg.event_loops {
        for ix in graph.by_name(loop_name) {
            let item = graph.items[ix];
            let node = &graph.nodes[ix];
            let mut arms: BTreeMap<String, bool> = BTreeMap::new();
            let mut wildcard: Option<u32> = None;
            collect_event_arms(&item.body, &cfg.event_enum, &mut arms, &mut wildcard);
            if arms.is_empty() {
                // A function that merely shares the loop's name.
                continue;
            }
            saw_loop = true;
            if let Some(line) = wildcard {
                push(
                    out,
                    PASS_EVENTPROTO,
                    &node.file,
                    &node.name,
                    line,
                    format!(
                        "`_` wildcard arm in `{loop_name}`'s event match; every `{}` variant \
                         must be matched by name so new variants fail loudly here",
                        cfg.event_enum
                    ),
                );
            }
            let mut sched: BTreeMap<String, u32> = BTreeMap::new();
            collect_schedule_variants(&item.body, &cfg.event_enum, &mut |v, line| {
                sched.entry(v.to_string()).or_insert(line);
            });
            for (v, line) in &sched {
                match arms.get(v) {
                    Some(true) => {}
                    Some(false) => push(
                        out,
                        PASS_EVENTPROTO,
                        &node.file,
                        &node.name,
                        *line,
                        format!(
                            "`{loop_name}` schedules `{}::{v}` but its only handler arm is \
                             empty — the event is constructed, popped, and dropped",
                            cfg.event_enum
                        ),
                    ),
                    None if wildcard.is_none() => push(
                        out,
                        PASS_EVENTPROTO,
                        &node.file,
                        &node.name,
                        *line,
                        format!(
                            "`{loop_name}` schedules `{}::{v}` but has no handler arm for it",
                            cfg.event_enum
                        ),
                    ),
                    None => {}
                }
            }
            if wildcard.is_none() {
                for v in &variants {
                    if !arms.contains_key(&v.name) {
                        push(
                            out,
                            PASS_EVENTPROTO,
                            &node.file,
                            &node.name,
                            node.line,
                            format!(
                                "`{loop_name}`'s event match has no arm for `{}::{}`; every \
                                 variant must be handled (an explicit empty arm documents \
                                 a provably-inert class)",
                                cfg.event_enum, v.name
                            ),
                        );
                    }
                }
            }
            for (v, nonempty) in arms {
                if nonempty {
                    handled_somewhere.insert(v);
                }
            }
        }
    }

    // (c) Ghost variants — only meaningful once a real loop was seen.
    if saw_loop {
        for v in &variants {
            if !scheduled_anywhere.contains(&v.name) {
                push(
                    out,
                    PASS_EVENTPROTO,
                    &cfg.events_file,
                    MODULE_SCOPE,
                    v.line,
                    format!(
                        "`{}::{}` is never constructed at any schedule site; dead protocol \
                         surface (delete it or wire it up)",
                        cfg.event_enum, v.name
                    ),
                );
            }
            if !handled_somewhere.contains(&v.name) {
                push(
                    out,
                    PASS_EVENTPROTO,
                    &cfg.events_file,
                    MODULE_SCOPE,
                    v.line,
                    format!(
                        "`{}::{}` has a handler arm in no run loop (or only empty ones \
                         everywhere); an event class nothing ever acts on",
                        cfg.event_enum, v.name
                    ),
                );
            }
        }
    }
}

/// Parses `enum <name> { … }`, collecting each variant's name, struct
/// payload field names, and line. Attributes are skipped; tuple payloads
/// contribute no named fields.
fn collect_event_variants(toks: &[Tok], enum_name: &str, out: &mut Vec<EventVariant>) {
    for i in 0..toks.len() {
        if toks[i].ident() == Some("enum")
            && matches!(toks.get(i + 1), Some(Tok::Ident(w, _)) if w == enum_name)
        {
            if let Some(Tok::Group(Delim::Brace, inner, _)) = toks
                .iter()
                .skip(i + 2)
                .find(|t| matches!(t, Tok::Group(Delim::Brace, _, _)))
            {
                let mut expect = true;
                let mut j = 0usize;
                while j < inner.len() {
                    match &inner[j] {
                        Tok::Punct(',', _) => expect = true,
                        Tok::Punct('#', _) => {
                            // Skip the attribute's bracket group.
                            if matches!(inner.get(j + 1), Some(Tok::Group(Delim::Bracket, _, _))) {
                                j += 1;
                            }
                        }
                        Tok::Ident(w, line) if expect => {
                            let mut fields = Vec::new();
                            if let Some(Tok::Group(Delim::Brace, body, _)) = inner.get(j + 1) {
                                collect_field_names(body, &mut fields);
                                j += 1;
                            } else if matches!(
                                inner.get(j + 1),
                                Some(Tok::Group(Delim::Paren, _, _))
                            ) {
                                j += 1;
                            }
                            out.push(EventVariant {
                                name: w.clone(),
                                fields,
                                line: *line,
                            });
                            expect = false;
                        }
                        _ => expect = false,
                    }
                    j += 1;
                }
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_event_variants(inner, enum_name, out);
        }
    }
}

/// Field names of a struct-variant body: `name: Type, …` (attributes and
/// the type tokens are skipped).
fn collect_field_names(toks: &[Tok], out: &mut Vec<String>) {
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct('#', _) => {
                if matches!(toks.get(i + 1), Some(Tok::Group(Delim::Bracket, _, _))) {
                    i += 1;
                }
            }
            Tok::Ident(name, _) if toks.get(i + 1).is_some_and(|t| t.is_punct(':')) => {
                out.push(name.clone());
                // Skip the type up to the next comma at this level.
                while i < toks.len() && !toks[i].is_punct(',') {
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Field names bound by `Event::V { … }` patterns, per variant. `..` and
/// wildcard sub-patterns bind nothing; `field: binding` binds `field`.
fn collect_bound_fields(
    toks: &[Tok],
    enum_name: &str,
    out: &mut BTreeMap<String, BTreeSet<String>>,
) {
    for i in 0..toks.len() {
        if let Some((variant, group)) = event_variant_at(toks, i, enum_name) {
            if let Some(set) = out.get_mut(variant) {
                if let Some(Tok::Group(Delim::Brace, body, _)) = group {
                    let mut names = Vec::new();
                    collect_pattern_fields(body, &mut names);
                    set.extend(names);
                }
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_bound_fields(inner, enum_name, out);
        }
    }
}

/// Field names a `{ … }` pattern body binds: shorthand `field`, renamed
/// `field: binding`, never `..`.
fn collect_pattern_fields(toks: &[Tok], out: &mut Vec<String>) {
    let mut i = 0usize;
    let mut at_field = true;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct(',', _) => at_field = true,
            Tok::Ident(name, _) if at_field && name != "ref" && name != "mut" => {
                out.push(name.clone());
                at_field = false;
                // Skip a renaming/sub-pattern up to the next comma.
                while i + 1 < toks.len() && !toks[i + 1].is_punct(',') {
                    i += 1;
                }
            }
            Tok::Punct('.', _) => at_field = false,
            _ => {}
        }
        i += 1;
    }
}

/// If `toks[i]` starts an `Enum :: Variant` path, returns the variant
/// ident and the payload group right after it (if any).
fn event_variant_at<'t>(
    toks: &'t [Tok],
    i: usize,
    enum_name: &str,
) -> Option<(&'t str, Option<&'t Tok>)> {
    if toks[i].ident() != Some(enum_name) {
        return None;
    }
    if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':')))
    {
        return None;
    }
    let Some(Tok::Ident(variant, _)) = toks.get(i + 3) else {
        return None;
    };
    let group = toks
        .get(i + 4)
        .filter(|t| matches!(t, Tok::Group(Delim::Brace | Delim::Paren, _, _)));
    Some((variant.as_str(), group))
}

/// Match arms over `Enum::Variant` patterns at every nesting level:
/// `variant → the arm body is non-empty`, unioned across or-patterns and
/// repeated matches. `_ =>` at a level that also has variant arms is
/// reported via `wildcard`.
fn collect_event_arms(
    toks: &[Tok],
    enum_name: &str,
    out: &mut BTreeMap<String, bool>,
    wildcard: &mut Option<u32>,
) {
    let mut level_has_arms = false;
    let mut level_wildcard: Option<u32> = None;
    let mut i = 0usize;
    while i < toks.len() {
        if let Some((variant, group)) = event_variant_at(toks, i, enum_name) {
            // Walk the or-pattern chain: collect variants until `=>`.
            let mut chain: Vec<String> = vec![variant.to_string()];
            let mut j = i + if group.is_some() { 5 } else { 4 };
            while toks.get(j).is_some_and(|t| t.is_punct('|')) && j + 1 < toks.len() {
                if let Some((v, g)) = event_variant_at(toks, j + 1, enum_name) {
                    chain.push(v.to_string());
                    j += 1 + if g.is_some() { 5 } else { 4 };
                } else {
                    break;
                }
            }
            // An arm iff `=>` follows the (last) pattern.
            let is_arm = toks.get(j).is_some_and(|t| t.is_punct('='))
                && toks.get(j + 1).is_some_and(|t| t.is_punct('>'));
            if is_arm {
                level_has_arms = true;
                let nonempty = match toks.get(j + 2) {
                    Some(Tok::Group(Delim::Brace, body, _)) => !body.is_empty(),
                    Some(_) => true,
                    None => false,
                };
                for v in chain {
                    let e = out.entry(v).or_insert(false);
                    *e = *e || nonempty;
                }
                i = j + 2;
                continue;
            }
        }
        // `_ =>` at this level (judged at level end: it only counts as a
        // hole if variant arms share this match body — a `_` arm in some
        // unrelated match must not trip the pass).
        if level_wildcard.is_none()
            && toks[i].ident() == Some("_")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('='))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('>'))
        {
            level_wildcard = Some(toks[i].line());
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_event_arms(inner, enum_name, out, wildcard);
        }
        i += 1;
    }
    if level_has_arms && wildcard.is_none() {
        if let Some(line) = level_wildcard {
            *wildcard = Some(line);
        }
    }
}

/// Variants constructed inside `schedule(…)` / `push(…)`-style call
/// arguments: any `Enum::Variant` expression inside the argument list of
/// a call whose bare name is `schedule`.
fn collect_schedule_variants(toks: &[Tok], enum_name: &str, sink: &mut impl FnMut(&str, u32)) {
    for i in 0..toks.len() {
        if let Tok::Ident(w, _) = &toks[i] {
            if w == "schedule" {
                if let Some(Tok::Group(Delim::Paren, args, _)) = toks.get(i + 1) {
                    collect_variant_mentions(args, enum_name, sink);
                }
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_schedule_variants(inner, enum_name, sink);
        }
    }
}

fn collect_variant_mentions(toks: &[Tok], enum_name: &str, sink: &mut impl FnMut(&str, u32)) {
    for i in 0..toks.len() {
        if let Some((variant, _)) = event_variant_at(toks, i, enum_name) {
            sink(variant, toks[i].line());
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_variant_mentions(inner, enum_name, sink);
        }
    }
}

// ---------------------------------------------------------------------------
// genarena
// ---------------------------------------------------------------------------

/// Generational-arena access discipline outside the arena module.
///
/// The lazy-stale-miss pattern (PR 7–9: keep-alive expiries, hedge
/// losers, crash kills) only works because every instance-slab read goes
/// through the generation-checked `Arena::get(InstanceId)`: a stale id
/// must *miss*, not alias whoever reused the slot. Two reads defeat that:
///
/// - `.index()` on a generational id — the raw slot number with the
///   generation stripped. Receivers are tracked from `: InstanceId`
///   ascriptions in signatures and `let` statements, plus the `Event`
///   payload fields declared with an `InstanceId` type (match bindings).
/// - raw indexing of a `slots` slab field (`arena.slots[i]`) — bypassing
///   the generation check entirely.
///
/// `FnId::index()` is exempt by construction: functions are never
/// removed, so a plain index cannot go stale — and only names the
/// tracker can see carry `InstanceId`.
pub(crate) fn genarena(parsed: &[Rc<ParsedFile>], cfg: &Config, out: &mut Vec<Violation>) {
    // Event payload field names declared with an InstanceId type: a match
    // arm binding one of these holds a generational id under the field's
    // name (`instance`), invisible to ascription tracking.
    let mut id_fields: Vec<String> = Vec::new();
    if let Some(events) = parsed.iter().find(|p| p.path == cfg.events_file) {
        let mut typed = BTreeSet::new();
        collect_instance_typed_fields(&events.items.loose, &cfg.event_enum, &mut typed);
        id_fields.extend(typed);
    }

    for pf in parsed {
        if cfg.is_non_library_path(&pf.path) || pf.path == cfg.arena_file {
            continue;
        }
        for f in &pf.items.fns {
            let mut tracked: Vec<String> = id_fields.clone();
            if let Some(Tok::Group(Delim::Paren, params, _)) = f.sig.first() {
                collect_instance_params(params, &mut tracked);
            }
            scan_genarena(&f.body, &mut tracked, &pf.path, &f.name, out);
        }
    }
}

/// `name: …InstanceId…` declarations up to the next `,` at this level.
fn collect_instance_params(toks: &[Tok], out: &mut Vec<String>) {
    let mut i = 0usize;
    while i < toks.len() {
        if let (Some(Tok::Ident(name, _)), Some(t)) = (toks.get(i), toks.get(i + 1)) {
            if t.is_punct(':') && !is_keyword(name) {
                let end = toks[i + 2..]
                    .iter()
                    .position(|t| t.is_punct(','))
                    .map_or(toks.len(), |p| i + 2 + p);
                if toks[i + 2..end]
                    .iter()
                    .any(|t| matches!(t.ident(), Some("InstanceId")))
                {
                    out.push(name.clone());
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Field names of the event enum's variants whose declared type mentions
/// `InstanceId`.
fn collect_instance_typed_fields(toks: &[Tok], enum_name: &str, out: &mut BTreeSet<String>) {
    for i in 0..toks.len() {
        if toks[i].ident() == Some("enum")
            && matches!(toks.get(i + 1), Some(Tok::Ident(w, _)) if w == enum_name)
        {
            if let Some(Tok::Group(Delim::Brace, inner, _)) = toks
                .iter()
                .skip(i + 2)
                .find(|t| matches!(t, Tok::Group(Delim::Brace, _, _)))
            {
                for t in inner {
                    if let Tok::Group(Delim::Brace, body, _) = t {
                        let mut j = 0usize;
                        while j < body.len() {
                            if let (Some(Tok::Ident(name, _)), Some(c)) =
                                (body.get(j), body.get(j + 1))
                            {
                                if c.is_punct(':') {
                                    let end = body[j + 2..]
                                        .iter()
                                        .position(|t| t.is_punct(','))
                                        .map_or(body.len(), |p| j + 2 + p);
                                    if body[j + 2..end]
                                        .iter()
                                        .any(|t| matches!(t.ident(), Some("InstanceId")))
                                    {
                                        out.insert(name.clone());
                                    }
                                    j = end + 1;
                                    continue;
                                }
                            }
                            j += 1;
                        }
                    }
                }
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_instance_typed_fields(inner, enum_name, out);
        }
    }
}

fn scan_genarena(
    toks: &[Tok],
    tracked: &mut Vec<String>,
    file: &str,
    func: &str,
    out: &mut Vec<Violation>,
) {
    let mut i = 0usize;
    while i < toks.len() {
        let stmt_end = toks[i..]
            .iter()
            .position(|t| t.is_punct(';'))
            .map_or(toks.len(), |p| i + p);
        let stmt = &toks[i..stmt_end];

        // `let [mut] name = …InstanceId…` bindings join the tracked set.
        if stmt.first().and_then(Tok::ident) == Some("let") {
            let mut j = 1;
            if stmt.get(j).and_then(Tok::ident) == Some("mut") {
                j += 1;
            }
            if let Some(Tok::Ident(name, _)) = stmt.get(j) {
                if stmt.iter().any(|t| flat_has(t, &["InstanceId"][..])) {
                    tracked.push(name.clone());
                }
            }
        }

        for k in 0..stmt.len() {
            match &stmt[k] {
                // `id.index()` on a tracked generational id, including
                // through transparent `.unwrap()`/`.expect(…)` hops.
                Tok::Ident(w, line)
                    if w == "index"
                        && k > 0
                        && stmt[k - 1].is_punct('.')
                        && next_is_paren(stmt, k) =>
                {
                    let Some(dot) = genarena_receiver_dot(stmt, k - 1, tracked) else {
                        continue;
                    };
                    push(
                        out,
                        PASS_GENARENA,
                        file,
                        func,
                        *line,
                        format!(
                            "raw `.index()` read off a generational id `{}`; the generation is \
                             stripped, so a stale id aliases whoever reused the slot — go \
                             through the generation-checked `Arena::get(InstanceId)`",
                            render_chain(&stmt[chain_start(stmt, dot)..dot]),
                        ),
                    );
                }
                // `…​.slots[i]` — raw slab-field indexing.
                Tok::Ident(w, line)
                    if w == "slots"
                        && k > 0
                        && stmt[k - 1].is_punct('.')
                        && matches!(stmt.get(k + 1), Some(Tok::Group(Delim::Bracket, _, _))) =>
                {
                    push(
                        out,
                        PASS_GENARENA,
                        file,
                        func,
                        *line,
                        "raw `slots[…]` slab indexing outside the arena module bypasses the \
                         generation check; use `Arena::get(InstanceId)`"
                            .to_string(),
                    );
                }
                _ => {}
            }
        }

        for t in stmt {
            if let Tok::Group(_, inner, _) = t {
                scan_genarena(inner, tracked, file, func, out);
            }
        }
        i = stmt_end.saturating_add(1);
    }
}

/// Resolves the receiver of a `.index()` call back to a tracked
/// generational id, stepping through transparent `.unwrap()`/`.expect(…)`
/// hops — `instance.unwrap().index()` reads the same id as
/// `instance.index()`. Returns the dot whose left side is the tracked
/// chain, so the caller can render it.
fn genarena_receiver_dot(stmt: &[Tok], mut dot: usize, tracked: &[String]) -> Option<usize> {
    loop {
        if receiver_is_tracked(stmt, dot, tracked) {
            return Some(dot);
        }
        // `… . unwrap ( ) .` — step to the dot before the hop.
        if dot >= 3
            && matches!(stmt.get(dot - 1), Some(Tok::Group(Delim::Paren, _, _)))
            && matches!(stmt[dot - 2].ident(), Some("unwrap" | "expect"))
            && stmt[dot - 3].is_punct('.')
        {
            dot -= 3;
            continue;
        }
        return None;
    }
}
