//! The four invariant passes.
//!
//! Each pass is a pattern scan over token trees (see [`crate::lexer`]);
//! none of them type-check. They are tuned so that false positives land in
//! the reviewed baseline rather than blocking work, while regressions on
//! the invariants the paper's numbers depend on fail loudly:
//!
//! - **determinism** — simulated time and seeded randomness only. A stray
//!   `Instant::now()` silently turns reproducible latency figures into
//!   noise.
//! - **panic** — image parsing must return [`imagefmt::ImageError`]-style
//!   errors, never panic: a func-image is untrusted input to the restore
//!   path.
//! - **hotpath** — functions reachable from the restore roots must not
//!   eagerly copy full buffers; overlay memory exists precisely so that
//!   Base-EPT pages are shared, not copied.
//! - **hygiene** — public library functions return crate error types, not
//!   `Box<dyn Error>`, so callers can match on failure modes.

use std::collections::{HashMap, VecDeque};

use crate::config::Config;
use crate::lexer::{Delim, Tok};
use crate::segment::is_keyword;
use crate::{ParsedFile, Violation};

/// Pass name: simulated-time / seeded-randomness discipline.
pub const PASS_DETERMINISM: &str = "determinism";
/// Pass name: panic-freedom in image-parsing modules.
pub const PASS_PANIC: &str = "panic";
/// Pass name: no eager copies on the restore hot path.
pub const PASS_HOTPATH: &str = "hotpath";
/// Pass name: public API error hygiene.
pub const PASS_HYGIENE: &str = "hygiene";

/// All pass names, for validating baselines and allow directives.
pub const ALL_PASSES: [&str; 4] = [PASS_DETERMINISM, PASS_PANIC, PASS_HOTPATH, PASS_HYGIENE];

/// Function name used for findings in top-level (non-fn) tokens.
pub const MODULE_SCOPE: &str = "<module>";

fn push(
    out: &mut Vec<Violation>,
    pass: &'static str,
    file: &str,
    func: &str,
    line: u32,
    what: String,
) {
    out.push(Violation {
        pass,
        file: file.to_string(),
        func: func.to_string(),
        line,
        what,
    });
}

fn next_is_paren(toks: &[Tok], i: usize) -> bool {
    matches!(toks.get(i + 1), Some(Tok::Group(Delim::Paren, _, _)))
}

fn is_path_to(toks: &[Tok], i: usize, target: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && matches!(toks.get(i + 3), Some(Tok::Ident(w, _)) if w == target)
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

/// Flags ambient time and entropy sources outside `simtime`.
pub(crate) fn determinism(parsed: &[ParsedFile], cfg: &Config, out: &mut Vec<Violation>) {
    for pf in parsed {
        if cfg.is_determinism_exempt(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            scan_det(&f.body, &pf.path, &f.name, out);
        }
        scan_det(&pf.items.loose, &pf.path, MODULE_SCOPE, out);
    }
}

fn scan_det(toks: &[Tok], file: &str, func: &str, out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if let Tok::Ident(w, line) = &toks[i] {
            match w.as_str() {
                "SystemTime" | "Instant" if is_path_to(toks, i, "now") => push(
                    out,
                    PASS_DETERMINISM,
                    file,
                    func,
                    *line,
                    format!("wall-clock `{w}::now()`; use simtime::SimClock"),
                ),
                "thread" if is_path_to(toks, i, "sleep") => push(
                    out,
                    PASS_DETERMINISM,
                    file,
                    func,
                    *line,
                    "real `thread::sleep`; charge simulated time instead".to_string(),
                ),
                "sleep" if next_is_paren(toks, i) && !prev_blocks_bare_sleep(toks, i) => push(
                    out,
                    PASS_DETERMINISM,
                    file,
                    func,
                    *line,
                    "bare `sleep()` call; charge simulated time instead".to_string(),
                ),
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => push(
                    out,
                    PASS_DETERMINISM,
                    file,
                    func,
                    *line,
                    format!("ambient entropy `{w}`; seed an StdRng explicitly"),
                ),
                _ => {}
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            scan_det(inner, file, func, out);
        }
    }
}

/// `.sleep(…)` method calls, `fn sleep(…)` definitions, and the tail of a
/// `thread::sleep` path (already reported) are not bare sleeps.
fn prev_blocks_bare_sleep(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &toks[i - 1] {
        Tok::Punct('.', _) | Tok::Punct(':', _) => true,
        Tok::Ident(w, _) => w == "fn",
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// panic
// ---------------------------------------------------------------------------

/// Flags panic sources in the configured parse modules.
pub(crate) fn panic_freedom(parsed: &[ParsedFile], cfg: &Config, out: &mut Vec<Violation>) {
    for pf in parsed {
        if !cfg.is_parse_file(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            scan_panic(&f.body, &pf.path, &f.name, out);
        }
        scan_panic(&pf.items.loose, &pf.path, MODULE_SCOPE, out);
    }
}

fn numeric_type(s: &str) -> bool {
    matches!(
        s,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
    )
}

fn scan_panic(toks: &[Tok], file: &str, func: &str, out: &mut Vec<Violation>) {
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            // `use foo::bar as baz;` inside a body is not a cast.
            Tok::Ident(w, _) if w == "use" => {
                while i < toks.len() && !matches!(&toks[i], Tok::Punct(';', _)) {
                    i += 1;
                }
            }
            Tok::Ident(w, line)
                if (w == "unwrap" || w == "expect")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && next_is_paren(toks, i) =>
            {
                push(
                    out,
                    PASS_PANIC,
                    file,
                    func,
                    *line,
                    format!(".{w}() in an image-parsing module"),
                );
            }
            Tok::Ident(w, line)
                if matches!(
                    w.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                push(
                    out,
                    PASS_PANIC,
                    file,
                    func,
                    *line,
                    format!("{w}! in an image-parsing module"),
                );
            }
            Tok::Ident(w, line)
                if w == "as"
                    && matches!(toks.get(i + 1), Some(Tok::Ident(t, _)) if numeric_type(t)) =>
            {
                let ty = toks[i + 1].ident().unwrap_or("?");
                push(
                    out,
                    PASS_PANIC,
                    file,
                    func,
                    *line,
                    format!("unchecked `as {ty}` cast; use try_into/From"),
                );
            }
            Tok::Group(Delim::Bracket, inner, line)
                if prev_is_indexable(toks, i) && !is_full_range(inner) =>
            {
                push(
                    out,
                    PASS_PANIC,
                    file,
                    func,
                    *line,
                    "unchecked slice/array indexing; use get()/split-based parsing".to_string(),
                );
            }
            _ => {}
        }
        if let Some(Tok::Group(_, inner, _)) = toks.get(i) {
            scan_panic(inner, file, func, out);
        }
        i += 1;
    }
}

fn prev_is_indexable(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &toks[i - 1] {
        Tok::Ident(w, _) => !is_keyword(w),
        Tok::Group(Delim::Paren | Delim::Bracket, _, _) => true,
        Tok::Punct('?', _) => true,
        _ => false,
    }
}

/// `[..]` — a full-range slice, which cannot panic.
fn is_full_range(inner: &[Tok]) -> bool {
    matches!(inner, [Tok::Punct('.', _), Tok::Punct('.', _)])
}

// ---------------------------------------------------------------------------
// hygiene
// ---------------------------------------------------------------------------

/// Flags public library functions returning `Box<dyn …Error…>`.
pub(crate) fn hygiene(parsed: &[ParsedFile], cfg: &Config, out: &mut Vec<Violation>) {
    for pf in parsed {
        if cfg.is_non_library_path(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            if f.is_pub && ret_has_boxed_dyn_error(&f.sig) {
                push(
                    out,
                    PASS_HYGIENE,
                    &pf.path,
                    &f.name,
                    f.line,
                    "public fn returns `Box<dyn Error>`; return the crate error type".to_string(),
                );
            }
        }
    }
}

fn ret_has_boxed_dyn_error(sig: &[Tok]) -> bool {
    for i in 0..sig.len().saturating_sub(1) {
        if sig[i].is_punct('-') && sig[i + 1].is_punct('>') {
            let mut has_dyn = false;
            let mut has_error = false;
            dyn_error_scan(&sig[i + 2..], &mut has_dyn, &mut has_error);
            return has_dyn && has_error;
        }
    }
    false
}

fn dyn_error_scan(toks: &[Tok], has_dyn: &mut bool, has_error: &mut bool) {
    for t in toks {
        match t {
            Tok::Ident(w, _) if w == "dyn" => *has_dyn = true,
            Tok::Ident(w, _) if w.contains("Error") => *has_error = true,
            Tok::Group(_, inner, _) => dyn_error_scan(inner, has_dyn, has_error),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// hotpath
// ---------------------------------------------------------------------------

/// Method/function names too generic to follow as name-based call edges:
/// following `.get(…)` to every `get` in the workspace would make
/// "reachable from the restore path" mean "everything". Qualified calls
/// (`Type::new(…)`) are still followed precisely.
const STOP_EDGES: [&str; 29] = [
    "new",
    "default",
    "clone",
    "from",
    "into",
    "len",
    "is_empty",
    "get",
    "push",
    "insert",
    "remove",
    "contains",
    "iter",
    "next",
    "collect",
    "map",
    "filter",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "hash",
    "drop",
    "deref",
    "to_string",
    "as_ref",
    "as_mut",
    "min",
    // `write` collides across the workspace: `AddressSpace::write` (restore
    // side, page-granular by design) vs. the checkpoint serializers
    // (`flat::write`, `classic::write`), which buffer freely off the hot
    // path. A name-based graph cannot split them, so the edge is dropped.
    "write",
];

/// Flags eager full-buffer copies in functions name-reachable from the
/// configured restore roots.
pub(crate) fn hotpath(parsed: &[ParsedFile], cfg: &Config, out: &mut Vec<Violation>) {
    // Index every library function by bare and qualified name.
    let mut fns: Vec<(&str, &crate::segment::FnItem)> = Vec::new();
    for pf in parsed {
        if cfg.is_non_library_path(&pf.path) {
            continue;
        }
        for f in &pf.items.fns {
            fns.push((pf.path.as_str(), f));
        }
    }
    let mut by_bare: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_qual: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ix, (_, f)) in fns.iter().enumerate() {
        by_bare.entry(f.name.as_str()).or_default().push(ix);
        if let Some(q) = &f.qualified {
            by_qual.entry(q.as_str()).or_default().push(ix);
        }
    }

    // BFS over name-based call edges from the roots.
    let mut reach = vec![false; fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for root in &cfg.hot_roots {
        for &ix in by_bare.get(root.as_str()).into_iter().flatten() {
            if !reach[ix] {
                reach[ix] = true;
                queue.push_back(ix);
            }
        }
    }
    while let Some(ix) = queue.pop_front() {
        let mut callees = Vec::new();
        collect_callees(&fns[ix].1.body, &mut callees);
        for c in &callees {
            let bare = c.rsplit("::").next().unwrap_or(c);
            if cfg.hot_stops.iter().any(|s| s == bare) {
                continue;
            }
            let targets: &[usize] = if c.contains("::") {
                by_qual.get(c.as_str()).map_or(&[], Vec::as_slice)
            } else if STOP_EDGES.contains(&c.as_str()) {
                &[]
            } else {
                by_bare.get(c.as_str()).map_or(&[], Vec::as_slice)
            };
            for &t in targets {
                if !reach[t] {
                    reach[t] = true;
                    queue.push_back(t);
                }
            }
        }
    }

    for (ix, (file, f)) in fns.iter().enumerate() {
        if reach[ix] {
            scan_copies(&f.body, file, &f.name, out);
        }
    }
}

/// Collects callee names from a body: `foo(…)` and `.foo(…)` as bare names,
/// `Type::foo(…)` qualified when `Type` is capitalised.
fn collect_callees(toks: &[Tok], out: &mut Vec<String>) {
    for i in 0..toks.len() {
        if let Tok::Ident(w, _) = &toks[i] {
            let is_def = i >= 1 && matches!(&toks[i - 1], Tok::Ident(k, _) if k == "fn");
            if !is_keyword(w) && !is_def && next_is_paren(toks, i) {
                let qualified = i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
                if qualified {
                    match toks.get(i - 3) {
                        Some(Tok::Ident(q, _))
                            if q.chars().next().is_some_and(char::is_uppercase) =>
                        {
                            out.push(format!("{q}::{w}"));
                        }
                        _ => out.push(w.clone()),
                    }
                } else {
                    out.push(w.clone());
                }
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            collect_callees(inner, out);
        }
    }
}

/// Receiver names treated as page/payload buffers for the `.clone()` check.
const BUFFER_RECEIVERS: [&str; 2] = ["data", "page_data"];

fn scan_copies(toks: &[Tok], file: &str, func: &str, out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if let Tok::Ident(w, line) = &toks[i] {
            let method = i > 0 && toks[i - 1].is_punct('.') && next_is_paren(toks, i);
            let associated = i >= 2
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && next_is_paren(toks, i);
            match w.as_str() {
                "to_vec" | "to_owned" if method => push(
                    out,
                    PASS_HOTPATH,
                    file,
                    func,
                    *line,
                    format!("eager `{w}()` buffer copy on the restore path; slice/share instead"),
                ),
                "extend_from_slice" if method => push(
                    out,
                    PASS_HOTPATH,
                    file,
                    func,
                    *line,
                    "`extend_from_slice` bulk append on the restore path".to_string(),
                ),
                "copy_from_slice" if associated => push(
                    out,
                    PASS_HOTPATH,
                    file,
                    func,
                    *line,
                    "allocating `copy_from_slice` constructor on the restore path".to_string(),
                ),
                "clone"
                    if method
                        && i >= 2
                        && matches!(&toks[i - 2], Tok::Ident(r, _)
                            if BUFFER_RECEIVERS.contains(&r.as_str())) =>
                {
                    push(
                        out,
                        PASS_HOTPATH,
                        file,
                        func,
                        *line,
                        "clone of a page/payload buffer on the restore path".to_string(),
                    )
                }
                _ => {}
            }
        }
        if let Tok::Group(_, inner, _) = &toks[i] {
            scan_copies(inner, file, func, out);
        }
    }
}
