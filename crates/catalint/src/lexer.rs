//! A minimal Rust lexer producing delimiter-matched token trees.
//!
//! This is deliberately **not** a parser: catalint's invariants are all
//! expressible as patterns over identifiers, punctuation, and bracket
//! groups, so the lexer only needs to get four things exactly right:
//!
//! 1. comments (line, nested block) never produce tokens, but are scanned
//!    for `catalint: allow(<pass>)` suppression directives;
//! 2. string/char literals are opaque — `"foo.unwrap()"` is data, not code;
//! 3. raw strings (`r#"…"#`) honour their hash-delimited terminator, so a
//!    JSON fixture full of quotes and braces cannot desynchronise the lexer;
//! 4. delimiters are matched into [`Tok::Group`]s so passes can reason
//!    about "the tokens inside this bracket" and "the previous sibling".
//!
//! Everything else (numeric suffixes, lifetimes, multi-char operators) is
//! reduced to the simplest shape that keeps patterns checkable.

/// The three bracket kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// One token. Lines are 1-based.
#[derive(Debug, Clone)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String, u32),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char, u32),
    /// A non-string literal (char, number). Contents are opaque.
    Lit(u32),
    /// A string literal (normal, raw, or byte). The content is carried —
    /// escapes unprocessed, delimiters stripped — so passes that police
    /// string *values* (the namereg pass) can inspect it. Code inside a
    /// string is still never tokenised.
    Str(String, u32),
    /// A delimiter-matched group; the line is the opening delimiter's.
    Group(Delim, Vec<Tok>, u32),
}

impl Tok {
    /// The source line this token starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tok::Ident(_, l)
            | Tok::Punct(_, l)
            | Tok::Lit(l)
            | Tok::Str(_, l)
            | Tok::Group(_, _, l) => *l,
        }
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s, _) => Some(s),
            _ => None,
        }
    }

    /// True if this is exactly the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p, _) if *p == c)
    }
}

/// A `catalint: allow(<pass>)` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the comment starts on; suppresses findings on this line and the next.
    pub line: u32,
    /// Pass name inside the parentheses.
    pub pass: String,
}

/// Lexer output: the token tree plus any suppression directives.
#[derive(Debug)]
pub struct Lexed {
    /// Top-level tokens of the file.
    pub toks: Vec<Tok>,
    /// Suppression directives, in source order.
    pub allows: Vec<Allow>,
}

/// Lexes one source file. Never fails: unbalanced delimiters are closed at
/// end of input (best effort — the passes degrade to fewer findings, never
/// to a panic).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut allows: Vec<Allow> = Vec::new();
    let mut stack: Vec<(Delim, u32, Vec<Tok>)> = Vec::new();
    let mut cur: Vec<Tok> = Vec::new();

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                scan_allow_directives(&b[start..i], line, &mut allows);
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                scan_allow_directives(&b[start..i.min(b.len())], start_line, &mut allows);
            }
            '"' => {
                let l = line;
                let end = skip_string(&b, i, &mut line);
                cur.push(Tok::Str(string_content(&b, i + 1, end, 1), l));
                i = end;
            }
            '\'' => {
                let l = line;
                if b.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: consume through the closing quote.
                    i += 2;
                    while i < b.len() && b[i] != '\'' {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    cur.push(Tok::Lit(l));
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == '_' || b[j].is_alphanumeric()) {
                        j += 1;
                    }
                    if j > i + 1 && b.get(j) == Some(&'\'') {
                        // 'a' — a char literal.
                        i = j + 1;
                        cur.push(Tok::Lit(l));
                    } else if j == i + 1 {
                        if b.get(i + 2) == Some(&'\'') && b.get(i + 1) != Some(&'\'') {
                            // '"', '.', '(' — a single-char literal whose char
                            // is not alphanumeric. Must be consumed as a unit
                            // or the inner char (a quote, a delimiter) would
                            // desynchronise the lexer.
                            if b.get(i + 1) == Some(&'\n') {
                                line += 1;
                            }
                            i += 3;
                            cur.push(Tok::Lit(l));
                        } else {
                            // A bare quote (macro token position) — keep as punct.
                            i += 1;
                            cur.push(Tok::Punct('\'', l));
                        }
                    } else {
                        // 'lifetime — skipped entirely.
                        i = j;
                    }
                }
            }
            '(' | '[' | '{' => {
                let d = match c {
                    '(' => Delim::Paren,
                    '[' => Delim::Bracket,
                    _ => Delim::Brace,
                };
                stack.push((d, line, std::mem::take(&mut cur)));
                i += 1;
            }
            ')' | ']' | '}' => {
                if let Some((d, l, parent)) = stack.pop() {
                    let inner = std::mem::replace(&mut cur, parent);
                    cur.push(Tok::Group(d, inner, l));
                }
                i += 1;
            }
            _ if c == '_' || c.is_alphabetic() => {
                let l = line;
                let start = i;
                while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                    i += 1;
                }
                let word: String = b[start..i].iter().collect();
                if matches!(word.as_str(), "r" | "b" | "br" | "rb") {
                    // Possible (raw/byte) string prefix.
                    let mut k = i;
                    let mut hashes = 0usize;
                    while k < b.len() && b[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < b.len() && b[k] == '"' {
                        let end = if word.contains('r') {
                            skip_raw_string(&b, k, hashes, &mut line)
                        } else if hashes == 0 {
                            skip_string(&b, k, &mut line)
                        } else {
                            cur.push(Tok::Ident(word, l));
                            continue;
                        };
                        let close = 1 + hashes;
                        cur.push(Tok::Str(string_content(&b, k + 1, end, close), l));
                        i = end;
                        continue;
                    }
                }
                cur.push(Tok::Ident(word, l));
            }
            _ if c.is_ascii_digit() => {
                let l = line;
                while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                    i += 1;
                }
                // A fractional part, but never a `..` range operator.
                if i + 1 < b.len() && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                        i += 1;
                    }
                }
                cur.push(Tok::Lit(l));
            }
            other => {
                cur.push(Tok::Punct(other, line));
                i += 1;
            }
        }
    }

    // Close any unbalanced groups so callers always get a tree.
    while let Some((d, l, parent)) = stack.pop() {
        let inner = std::mem::replace(&mut cur, parent);
        cur.push(Tok::Group(d, inner, l));
    }

    Lexed { toks: cur, allows }
}

/// Extracts string content between `start` (just past the opening quote)
/// and `end` (one past the closing delimiter, which is `close` chars long).
/// On unterminated strings `end` may be the input end; the subtraction
/// saturates so the lexer still never fails.
fn string_content(b: &[char], start: usize, end: usize, close: usize) -> String {
    let stop = end.saturating_sub(close).max(start).min(b.len());
    b[start.min(stop)..stop].iter().collect()
}

/// Skips a normal (escape-honouring) string starting at the opening quote;
/// returns the index one past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string whose opening quote is at `i` and which terminates at
/// `"` followed by `hashes` `#` characters.
fn skip_raw_string(b: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == '"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Finds `catalint: allow(<pass>)` directives inside one comment.
fn scan_allow_directives(comment: &[char], line: u32, out: &mut Vec<Allow>) {
    let text: String = comment.iter().collect();
    let mut rest = text.as_str();
    while let Some(pos) = rest.find("catalint:") {
        let after = rest[pos + "catalint:".len()..].trim_start();
        if let Some(args) = after.strip_prefix("allow(") {
            if let Some(end) = args.find(')') {
                let pass = args[..end].trim().to_string();
                if !pass.is_empty() {
                    out.push(Allow { line, pass });
                }
            }
        }
        rest = &rest[pos + "catalint:".len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::{lex, Delim, Tok};

    fn idents(toks: &[Tok]) -> Vec<String> {
        let mut out = Vec::new();
        for t in toks {
            match t {
                Tok::Ident(s, _) => out.push(s.clone()),
                Tok::Group(_, inner, _) => out.extend(idents(inner)),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn groups_nest() {
        let l = lex("fn f(a: u8) { g([1, 2]); }");
        assert_eq!(l.toks.len(), 4); // fn, f, (..), {..}
        match &l.toks[3] {
            Tok::Group(Delim::Brace, inner, _) => {
                assert!(matches!(inner[1], Tok::Group(Delim::Paren, _, _)));
            }
            other => panic!("expected brace group, got {other:?}"),
        }
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let l = lex("let x = \"a.unwrap() {\"; // unwrap() here too\n/* and } here */ y");
        let ids = idents(&l.toks);
        assert_eq!(ids, vec!["let", "x", "y"]);
    }

    #[test]
    fn raw_strings_with_quotes_and_braces() {
        let l = lex(r##"let j = r#"{"k": "v}}"}"#; done"##);
        let ids = idents(&l.toks);
        assert_eq!(ids, vec!["let", "j", "done"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'a'; let n = '\\n'; }");
        let ids = idents(&l.toks);
        assert!(!ids.contains(&"a".to_string()) || ids.iter().filter(|s| *s == "a").count() == 0);
        assert!(ids.contains(&"c".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* x /* y */ z */ b");
        assert_eq!(idents(&l.toks), vec!["a", "b"]);
    }

    #[test]
    fn line_numbers_advance() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(Tok::line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn allow_directives_are_collected() {
        let l = lex("x // catalint: allow(hotpath)\ny /* catalint: allow(panic) */");
        assert_eq!(l.allows.len(), 2);
        assert_eq!(l.allows[0].pass, "hotpath");
        assert_eq!(l.allows[0].line, 1);
        assert_eq!(l.allows[1].pass, "panic");
    }

    #[test]
    fn unbalanced_input_still_lexes() {
        let l = lex("fn f( { [ x");
        assert!(!idents(&l.toks).is_empty());
    }
}
